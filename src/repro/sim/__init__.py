"""Small dense statevector simulator and schedule verification helpers."""

from repro.sim.statevector import (
    Statevector,
    circuit_unitary,
    circuits_equivalent,
    unitaries_equivalent,
)
from repro.sim.verification import (
    ancilla_routed_cz_gates,
    expand_schedule_to_circuit,
    first_amplitude_mismatch,
    verify_cz_routing_theorem,
    verify_schedule_equivalence,
)

__all__ = [
    "Statevector",
    "circuit_unitary",
    "circuits_equivalent",
    "unitaries_equivalent",
    "verify_cz_routing_theorem",
    "ancilla_routed_cz_gates",
    "expand_schedule_to_circuit",
    "first_amplitude_mismatch",
    "verify_schedule_equivalence",
]

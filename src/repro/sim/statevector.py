"""Dense statevector simulator for correctness checks.

This simulator exists solely to *verify* the compiler: decompositions must
preserve unitaries, and flying-ancilla schedules must act on the data
qubits exactly like the original circuit.  It is intentionally simple
(dense numpy, little-endian qubit ordering, no noise) and is only used on
small registers (≤ ~14 qubits) inside the test-suite and examples.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate, gate_diagonal, gate_matrix_readonly
from repro.exceptions import QPilotError
from repro.utils.rng import ensure_rng

_MAX_SIM_QUBITS = 22

#: Boolean mask selecting the off-diagonal entries of a 4x4 matrix.
_OFF_DIAGONAL_4 = ~np.eye(4, dtype=bool)


class Statevector:
    """A dense statevector over ``num_qubits`` qubits (little-endian).

    Basis state ``|x>`` has qubit ``q`` equal to bit ``q`` of ``x``.
    """

    def __init__(self, num_qubits: int, data: np.ndarray | None = None):
        if num_qubits < 1:
            raise QPilotError("statevector needs at least one qubit")
        if num_qubits > _MAX_SIM_QUBITS:
            raise QPilotError(
                f"refusing to simulate {num_qubits} qubits (limit {_MAX_SIM_QUBITS})"
            )
        self.num_qubits = num_qubits
        dim = 1 << num_qubits
        if data is None:
            self.data = np.zeros(dim, dtype=complex)
            self.data[0] = 1.0
        else:
            data = np.asarray(data, dtype=complex).reshape(-1)
            if data.shape[0] != dim:
                raise QPilotError(f"statevector data has dimension {data.shape[0]}, expected {dim}")
            self.data = data.copy()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def random(cls, num_qubits: int, seed: int | np.random.Generator | None = None) -> "Statevector":
        """Haar-ish random state (normalised complex Gaussian vector)."""
        rng = ensure_rng(seed)
        dim = 1 << num_qubits
        vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
        vec /= np.linalg.norm(vec)
        return cls(num_qubits, vec)

    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Computational basis state from a bit-string label.

        ``label[0]`` is qubit 0 (little-endian label, e.g. ``"10"`` means
        qubit 0 = 1, qubit 1 = 0).
        """
        num_qubits = len(label)
        index = 0
        for qubit, char in enumerate(label):
            if char not in "01":
                raise QPilotError(f"invalid basis label {label!r}")
            if char == "1":
                index |= 1 << qubit
        state = cls(num_qubits)
        state.data[:] = 0
        state.data[index] = 1.0
        return state

    def copy(self) -> "Statevector":
        return Statevector(self.num_qubits, self.data)

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------
    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "Statevector":
        """Apply a k-qubit unitary to the listed qubits (in place).

        ``qubits[0]`` is the least-significant operand of ``matrix``.
        1- and 2-qubit unitaries take index-sliced fast paths; larger gates
        fall back to the generic tensordot kernel.
        """
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise QPilotError(f"matrix shape {matrix.shape} does not match {k} qubits")
        if len(set(qubits)) != k:
            raise QPilotError("duplicate qubits in apply_matrix")
        if any(q >= self.num_qubits or q < 0 for q in qubits):
            raise QPilotError(f"qubits {qubits} out of range for {self.num_qubits}-qubit state")
        if k == 1:
            self._apply_one_qubit(matrix, qubits[0])
        elif k == 2:
            self._apply_two_qubit(matrix, qubits[0], qubits[1])
        else:
            self._apply_generic(matrix, qubits)
        return self

    def _axis(self, qubit: int) -> int:
        # numpy axis p of data.reshape([2]*n) corresponds to qubit (n - 1 - p)
        # in little-endian order.
        return self.num_qubits - 1 - qubit

    def _apply_one_qubit(self, matrix: np.ndarray, qubit: int) -> None:
        """1-qubit kernel: two strided slices instead of tensordot+transpose."""
        view = np.moveaxis(self.data.reshape([2] * self.num_qubits), self._axis(qubit), 0)
        if matrix[0, 1] == 0 and matrix[1, 0] == 0:
            # diagonal gate: scale the |1> slice (and |0> when non-trivial)
            if matrix[0, 0] != 1:
                view[0] *= matrix[0, 0]
            view[1] *= matrix[1, 1]
            return
        zero = matrix[0, 0] * view[0] + matrix[0, 1] * view[1]
        one = matrix[1, 0] * view[0] + matrix[1, 1] * view[1]
        view[0] = zero
        view[1] = one

    def _apply_two_qubit(self, matrix: np.ndarray, qubit_a: int, qubit_b: int) -> None:
        """2-qubit kernel on sliced views.

        The view's leading axes are (qubit_b, qubit_a) so that flattening
        them yields the matrix's basis order (``qubits[0]`` = least
        significant).
        """
        view = np.moveaxis(
            self.data.reshape([2] * self.num_qubits),
            (self._axis(qubit_b), self._axis(qubit_a)),
            (0, 1),
        )
        if not matrix[_OFF_DIAGONAL_4].any():
            # diagonal gate (cz, cp, crz, rzz, ...): pure phase per slice
            for basis in range(4):
                phase = matrix[basis, basis]
                if phase != 1:
                    view[basis >> 1, basis & 1] *= phase
            return
        tensor = matrix.reshape(2, 2, 2, 2)
        # contract matrix input indices with the two leading state axes
        view[...] = np.tensordot(tensor, view, axes=([2, 3], [0, 1]))

    def _apply_generic(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        k = len(qubits)
        n = self.num_qubits
        psi = self.data.reshape([2] * n)
        # The matrix treats qubits[0] as its least-significant operand, so its
        # tensor input axes (k..2k-1) run over qubits[k-1], ..., qubits[0].
        axes = [n - 1 - q for q in reversed(qubits)]
        tensor = matrix.reshape([2] * (2 * k))
        # tensordot contracts matrix's input indices (last k) with the state axes
        psi = np.tensordot(tensor, psi, axes=(list(range(k, 2 * k)), axes))
        # result has the k output indices first (same qubit order as `axes`),
        # followed by the remaining axes in their original relative order
        remaining = [ax for ax in range(n) if ax not in set(axes)]
        current_order = axes + remaining
        inverse = np.argsort(current_order)
        psi = np.transpose(psi, inverse)
        self.data = psi.reshape(-1)

    def _apply_diagonal(self, diagonal: np.ndarray, qubits: Sequence[int]) -> None:
        """Multiply each basis slice by its phase (any diagonal gate)."""
        k = len(qubits)
        view = np.moveaxis(
            self.data.reshape([2] * self.num_qubits),
            [self._axis(q) for q in reversed(qubits)],
            range(k),
        )
        for basis, phase in enumerate(diagonal):
            if phase != 1:
                # leading view axis 0 is the most significant operand bit
                index = tuple((basis >> (k - 1 - axis)) & 1 for axis in range(k))
                view[index] *= phase

    def apply_gate(self, gate: Gate) -> "Statevector":
        """Apply a :class:`Gate` (measure/reset/barrier are ignored)."""
        if gate.is_directive:
            return self
        if gate.is_diagonal:
            diagonal = gate_diagonal(gate.name, gate.params)
            if diagonal is not None:
                qubits = gate.qubits
                if any(q >= self.num_qubits or q < 0 for q in qubits):
                    raise QPilotError(
                        f"qubits {qubits} out of range for {self.num_qubits}-qubit state"
                    )
                self._apply_diagonal(diagonal, qubits)
                return self
        # the cached matrix uses qubits[0] as the least-significant operand
        matrix = gate_matrix_readonly(gate.name, gate.params)
        return self.apply_matrix(matrix, list(gate.qubits))

    def apply_circuit(self, circuit: QuantumCircuit) -> "Statevector":
        """Apply every gate of a circuit in order."""
        if circuit.num_qubits > self.num_qubits:
            raise QPilotError(
                f"circuit has {circuit.num_qubits} qubits, state has {self.num_qubits}"
            )
        for gate in circuit.gates:
            self.apply_gate(gate)
        return self

    def apply_gates(self, gates: Iterable[Gate]) -> "Statevector":
        """Apply an iterable of gates in order."""
        for gate in gates:
            self.apply_gate(gate)
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Probability of each computational basis state."""
        return np.abs(self.data) ** 2

    def probability_of(self, qubit: int, value: int) -> float:
        """Marginal probability that ``qubit`` reads ``value``."""
        probs = self.probabilities()
        indices = np.arange(probs.shape[0])
        mask = ((indices >> qubit) & 1) == value
        return float(probs[mask].sum())

    def expectation_z(self, qubit: int) -> float:
        """<Z> on one qubit."""
        return self.probability_of(qubit, 0) - self.probability_of(qubit, 1)

    def fidelity(self, other: "Statevector") -> float:
        """|<self|other>|^2."""
        if other.num_qubits != self.num_qubits:
            raise QPilotError("fidelity requires equal qubit counts")
        return float(abs(np.vdot(self.data, other.data)) ** 2)

    def equiv(self, other: "Statevector", *, atol: float = 1e-9) -> bool:
        """True if the states are equal up to a global phase."""
        if other.num_qubits != self.num_qubits:
            return False
        inner = np.vdot(self.data, other.data)
        return bool(abs(abs(inner) - 1.0) < atol)

    def partial_trace_is_pure(self, keep: Sequence[int], *, atol: float = 1e-9) -> bool:
        """Check that tracing out the complement of ``keep`` leaves a pure state."""
        rho = self.reduced_density_matrix(keep)
        purity = float(np.real(np.trace(rho @ rho)))
        return abs(purity - 1.0) < atol

    def reduced_density_matrix(self, keep: Sequence[int]) -> np.ndarray:
        """Reduced density matrix on the ``keep`` qubits (little-endian)."""
        keep = list(keep)
        n = self.num_qubits
        others = [q for q in range(n) if q not in keep]
        psi = self.data.reshape([2] * n)
        # order axes so that kept qubits come first (axis index = n-1-q)
        perm = [n - 1 - q for q in keep] + [n - 1 - q for q in others]
        psi = np.transpose(psi, perm)
        psi = psi.reshape(1 << len(keep), 1 << len(others))
        return psi @ psi.conj().T

    def extended(self, extra_qubits: int) -> "Statevector":
        """Return ``self ⊗ |0...0>`` with ``extra_qubits`` fresh qubits appended."""
        if extra_qubits == 0:
            return self.copy()
        new = Statevector(self.num_qubits + extra_qubits)
        new.data[:] = 0
        new.data[: self.data.shape[0]] = 0
        # the fresh qubits are the most significant ones and start in |0>,
        # so the amplitudes simply occupy the low-index block.
        new.data[: 1 << self.num_qubits] = self.data
        return new

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Statevector(num_qubits={self.num_qubits})"


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Dense unitary of a (small) circuit, little-endian convention."""
    n = circuit.num_qubits
    if n > 12:
        raise QPilotError(f"refusing to build a unitary on {n} qubits")
    dim = 1 << n
    unitary = np.zeros((dim, dim), dtype=complex)
    for column in range(dim):
        state = Statevector(n)
        state.data[:] = 0
        state.data[column] = 1.0
        state.apply_circuit(circuit)
        unitary[:, column] = state.data
    return unitary


def unitaries_equivalent(a: np.ndarray, b: np.ndarray, *, atol: float = 1e-8) -> bool:
    """True if two unitaries are equal up to a global phase."""
    if a.shape != b.shape:
        return False
    # find the first non-negligible entry of a to fix the phase
    flat_index = int(np.argmax(np.abs(a)))
    ref_a = a.reshape(-1)[flat_index]
    ref_b = b.reshape(-1)[flat_index]
    if abs(ref_b) < 1e-12:
        return False
    phase = ref_a / ref_b
    return bool(np.allclose(a, phase * b, atol=atol))


def circuits_equivalent(a: QuantumCircuit, b: QuantumCircuit, *, atol: float = 1e-8) -> bool:
    """True if two circuits implement the same unitary up to global phase."""
    if a.num_qubits != b.num_qubits:
        return False
    return unitaries_equivalent(circuit_unitary(a), circuit_unitary(b), atol=atol)

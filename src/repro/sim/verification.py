"""Semantic verification of flying-ancilla constructions and schedules.

Two levels of verification are provided:

1. :func:`verify_cz_routing_theorem` checks the paper's Section 2.2 result
   directly: routing an arbitrary set of CZ gates through fresh ancillas
   (transversal CNOT fan-out, CZs on ancilla copies, transversal CNOT
   recycle) acts on the data qubits exactly like applying the original CZs,
   and returns every ancilla to |0>.

2. :func:`expand_schedule_to_circuit` + :func:`verify_schedule_equivalence`
   flatten an FPQA schedule produced by the routers back into an ordinary
   gate sequence over data + ancilla qubits and check statevector
   equivalence against the original circuit on the data qubits.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.exceptions import VerificationError
from repro.sim.statevector import Statevector
from repro.utils.rng import ensure_rng


def apply_cz_set(state: Statevector, pairs: Iterable[tuple[int, int]]) -> Statevector:
    """Apply CZ on every pair (order irrelevant — CZs commute)."""
    for a, b in pairs:
        state.apply_gate(Gate("cz", (a, b)))
    return state


def ancilla_routed_cz_gates(
    num_data: int,
    pairs: Sequence[tuple[int, int]],
    *,
    variant: str = "first",
) -> list[Gate]:
    """Gate sequence for the Sec. 2.2 ancilla-routing construction.

    Data qubits are ``0..num_data-1``; ancilla ``i`` (a fresh |0> qubit) is
    qubit ``num_data + i`` and fan-outs data qubit ``i``.

    Parameters
    ----------
    num_data:
        Number of data qubits ``n``.
    pairs:
        The CZ pairs ``C`` (over data qubit indices).
    variant:
        Which of the four equivalent CZ placements to use for each pair:
        ``"first"`` applies CZ(ancilla_j, j'), ``"second"`` applies
        CZ(j, ancilla_j'), ``"both"`` applies CZ(ancilla_j, ancilla_j'),
        ``"none"`` applies the original CZ(j, j').
    """
    if variant not in {"first", "second", "both", "none"}:
        raise VerificationError(f"unknown ancilla variant {variant!r}")
    gates: list[Gate] = []
    # transversal fan-out
    for i in range(num_data):
        gates.append(Gate("cx", (i, num_data + i)))
    for j, jp in pairs:
        if variant == "first":
            operands = (num_data + j, jp)
        elif variant == "second":
            operands = (j, num_data + jp)
        elif variant == "both":
            operands = (num_data + j, num_data + jp)
        else:
            operands = (j, jp)
        gates.append(Gate("cz", operands))
    # transversal recycle
    for i in range(num_data):
        gates.append(Gate("cx", (i, num_data + i)))
    return gates


def verify_cz_routing_theorem(
    num_data: int,
    pairs: Sequence[tuple[int, int]],
    *,
    variant: str = "first",
    seed: int | np.random.Generator | None = None,
    atol: float = 1e-9,
) -> bool:
    """Check the flying-ancilla CZ-routing theorem on a random input state.

    Returns True when (i) the construction acts on the data qubits exactly
    like the direct CZ set, and (ii) every ancilla ends in |0>.
    """
    rng = ensure_rng(seed)
    data_state = Statevector.random(num_data, seed=rng)

    expected = data_state.copy()
    apply_cz_set(expected, pairs)

    full = data_state.extended(num_data)  # ancillas start in |0>
    full.apply_gates(ancilla_routed_cz_gates(num_data, pairs, variant=variant))

    # ancillas must all be back to |0>
    for ancilla in range(num_data, 2 * num_data):
        if abs(full.probability_of(ancilla, 1)) > atol:
            return False
    # the data-qubit block (ancillas = 0) must equal the expected state
    data_block = full.data[: 1 << num_data]
    overlap = np.vdot(expected.data, data_block)
    return bool(abs(abs(overlap) - 1.0) < atol)


def expand_schedule_to_circuit(schedule, num_data: int, num_ancilla: int) -> QuantumCircuit:
    """Flatten an :class:`~repro.core.schedule.FPQASchedule` into plain gates.

    Ancilla slot ``k`` used by the schedule is mapped to qubit
    ``num_data + k``.  The expansion covers creation CNOTs, Rydberg-stage
    2-qubit gates, recycle CNOTs, and 1-qubit stages.
    """
    circuit = QuantumCircuit(num_data + max(num_ancilla, 1), name="expanded_schedule")
    for stage in schedule.stages:
        for gate in stage.expanded_gates(num_data):
            circuit.append(gate)
    return circuit


def first_amplitude_mismatch(
    expected: np.ndarray, actual: np.ndarray, *, atol: float = 1e-7
) -> int | None:
    """Index of the first amplitude where two states differ, or None.

    The comparison is insensitive to a global phase: ``actual`` is rotated
    by the overlap phase (the least-squares optimal global-phase alignment)
    before the pointwise diff.  Returns the smallest basis-state index
    whose amplitudes differ by more than ``atol`` (in absolute value).
    """
    overlap = np.vdot(expected, actual)
    phase = overlap / abs(overlap) if abs(overlap) > atol else 1.0
    deviation = np.abs(actual - phase * expected)
    mismatched = np.flatnonzero(deviation > atol)
    if mismatched.size == 0:
        return None
    return int(mismatched[0])


def verify_schedule_equivalence(
    original: QuantumCircuit,
    schedule,
    *,
    num_ancilla: int | None = None,
    seed: int | np.random.Generator | None = None,
    atol: float = 1e-7,
) -> bool:
    """Check that an FPQA schedule implements the original circuit.

    The schedule is expanded to a gate list over data + ancilla qubits,
    applied to a random data state with ancillas in |0>, and compared to the
    original circuit's action on the data qubits.  All ancillas must return
    to |0> (disentangled) at the end.

    Returns True when the schedule is equivalent.  Any mismatch raises
    :class:`VerificationError` — an entangled ancilla, a data block that
    lost norm, or a unitary mismatch, in which case the error message (and
    its ``mismatch_index`` attribute) pins the first basis-state index
    whose amplitude disagrees with the original circuit's.
    """
    num_data = original.num_qubits
    ancillas = num_ancilla if num_ancilla is not None else schedule.max_ancillas_used()
    ancillas = max(int(ancillas), 1)
    rng = ensure_rng(seed)

    data_state = Statevector.random(num_data, seed=rng)
    expected = data_state.copy()
    expected.apply_circuit(original.without_directives())

    full = data_state.extended(ancillas)
    expanded = expand_schedule_to_circuit(schedule, num_data, ancillas)
    full.apply_circuit(expanded)

    for ancilla in range(num_data, num_data + ancillas):
        if full.probability_of(ancilla, 1) > atol:
            raise VerificationError(
                f"ancilla qubit {ancilla} not returned to |0> "
                f"(p1={full.probability_of(ancilla, 1):.3e})"
            )
    data_block = full.data[: 1 << num_data]
    norm = np.linalg.norm(data_block)
    if norm < 1 - 1e-6:
        raise VerificationError(f"data block lost norm: {norm}")
    overlap = abs(np.vdot(expected.data, data_block))
    if abs(overlap - 1.0) >= atol:
        index = first_amplitude_mismatch(expected.data, data_block, atol=atol)
        if index is None:  # pragma: no cover - overlap deviation implies a mismatch
            index = int(np.argmax(np.abs(data_block - expected.data)))
        error = VerificationError(
            f"schedule does not implement the original circuit "
            f"(overlap {overlap:.6f}): first mismatching amplitude at index {index} "
            f"(basis state |{index:0{num_data}b}>)"
        )
        error.mismatch_index = index
        raise error
    return True

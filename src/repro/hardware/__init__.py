"""Hardware models: fixed-coupling baseline devices and the FPQA machine."""

from repro.hardware.constraints import (
    GatePlacement,
    MonotonePinMap,
    assign_aod_crosses,
    check_no_unintended_interactions,
    greedy_legal_subset,
    pair_is_compatible,
    placement_for_gate,
    subset_is_legal,
    violating_pairs,
)
from repro.hardware.coupling import CouplingGraph
from repro.hardware.devices import (
    device_catalogue,
    grid_device,
    heavy_hex_device,
    ibm_washington_device,
    linear_device,
    ring_device,
    smallest_device_for,
    square_fixed_atom_array,
    triangular_device,
    triangular_fixed_atom_array,
)
from repro.hardware.fpqa import AODGrid, FPQAConfig, SLMArray

__all__ = [
    "CouplingGraph",
    "device_catalogue",
    "grid_device",
    "triangular_device",
    "linear_device",
    "ring_device",
    "heavy_hex_device",
    "ibm_washington_device",
    "square_fixed_atom_array",
    "triangular_fixed_atom_array",
    "smallest_device_for",
    "FPQAConfig",
    "SLMArray",
    "AODGrid",
    "GatePlacement",
    "MonotonePinMap",
    "placement_for_gate",
    "pair_is_compatible",
    "subset_is_legal",
    "violating_pairs",
    "greedy_legal_subset",
    "assign_aod_crosses",
    "check_no_unintended_interactions",
]

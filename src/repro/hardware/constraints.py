"""AOD movement legality checks.

The central hardware constraint exploited by every Q-Pilot router is that
AOD rows and columns move as rigid lines and may never cross each other.
Consequently, a set of 2-qubit gates can only be executed in the same
Rydberg stage if their ancillas can be placed on AOD crosses whose
row/column ordering is consistent with both the ancilla *creation*
positions and the gate *execution* positions.

The functions here implement the order-preservation test used by the
generic router (Alg. 1) and the per-stage interaction audit used by the
QAOA router (Alg. 3).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import RoutingError
from repro.hardware.fpqa import SLMArray


@dataclass(frozen=True)
class GatePlacement:
    """Grid coordinates of the two endpoints of a candidate 2-qubit gate.

    ``source`` is where the flying ancilla is created (next to the first
    operand); ``target`` is where it must fly to (next to the second
    operand).
    """

    gate_index: int
    source: tuple[int, int]
    target: tuple[int, int]

    @property
    def source_row(self) -> int:
        return self.source[0]

    @property
    def source_col(self) -> int:
        return self.source[1]

    @property
    def target_row(self) -> int:
        return self.target[0]

    @property
    def target_col(self) -> int:
        return self.target[1]


def placement_for_gate(array: SLMArray, gate_index: int, qubit_a: int, qubit_b: int) -> GatePlacement:
    """Build a :class:`GatePlacement` for a gate on two data qubits."""
    return GatePlacement(gate_index, array.position(qubit_a), array.position(qubit_b))


def _orders_compatible(a_first: int, b_first: int, a_second: int, b_second: int) -> bool:
    """True unless the relative order flips between creation and execution."""
    if a_first < b_first and a_second > b_second:
        return False
    if a_first > b_first and a_second < b_second:
        return False
    return True


def pair_is_compatible(a: GatePlacement, b: GatePlacement) -> bool:
    """Check the AOD order-preservation constraint for two candidate gates.

    Two gates can share a Rydberg stage when neither their row order nor
    their column order reverses between the ancilla creation sites and the
    execution sites.  (Equal coordinates are always fine: the two ancillas
    can share an AOD row/column or sit at fractionally offset positions.)
    """
    rows_ok = _orders_compatible(a.source_row, b.source_row, a.target_row, b.target_row)
    cols_ok = _orders_compatible(a.source_col, b.source_col, a.target_col, b.target_col)
    return rows_ok and cols_ok


def subset_is_legal(placements: Sequence[GatePlacement]) -> bool:
    """True if every pair of candidate gates is order-compatible."""
    for i in range(len(placements)):
        for j in range(i + 1, len(placements)):
            if not pair_is_compatible(placements[i], placements[j]):
                return False
    return True


def violating_pairs(placements: Sequence[GatePlacement]) -> list[tuple[int, int]]:
    """Return the (gate_index, gate_index) pairs that violate the order rule."""
    bad: list[tuple[int, int]] = []
    for i in range(len(placements)):
        for j in range(i + 1, len(placements)):
            if not pair_is_compatible(placements[i], placements[j]):
                bad.append((placements[i].gate_index, placements[j].gate_index))
    return bad


def assign_aod_crosses(
    placements: Sequence[GatePlacement], *, validate: bool = True
) -> dict[int, tuple[int, int]]:
    """Assign each legal candidate gate an AOD cross (row index, column index).

    The assignment follows the paper's convention: gates are ranked by the
    creation coordinates of their ancilla, and the k-th distinct row
    (column) in that ranking becomes AOD row (column) k.  Gates whose
    creation coordinates tie share the AOD line whenever their execution
    coordinates also tie, and are otherwise ranked by execution coordinates.

    ``validate=False`` skips the O(k²) legality re-check; only pass it when
    the placements provably came from :func:`greedy_legal_subset`.

    Raises
    ------
    RoutingError
        If ``validate`` is True and the placements are not a legal subset.
    """
    if validate and not subset_is_legal(placements):
        raise RoutingError("cannot assign AOD crosses to an illegal gate subset")

    def rank(keys: list[tuple[int, int]]) -> dict[tuple[int, int], int]:
        order = sorted(set(keys))
        return {key: index for index, key in enumerate(order)}

    row_keys = [(p.source_row, p.target_row) for p in placements]
    col_keys = [(p.source_col, p.target_col) for p in placements]
    row_rank = rank(row_keys)
    col_rank = rank(col_keys)
    return {
        p.gate_index: (row_rank[(p.source_row, p.target_row)], col_rank[(p.source_col, p.target_col)])
        for p in placements
    }


class _MonotoneOrderIndex:
    """Sorted index of accepted (source, target) coordinate pairs on one axis.

    A candidate pair ``(s, t)`` conflicts with an accepted pair ``(s', t')``
    exactly when the strict order reverses: ``s' < s`` with ``t' > t`` or
    ``s' > s`` with ``t' < t`` (ties on either coordinate are always
    compatible).  For a mutually compatible accepted set this means that,
    grouping accepted pairs by source coordinate, the target intervals of
    successive groups are totally ordered: ``max(targets of group s1) <=
    min(targets of group s2)`` whenever ``s1 < s2``.  A candidate therefore
    only has to be tested against its two *bisected neighbour* groups — the
    closest accepted source coordinate below and above — instead of every
    accepted pair, which turns the greedy scan from O(k²) into O(k log k).
    """

    __slots__ = ("_sources", "_min_target", "_max_target")

    def __init__(self) -> None:
        self._sources: list[int] = []  # sorted distinct source coordinates
        self._min_target: dict[int, int] = {}
        self._max_target: dict[int, int] = {}

    def compatible(self, source: int, target: int) -> bool:
        """True if ``(source, target)`` preserves order against every entry."""
        pos = bisect_left(self._sources, source)
        if pos > 0 and self._max_target[self._sources[pos - 1]] > target:
            return False
        upper = pos
        if upper < len(self._sources) and self._sources[upper] == source:
            upper += 1  # equal source coordinates never conflict
        if upper < len(self._sources) and self._min_target[self._sources[upper]] < target:
            return False
        return True

    def add(self, source: int, target: int) -> None:
        """Insert an accepted pair (must already have passed ``compatible``)."""
        if source in self._min_target:
            if target < self._min_target[source]:
                self._min_target[source] = target
            if target > self._max_target[source]:
                self._max_target[source] = target
        else:
            insort(self._sources, source)
            self._min_target[source] = target
            self._max_target[source] = target


class MonotonePinMap:
    """Strictly increasing source->target pin assignment with bisected checks.

    The QAOA stage planner pins AOD columns onto SLM columns; the hardware
    constraint is that the pinned mapping must be strictly increasing
    (AOD columns move as rigid lines and may neither cross nor merge).
    Pins are kept in parallel sorted lists so a candidate pin is validated
    against its two bisected neighbours in O(log k) instead of against
    every existing pin — the same idea as :class:`_MonotoneOrderIndex`,
    but for a strict bijective mapping.
    """

    __slots__ = ("_sources", "_targets", "_mapping")

    def __init__(self) -> None:
        self._sources: list[int] = []
        self._targets: list[int] = []
        self._mapping: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._sources)

    def __contains__(self, source: int) -> bool:
        return source in self._mapping

    def target_of(self, source: int) -> int:
        return self._mapping[source]

    def can_pin(self, source: int, target: int) -> bool:
        """True if adding ``source -> target`` keeps the map strictly monotone.

        Rejects re-pinning an existing source, re-using an existing target,
        and any pin that would reverse the order of the mapped lines.
        """
        pos = bisect_left(self._sources, source)
        if pos < len(self._sources) and self._sources[pos] == source:
            return False
        if pos > 0 and self._targets[pos - 1] >= target:
            return False
        if pos < len(self._sources) and self._targets[pos] <= target:
            return False
        return True

    def pin(self, source: int, target: int) -> None:
        """Add a pin; raises :class:`RoutingError` if it would cross."""
        if not self.can_pin(source, target):
            raise RoutingError(
                f"pin {source} -> {target} would cross or collide with an existing AOD column pin"
            )
        pos = bisect_left(self._sources, source)
        self._sources.insert(pos, source)
        self._targets.insert(pos, target)
        self._mapping[source] = target

    def items(self):
        """(source, target) pairs in increasing source order."""
        return zip(self._sources, self._targets)

    def as_dict(self) -> dict[int, int]:
        return dict(self._mapping)


def greedy_legal_subset(placements: Sequence[GatePlacement]) -> list[GatePlacement]:
    """Greedily grow a legal subset in the given candidate order (Alg. 1).

    Candidates are considered one at a time; a candidate is kept only if it
    is pairwise compatible with everything already accepted.  The invariant
    "a set is legal iff sorting by source coordinate yields non-decreasing
    target coordinates" lets each candidate be tested against its bisected
    neighbours in sorted row/col key structures (O(log k)) instead of
    against every accepted gate, so the whole scan is O(k log k); the
    result is identical to the pairwise reference check
    (:func:`subset_is_legal` remains the oracle, see tests).
    """
    accepted: list[GatePlacement] = []
    rows = _MonotoneOrderIndex()
    cols = _MonotoneOrderIndex()
    for candidate in placements:
        if rows.compatible(candidate.source_row, candidate.target_row) and cols.compatible(
            candidate.source_col, candidate.target_col
        ):
            accepted.append(candidate)
            rows.add(candidate.source_row, candidate.target_row)
            cols.add(candidate.source_col, candidate.target_col)
    return accepted


def check_no_unintended_interactions(
    active_crosses: Iterable[tuple[float, float]],
    intended_sites: set[tuple[int, int]],
    array: SLMArray,
    *,
    tolerance: float = 0.45,
) -> bool:
    """Audit a stage: every AOD atom near an SLM site must be intended.

    ``active_crosses`` holds the physical (row, col) positions (in SLM grid
    units) of every live AOD atom during the Rydberg pulse.  An atom within
    ``tolerance`` grid units of an occupied SLM site interacts with it; the
    stage is legal only if that (row, col) site is listed in
    ``intended_sites``.
    """
    for row_pos, col_pos in active_crosses:
        nearest_row = round(row_pos)
        nearest_col = round(col_pos)
        if abs(row_pos - nearest_row) > tolerance or abs(col_pos - nearest_col) > tolerance:
            continue  # parked between sites: no interaction
        site_qubit = array.qubit_at(int(nearest_row), int(nearest_col))
        if site_qubit is None:
            continue  # empty SLM site
        if (int(nearest_row), int(nearest_col)) not in intended_sites:
            return False
    return True

"""Coupling graphs for fixed-connectivity quantum devices.

The baseline devices in the paper (IBM Washington, square and triangular
fixed-atom arrays) all expose a static coupling graph: 2-qubit gates may
only act on adjacent physical qubits, and the router must insert SWAPs for
everything else.  :class:`CouplingGraph` wraps the adjacency structure and
pre-computes all-pairs shortest-path distances, which both the SABRE router
and its heuristic cost function need.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import HardwareError


class CouplingGraph:
    """Undirected coupling graph over ``num_qubits`` physical qubits."""

    def __init__(self, num_qubits: int, edges: Iterable[tuple[int, int]], name: str = "device"):
        if num_qubits < 1:
            raise HardwareError("a device needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._adjacency: list[set[int]] = [set() for _ in range(self.num_qubits)]
        self._edges: set[tuple[int, int]] = set()
        for a, b in edges:
            self.add_edge(int(a), int(b))
        self._distance: np.ndarray | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(self, a: int, b: int) -> None:
        """Add an undirected edge (idempotent)."""
        if a == b:
            raise HardwareError(f"self-loop ({a}, {b}) is not a coupling edge")
        if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
            raise HardwareError(f"edge ({a}, {b}) out of range for {self.num_qubits} qubits")
        edge = (min(a, b), max(a, b))
        if edge in self._edges:
            return
        self._edges.add(edge)
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        self._distance = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def edges(self) -> tuple[tuple[int, int], ...]:
        """Sorted tuple of undirected edges (min, max)."""
        return tuple(sorted(self._edges))

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def neighbors(self, qubit: int) -> frozenset[int]:
        """Physical neighbours of a qubit."""
        return frozenset(self._adjacency[qubit])

    def degree(self, qubit: int) -> int:
        return len(self._adjacency[qubit])

    def are_adjacent(self, a: int, b: int) -> bool:
        """True if a CZ/CX can act directly on (a, b)."""
        return b in self._adjacency[a]

    def has_edge(self, a: int, b: int) -> bool:
        return self.are_adjacent(a, b)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.edges)

    def __contains__(self, edge: tuple[int, int]) -> bool:
        a, b = edge
        return self.are_adjacent(a, b)

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest path distance (hops); unreachable pairs get a large value."""
        if self._distance is None:
            n = self.num_qubits
            dist = np.full((n, n), n + 1, dtype=np.int32)
            for source in range(n):
                dist[source, source] = 0
                queue = deque([source])
                while queue:
                    node = queue.popleft()
                    for nbr in self._adjacency[node]:
                        if dist[source, nbr] > dist[source, node] + 1:
                            dist[source, nbr] = dist[source, node] + 1
                            queue.append(nbr)
            self._distance = dist
        return self._distance

    def distance(self, a: int, b: int) -> int:
        """Shortest-path hop count between two physical qubits."""
        return int(self.distance_matrix()[a, b])

    def shortest_path(self, a: int, b: int) -> list[int]:
        """One shortest path from ``a`` to ``b`` (inclusive)."""
        if a == b:
            return [a]
        prev: dict[int, int] = {a: a}
        queue = deque([a])
        while queue:
            node = queue.popleft()
            for nbr in sorted(self._adjacency[node]):
                if nbr not in prev:
                    prev[nbr] = node
                    if nbr == b:
                        queue.clear()
                        break
                    queue.append(nbr)
        if b not in prev:
            raise HardwareError(f"qubits {a} and {b} are not connected")
        path = [b]
        while path[-1] != a:
            path.append(prev[path[-1]])
        return list(reversed(path))

    def is_connected(self) -> bool:
        """True if every qubit can reach every other qubit."""
        dist = self.distance_matrix()
        return bool((dist <= self.num_qubits).all())

    def average_degree(self) -> float:
        return 2.0 * self.num_edges / self.num_qubits

    def subgraph(self, qubits: Sequence[int]) -> "CouplingGraph":
        """Induced subgraph on a subset of qubits, relabelled to 0..k-1."""
        index = {q: i for i, q in enumerate(qubits)}
        edges = [
            (index[a], index[b])
            for a, b in self._edges
            if a in index and b in index
        ]
        return CouplingGraph(len(qubits), edges, name=f"{self.name}_sub{len(qubits)}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CouplingGraph(name={self.name!r}, qubits={self.num_qubits}, edges={self.num_edges})"

"""Baseline device models.

The paper compares Q-Pilot against three fixed-connectivity devices:

* the 127-qubit IBM Washington machine (heavy-hexagon coupling graph),
* a 16x16 square lattice of fixed neutral atoms (4 nearest neighbours), and
* a 16x16 triangular lattice of fixed neutral atoms (6 nearest neighbours).

These generators produce the corresponding :class:`CouplingGraph` objects.
The heavy-hex generator follows IBM's published Eagle r1 layout scheme
(rows of 15 qubits joined by 4 bridge qubits every other column).
"""

from __future__ import annotations

from repro.exceptions import HardwareError
from repro.hardware.coupling import CouplingGraph


def linear_device(num_qubits: int) -> CouplingGraph:
    """A 1-D chain of qubits (useful for tests and small examples)."""
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    return CouplingGraph(num_qubits, edges, name=f"line_{num_qubits}")


def ring_device(num_qubits: int) -> CouplingGraph:
    """A ring of qubits."""
    if num_qubits < 3:
        raise HardwareError("a ring needs at least 3 qubits")
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return CouplingGraph(num_qubits, edges, name=f"ring_{num_qubits}")


def grid_device(rows: int, cols: int, *, name: str | None = None) -> CouplingGraph:
    """Square-lattice device: each atom couples to its 4 nearest neighbours."""
    if rows < 1 or cols < 1:
        raise HardwareError("grid dimensions must be positive")
    num_qubits = rows * cols
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return CouplingGraph(num_qubits, edges, name=name or f"square_{rows}x{cols}")


def triangular_device(rows: int, cols: int, *, name: str | None = None) -> CouplingGraph:
    """Triangular-lattice device: square lattice plus one diagonal per cell.

    Interior atoms couple to 6 neighbours (up, down, left, right and the two
    diagonals of one orientation), matching the paper's description of the
    triangular fixed-atom array.
    """
    if rows < 1 or cols < 1:
        raise HardwareError("grid dimensions must be positive")
    num_qubits = rows * cols
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
            if r + 1 < rows and c + 1 < cols:
                edges.append((q, q + cols + 1))
    return CouplingGraph(num_qubits, edges, name=name or f"triangular_{rows}x{cols}")


def square_fixed_atom_array(size: int = 16) -> CouplingGraph:
    """The paper's 16x16 square fixed-atom-array baseline."""
    return grid_device(size, size, name=f"faa_square_{size}x{size}")


def triangular_fixed_atom_array(size: int = 16) -> CouplingGraph:
    """The paper's 16x16 triangular fixed-atom-array baseline."""
    return triangular_device(size, size, name=f"faa_triangular_{size}x{size}")


def heavy_hex_device(distance: int = 7, *, name: str = "ibm_washington") -> CouplingGraph:
    """Heavy-hexagon coupling graph in the style of IBM's Eagle processors.

    The layout alternates full rows of qubits with sparse rows of bridge
    qubits.  ``distance=7`` yields the 127-qubit IBM Washington topology:
    7 rows of 15 (with the first and last rows shortened to 14) plus 6 rows
    of 4 bridge qubits.

    Returns
    -------
    CouplingGraph
        A connected graph with max degree 3 (heavy-hex signature).
    """
    if distance < 2:
        raise HardwareError("heavy-hex distance must be >= 2")
    row_length = 2 * distance + 1  # 15 for distance 7
    num_rows = distance  # 7 full rows
    qubit_index = 0
    row_qubits: list[list[int]] = []
    bridge_rows: list[dict[int, int]] = []
    edges: list[tuple[int, int]] = []

    # Full rows.  IBM's 127-qubit chip drops one qubit at the end of the
    # first row and one at the start of the last row.
    for r in range(num_rows):
        if r == 0:
            length = row_length - 1
            offset = 0
        elif r == num_rows - 1:
            length = row_length - 1
            offset = 1
        else:
            length = row_length
            offset = 0
        qubits = [qubit_index + i for i in range(length)]
        qubit_index += length
        row_qubits.append(qubits)
        for a, b in zip(qubits[:-1], qubits[1:]):
            edges.append((a, b))
        # remember column offset for bridge alignment (-1 marks a missing site)
        row_qubits[-1] = [
            qubits[i - offset] if offset <= i < offset + length else -1
            for i in range(row_length)
        ]

    # Bridge rows: one bridge qubit every 4 columns, alternating phase.
    for r in range(num_rows - 1):
        phase = 0 if r % 2 == 0 else 2
        bridges: dict[int, int] = {}
        for col in range(phase, row_length, 4):
            top = row_qubits[r][col]
            bottom = row_qubits[r + 1][col]
            if top < 0 or bottom < 0:
                continue
            bridge = qubit_index
            qubit_index += 1
            bridges[col] = bridge
            edges.append((top, bridge))
            edges.append((bridge, bottom))
        bridge_rows.append(bridges)

    graph = CouplingGraph(qubit_index, edges, name=name)
    return graph


def ibm_washington_device() -> CouplingGraph:
    """The 127-qubit heavy-hex device used as the superconducting baseline."""
    return heavy_hex_device(7, name="ibm_washington")


def device_catalogue() -> dict[str, CouplingGraph]:
    """All baseline devices used in the paper's evaluation, by name."""
    return {
        "superconducting": ibm_washington_device(),
        "faa_square": square_fixed_atom_array(16),
        "faa_triangular": triangular_fixed_atom_array(16),
    }


def smallest_device_for(num_qubits: int, kind: str) -> CouplingGraph:
    """Return a baseline device of the requested kind large enough for a circuit.

    The paper always uses the full-size devices (127-qubit heavy-hex,
    16x16 lattices); this helper additionally supports generating larger
    lattices when a circuit needs more qubits than the stock devices offer
    (e.g. the 500-2000 qubit scalability study).
    """
    if kind == "superconducting":
        device = ibm_washington_device()
        if num_qubits > device.num_qubits:
            raise HardwareError(
                f"circuit needs {num_qubits} qubits, IBM Washington has {device.num_qubits}"
            )
        return device
    if kind in {"faa_square", "square"}:
        size = 16
        while size * size < num_qubits:
            size += 1
        return square_fixed_atom_array(size)
    if kind in {"faa_triangular", "triangular"}:
        size = 16
        while size * size < num_qubits:
            size += 1
        return triangular_fixed_atom_array(size)
    raise HardwareError(f"unknown device kind {kind!r}")

"""Benchmark workload generators (random circuits, Pauli strings, graphs, molecules)."""

from repro.workloads.graphs import (
    complete_graph_edges,
    graph_degree_histogram,
    qaoa_benchmark_suite,
    random_graph_edges,
    regular_graph_edges,
    ring_graph_edges,
)
from repro.workloads.qec import (
    Stabilizer,
    qec_workload_summary,
    repetition_code_stabilizers,
    stabilizers_commute,
    surface_code_stabilizers,
    surface_code_syndrome_circuit,
    syndrome_extraction_circuit,
)
from repro.workloads.molecules import (
    MOLECULES,
    MoleculeSpec,
    molecule_catalogue,
    molecule_pauli_strings,
    molecule_summary,
)
from repro.workloads.random_workload import (
    PAPER_GATE_MULTIPLES,
    PAPER_NUM_PAULI_STRINGS,
    PAPER_PAULI_PROBABILITIES,
    PAPER_QUBIT_SIZES,
    QSimSpec,
    RandomCircuitSpec,
    qsim_workload,
    random_circuit_workload,
    scaled_qsim_suite,
    scaled_random_circuit_suite,
)

__all__ = [
    "Stabilizer",
    "repetition_code_stabilizers",
    "surface_code_stabilizers",
    "stabilizers_commute",
    "syndrome_extraction_circuit",
    "surface_code_syndrome_circuit",
    "qec_workload_summary",
    "random_graph_edges",
    "regular_graph_edges",
    "ring_graph_edges",
    "complete_graph_edges",
    "graph_degree_histogram",
    "qaoa_benchmark_suite",
    "MOLECULES",
    "MoleculeSpec",
    "molecule_pauli_strings",
    "molecule_catalogue",
    "molecule_summary",
    "PAPER_QUBIT_SIZES",
    "PAPER_GATE_MULTIPLES",
    "PAPER_PAULI_PROBABILITIES",
    "PAPER_NUM_PAULI_STRINGS",
    "RandomCircuitSpec",
    "QSimSpec",
    "random_circuit_workload",
    "qsim_workload",
    "scaled_qsim_suite",
    "scaled_random_circuit_suite",
]

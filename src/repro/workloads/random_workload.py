"""Random-workload generators matching the paper's evaluation methodology.

Three workload families are used throughout the evaluation:

* random circuits with a fixed 2-qubit-gate budget (Fig. 11),
* quantum-simulation workloads of 100 random Pauli strings with per-qubit
  Pauli probability p (Fig. 12), and
* QAOA graphs (Fig. 13, generated in :mod:`repro.workloads.graphs`).

This module wraps the circuit-level generators with the exact parameter
grids the paper reports so benchmarks and examples stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.pauli import PauliString, random_pauli_strings
from repro.circuit.random_circuits import random_cx_circuit
from repro.exceptions import WorkloadError
from repro.utils.rng import ensure_rng

#: Qubit counts used across the paper's figures.
PAPER_QUBIT_SIZES: tuple[int, ...] = (5, 10, 20, 50, 100)
#: 2-qubit gate multiples of the random-circuit study.
PAPER_GATE_MULTIPLES: tuple[int, ...] = (2, 5, 10, 20, 50)
#: Pauli probabilities of the quantum-simulation study.
PAPER_PAULI_PROBABILITIES: tuple[float, ...] = (0.1, 0.2, 0.3, 0.5)
#: Number of Pauli strings per quantum-simulation workload.
PAPER_NUM_PAULI_STRINGS: int = 100


@dataclass(frozen=True)
class RandomCircuitSpec:
    """Specification of one random-circuit workload point."""

    num_qubits: int
    gate_multiple: int
    seed: int = 2024

    @property
    def num_two_qubit_gates(self) -> int:
        return self.num_qubits * self.gate_multiple

    def build(self) -> QuantumCircuit:
        return random_cx_circuit(self.num_qubits, self.num_two_qubit_gates, seed=self.seed)


@dataclass(frozen=True)
class QSimSpec:
    """Specification of one quantum-simulation workload point."""

    num_qubits: int
    pauli_probability: float
    num_strings: int = PAPER_NUM_PAULI_STRINGS
    seed: int = 2024

    def build(self) -> list[PauliString]:
        return random_pauli_strings(
            self.num_qubits, self.num_strings, self.pauli_probability, seed=self.seed
        )


def random_circuit_workload(
    num_qubits: int, gate_multiple: int, *, seed: int | np.random.Generator | None = 2024
) -> QuantumCircuit:
    """Random circuit with ``gate_multiple * num_qubits`` CX gates."""
    if gate_multiple < 1:
        raise WorkloadError("gate_multiple must be >= 1")
    return random_cx_circuit(num_qubits, gate_multiple * num_qubits, seed=seed)


def qsim_workload(
    num_qubits: int,
    pauli_probability: float,
    *,
    num_strings: int = PAPER_NUM_PAULI_STRINGS,
    seed: int | np.random.Generator | None = 2024,
) -> list[PauliString]:
    """Quantum-simulation workload: random Pauli strings with probability p."""
    return random_pauli_strings(num_qubits, num_strings, pauli_probability, seed=seed)


def fig14_workload_specs(num_qubits: int, *, num_pauli_strings: int = 20) -> list:
    """The Fig. 14 DSE grid's three workload families as compile-farm specs.

    One declarative, picklable :class:`~repro.core.farm.WorkloadSpec` per
    family (random circuit at 10× gates, p=0.3 quantum simulation, p=0.3
    QAOA graph), with the fixed seeds the benchmark suite pins.  Shared by
    ``benchmarks/bench_fig14_array_width.py``,
    ``benchmarks/bench_compile_speed.py`` (the ``headline_dse_fig14_s``
    field) and the DSE perf smoke test, so all three always measure the
    same grid.
    """
    from repro.core.farm import WorkloadSpec

    return [
        WorkloadSpec.random_circuit(num_qubits, 10, seed=31, name="random"),
        WorkloadSpec.qsim(
            num_qubits, 0.3, num_strings=num_pauli_strings, seed=32, name="qsim"
        ),
        WorkloadSpec.qaoa_random_graph(num_qubits, 0.3, seed=33, name="qaoa"),
    ]


def scaled_qsim_suite(
    sizes: tuple[int, ...] = PAPER_QUBIT_SIZES,
    probabilities: tuple[float, ...] = (0.1, 0.5),
    *,
    num_strings: int = PAPER_NUM_PAULI_STRINGS,
    seed: int = 2024,
) -> dict[tuple[int, float], list[PauliString]]:
    """The full quantum-simulation grid of Fig. 12."""
    rng = ensure_rng(seed)
    suite: dict[tuple[int, float], list[PauliString]] = {}
    for n in sizes:
        for p in probabilities:
            suite[(n, p)] = random_pauli_strings(n, num_strings, p, seed=rng)
    return suite


def scaled_random_circuit_suite(
    sizes: tuple[int, ...] = PAPER_QUBIT_SIZES,
    multiples: tuple[int, ...] = (2, 10),
    *,
    seed: int = 2024,
) -> dict[tuple[int, int], QuantumCircuit]:
    """The random-circuit grid of Fig. 11 (2x and 10x gate multiples)."""
    suite: dict[tuple[int, int], QuantumCircuit] = {}
    for i, n in enumerate(sizes):
        for j, multiple in enumerate(multiples):
            suite[(n, multiple)] = random_cx_circuit(n, multiple * n, seed=seed + 31 * i + j)
    return suite

"""Molecule Pauli-string workloads (Table 1).

The paper's Table 1 evaluates quantum-simulation compilation on the Pauli
strings of four molecular benchmarks: H2, LiH (UCCSD ansatz), H2O and BeH2.
The exact term lists come from a chemistry package that is not available
offline, so this module generates *deterministic synthetic* UCCSD-style
excitation operators with the standard qubit counts of the STO-3G
encodings:

=========  ========  ==================
molecule   qubits    Pauli terms (ours)
=========  ========  ==================
H2         4         ~15
LiH_UCCSD  12        ~600
H2O        14        ~1000
BeH2       14        ~1300
=========  ========  ==================

The generator reproduces the structural features that drive the Table 1
experiment: Jordan–Wigner-style strings whose support is a contiguous
ladder of Z operators between two excitation sites capped by X/Y operators,
which yields the long-range, high-weight interactions that make fixed
devices pay heavy SWAP costs.  Absolute term counts differ from the real
molecules; DESIGN.md records this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.pauli import PauliString
from repro.exceptions import WorkloadError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class MoleculeSpec:
    """Size parameters of one synthetic molecular benchmark."""

    name: str
    num_qubits: int
    num_single_excitations: int
    num_double_excitations: int
    seed: int


#: The four Table 1 molecules with qubit counts of their STO-3G/JW encodings.
MOLECULES: dict[str, MoleculeSpec] = {
    "H2": MoleculeSpec("H2", 4, 2, 1, seed=11),
    "LiH_UCCSD": MoleculeSpec("LiH_UCCSD", 12, 16, 72, seed=12),
    "H2O": MoleculeSpec("H2O", 14, 20, 120, seed=13),
    "BeH2": MoleculeSpec("BeH2", 14, 24, 160, seed=14),
}


def _jordan_wigner_single(num_qubits: int, i: int, a: int) -> list[PauliString]:
    """JW strings of a single excitation a†_a a_i + h.c. (two Pauli terms)."""
    lo, hi = sorted((i, a))
    strings = []
    for cap_i, cap_a in (("X", "Y"), ("Y", "X")):
        label = ["I"] * num_qubits
        label[lo] = cap_i
        label[hi] = cap_a
        for z in range(lo + 1, hi):
            label[z] = "Z"
        strings.append(PauliString("".join(label), coefficient=0.125))
    return strings


def _jordan_wigner_double(num_qubits: int, i: int, j: int, a: int, b: int) -> list[PauliString]:
    """JW strings of a double excitation (eight Pauli terms)."""
    occupied = sorted({i, j, a, b})
    if len(occupied) != 4:
        raise WorkloadError("double excitation needs four distinct orbitals")
    caps = [
        ("X", "X", "X", "Y"),
        ("X", "X", "Y", "X"),
        ("X", "Y", "X", "X"),
        ("Y", "X", "X", "X"),
        ("Y", "Y", "Y", "X"),
        ("Y", "Y", "X", "Y"),
        ("Y", "X", "Y", "Y"),
        ("X", "Y", "Y", "Y"),
    ]
    strings = []
    for cap in caps:
        label = ["I"] * num_qubits
        for orbital, pauli in zip(occupied, cap):
            label[orbital] = pauli
        # Z ladder between the two innermost pairs
        for z in range(occupied[0] + 1, occupied[1]):
            label[z] = "Z"
        for z in range(occupied[2] + 1, occupied[3]):
            label[z] = "Z"
        strings.append(PauliString("".join(label), coefficient=0.0625))
    return strings


def molecule_pauli_strings(name: str) -> list[PauliString]:
    """Deterministic synthetic Pauli strings for a Table 1 molecule."""
    if name not in MOLECULES:
        raise WorkloadError(f"unknown molecule {name!r}; choose from {sorted(MOLECULES)}")
    spec = MOLECULES[name]
    rng = ensure_rng(spec.seed)
    num_qubits = spec.num_qubits
    strings: list[PauliString] = []

    # single excitations between random occupied/virtual orbital pairs
    singles_added = 0
    attempts = 0
    seen_pairs: set[tuple[int, int]] = set()
    while singles_added < spec.num_single_excitations and attempts < 50 * spec.num_single_excitations:
        attempts += 1
        i, a = sorted(rng.choice(num_qubits, size=2, replace=False).tolist())
        if (i, a) in seen_pairs:
            continue
        seen_pairs.add((i, a))
        strings.extend(_jordan_wigner_single(num_qubits, int(i), int(a)))
        singles_added += 1

    # double excitations between random quadruples
    doubles_added = 0
    attempts = 0
    seen_quads: set[tuple[int, ...]] = set()
    while doubles_added < spec.num_double_excitations and attempts < 50 * max(1, spec.num_double_excitations):
        attempts += 1
        quad = tuple(sorted(rng.choice(num_qubits, size=4, replace=False).tolist()))
        if quad in seen_quads:
            continue
        seen_quads.add(quad)
        strings.extend(_jordan_wigner_double(num_qubits, *[int(x) for x in quad]))
        doubles_added += 1
    return strings


def molecule_catalogue() -> dict[str, list[PauliString]]:
    """All Table 1 molecule workloads keyed by name."""
    return {name: molecule_pauli_strings(name) for name in MOLECULES}


def molecule_summary(name: str) -> dict:
    """Workload characterisation (qubits, terms, weight statistics)."""
    strings = molecule_pauli_strings(name)
    weights = [s.weight for s in strings]
    return {
        "molecule": name,
        "qubits": MOLECULES[name].num_qubits,
        "terms": len(strings),
        "mean_weight": sum(weights) / len(weights),
        "max_weight": max(weights),
    }

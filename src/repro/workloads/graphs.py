"""Graph workload generators for QAOA benchmarks.

The paper evaluates QAOA on two graph families: Erdős–Rényi random graphs
with edge probability p in {0.1 ... 0.5} and random k-regular graphs
(k = 3, 4).  Both are generated here with reproducible seeds.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.exceptions import WorkloadError
from repro.utils.rng import ensure_rng


def random_graph_edges(
    num_vertices: int,
    edge_probability: float,
    *,
    seed: int | np.random.Generator | None = None,
    ensure_nonempty: bool = True,
) -> list[tuple[int, int]]:
    """Erdős–Rényi G(n, p) edge list, sorted canonically."""
    if num_vertices < 2:
        raise WorkloadError("need at least two vertices")
    if not 0.0 <= edge_probability <= 1.0:
        raise WorkloadError("edge probability must be in [0, 1]")
    rng = ensure_rng(seed)
    edges: list[tuple[int, int]] = []
    for a in range(num_vertices):
        for b in range(a + 1, num_vertices):
            if rng.random() < edge_probability:
                edges.append((a, b))
    if ensure_nonempty and not edges:
        a, b = sorted(rng.choice(num_vertices, size=2, replace=False).tolist())
        edges.append((int(a), int(b)))
    return edges


def regular_graph_edges(
    num_vertices: int,
    degree: int,
    *,
    seed: int | np.random.Generator | None = None,
    max_attempts: int = 50,
) -> list[tuple[int, int]]:
    """Random d-regular graph edge list (3-/4-regular in the paper).

    ``num_vertices * degree`` must be even.  Uses networkx's configuration
    model sampler with rejection until a simple connected graph is found.
    """
    if degree < 1 or degree >= num_vertices:
        raise WorkloadError("degree must satisfy 1 <= degree < num_vertices")
    if (num_vertices * degree) % 2 != 0:
        raise WorkloadError("num_vertices * degree must be even for a regular graph")
    rng = ensure_rng(seed)
    for _ in range(max_attempts):
        graph_seed = int(rng.integers(0, 2**31 - 1))
        graph = nx.random_regular_graph(degree, num_vertices, seed=graph_seed)
        if nx.is_connected(graph):
            return sorted((min(a, b), max(a, b)) for a, b in graph.edges())
    raise WorkloadError(
        f"failed to sample a connected {degree}-regular graph on {num_vertices} vertices"
    )


def ring_graph_edges(num_vertices: int) -> list[tuple[int, int]]:
    """Cycle graph (useful as a deterministic small QAOA instance)."""
    if num_vertices < 3:
        raise WorkloadError("a ring needs at least 3 vertices")
    return sorted(
        (min(i, (i + 1) % num_vertices), max(i, (i + 1) % num_vertices))
        for i in range(num_vertices)
    )


def complete_graph_edges(num_vertices: int) -> list[tuple[int, int]]:
    """All-to-all graph (stress test for the QAOA router)."""
    if num_vertices < 2:
        raise WorkloadError("need at least two vertices")
    return [(a, b) for a in range(num_vertices) for b in range(a + 1, num_vertices)]


def graph_degree_histogram(num_vertices: int, edges: list[tuple[int, int]]) -> dict[int, int]:
    """Histogram of vertex degrees (workload characterisation helper)."""
    degrees = {v: 0 for v in range(num_vertices)}
    for a, b in edges:
        degrees[a] += 1
        degrees[b] += 1
    histogram: dict[int, int] = {}
    for degree in degrees.values():
        histogram[degree] = histogram.get(degree, 0) + 1
    return dict(sorted(histogram.items()))


def qaoa_benchmark_suite(
    sizes: tuple[int, ...] = (6, 10, 20, 50, 100),
    *,
    edge_probability: float = 0.3,
    regular_degrees: tuple[int, ...] = (3, 4),
    seed: int = 7,
) -> dict[str, list[tuple[int, int]]]:
    """The QAOA benchmark grid of Fig. 13 / Table 2.

    Returns a dict keyed by ``"er_p{p}_{n}q"`` and ``"{k}reg_{n}q"``.
    """
    rng = ensure_rng(seed)
    suite: dict[str, list[tuple[int, int]]] = {}
    for n in sizes:
        suite[f"er_p{edge_probability}_{n}q"] = random_graph_edges(
            n, edge_probability, seed=rng
        )
        for degree in regular_degrees:
            if (n * degree) % 2 == 0 and degree < n:
                suite[f"{degree}reg_{n}q"] = regular_graph_edges(n, degree, seed=rng)
    return suite

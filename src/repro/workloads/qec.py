"""Quantum-error-correction workloads (the paper's future-work direction).

The paper's outlook names syndrome-extraction circuits for QEC codes as a
natural next target for FPQA compilation: stabilizer measurements are
highly parallel, repeat every round, and involve long-range ancilla/data
interactions — exactly the structure flying ancillas serve well.  This
module provides the workload side of that study:

* :func:`repetition_code_stabilizers` and :func:`surface_code_stabilizers`
  build the stabilizer lists of the two standard benchmark codes (the
  distance-d rotated surface code has ``d^2`` data qubits and ``d^2 - 1``
  stabilizers);
* :func:`syndrome_extraction_circuit` lowers a stabilizer list to the usual
  ancilla-per-stabilizer measurement circuit (H + CNOT fan-in + H +
  measure), which the generic Q-Pilot router can compile directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import WorkloadError


@dataclass(frozen=True)
class Stabilizer:
    """One stabilizer generator: a Pauli type acting on a set of data qubits."""

    pauli: str  # "X" or "Z"
    data_qubits: tuple[int, ...]

    def __post_init__(self) -> None:
        pauli = self.pauli.upper()
        if pauli not in {"X", "Z"}:
            raise WorkloadError(f"stabilizer type must be X or Z, got {self.pauli!r}")
        object.__setattr__(self, "pauli", pauli)
        qubits = tuple(int(q) for q in self.data_qubits)
        if len(set(qubits)) != len(qubits) or not qubits:
            raise WorkloadError(f"invalid stabilizer support {self.data_qubits!r}")
        object.__setattr__(self, "data_qubits", qubits)

    @property
    def weight(self) -> int:
        return len(self.data_qubits)


def repetition_code_stabilizers(num_data: int) -> list[Stabilizer]:
    """Z-type parity checks of the length-``num_data`` repetition code."""
    if num_data < 2:
        raise WorkloadError("a repetition code needs at least 2 data qubits")
    return [Stabilizer("Z", (i, i + 1)) for i in range(num_data - 1)]


def surface_code_stabilizers(distance: int) -> list[Stabilizer]:
    """Stabilizers of the distance-``d`` rotated surface code.

    Data qubits live on a ``d x d`` grid (qubit ``r*d + c``).  Plaquette
    ancila sites live on the dual ``(d+1) x (d+1)`` grid; bulk plaquettes are
    weight-4 and alternate X/Z in a checkerboard, and weight-2 boundary
    plaquettes appear on alternating positions of each boundary (X on the
    top/bottom rows, Z on the left/right columns), giving the standard
    ``d^2 - 1`` generators.
    """
    if distance < 2:
        raise WorkloadError("surface code distance must be >= 2")
    d = distance

    def data_index(row: int, col: int) -> int | None:
        if 0 <= row < d and 0 <= col < d:
            return row * d + col
        return None

    stabilizers: list[Stabilizer] = []
    for r in range(d + 1):
        for c in range(d + 1):
            covered = [
                q
                for q in (
                    data_index(r - 1, c - 1),
                    data_index(r - 1, c),
                    data_index(r, c - 1),
                    data_index(r, c),
                )
                if q is not None
            ]
            pauli = "Z" if (r + c) % 2 == 0 else "X"
            if len(covered) == 4:
                stabilizers.append(Stabilizer(pauli, tuple(sorted(covered))))
            elif len(covered) == 2:
                # boundary plaquettes: keep X checks on the top/bottom rows and
                # Z checks on the left/right columns (alternating positions)
                on_top_or_bottom = r == 0 or r == d
                if on_top_or_bottom and pauli == "X":
                    stabilizers.append(Stabilizer("X", tuple(sorted(covered))))
                elif not on_top_or_bottom and pauli == "Z":
                    stabilizers.append(Stabilizer("Z", tuple(sorted(covered))))
    expected = d * d - 1
    if len(stabilizers) != expected:  # pragma: no cover - sanity guard
        raise WorkloadError(
            f"rotated surface code construction produced {len(stabilizers)} "
            f"stabilizers, expected {expected}"
        )
    return stabilizers


def stabilizers_commute(stabilizers: Sequence[Stabilizer]) -> bool:
    """True if every pair of stabilizers commutes.

    An X-type and a Z-type stabilizer commute exactly when their supports
    overlap on an even number of qubits; same-type stabilizers always
    commute.
    """
    for i in range(len(stabilizers)):
        for j in range(i + 1, len(stabilizers)):
            a, b = stabilizers[i], stabilizers[j]
            if a.pauli == b.pauli:
                continue
            overlap = len(set(a.data_qubits) & set(b.data_qubits))
            if overlap % 2 == 1:
                return False
    return True


def syndrome_extraction_circuit(
    stabilizers: Iterable[Stabilizer],
    num_data: int,
    *,
    rounds: int = 1,
    measure: bool = True,
) -> QuantumCircuit:
    """Standard ancilla-per-stabilizer syndrome-extraction circuit.

    Ancilla ``k`` (qubit ``num_data + k``) measures stabilizer ``k``:
    Z checks fan data-qubit parity into the ancilla with CNOTs, X checks
    sandwich CNOTs from the ancilla between Hadamards.  With ``rounds > 1``
    the extraction repeats (ancillas are reset between rounds).
    """
    stabilizer_list = list(stabilizers)
    if not stabilizer_list:
        raise WorkloadError("need at least one stabilizer")
    if rounds < 1:
        raise WorkloadError("rounds must be >= 1")
    for stabilizer in stabilizer_list:
        if max(stabilizer.data_qubits) >= num_data:
            raise WorkloadError(
                f"stabilizer {stabilizer} references a qubit outside {num_data} data qubits"
            )
    total = num_data + len(stabilizer_list)
    circuit = QuantumCircuit(total, name=f"syndrome_{num_data}d_{len(stabilizer_list)}s_r{rounds}")
    for round_index in range(rounds):
        for k, stabilizer in enumerate(stabilizer_list):
            ancilla = num_data + k
            if round_index > 0:
                circuit.add("reset", [ancilla])
            if stabilizer.pauli == "X":
                circuit.h(ancilla)
                for data in stabilizer.data_qubits:
                    circuit.cx(ancilla, data)
                circuit.h(ancilla)
            else:
                for data in stabilizer.data_qubits:
                    circuit.cx(data, ancilla)
            if measure:
                circuit.measure(ancilla)
    return circuit


def surface_code_syndrome_circuit(distance: int, *, rounds: int = 1) -> QuantumCircuit:
    """Syndrome extraction circuit of the distance-``d`` rotated surface code."""
    stabilizers = surface_code_stabilizers(distance)
    return syndrome_extraction_circuit(stabilizers, distance * distance, rounds=rounds)


def qec_workload_summary(distance: int) -> dict:
    """Size summary of one surface-code syndrome-extraction workload."""
    stabilizers = surface_code_stabilizers(distance)
    circuit = surface_code_syndrome_circuit(distance)
    return {
        "distance": distance,
        "data_qubits": distance * distance,
        "stabilizers": len(stabilizers),
        "total_qubits": circuit.num_qubits,
        "2q_gates": circuit.num_two_qubit_gates(),
        "logical_depth": circuit.two_qubit_depth(),
    }

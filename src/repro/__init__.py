"""Q-Pilot: field programmable qubit array compilation with flying ancillas.

A reproduction of the DAC 2024 paper "Q-Pilot: Field Programmable Qubit
Array Compilation with Flying Ancillas" (Wang et al.), including every
substrate the evaluation depends on: a quantum-circuit IR, baseline
devices and a SABRE-style transpiler, the FPQA hardware model, the three
flying-ancilla routers (generic, quantum simulation, QAOA), a performance
evaluator with the paper's fidelity model, workload generators, and the
analysis utilities behind every table and figure.

Quick start::

    from repro import QPilotCompiler, random_cx_circuit

    circuit = random_cx_circuit(20, 40, seed=1)
    result = QPilotCompiler().compile_circuit(circuit)
    print(result.summary())
"""

from repro.circuit import (
    Gate,
    PauliString,
    QuantumCircuit,
    pauli_evolution_circuit,
    qaoa_maxcut_circuit,
    random_cx_circuit,
    random_pauli_strings,
    trotter_circuit,
)
from repro.core import (
    CompilationResult,
    FidelityModel,
    FPQASchedule,
    GenericRouter,
    PerformanceEvaluator,
    QAOARouter,
    QPilotCompiler,
    QSimRouter,
    route_circuit,
    route_pauli_strings,
    route_qaoa,
)
from repro.hardware import (
    CouplingGraph,
    FPQAConfig,
    SLMArray,
    device_catalogue,
    ibm_washington_device,
    square_fixed_atom_array,
    triangular_fixed_atom_array,
)
from repro.baselines import (
    BaselineResult,
    BaselineTranspiler,
    ExactStageSolver,
    IterativePeelingSolver,
    SabreRouter,
    best_baseline,
    compile_on_all_baselines,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # circuit IR and workload builders
    "Gate",
    "QuantumCircuit",
    "PauliString",
    "random_cx_circuit",
    "random_pauli_strings",
    "pauli_evolution_circuit",
    "trotter_circuit",
    "qaoa_maxcut_circuit",
    # core compiler
    "QPilotCompiler",
    "CompilationResult",
    "GenericRouter",
    "QSimRouter",
    "QAOARouter",
    "route_circuit",
    "route_pauli_strings",
    "route_qaoa",
    "FPQASchedule",
    "PerformanceEvaluator",
    "FidelityModel",
    # hardware
    "FPQAConfig",
    "SLMArray",
    "CouplingGraph",
    "device_catalogue",
    "ibm_washington_device",
    "square_fixed_atom_array",
    "triangular_fixed_atom_array",
    # baselines
    "BaselineTranspiler",
    "BaselineResult",
    "SabreRouter",
    "compile_on_all_baselines",
    "best_baseline",
    "ExactStageSolver",
    "IterativePeelingSolver",
]

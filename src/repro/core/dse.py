"""Router-in-the-loop design-space exploration (Fig. 14).

The compiler supports exploring FPQA architecture parameters by compiling
the same workload against a family of candidate configurations and scoring
each with the fast performance evaluator.  The paper's study sweeps the
array *width* (number of SLM/AOD columns) over {8, 16, 32, 64, 128} and
reports the compiled circuit depth; the optimum width differs per workload,
exposing the trade-off between in-row and cross-row parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.compiler import CompilationResult, QPilotCompiler
from repro.exceptions import QPilotError
from repro.hardware.fpqa import FPQAConfig


@dataclass
class DesignPoint:
    """One candidate architecture and its compiled metrics."""

    width: int
    config: FPQAConfig
    result: CompilationResult

    @property
    def depth(self) -> int:
        return self.result.depth

    @property
    def error_rate(self) -> float:
        return self.result.evaluation.error_rate

    def summary(self) -> dict:
        data = self.result.summary()
        data["width"] = self.width
        return data


@dataclass
class SweepResult:
    """Result of sweeping the array width for one workload."""

    workload_name: str
    points: list[DesignPoint] = field(default_factory=list)

    def best(self, metric: str = "depth") -> DesignPoint:
        """Design point minimising the requested metric."""
        if not self.points:
            raise QPilotError("empty design-space sweep")
        if metric == "depth":
            return min(self.points, key=lambda p: p.depth)
        if metric == "error_rate":
            return min(self.points, key=lambda p: p.error_rate)
        raise QPilotError(f"unknown sweep metric {metric!r}")

    def as_series(self) -> list[tuple[int, int]]:
        """(width, depth) pairs in sweep order — the Fig. 14 curves."""
        return [(p.width, p.depth) for p in self.points]


WorkloadCompiler = Callable[[QPilotCompiler], CompilationResult]


def sweep_array_width(
    compile_fn: WorkloadCompiler,
    num_qubits: int,
    *,
    widths: Sequence[int] = (8, 16, 32, 64, 128),
    workload_name: str = "workload",
    base_config_kwargs: dict | None = None,
) -> SweepResult:
    """Compile one workload against FPQA arrays of different widths.

    Parameters
    ----------
    compile_fn:
        Callback receiving a :class:`QPilotCompiler` already configured for
        one candidate width and returning the compilation result.  This lets
        the same sweep drive any router.
    num_qubits:
        Number of data qubits; the row count of each candidate array is
        derived from it.
    widths:
        Candidate column counts (the paper sweeps 8..128).
    """
    base_kwargs = base_config_kwargs or {}
    result = SweepResult(workload_name=workload_name)
    for width in widths:
        config = FPQAConfig.with_width(num_qubits, int(width), **base_kwargs)
        compiler = QPilotCompiler(config)
        compilation = compile_fn(compiler)
        result.points.append(DesignPoint(width=int(width), config=config, result=compilation))
    return result


def architecture_search(
    compile_fn: WorkloadCompiler,
    num_qubits: int,
    *,
    widths: Sequence[int] = (8, 16, 32, 64, 128),
    metric: str = "depth",
    workload_name: str = "workload",
) -> DesignPoint:
    """Convenience wrapper: sweep the widths and return the best design point."""
    sweep = sweep_array_width(
        compile_fn, num_qubits, widths=widths, workload_name=workload_name
    )
    return sweep.best(metric)

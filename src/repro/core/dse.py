"""Router-in-the-loop design-space exploration (Fig. 14), farm-backed.

The compiler supports exploring FPQA architecture parameters by compiling
the same workload against a family of candidate configurations and scoring
each with the fast performance evaluator.  The paper's study sweeps the
array *width* (number of SLM/AOD columns) over {8, 16, 32, 64, 128} and
reports the compiled circuit depth; the optimum width differs per workload,
exposing the trade-off between in-row and cross-row parallelism.

Sweeps are batched through :mod:`repro.core.farm`: describe workloads as
picklable :class:`~repro.core.farm.WorkloadSpec` values and the grid of
``(workload, width, config axis, router options)`` cells fans out across a
process pool (``executor="process"``) or runs through the deterministic
serial oracle (``executor="reference"``).  Both executors produce
identical design points — the differential suite in ``tests/test_farm.py``
pins that.  The pre-farm closure API (``compile_fn(compiler)``) keeps
working: :func:`sweep_array_width` accepts either a closure (compiled
in-process, exactly the old semantics) or a :class:`WorkloadSpec`.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.core.compiler import CompilationResult, QPilotCompiler
from repro.core.farm import (
    CompileFarm,
    FarmJob,
    FarmJobError,
    FarmOptions,
    FarmPolicy,
    PointMetrics,
    WorkloadSpec,
)
from repro.exceptions import QPilotError
from repro.hardware.fpqa import FPQAConfig
from repro.utils.serialization import config_to_dict

_SWEEP_SCHEMA_VERSION = 1

#: Sweep-level keys that vary run-to-run or per-backend (wall clocks,
#: worker counts, executor choice) without changing the logical sweep, and
#: are stripped from canonical serialisations, mirroring
#: :data:`repro.utils.serialization.VOLATILE_METADATA_KEYS`.  The executor
#: oracle guarantees serial and parallel runs of the same grid are the
#: same logical sweep, so their canonical JSON must be byte-identical.
VOLATILE_SWEEP_META_KEYS = frozenset(
    {
        "wall_s",
        "max_workers",
        "executor",
        "requested_executor",
        # fault-tolerance counters: they describe how bumpy the road was,
        # not what was computed — a recovered fault-injected run must stay
        # canonically byte-identical to the fault-free reference run
        "degraded",
        "retries",
        "pool_respawns",
        "timeouts",
        "failed_jobs",
        "expired",
    }
)

#: Per-point sweep statuses (mirrors ``CompileFarm.job_reports``).
POINT_STATUSES = ("ok", "retried", "failed")

#: The paper's Fig. 14 width grid.
DEFAULT_WIDTHS: tuple[int, ...] = (8, 16, 32, 64, 128)


@dataclass
class DesignPoint:
    """One candidate architecture and its compiled metrics.

    Farm-produced points carry only :class:`PointMetrics` (schedules stay
    in the worker); closure-path points also keep the full
    :class:`CompilationResult` for backwards compatibility.

    ``status`` reports the fault-tolerance outcome of the point's compile:
    ``ok`` (first attempt succeeded), ``retried`` (succeeded after
    retries) or ``failed`` (retry budget exhausted — ``metrics`` is then
    ``None`` and ``error`` holds the :class:`~repro.core.farm.FarmJobError`
    record).  Failed points stay *in* the sweep so grids keep their shape,
    but are excluded from :meth:`SweepResult.best` and
    :meth:`SweepResult.as_series`.

    ``job`` is the archive → cache-warming hook: farm-produced points
    record the grid cell that produced them (``digest``, serialised
    ``workload`` spec and ``options``) so an archived sweep can be
    replayed into the schedule store
    (:meth:`repro.service.CompileService.warm_from`) under the exact
    digests live traffic will request.  Closure-path points have no farm
    job and leave it ``None``.
    """

    width: int
    config: FPQAConfig
    result: CompilationResult | None = None
    metrics: PointMetrics | None = None
    axes: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    error: dict[str, Any] | None = None
    job: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.status not in POINT_STATUSES:
            raise QPilotError(
                f"unknown design-point status {self.status!r}; "
                f"expected one of {POINT_STATUSES}"
            )
        if self.status == "failed":
            return  # no metrics to derive — the compile never succeeded
        if self.metrics is None:
            if self.result is None:
                raise QPilotError("DesignPoint needs a CompilationResult or PointMetrics")
            self.metrics = PointMetrics.from_result(self.result)

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    @property
    def depth(self) -> int:
        return self.metrics.depth

    @property
    def error_rate(self) -> float:
        return self.metrics.error_rate

    @property
    def compile_time_s(self) -> float | None:
        return self.metrics.compile_time_s

    @property
    def num_two_qubit_gates(self) -> int:
        return self.metrics.num_two_qubit_gates

    @property
    def sabre_num_swaps(self) -> int | None:
        return self.metrics.sabre_num_swaps

    @property
    def spans(self):
        """Worker-side trace records of this point's compile.

        Populated only when the sweep ran with
        ``FarmOptions(trace=True)``; rides on :class:`PointMetrics` like
        ``compile_time_s``, so it crosses the worker boundary with the
        job but never enters archives (``metrics.to_dict()`` excludes
        it).
        """
        return self.metrics.spans if self.metrics is not None else None

    def summary(self) -> dict:
        if self.failed:
            data = {
                "status": "failed",
                "error": (self.error or {}).get("error_type"),
            }
        else:
            data = (
                self.result.summary()
                if self.result is not None
                else {
                    "depth": self.depth,
                    "error_rate": round(self.error_rate, 6),
                    "2q_gates": self.num_two_qubit_gates,
                }
            )
        data["width"] = self.width
        data.update(self.axes)
        return data

    def to_dict(self, *, canonical: bool = False) -> dict[str, Any]:
        data = {
            "width": self.width,
            "axes": dict(self.axes),
            "config": config_to_dict(self.config),
            "metrics": self.metrics.to_dict() if self.metrics is not None else None,
            "status": self.status,
        }
        if self.job is not None:
            # deterministic (digest + canonical spec/options), so it is
            # kept in canonical mode: warming from a canonical archive
            # must work too
            data["job"] = dict(self.job)
        if self.error is not None:
            data["error"] = dict(self.error)
        if canonical:
            # recovery must be invisible in the canonical view: a point
            # that succeeded after retries is the same logical point as
            # one that succeeded first try, and failure records keep only
            # their deterministic fields (tracebacks/attempt counts vary
            # with executor interleaving and policy, not with the sweep)
            if data["status"] == "retried":
                data["status"] = "ok"
            if self.error is not None:
                data["error"] = {
                    key: self.error.get(key)
                    for key in ("error_type", "message", "fault_key")
                }
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DesignPoint":
        metrics = data.get("metrics")
        return cls(
            width=int(data["width"]),
            config=FPQAConfig(**data["config"]),
            metrics=PointMetrics.from_dict(metrics) if metrics is not None else None,
            axes=dict(data.get("axes", {})),
            status=data.get("status", "ok"),
            error=data.get("error"),
            job=data.get("job"),
        )


#: Metric extractors understood by :meth:`SweepResult.best`.
_METRICS: dict[str, Callable[[DesignPoint], float]] = {
    "depth": lambda p: p.depth,
    "error_rate": lambda p: p.error_rate,
    "compile_time": lambda p: p.compile_time_s,
}


@dataclass
class SweepResult:
    """Result of sweeping a design-space grid for one or more workloads."""

    workload_name: str
    points: list[DesignPoint] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def partial(self) -> bool:
        """True when any point failed — the sweep completed but has holes."""
        return any(point.failed for point in self.points)

    def failed_points(self) -> list[DesignPoint]:
        return [point for point in self.points if point.failed]

    def best(self, metric: str = "depth") -> DesignPoint:
        """Design point minimising ``metric``; ties go to the smallest width.

        Metrics: ``depth``, ``error_rate`` and ``compile_time``.  The
        smallest-width tie-break makes ``best`` deterministic and
        independent of sweep order (narrower arrays are the cheaper
        hardware, so they win a draw).  Failed points never compete: a
        partial sweep's optimum is the best *compiled* point.
        """
        candidates = [point for point in self.points if not point.failed]
        if not candidates:
            if self.points:
                raise QPilotError("every design point in the sweep failed")
            raise QPilotError("empty design-space sweep")
        extract = _METRICS.get(metric)
        if extract is None:
            raise QPilotError(
                f"unknown sweep metric {metric!r}; expected one of {sorted(_METRICS)}"
            )
        values = [extract(point) for point in candidates]
        if any(value is None for value in values):
            raise QPilotError(f"metric {metric!r} unavailable on some design points")
        return min(zip(values, candidates), key=lambda pair: (pair[0], pair[1].width))[1]

    def as_series(self) -> list[tuple[int, int]]:
        """(width, depth) pairs in sweep order — the Fig. 14 curves.

        Failed points have no depth and are skipped (the curve gets a
        hole, not a crash).
        """
        return [(p.width, p.depth) for p in self.points if not p.failed]

    def by_workload(self) -> dict[str, "SweepResult"]:
        """Split a multi-workload grid into one SweepResult per workload."""
        groups: dict[str, SweepResult] = {}
        for point in self.points:
            name = point.axes.get("workload", self.workload_name)
            groups.setdefault(name, SweepResult(name, meta=dict(self.meta))).points.append(point)
        return groups

    # -- serialisation (DSE trajectory archiving) -----------------------
    def to_dict(self, *, canonical: bool = False) -> dict[str, Any]:
        meta = {k: v for k, v in self.meta.items()}
        points = [point.to_dict(canonical=canonical) for point in self.points]
        if canonical:
            meta = {k: v for k, v in meta.items() if k not in VOLATILE_SWEEP_META_KEYS}
            for point in points:
                if point["metrics"] is not None:
                    point["metrics"]["compile_time_s"] = None
        return {
            "schema_version": _SWEEP_SCHEMA_VERSION,
            "workload_name": self.workload_name,
            "meta": meta,
            "points": points,
        }

    def to_json(self, *, indent: int | None = 2, canonical: bool = False) -> str:
        """JSON with canonical (sorted) key order, like the golden schedules.

        ``canonical=True`` additionally strips volatile wall-clock fields
        so that serialising the same logical sweep twice — or a
        round-trip of it — is byte-identical.
        """
        return json.dumps(self.to_dict(canonical=canonical), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SweepResult":
        if data.get("schema_version") != _SWEEP_SCHEMA_VERSION:
            raise QPilotError(
                f"unsupported sweep schema version {data.get('schema_version')!r}"
            )
        return cls(
            workload_name=data.get("workload_name", "sweep"),
            points=[DesignPoint.from_dict(p) for p in data.get("points", [])],
            meta=dict(data.get("meta", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        return cls.from_dict(json.loads(text))


WorkloadCompiler = Callable[[QPilotCompiler], CompilationResult]


def _width_config(num_qubits: int, width: int, base_kwargs: dict, axis_kwargs: dict) -> FPQAConfig:
    return FPQAConfig.with_width(num_qubits, int(width), **{**base_kwargs, **axis_kwargs})


def sweep_grid(
    workloads: WorkloadSpec | Sequence[WorkloadSpec],
    *,
    widths: Sequence[int] = DEFAULT_WIDTHS,
    base_config_kwargs: Mapping[str, Any] | None = None,
    config_axes: Mapping[str, Sequence[Any]] | None = None,
    option_sets: Sequence[FarmOptions] | None = None,
    executor: str = "reference",
    max_workers: int | None = None,
    policy: FarmPolicy | None = None,
    name: str = "grid",
    stream: bool = False,
) -> SweepResult | Iterator[DesignPoint]:
    """Batched multi-dimensional design-space sweep through the compile farm.

    Generalises :func:`sweep_array_width` to a full grid:
    ``workloads × widths × config_axes × option_sets``.  ``config_axes``
    maps :class:`FPQAConfig` field names to candidate values (Cartesian
    product, e.g. ``{"two_qubit_fidelity": (0.99, 0.995)}``);
    ``option_sets`` is the router axis — one :class:`FarmOptions` per
    router variant.  Workload-side axes (gate factor, Pauli probability,
    graph density) are expressed as multiple :class:`WorkloadSpec` entries.

    Every grid cell becomes one :class:`FarmJob`; duplicate cells are
    memoised and ``executor="process"`` fans the rest across worker
    processes (``"thread"`` across threads).  Points appear in
    deterministic grid order (workload-major) regardless of executor.

    With ``stream=True`` the function returns an *iterator* of
    :class:`DesignPoint` values instead of a :class:`SweepResult`,
    yielding each point as its compile finishes (completion order on
    pooled executors) — grids too large to hold in memory flow through
    one point at a time.  Collect into a sweep later with
    ``SweepResult(name, points=list(iterator))`` if it does fit.

    ``policy`` configures the farm's fault tolerance
    (:class:`~repro.core.farm.FarmPolicy`: retries, backoff, per-job
    timeout, pool respawns).  A point whose job exhausts its retry
    budget arrives with ``status="failed"`` and no metrics instead of
    aborting the sweep; check ``SweepResult.partial``.
    """
    specs = [workloads] if isinstance(workloads, WorkloadSpec) else list(workloads)
    if not specs:
        raise QPilotError("sweep_grid needs at least one workload")
    base_kwargs = dict(base_config_kwargs or {})
    axes = {key: list(values) for key, values in (config_axes or {}).items()}
    options = list(option_sets) if option_sets else [FarmOptions()]
    axis_names = list(axes)
    axis_combos = list(itertools.product(*axes.values())) if axes else [()]

    jobs: list[FarmJob] = []
    point_axes: list[dict[str, Any]] = []
    widths_list = [int(w) for w in widths]
    for spec, width, combo, opts in itertools.product(specs, widths_list, axis_combos, options):
        axis_kwargs = dict(zip(axis_names, combo))
        config = _width_config(spec.num_qubits, width, base_kwargs, axis_kwargs)
        jobs.append(FarmJob(workload=spec, config=config, options=opts))
        cell = {"workload": spec.name, **axis_kwargs}
        if len(options) > 1 or opts.label != "default":
            cell["options"] = opts.label
        point_axes.append(cell)

    farm = CompileFarm(executor, max_workers=max_workers, policy=policy)

    def to_point(index: int, result: Any) -> DesignPoint:
        job = jobs[index]
        report = farm.job_reports.get(index, {})
        # the archive → warm hook: enough to rebuild this exact FarmJob
        # (and hence its store digest) from the serialised sweep alone
        job_record = {
            "digest": job.digest(),
            "workload": job.workload.to_dict(),
            "options": job.options.to_dict(),
        }
        if isinstance(result, FarmJobError):
            return DesignPoint(
                width=job.config.slm_cols,
                config=job.config,
                metrics=None,
                axes=point_axes[index],
                status="failed",
                error=result.to_dict(),
                job=job_record,
            )
        return DesignPoint(
            width=job.config.slm_cols,
            config=job.config,
            metrics=result,
            axes=point_axes[index],
            status=report.get("status", "ok"),
            job=job_record,
        )

    if stream:

        def generate() -> Iterator[DesignPoint]:
            for index, result in farm.iter_results(jobs):
                yield to_point(index, result)

        return generate()
    results = farm.run(jobs)
    points = [to_point(index, result) for index, result in enumerate(results)]
    meta = {
        "widths": widths_list,
        "workloads": [spec.name for spec in specs],
        **farm.last_stats,
    }
    return SweepResult(workload_name=name, points=points, meta=meta)


def sweep_array_width(
    workload: WorkloadCompiler | WorkloadSpec,
    num_qubits: int | None = None,
    *,
    widths: Sequence[int] = DEFAULT_WIDTHS,
    workload_name: str | None = None,
    base_config_kwargs: dict | None = None,
    executor: str = "reference",
    max_workers: int | None = None,
) -> SweepResult:
    """Compile one workload against FPQA arrays of different widths.

    Parameters
    ----------
    workload:
        Either a :class:`WorkloadSpec` (batched through the compile farm;
        set ``executor="process"`` to parallelise) or, for backwards
        compatibility, a closure receiving a :class:`QPilotCompiler`
        already configured for one candidate width and returning the
        compilation result.  Closures cannot cross process boundaries, so
        they always compile serially in-process (the old semantics,
        including full ``CompilationResult`` objects on every point).
    num_qubits:
        Number of data qubits; the row count of each candidate array is
        derived from it.  Optional for specs (they know their size).
    widths:
        Candidate column counts (the paper sweeps 8..128).
    """
    if isinstance(workload, WorkloadSpec):
        if num_qubits is not None and num_qubits != workload.num_qubits:
            raise QPilotError(
                f"num_qubits={num_qubits} contradicts the workload spec's "
                f"{workload.num_qubits} qubits; specs carry their own size"
            )
        sweep = sweep_grid(
            workload,
            widths=widths,
            base_config_kwargs=base_config_kwargs,
            executor=executor,
            max_workers=max_workers,
            name=workload_name or workload.name,
        )
        for point in sweep.points:
            point.axes.pop("workload", None)
        return sweep

    if num_qubits is None:
        raise QPilotError("num_qubits is required with a closure-based workload")
    base_kwargs = base_config_kwargs or {}
    result = SweepResult(workload_name=workload_name or "workload")
    for width in widths:
        config = FPQAConfig.with_width(num_qubits, int(width), **base_kwargs)
        compiler = QPilotCompiler(config)
        compilation = workload(compiler)
        result.points.append(DesignPoint(width=int(width), config=config, result=compilation))
    return result


def architecture_search(
    workload: WorkloadCompiler | WorkloadSpec,
    num_qubits: int | None = None,
    *,
    widths: Sequence[int] = DEFAULT_WIDTHS,
    metric: str = "depth",
    workload_name: str | None = None,
    executor: str = "reference",
    max_workers: int | None = None,
) -> DesignPoint:
    """Convenience wrapper: sweep the widths and return the best design point."""
    sweep = sweep_array_width(
        workload,
        num_qubits,
        widths=widths,
        workload_name=workload_name,
        executor=executor,
        max_workers=max_workers,
    )
    return sweep.best(metric)

"""Customised router for quantum simulation circuits (Alg. 2).

For a Trotter step of a Hamiltonian given as Pauli strings, the dominant
structure is, per string, a parity "star": CNOTs between a *root* qubit and
every other qubit in the string's support, an Rz on the root, and the
mirrored CNOTs.  On the FPQA this is compiled with flying ancillas:

* the root qubit's state is fanned out to ancillas sitting on the AOD
  diagonal (the number of fresh copies per fan-out layer follows the
  paper's 1, 2, 4, 6, 8, ... geometric progression, giving O(sqrt(N))
  creation depth);
* CZ gates between ancilla copies and the string's other qubits replace
  the CNOT star (each CNOT targeting the root equals ``H · CZ · H`` on the
  root, and a CZ with the root equals a CZ with any Z-basis copy);
* the CZs are scheduled in parallel stages by repeatedly extracting the
  *longest path* of the directed compatibility graph in which qubit ``a``
  points at qubit ``b`` when ``b`` lies in ``a``'s lower-right quadrant —
  exactly the monotone chains an AOD diagonal can serve simultaneously;
* because an Rz on the root sits between the forward and the mirrored CZ
  block, the ancilla copies are recycled and re-created around it (copies
  of the root are only valid while the root's state is untouched).

Ancillas persist across the longest-path stages of one block, which is the
saving over the generic router the paper highlights.

The monotone-chain stage extraction (:class:`CompatibilityGraph`,
:func:`longest_path_stages`) lives in the shared
:mod:`repro.core.stage_planner` kernel and is re-exported here for
backwards compatibility.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Sequence

from repro.circuit.pauli import PauliString
from repro.core.movement import AtomMove, MovementStep
from repro.core.stage_planner import (
    CompatibilityGraph,
    longest_path_stages,
    reference_longest_path_stages,
)
from repro.core.schedule import (
    AncillaCreationStage,
    AncillaRecycleStage,
    FPQASchedule,
    MovementStage,
    OneQubitStage,
    RydbergStage,
    ScheduledGate,
    aod,
    slm,
)
from repro.exceptions import WorkloadError
from repro.hardware.fpqa import FPQAConfig, SLMArray

__all__ = [
    "CompatibilityGraph",
    "QSimRouter",
    "QSimRouterOptions",
    "estimated_string_depth",
    "fanout_depth",
    "fanout_layer_sizes",
    "longest_path_stages",
    "reference_longest_path_stages",
    "route_pauli_strings",
]


@dataclass
class QSimRouterOptions:
    """Knobs for the quantum-simulation router."""

    #: Include the Rz rotation and the mirrored CZ block (a full Trotter
    #: term).  When False only the forward parity block is compiled, which
    #: matches ablation experiments that study the routing in isolation.
    full_evolution: bool = True
    #: Fan-out geometric progression: fresh copies creatable per layer.
    fanout_progression: tuple[int, ...] = (1, 2, 4, 6, 8)
    #: Rotation angle used when a string carries no coefficient.
    default_theta: float = 0.5


def fanout_layer_sizes(num_copies: int, progression: Sequence[int] = (1, 2, 4, 6, 8)) -> list[int]:
    """Number of fresh ancilla copies created in each fan-out layer.

    Follows the paper's 1, 2, 4, 6, 8, ... progression (continuing with
    increments of 2) and stops once ``num_copies`` copies exist, trimming
    the final layer.  The length of the returned list is the fan-out depth,
    which grows as O(sqrt(num_copies)).
    """
    if num_copies < 0:
        raise WorkloadError("num_copies must be >= 0")
    sizes: list[int] = []
    created = 0
    index = 0
    while created < num_copies:
        if index < len(progression):
            step = progression[index]
        elif len(progression) > 1:
            # continue the paper's progression with increments of 2
            step = progression[-1] + 2 * (index - len(progression) + 1)
        else:
            # a single-entry progression repeats (e.g. a strictly serial fan-out)
            step = progression[-1]
        step = min(step, num_copies - created)
        sizes.append(step)
        created += step
        index += 1
    return sizes


def fanout_depth(num_copies: int, progression: Sequence[int] = (1, 2, 4, 6, 8)) -> int:
    """Number of parallel CNOT layers needed to create ``num_copies`` copies."""
    return len(fanout_layer_sizes(num_copies, progression))


class QSimRouter:
    """Flying-ancilla router specialised for Pauli-string evolution."""

    def __init__(self, config: FPQAConfig | None = None, options: QSimRouterOptions | None = None):
        self.config = config
        self.options = options or QSimRouterOptions()

    # ------------------------------------------------------------------
    def compile(self, strings: Sequence[PauliString] | PauliString, num_qubits: int | None = None) -> FPQASchedule:
        """Compile one Trotter step over the given Pauli strings."""
        start_time = time.perf_counter()
        if isinstance(strings, PauliString):
            strings = [strings]
        strings = [s for s in strings if not s.is_identity()]
        if not strings:
            raise WorkloadError("no non-identity Pauli strings to compile")
        width = num_qubits or strings[0].num_qubits
        for string in strings:
            if string.num_qubits != width:
                raise WorkloadError(
                    f"string {string.label} has {string.num_qubits} qubits, expected {width}"
                )
        config = self.config or FPQAConfig.square_for(width)
        if config.num_slm_sites < width:
            config = config.for_qubits(width)
        array = SLMArray(config, width)

        schedule = FPQASchedule(
            config=config,
            num_data_qubits=width,
            name=f"qpilot_qsim[{len(strings)}strings_{width}q]",
        )
        for string in strings:
            self._compile_string(string, array, schedule)

        schedule.metadata.update(
            {
                "router": "qsim",
                "compile_time_s": time.perf_counter() - start_time,
                "num_strings": len(strings),
            }
        )
        return schedule

    # ------------------------------------------------------------------
    def _compile_string(self, string: PauliString, array: SLMArray, schedule: FPQASchedule) -> None:
        support = list(string.support)
        root = support[0]
        targets = support[1:]
        theta = float(string.coefficient or self.options.default_theta)

        if not targets:
            # weight-1 string: the evolution is a single 1-qubit rotation
            gates = self._basis_change_gates(string, invert=False)
            gates.append(ScheduledGate("rz", (slm(root),), (theta,)))
            gates.extend(self._basis_change_gates(string, invert=True))
            schedule.append(OneQubitStage(gates=gates, label=f"{string.label}:rz"))
            return

        if len(targets) == 1:
            # weight-2 string: the evolution is a single diagonal ZZ rotation,
            # executed directly on one flying ancilla (Fig. 1c cost: 3 gates,
            # 3 layers) with no CNOT-star structure needed.
            self._compile_weight_two_string(string, root, targets[0], theta, array, schedule)
            return

        # local basis change into the Z basis, plus the H that turns the
        # CNOT star targeting the root into a CZ star
        pre_gates = self._basis_change_gates(string, invert=False)
        pre_gates.append(ScheduledGate("h", (slm(root),)))
        schedule.append(OneQubitStage(gates=pre_gates, label=f"{string.label}:basis"))

        stages = longest_path_stages(array, targets)
        slot_of = {qubit: slot for slot, qubit in enumerate(targets)}

        # forward CZ block
        self._emit_parity_block(string, root, targets, stages, slot_of, array, schedule, tag="fwd")

        # middle rotation on the root: H Rz H (the root leaves the Z basis,
        # so ancilla copies cannot survive across it)
        schedule.append(
            OneQubitStage(
                gates=[
                    ScheduledGate("h", (slm(root),)),
                    ScheduledGate("rz", (slm(root),), (theta,)),
                    ScheduledGate("h", (slm(root),)),
                ],
                label=f"{string.label}:rz",
            )
        )

        if self.options.full_evolution:
            # mirrored CZ block
            self._emit_parity_block(string, root, targets, stages, slot_of, array, schedule, tag="bwd")

        post_gates = [ScheduledGate("h", (slm(root),))]
        post_gates.extend(self._basis_change_gates(string, invert=True))
        schedule.append(OneQubitStage(gates=post_gates, label=f"{string.label}:unbasis"))

    def _compile_weight_two_string(
        self,
        string: PauliString,
        root: int,
        target: int,
        theta: float,
        array: SLMArray,
        schedule: FPQASchedule,
    ) -> None:
        """Weight-2 evolution: one flying ancilla carries the root to an RZZ."""
        label = string.label
        pre = self._basis_change_gates(string, invert=False)
        if pre:
            schedule.append(OneQubitStage(gates=pre, label=f"{label}:basis"))
        root_pos = tuple(float(x) for x in array.position(root))
        target_pos = tuple(float(x) for x in array.position(target))
        copies = [(slm(root), 0)]
        schedule.append(AncillaCreationStage(copies=copies, label=f"{label}:create"))
        schedule.append(
            MovementStage(
                step=MovementStep(moves=[AtomMove(0, root_pos, target_pos)]),
                label=f"{label}:move",
            )
        )
        schedule.append(
            RydbergStage(
                gates=[ScheduledGate("rzz", (aod(0), slm(target)), (theta,))],
                label=f"{label}:rzz",
            )
        )
        schedule.append(
            MovementStage(
                step=MovementStep(moves=[AtomMove(0, target_pos, root_pos)]),
                label=f"{label}:return",
            )
        )
        schedule.append(AncillaRecycleStage(copies=copies, label=f"{label}:recycle"))
        post = self._basis_change_gates(string, invert=True)
        if post:
            schedule.append(OneQubitStage(gates=post, label=f"{label}:unbasis"))

    def _emit_parity_block(
        self,
        string: PauliString,
        root: int,
        targets: list[int],
        stages: list[list[int]],
        slot_of: dict[int, int],
        array: SLMArray,
        schedule: FPQASchedule,
        *,
        tag: str,
    ) -> None:
        """One ancilla-routed block implementing ``prod_t CZ(t, root)``."""
        label = f"{string.label}:{tag}"
        self._emit_fanout(root, targets, slot_of, array, schedule, label=label, recycle=False)
        root_pos = array.position(root)
        for stage_no, path in enumerate(stages):
            moves = []
            gates = []
            for qubit in path:
                slot = slot_of[qubit]
                target_pos = array.position(qubit)
                moves.append(
                    AtomMove(slot, (float(root_pos[0]), float(root_pos[1])), (float(target_pos[0]), float(target_pos[1])))
                )
                gates.append(ScheduledGate("cz", (aod(slot), slm(qubit))))
            schedule.append(
                MovementStage(step=MovementStep(moves=moves), label=f"{label}:move{stage_no}")
            )
            schedule.append(RydbergStage(gates=gates, label=f"{label}:cz{stage_no}"))
        self._emit_fanout(root, targets, slot_of, array, schedule, label=label, recycle=True)

    def _emit_fanout(
        self,
        root: int,
        targets: list[int],
        slot_of: dict[int, int],
        array: SLMArray,
        schedule: FPQASchedule,
        *,
        label: str,
        recycle: bool,
    ) -> None:
        """Fan the root's state out to (or recycle it from) the ancilla diagonal.

        Layer ``i`` creates ``progression[i]`` fresh copies; each fresh copy
        is sourced from the root or from an already-live copy, alternating
        round-robin so the expansion forms a balanced tree.
        """
        slots = [slot_of[q] for q in targets]
        layer_sizes = fanout_layer_sizes(len(slots), self.options.fanout_progression)
        layers: list[list[tuple]] = []
        available_sources: list = [slm(root)]
        cursor = 0
        for size in layer_sizes:
            layer = []
            for i in range(size):
                source = available_sources[i % len(available_sources)]
                slot = slots[cursor]
                layer.append((source, slot))
                cursor += 1
            layers.append(layer)
            available_sources.extend(aod(slot) for _, slot in layer)
        if recycle:
            for layer_no, layer in enumerate(reversed(layers)):
                schedule.append(
                    AncillaRecycleStage(
                        copies=list(layer),
                        uses_atom_transfer=(layer_no == len(layers) - 1),
                        label=f"{label}:recycle{layer_no}",
                    )
                )
        else:
            for layer_no, layer in enumerate(layers):
                schedule.append(
                    AncillaCreationStage(
                        copies=list(layer),
                        uses_atom_transfer=(layer_no == 0),
                        label=f"{label}:fanout{layer_no}",
                    )
                )

    @staticmethod
    def _basis_change_gates(string: PauliString, *, invert: bool) -> list[ScheduledGate]:
        gates: list[ScheduledGate] = []
        for qubit in string.support:
            pauli = string.pauli_on(qubit)
            if pauli == "X":
                gates.append(ScheduledGate("h", (slm(qubit),)))
            elif pauli == "Y":
                if invert:
                    gates.append(ScheduledGate("h", (slm(qubit),)))
                    gates.append(ScheduledGate("s", (slm(qubit),)))
                else:
                    gates.append(ScheduledGate("sdg", (slm(qubit),)))
                    gates.append(ScheduledGate("h", (slm(qubit),)))
        return gates


def route_pauli_strings(
    strings: Sequence[PauliString],
    num_qubits: int | None = None,
    config: FPQAConfig | None = None,
    options: QSimRouterOptions | None = None,
) -> FPQASchedule:
    """Convenience wrapper around :class:`QSimRouter`."""
    return QSimRouter(config, options).compile(strings, num_qubits)


def estimated_string_depth(weight: int) -> int:
    """Closed-form 2-qubit-layer estimate for one Pauli string of given weight.

    Two parity blocks, each with O(sqrt(N)) fan-out creation, the
    longest-path CZ stages (>= 1), and the mirrored fan-out recycle.  Used
    by documentation and sanity tests, not by the router itself.
    """
    if weight <= 1:
        return 0
    copies = weight - 1
    d = fanout_depth(copies)
    return 2 * (2 * d + max(1, int(math.ceil(math.sqrt(copies)))))

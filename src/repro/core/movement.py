"""AOD atom movement records.

Every Rydberg stage in a Q-Pilot schedule is preceded by a movement step
that slides AOD rows/columns so each flying ancilla parks next to its
partner data qubit.  :class:`AtomMove` records one atom's displacement;
:class:`MovementStep` groups the moves that happen simultaneously (all AOD
rows/columns move together) and knows its duration.

Positions are stored in SLM grid units; physical distances are obtained by
multiplying with the array's site spacing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class AtomMove:
    """Displacement of a single AOD atom between two stages."""

    ancilla: int
    from_pos: tuple[float, float]
    to_pos: tuple[float, float]

    @property
    def distance(self) -> float:
        """Euclidean displacement in SLM grid units."""
        dr = self.to_pos[0] - self.from_pos[0]
        dc = self.to_pos[1] - self.from_pos[1]
        return math.hypot(dr, dc)

    def distance_um(self, site_spacing_um: float) -> float:
        """Physical displacement in micrometres."""
        return self.distance * site_spacing_um


@dataclass
class MovementStep:
    """All atom moves executed simultaneously before one Rydberg pulse."""

    moves: list[AtomMove] = field(default_factory=list)

    def add(self, move: AtomMove) -> None:
        self.moves.append(move)

    @property
    def max_distance(self) -> float:
        """Largest single-atom displacement (grid units) — sets the step duration."""
        return max((m.distance for m in self.moves), default=0.0)

    @property
    def total_distance(self) -> float:
        """Sum of displacements over all atoms (grid units)."""
        return sum(m.distance for m in self.moves)

    @property
    def num_moving_atoms(self) -> int:
        return sum(1 for m in self.moves if m.distance > 1e-12)

    def duration_us(self, site_spacing_um: float, speed_um_per_s: float, t0_us: float = 0.0) -> float:
        """Movement time: characteristic time plus distance / speed.

        The paper uses ``T0 * sqrt(D)`` in its fidelity model; for wall-clock
        timelines we use the simpler constant-speed model plus a fixed
        settling overhead ``t0_us`` when any atom moves.
        """
        if self.max_distance <= 1e-12:
            return 0.0
        travel = self.max_distance * site_spacing_um / speed_um_per_s * 1e6
        return t0_us + travel


def total_movement_distance(steps: Iterable[MovementStep]) -> float:
    """Sum of max displacements over the steps (grid units) — the Eq. 5 Σ√Dᵢ input."""
    return sum(step.max_distance for step in steps)


def movement_statistics(steps: Iterable[MovementStep]) -> dict[str, float]:
    """Aggregate statistics used by the Fig. 9 analysis.

    The iterable is materialised exactly once, so one-shot iterables
    (e.g. a lazily filtered ``schedule.movement_steps()`` stream) produce
    the same result as lists.
    """
    steps = list(steps)
    per_step_max = [s.max_distance for s in steps]
    per_step_total = [s.total_distance for s in steps]
    moving_counts = [s.num_moving_atoms for s in steps]
    return {
        "num_steps": float(len(steps)),
        "total_max_distance": float(sum(per_step_max)),
        "total_distance_all_atoms": float(sum(per_step_total)),
        "mean_step_distance": float(sum(per_step_max) / len(per_step_max)) if per_step_max else 0.0,
        "max_step_distance": float(max(per_step_max)) if per_step_max else 0.0,
        "mean_moving_atoms": float(sum(moving_counts) / len(moving_counts)) if moving_counts else 0.0,
    }

"""Shared stage-planning kernel for the specialised Q-Pilot routers.

Both specialised routers ultimately answer the same question — *which
two-qubit interactions can one AOD movement serve in a single Rydberg
stage?* — but until this module existed each router answered it with its
own inline code:

* the QAOA router (Alg. 3) grew each stage with an edge-matching /
  row-sliding greedy loop that rescanned every remaining edge after each
  successful column pin, an O(front²) planning pass that dominated the
  100-qubit compile;
* the quantum-simulation router (Alg. 2) partitioned a string's targets
  into monotone chains with its own longest-path extraction.

This module hosts both planners behind one geometry cache:

:class:`ArrayGeometry`
    Flattened row / column / occupancy lookup tables for an
    :class:`~repro.hardware.fpqa.SLMArray` (the planners hit these lookups
    millions of times per compile).
:func:`reference_plan_stage` / :func:`reference_plan_best_stage`
    The seed QAOA planner, kept verbatim as the oracle the differential
    tests compare against.
:class:`QAOAStagePlanner`
    The incremental planner.  It precomputes, once per cost layer, an
    orientation index mapping each (AOD row, SLM row) pair to the edges
    realisable when that row placement happens; during a stage plan each
    candidate edge is then evaluated exactly once — when its row pair is
    placed — because every failure mode of a column pin is *sticky* (the
    pin map, the scheduled set and the row map only grow, so a rejected
    candidate can never become acceptable later in the same stage).
    Column pins live in a :class:`~repro.hardware.constraints.MonotonePinMap`
    (bisected sorted structure, O(log k) legality checks) and committing a
    stage removes only the executed edges, amortised O(k), instead of
    re-deriving the candidate universe from scratch.  The produced stages
    are identical to the reference planner's (same executed-edge set per
    stage); only the in-stage gate emission order may differ, which is
    irrelevant because all gates of a stage commute.
:class:`CompatibilityGraph` / :func:`longest_path_stages`
    The monotone-chain stage extraction of Alg. 2, relocated from the
    quantum-simulation router so both routers draw their stage structure
    from one kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.circuit.qaoa import normalise_edges
from repro.exceptions import RoutingError, WorkloadError
from repro.hardware.constraints import MonotonePinMap
from repro.hardware.fpqa import SLMArray

#: Sentinel for "this crossing would touch a non-edge or re-execute an edge".
_ILLEGAL = object()


class ArrayGeometry:
    """Plain-list cache of an SLM array's qubit geometry.

    ``SLMArray.position`` bounds-checks and divmods on every call; the
    planners look coordinates up once per candidate crossing, so a compile
    performs millions of lookups.  This cache turns each one into a list
    index.
    """

    __slots__ = ("array", "rows", "cols", "num_qubits", "row", "col", "qubit_at")

    def __init__(self, array: SLMArray):
        self.array = array
        self.rows = array.rows
        self.cols = array.cols
        self.num_qubits = array.num_qubits
        positions = [array.position(q) for q in range(self.num_qubits)]
        self.row = [r for r, _ in positions]
        self.col = [c for _, c in positions]
        self.qubit_at: list[list[int | None]] = [
            [array.qubit_at(r, c) for c in range(self.cols)] for r in range(self.rows)
        ]


@dataclass
class StagePlan:
    """One Rydberg stage chosen by the greedy matcher."""

    #: Edges executed in this stage, keyed by (ancilla data qubit, SLM qubit).
    pairs: list[tuple[int, int]]
    #: AOD column index -> SLM column it is parked over.
    column_map: dict[int, int]
    #: AOD row index -> SLM row it is parked over.
    row_map: dict[int, int]

    def edge_set(self) -> set[tuple[int, int]]:
        """The executed edges in canonical (min, max) form."""
        return {(a, b) if a < b else (b, a) for a, b in self.pairs}


# ----------------------------------------------------------------------
# reference planner (the seed implementation, kept as the oracle)
# ----------------------------------------------------------------------
def column_order_ok(column_map: dict[int, int], new_src: int, new_dst: int) -> bool:
    """Adding ``new_src -> new_dst`` must keep the column mapping monotone."""
    for src, dst in column_map.items():
        if (src < new_src and dst >= new_dst) or (src > new_src and dst <= new_dst):
            return False
    return True


def reference_plan_stage(
    remaining: set[tuple[int, int]],
    array: SLMArray,
    *,
    seed: tuple[int, int] | None = None,
) -> StagePlan:
    """Plan one Rydberg stage of Alg. 3 (full-rescan reference planner).

    This is the seed implementation, preserved verbatim as the oracle for
    the incremental planner's differential tests.  The planner pins AOD
    rows to SLM rows and AOD columns to SLM columns greedily:

    1. the seed edge (smallest unexecuted edge) pins its ancilla's row and
       column onto its partner qubit;
    2. additional columns are pinned whenever an unexecuted edge connects
       an ancilla in an already-placed row to a qubit in that row's target
       SLM row, provided the column order stays monotone and every cross
       the new column forms with the placed rows is either empty or an
       unexecuted edge (which then also executes in this stage);
    3. the remaining AOD rows are swept outward from the seed row; each is
       placed at the legal SLM row that realises the most additional
       edges, or parked between rows if no legal placement exists.  After
       a row is placed, step 2 runs again because the new row may enable
       more column pins.

    Crosses that would re-execute an already-scheduled edge or touch a
    non-edge pair are unintended interactions and make a placement
    illegal, exactly as the paper requires.
    """
    seed = min(remaining) if seed is None else seed
    seed_src, seed_dst = seed
    seed_row = array.row_of(seed_src)

    row_map: dict[int, int] = {seed_row: array.row_of(seed_dst)}
    column_map: dict[int, int] = {array.col_of(seed_src): array.col_of(seed_dst)}
    pairs: list[tuple[int, int]] = [(seed_src, seed_dst)]
    scheduled: set[tuple[int, int]] = {seed}

    def cross_outcome(aod_row: int, slm_row: int, src_col: int, dst_col: int):
        """None (no interaction), "illegal", or the (ancilla, site) pair."""
        ancilla_qubit = array.qubit_at(aod_row, src_col)
        site_qubit = array.qubit_at(slm_row, dst_col)
        if ancilla_qubit is None or site_qubit is None:
            return None
        if ancilla_qubit == site_qubit:
            return "illegal"
        edge = (min(ancilla_qubit, site_qubit), max(ancilla_qubit, site_qubit))
        if edge in scheduled or edge not in remaining:
            return "illegal"
        return (ancilla_qubit, site_qubit)

    def commit(new_pairs: list[tuple[int, int]]) -> None:
        for src, dst in new_pairs:
            pairs.append((src, dst))
            scheduled.add((min(src, dst), max(src, dst)))

    def try_pin_column(src_col: int, dst_col: int) -> list[tuple[int, int]] | None:
        """Pairs gained by pinning a column, or None if illegal."""
        if src_col in column_map or dst_col in column_map.values():
            return None
        if not column_order_ok(column_map, src_col, dst_col):
            return None
        new_pairs: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for aod_row, slm_row in row_map.items():
            outcome = cross_outcome(aod_row, slm_row, src_col, dst_col)
            if outcome is None:
                continue
            if outcome == "illegal":
                return None
            edge = (min(outcome), max(outcome))
            if edge in seen:
                return None
            seen.add(edge)
            new_pairs.append(outcome)
        return new_pairs

    def pin_columns() -> None:
        """Pin new columns enabled by the currently placed rows."""
        progress = True
        while progress and len(column_map) < array.cols:
            progress = False
            for edge in sorted(remaining - scheduled):
                for src, dst in (edge, edge[::-1]):
                    aod_row = array.row_of(src)
                    if aod_row not in row_map or array.row_of(dst) != row_map[aod_row]:
                        continue
                    gained = try_pin_column(array.col_of(src), array.col_of(dst))
                    if not gained:
                        continue
                    column_map[array.col_of(src)] = array.col_of(dst)
                    commit(gained)
                    progress = True
                    break
                if progress:
                    break

    def best_row_placement(aod_row: int, candidates) -> tuple[int, list[tuple[int, int]]] | None:
        best: tuple[int, list[tuple[int, int]]] | None = None
        for slm_row in candidates:
            row_pairs: list[tuple[int, int]] = []
            seen: set[tuple[int, int]] = set()
            legal = True
            for src_col, dst_col in column_map.items():
                outcome = cross_outcome(aod_row, slm_row, src_col, dst_col)
                if outcome is None:
                    continue
                if outcome == "illegal":
                    legal = False
                    break
                edge = (min(outcome), max(outcome))
                if edge in seen:
                    legal = False
                    break
                seen.add(edge)
                row_pairs.append(outcome)
            if not legal or not row_pairs:
                continue
            if best is None or len(row_pairs) > len(best[1]):
                best = (slm_row, row_pairs)
        return best

    pin_columns()

    # sweep rows below the seed row downward, then rows above it upward
    last_lower_y = row_map[seed_row]
    for row in range(seed_row + 1, array.rows):
        placement = best_row_placement(row, range(last_lower_y + 1, array.rows))
        if placement is None:
            continue
        slm_row, row_pairs = placement
        row_map[row] = slm_row
        last_lower_y = slm_row
        commit(row_pairs)
        pin_columns()
    last_upper_y = row_map[seed_row]
    for row in range(seed_row - 1, -1, -1):
        placement = best_row_placement(row, range(last_upper_y - 1, -1, -1))
        if placement is None:
            continue
        slm_row, row_pairs = placement
        row_map[row] = slm_row
        last_upper_y = slm_row
        commit(row_pairs)
        pin_columns()

    return StagePlan(pairs=pairs, column_map=column_map, row_map=row_map)


def select_seed_edges(
    ordered_remaining: Iterable[tuple[int, int]],
    row_of,
    seed_trials: int,
) -> list[tuple[int, int]]:
    """Seed candidates for one stage: the smallest remaining edge plus the
    smallest edges whose first endpoint lies in a not-yet-seen SLM row.

    ``ordered_remaining`` yields the unexecuted edges in ascending order;
    ``row_of`` maps a qubit index to its SLM row (callable or sequence).
    """
    lookup = row_of if callable(row_of) else row_of.__getitem__
    iterator = iter(ordered_remaining)
    first = next(iterator)
    seeds = [first]
    seen_rows = {lookup(first[0])}
    for edge in iterator:
        if len(seeds) >= max(1, seed_trials):
            break
        row = lookup(edge[0])
        if row not in seen_rows:
            seeds.append(edge)
            seen_rows.add(row)
    return seeds


def reference_plan_best_stage(
    remaining: set[tuple[int, int]],
    array: SLMArray,
    *,
    seed_trials: int = 4,
) -> StagePlan:
    """Plan one stage with the reference planner, trying a few seed edges.

    The first candidate is always the smallest remaining edge (the paper's
    choice); further candidates are the smallest edges whose first endpoint
    lies in a different SLM row, which explores seeds the smallest-index
    rule would starve.  The plan realising the most edges wins (ties go to
    the earlier seed).
    """
    seeds = select_seed_edges(sorted(remaining), array.row_of, seed_trials)
    best: StagePlan | None = None
    for seed in seeds:
        plan = reference_plan_stage(remaining, array, seed=seed)
        if best is None or len(plan.pairs) > len(best.pairs):
            best = plan
    assert best is not None
    return best


# ----------------------------------------------------------------------
# incremental planner
# ----------------------------------------------------------------------
class QAOAStagePlanner:
    """Incrementally plan the Rydberg stages of a commuting two-qubit layer.

    The planner owns the remaining-edge state across stages:

    * ``_remaining`` / ``_remaining_sorted`` — the unexecuted edges, as a
      set plus a lazily compacted sorted list (executed edges are skipped
      on read and swept out once they outnumber the live ones, so seed
      selection needs no per-stage sort and commits trigger no per-edge
      list shifts);
    * ``_orient_index`` — for every (AOD row, SLM row) pair, the edge
      orientations that become pin candidates when that row placement
      happens, pre-sorted in the reference planner's scan order.  Entries
      of executed edges are compacted away lazily, so a stage commit costs
      amortised O(k) for k executed edges.

    Within one stage plan, a candidate is evaluated exactly once — at the
    moment its row pair is placed.  This is equivalent to the reference
    planner's repeated full rescans because every rejection is sticky: the
    column pin map, the scheduled set and the row map only grow during a
    stage, and each of the reference's failure conditions is monotone in
    those structures, while an *accepted* candidate always realises at
    least its own edge (its own crossing is part of the gained set).
    Among the ``seed_trials`` candidate seeds, the plan realising the most
    edges wins, ties going to the earlier seed, exactly like the reference.
    """

    def __init__(
        self,
        array: SLMArray,
        edges: Iterable[tuple[int, int]],
        *,
        seed_trials: int = 4,
    ):
        self.geometry = ArrayGeometry(array)
        edge_list = normalise_edges(edges)
        for a, b in edge_list:
            if a < 0 or b >= self.geometry.num_qubits:
                raise WorkloadError(
                    f"edge ({a}, {b}) outside register of {self.geometry.num_qubits} qubits"
                )
        self.seed_trials = seed_trials
        self._remaining: set[tuple[int, int]] = set(edge_list)
        self._remaining_sorted: list[tuple[int, int]] = edge_list  # normalise_edges sorts
        self._executed_count = 0  # dead entries still in _remaining_sorted
        # (aod_row, slm_row) -> [(edge, src, dst), ...] in reference scan order:
        # ascending edge, orientation (min, max) before (max, min).
        row = self.geometry.row
        self._orient_index: dict[tuple[int, int], list[tuple[tuple[int, int], int, int]]] = {}
        for edge in edge_list:
            a, b = edge
            for src, dst in ((a, b), (b, a)):
                self._orient_index.setdefault((row[src], row[dst]), []).append((edge, src, dst))

    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self._remaining)

    @property
    def num_remaining(self) -> int:
        return len(self._remaining)

    @property
    def remaining_edges(self) -> set[tuple[int, int]]:
        return set(self._remaining)

    # ------------------------------------------------------------------
    def plan_best_stage(self) -> StagePlan:
        """Plan (but do not commit) the densest stage over the remaining edges."""
        if not self._remaining:
            raise RoutingError("no edges remain to plan a stage for")
        live_in_order = (e for e in self._remaining_sorted if e in self._remaining)
        seeds = select_seed_edges(live_in_order, self.geometry.row, self.seed_trials)
        best: StagePlan | None = None
        for seed in seeds:
            plan = self._plan_stage(seed)
            if best is None or len(plan.pairs) > len(best.pairs):
                best = plan
        return best

    def commit(self, plan: StagePlan) -> None:
        """Mark a stage's edges as executed (amortised O(k) for k edges).

        Executed edges stay in the sorted list as dead entries (readers
        skip them) until they outnumber the live ones, at which point one
        linear sweep compacts the list — O(E) total over a full layer.
        """
        executed = plan.edge_set()
        foreign = executed - self._remaining
        if foreign:
            raise RoutingError(f"stage executes edges that are not remaining: {sorted(foreign)}")
        self._remaining -= executed
        self._executed_count += len(executed)
        if self._executed_count > len(self._remaining):
            self._remaining_sorted = [e for e in self._remaining_sorted if e in self._remaining]
            self._executed_count = 0

    def plan_stages(self) -> Iterator[StagePlan]:
        """Plan, commit and yield stages until every edge is executed."""
        while self._remaining:
            plan = self.plan_best_stage()
            self.commit(plan)
            yield plan

    # ------------------------------------------------------------------
    def _plan_stage(self, seed: tuple[int, int]) -> StagePlan:
        geometry = self.geometry
        row, col, qubit_at = geometry.row, geometry.col, geometry.qubit_at
        remaining = self._remaining
        max_pins = geometry.cols

        seed_src, seed_dst = seed
        seed_row = row[seed_src]
        row_map: dict[int, int] = {seed_row: row[seed_dst]}
        pins = MonotonePinMap()
        pins.pin(col[seed_src], col[seed_dst])
        pairs: list[tuple[int, int]] = [(seed_src, seed_dst)]
        scheduled: set[tuple[int, int]] = {seed}

        def cross_outcome(aod_row: int, slm_row: int, src_col: int, dst_col: int):
            ancilla = qubit_at[aod_row][src_col]
            site = qubit_at[slm_row][dst_col]
            if ancilla is None or site is None:
                return None
            if ancilla == site:
                return _ILLEGAL
            edge = (ancilla, site) if ancilla < site else (site, ancilla)
            if edge in scheduled or edge not in remaining:
                return _ILLEGAL
            return (ancilla, site)

        def commit_pairs(new_pairs: list[tuple[int, int]]) -> None:
            for src, dst in new_pairs:
                pairs.append((src, dst))
                scheduled.add((src, dst) if src < dst else (dst, src))

        def pin_columns_for(aod_row: int, slm_row: int) -> None:
            """Evaluate the candidates activated by placing ``aod_row``.

            Only edges with an ancilla in ``aod_row`` and a partner in its
            target SLM row can be pinned, and every previously activated
            candidate is sticky-resolved, so this one pass over the row
            pair's orientation bucket replaces the reference planner's
            rescan of all remaining edges.
            """
            bucket = self._orient_index.get((aod_row, slm_row))
            if not bucket:
                return
            live = [entry for entry in bucket if entry[0] in remaining]
            if len(live) != len(bucket):
                # compact executed edges away so later stages skip them
                if live:
                    self._orient_index[(aod_row, slm_row)] = live
                else:
                    del self._orient_index[(aod_row, slm_row)]
                    return
            for edge, src, dst in live:
                if len(pins) >= max_pins:
                    break
                if edge in scheduled:
                    continue
                src_col, dst_col = col[src], col[dst]
                if not pins.can_pin(src_col, dst_col):
                    continue
                gained: list[tuple[int, int]] = []
                seen: set[tuple[int, int]] = set()
                legal = True
                for placed_row, target_row in row_map.items():
                    outcome = cross_outcome(placed_row, target_row, src_col, dst_col)
                    if outcome is None:
                        continue
                    if outcome is _ILLEGAL:
                        legal = False
                        break
                    a, b = outcome
                    key = (a, b) if a < b else (b, a)
                    if key in seen:
                        legal = False
                        break
                    seen.add(key)
                    gained.append(outcome)
                if not legal or not gained:
                    continue
                pins.pin(src_col, dst_col)
                commit_pairs(gained)

        def best_row_placement(
            aod_row: int, candidates
        ) -> tuple[int, list[tuple[int, int]]] | None:
            best: tuple[int, list[tuple[int, int]]] | None = None
            for slm_row in candidates:
                row_pairs: list[tuple[int, int]] = []
                seen: set[tuple[int, int]] = set()
                legal = True
                for src_col, dst_col in pins.items():
                    outcome = cross_outcome(aod_row, slm_row, src_col, dst_col)
                    if outcome is None:
                        continue
                    if outcome is _ILLEGAL:
                        legal = False
                        break
                    a, b = outcome
                    key = (a, b) if a < b else (b, a)
                    if key in seen:
                        legal = False
                        break
                    seen.add(key)
                    row_pairs.append(outcome)
                if not legal or not row_pairs:
                    continue
                if best is None or len(row_pairs) > len(best[1]):
                    best = (slm_row, row_pairs)
            return best

        pin_columns_for(seed_row, row_map[seed_row])

        # sweep rows below the seed row downward, then rows above it upward
        last_lower_y = row_map[seed_row]
        for aod_row in range(seed_row + 1, geometry.rows):
            placement = best_row_placement(aod_row, range(last_lower_y + 1, geometry.rows))
            if placement is None:
                continue
            slm_row, row_pairs = placement
            row_map[aod_row] = slm_row
            last_lower_y = slm_row
            commit_pairs(row_pairs)
            pin_columns_for(aod_row, slm_row)
        last_upper_y = row_map[seed_row]
        for aod_row in range(seed_row - 1, -1, -1):
            placement = best_row_placement(aod_row, range(last_upper_y - 1, -1, -1))
            if placement is None:
                continue
            slm_row, row_pairs = placement
            row_map[aod_row] = slm_row
            last_upper_y = slm_row
            commit_pairs(row_pairs)
            pin_columns_for(aod_row, slm_row)

        return StagePlan(pairs=pairs, column_map=pins.as_dict(), row_map=row_map)


# ----------------------------------------------------------------------
# monotone-chain stage extraction (Alg. 2, shared with the qsim router)
# ----------------------------------------------------------------------
class CompatibilityGraph:
    """Directed compatibility graph of Alg. 2.

    Vertices are the string's non-root support qubits; there is an edge
    ``a -> b`` when ``b``'s SLM position is in ``a``'s lower-right quadrant
    (row and column both >=).  A directed path is a monotone chain that a
    diagonal of AOD ancillas can serve in a single Rydberg stage.

    Construction builds the topological order (nodes sorted by
    (row, col, qubit) — every edge points strictly forward in it because
    SLM positions are unique) and the ascending-index successor lists once.
    :meth:`longest_path` is then a single O(V+E) sweep over that order, and
    the per-stage extraction loop touches each vertex and edge a constant
    amortised number of times instead of re-scanning all nodes per vertex
    (the seed's O(V²) inner loop, retained as
    :meth:`reference_longest_path` for the differential tests).
    """

    def __init__(self, array: SLMArray, qubits: Iterable[int]):
        self.array = array
        self.nodes: list[int] = sorted(set(qubits))
        self._positions = {q: array.position(q) for q in self.nodes}
        self._topo: list[int] = sorted(self.nodes, key=lambda q: (self._positions[q], q))
        self._succ: dict[int, list[int]] = {q: self.successors(q) for q in self.nodes}
        self._live: set[int] = set(self.nodes)

    def successors(self, qubit: int) -> list[int]:
        row, col = self._positions[qubit]
        return [
            other
            for other in self.nodes
            if other != qubit
            and self._positions[other][0] >= row
            and self._positions[other][1] >= col
        ]

    def longest_path(self) -> list[int]:
        """Longest monotone chain, via one O(V+E) topological-order DP.

        Ties are broken towards smaller qubit indices for determinism —
        identical output to :meth:`reference_longest_path`: successor lists
        preserve the reference's ascending-index scan order, so the
        strict-improvement rule picks the same ``best_next``, and the start
        vertex maximises the same (length, -qubit) key.
        """
        if not self.nodes:
            return []
        live = self._live
        if len(self._topo) != len(live):
            self._topo = [q for q in self._topo if q in live]
        best_length: dict[int, int] = {}
        best_next: dict[int, int | None] = {}
        # Successors come strictly later in the topological order, so their
        # DP values are already final when a vertex is processed in reverse.
        for qubit in reversed(self._topo):
            length = 1
            nxt: int | None = None
            successors = self._succ[qubit]
            live_successors = [s for s in successors if s in live]
            if len(live_successors) != len(successors):
                # compact removed vertices away; each dead edge is dropped
                # once, keeping the whole extraction loop O(V+E) amortised
                self._succ[qubit] = live_successors
            for successor in live_successors:
                if best_length[successor] + 1 > length:
                    length = best_length[successor] + 1
                    nxt = successor
            best_length[qubit] = length
            best_next[qubit] = nxt
        start = max(self._topo, key=lambda q: (best_length[q], -q))
        path = [start]
        while best_next[path[-1]] is not None:
            path.append(best_next[path[-1]])
        return path

    def reference_longest_path(self) -> list[int]:
        """The seed's longest-chain DP (per-call O(V²) successor scans).

        Kept verbatim as the oracle for :meth:`longest_path`'s differential
        tests; :func:`reference_longest_path_stages` drives whole stage
        extractions through it.
        """
        if not self.nodes:
            return []
        order = sorted(self.nodes, key=lambda q: (self._positions[q], q))
        best_length: dict[int, int] = {}
        best_next: dict[int, int | None] = {}
        # process in reverse topological order (monotone coordinates)
        for qubit in reversed(order):
            best_length[qubit] = 1
            best_next[qubit] = None
            for successor in self.successors(qubit):
                if best_length.get(successor, 0) + 1 > best_length[qubit]:
                    best_length[qubit] = best_length[successor] + 1
                    best_next[qubit] = successor
        start = max(order, key=lambda q: (best_length[q], -q))
        path = [start]
        while best_next[path[-1]] is not None:
            path.append(best_next[path[-1]])
        return path

    def remove(self, qubits: Iterable[int]) -> None:
        removed = set(qubits)
        self.nodes = [q for q in self.nodes if q not in removed]
        self._live.difference_update(removed)

    def __bool__(self) -> bool:
        return bool(self.nodes)


def _extract_stages(array: SLMArray, qubits: Sequence[int], *, reference: bool) -> list[list[int]]:
    """The Alg. 2 extraction loop, parameterised by which DP finds each path."""
    graph = CompatibilityGraph(array, qubits)
    stages: list[list[int]] = []
    while graph:
        path = graph.reference_longest_path() if reference else graph.longest_path()
        if not path:
            raise RoutingError("longest-path extraction returned an empty path")
        stages.append(path)
        graph.remove(path)
    return stages


def longest_path_stages(array: SLMArray, qubits: Sequence[int]) -> list[list[int]]:
    """Partition the target qubits into longest-path stages (Alg. 2 loop)."""
    return _extract_stages(array, qubits, reference=False)


def reference_longest_path_stages(array: SLMArray, qubits: Sequence[int]) -> list[list[int]]:
    """Stage extraction driven by the seed O(V²) DP (differential oracle)."""
    return _extract_stages(array, qubits, reference=True)

"""Flying-ancilla theory helpers (Section 2 of the paper).

The routers use ancillas operationally; this module exposes the underlying
algebraic facts as reusable, testable functions:

* a CZ (or any diagonal 2-qubit gate) acting on a data qubit can instead
  act on a Z-basis *copy* of that qubit (:func:`substitute_with_copy`);
* a set of CZ gates can be routed through fresh ancillas with two
  transversal CNOT layers (:func:`routed_cz_sequence`), the construction
  proven in Sec. 2.2 and verified in :mod:`repro.sim.verification`;
* the depth advantage over SWAP insertion (:func:`ancilla_depth_overhead`
  vs :func:`swap_depth_overhead`) that motivates the whole approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuit.gate import DIAGONAL_GATES, Gate
from repro.exceptions import RoutingError


#: 2-qubit gates that commute with Z on both operands, i.e. gates that can be
#: redirected onto a Z-basis copy of either operand.
ANCILLA_COMPATIBLE_GATES = frozenset({"cz", "cp", "crz", "rzz"})


def is_ancilla_compatible(gate: Gate) -> bool:
    """True if the gate can be executed on a flying ancilla copy.

    A 2-qubit gate may be redirected from a data qubit to a Z-basis copy of
    that qubit exactly when it is diagonal in the computational basis.
    """
    return gate.is_two_qubit and gate.name in ANCILLA_COMPATIBLE_GATES and gate.name in DIAGONAL_GATES


def substitute_with_copy(gate: Gate, data_qubit: int, copy_qubit: int) -> Gate:
    """Redirect one operand of a diagonal 2-qubit gate onto its copy.

    Raises
    ------
    RoutingError
        If the gate is not ancilla-compatible or does not act on ``data_qubit``.
    """
    if not is_ancilla_compatible(gate):
        raise RoutingError(f"gate {gate.name} cannot be redirected to an ancilla copy")
    if data_qubit not in gate.qubits:
        raise RoutingError(f"gate {gate} does not act on qubit {data_qubit}")
    new_qubits = tuple(copy_qubit if q == data_qubit else q for q in gate.qubits)
    return Gate(gate.name, new_qubits, gate.params)


@dataclass(frozen=True)
class AncillaCopy:
    """Book-keeping record: ancilla ``slot`` currently copies data qubit ``source``."""

    slot: int
    source: int


def routed_cz_sequence(num_data: int, pairs: Sequence[tuple[int, int]]) -> list[Gate]:
    """The Sec. 2.2 construction as a plain gate list.

    Data qubits are ``0..num_data-1``; ancilla ``i`` is ``num_data + i``.
    The sequence is: transversal CNOT fan-out, one CZ per pair redirected to
    the first operand's copy, transversal CNOT recycle.
    """
    for a, b in pairs:
        if not (0 <= a < num_data and 0 <= b < num_data):
            raise RoutingError(f"pair ({a}, {b}) outside the data register")
        if a == b:
            raise RoutingError(f"pair ({a}, {b}) is degenerate")
    gates = [Gate("cx", (i, num_data + i)) for i in range(num_data)]
    gates += [Gate("cz", (num_data + a, b)) for a, b in pairs]
    gates += [Gate("cx", (i, num_data + i)) for i in range(num_data)]
    return gates


def swap_routed_cz_cost(distance: int) -> tuple[int, int]:
    """(2Q gates, 2Q depth) of executing one CZ over ``distance`` hops with SWAPs.

    On a fixed-coupling device a CZ between qubits ``distance`` hops apart
    needs ``distance - 1`` SWAPs (3 CX each) plus the CZ itself.
    """
    if distance < 1:
        raise RoutingError("distance must be >= 1")
    swaps = distance - 1
    return (3 * swaps + 1, 3 * swaps + 1)


def ancilla_routed_cz_cost() -> tuple[int, int]:
    """(2Q gates, 2Q depth) of executing one CZ with a flying ancilla.

    Independent of distance: one creation CNOT, the CZ, one recycle CNOT.
    """
    return (3, 3)


def swap_depth_overhead(distance: int) -> int:
    """Extra 2-qubit depth over a direct CZ when SWAP-routing ``distance`` hops."""
    return swap_routed_cz_cost(distance)[1] - 1


def ancilla_depth_overhead() -> int:
    """Extra 2-qubit depth over a direct CZ when ancilla-routing (always 2)."""
    return ancilla_routed_cz_cost()[1] - 1


def breakeven_distance() -> int:
    """Smallest hop distance at which flying ancillas beat SWAP routing on depth."""
    distance = 1
    while swap_routed_cz_cost(distance)[1] <= ancilla_routed_cz_cost()[1]:
        distance += 1
    return distance

"""Fast performance evaluator for compiled FPQA schedules.

Given a schedule and the machine configuration, the evaluator reports the
metrics the paper uses throughout its evaluation:

* number of 1-qubit and 2-qubit gates,
* circuit depth (parallel 2-qubit layers),
* total / per-stage AOD movement distance,
* an execution-time estimate, and
* the end-to-end fidelity / error-rate estimate of Eq. 5.

The same evaluator powers the router-in-the-loop design-space exploration
(:mod:`repro.core.dse`): candidate FPQA configurations are compared by the
estimated circuit fidelity of their compiled schedules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.schedule import FPQASchedule
from repro.hardware.fpqa import FPQAConfig


@dataclass(frozen=True)
class FidelityModel:
    """Parameters of the paper's Eq. 5 error model.

    epsilon = 1 - f2^(N*T) * f1^G1 * exp(-N * sum_i T0*sqrt(D_i) / T2)

    where N is the number of atoms used (data + ancilla), T the circuit
    depth (2-qubit layers), G1 the 1-qubit gate count, f1/f2 the gate
    fidelities, T2 the coherence time, T0 the characteristic movement time
    and D_i the maximum distance moved in stage i (in site-spacing units).
    """

    one_qubit_fidelity: float = 0.999
    two_qubit_fidelity: float = 0.995
    t2_s: float = 1.5
    t0_s: float = 300e-6

    @classmethod
    def from_config(cls, config: FPQAConfig, *, two_qubit_fidelity: float | None = None) -> "FidelityModel":
        """Build the model from an FPQA configuration."""
        return cls(
            one_qubit_fidelity=config.one_qubit_fidelity,
            two_qubit_fidelity=(
                config.two_qubit_fidelity if two_qubit_fidelity is None else two_qubit_fidelity
            ),
            t2_s=config.t2_s,
            t0_s=config.t0_us * 1e-6,
        )

    def movement_time_s(self, movement_distances: Sequence[float] | np.ndarray) -> float:
        """Total characteristic movement time, Σᵢ T0·√Dᵢ, in one NumPy pass.

        Accepts any iterable of distances (list, array, generator).
        """
        if not isinstance(movement_distances, (np.ndarray, list, tuple)):
            movement_distances = list(movement_distances)
        distances = np.asarray(movement_distances, dtype=float)
        if distances.size == 0:
            return 0.0
        return float(self.t0_s * np.sqrt(np.maximum(distances, 0.0)).sum())

    def success_probability(
        self,
        *,
        num_atoms: int,
        depth: int,
        num_one_qubit_gates: int,
        movement_distances: Sequence[float] | np.ndarray,
    ) -> float:
        """Estimated probability that the whole circuit executes without error."""
        if num_atoms < 0 or depth < 0 or num_one_qubit_gates < 0:
            raise ValueError("fidelity model inputs must be non-negative")
        gate_term = (self.two_qubit_fidelity ** (num_atoms * depth)) * (
            self.one_qubit_fidelity ** num_one_qubit_gates
        )
        decoherence_term = math.exp(
            -num_atoms * self.movement_time_s(movement_distances) / self.t2_s
        )
        return float(gate_term * decoherence_term)

    def success_probability_batch(
        self,
        *,
        num_atoms: int,
        depth: int,
        num_one_qubit_gates: int,
        movement_distances: Sequence[float] | np.ndarray,
        two_qubit_fidelities: Sequence[float] | np.ndarray,
    ) -> np.ndarray:
        """Eq. 5 over a whole sweep of 2-qubit gate fidelities at once.

        The schedule-dependent terms (1-qubit gate fidelity power and the
        movement decoherence factor) are computed once; only the 2-qubit
        gate term varies across the sweep, so the result is one vectorised
        power — the scalar :meth:`success_probability` applied pointwise
        (NumPy's SIMD ``pow`` may round the last ulp differently from the
        scalar libm ``pow``; everything else is operation-identical).
        """
        if num_atoms < 0 or depth < 0 or num_one_qubit_gates < 0:
            raise ValueError("fidelity model inputs must be non-negative")
        fidelities = np.asarray(two_qubit_fidelities, dtype=float)
        one_qubit_term = self.one_qubit_fidelity ** num_one_qubit_gates
        decoherence_term = math.exp(
            -num_atoms * self.movement_time_s(movement_distances) / self.t2_s
        )
        gate_term = np.power(fidelities, num_atoms * depth) * one_qubit_term
        return gate_term * decoherence_term

    def error_rate(self, **kwargs) -> float:
        """1 - success probability (Eq. 5's epsilon)."""
        return 1.0 - self.success_probability(**kwargs)


@dataclass
class EvaluationResult:
    """Metrics of one compiled schedule."""

    name: str
    num_data_qubits: int
    num_atoms: int
    depth: int
    num_two_qubit_gates: int
    num_one_qubit_gates: int
    num_rydberg_stages: int
    total_movement_distance: float
    execution_time_us: float
    success_probability: float
    error_rate: float
    average_parallelism: float
    compile_time_s: float | None = None
    extras: dict = field(default_factory=dict)

    def summary(self) -> dict:
        return {
            "name": self.name,
            "qubits": self.num_data_qubits,
            "atoms": self.num_atoms,
            "depth": self.depth,
            "2q_gates": self.num_two_qubit_gates,
            "1q_gates": self.num_one_qubit_gates,
            "movement": round(self.total_movement_distance, 2),
            "exec_time_us": round(self.execution_time_us, 2),
            "error_rate": round(self.error_rate, 6),
            "parallelism": round(self.average_parallelism, 3),
        }


class PerformanceEvaluator:
    """Compute all schedule metrics, including the Eq. 5 fidelity estimate."""

    def __init__(self, fidelity_model: FidelityModel | None = None):
        self.fidelity_model = fidelity_model

    def evaluate(self, schedule: FPQASchedule) -> EvaluationResult:
        """Evaluate a compiled schedule."""
        model = self.fidelity_model or FidelityModel.from_config(schedule.config)
        depth = schedule.two_qubit_depth()
        num_atoms = schedule.total_qubits_used()
        one_qubit = schedule.num_one_qubit_gates()
        distances = schedule.movement_distances()
        success = model.success_probability(
            num_atoms=num_atoms,
            depth=depth,
            num_one_qubit_gates=one_qubit,
            movement_distances=distances,
        )
        return EvaluationResult(
            name=schedule.name,
            num_data_qubits=schedule.num_data_qubits,
            num_atoms=num_atoms,
            depth=depth,
            num_two_qubit_gates=schedule.num_two_qubit_gates(),
            num_one_qubit_gates=one_qubit,
            num_rydberg_stages=schedule.num_rydberg_stages(),
            total_movement_distance=schedule.total_movement_distance(),
            execution_time_us=schedule.execution_time_us(),
            success_probability=success,
            error_rate=1.0 - success,
            average_parallelism=schedule.average_parallelism(),
            compile_time_s=schedule.metadata.get("compile_time_s"),
        )

    def error_rate_vs_two_qubit_error(
        self, schedule: FPQASchedule, two_qubit_error_rates: Sequence[float]
    ) -> list[tuple[float, float]]:
        """Sweep the 2-qubit gate error rate and report the overall error (Fig. 15a).

        The schedule is walked once for its static metrics; the whole sweep
        is then a single vectorised Eq. 5 evaluation instead of one model
        re-walk per point.
        """
        errors = np.asarray(two_qubit_error_rates, dtype=float)
        model = FidelityModel.from_config(schedule.config)
        success = model.success_probability_batch(
            num_atoms=schedule.total_qubits_used(),
            depth=schedule.two_qubit_depth(),
            num_one_qubit_gates=schedule.num_one_qubit_gates(),
            movement_distances=schedule.movement_distances(),
            two_qubit_fidelities=1.0 - errors,
        )
        return [(float(error), float(1.0 - s)) for error, s in zip(errors, success)]

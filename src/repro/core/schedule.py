"""FPQA schedule representation.

A compiled Q-Pilot program is a sequence of *stages*.  Each stage is one of:

* :class:`OneQubitStage` — Raman-laser stage applying 1-qubit gates to data
  qubits (individually addressed, all in parallel).
* :class:`AncillaCreationStage` — flying ancillas are loaded onto the AOD
  grid and entangled with their source qubits via one parallel CNOT layer
  (one Rydberg pulse).
* :class:`MovementStage` — AOD rows/columns slide to new positions; no
  gates are applied.
* :class:`RydbergStage` — the global Rydberg laser fires, executing one
  parallel layer of 2-qubit gates between coupled atom pairs.
* :class:`AncillaRecycleStage` — the inverse CNOT layer that disentangles
  (and then discards) the flying ancillas.
* :class:`MeasurementStage` — terminal measurement of the data qubits.

Operands reference either an SLM data qubit (``("slm", qubit_index)``) or an
AOD ancilla slot (``("aod", slot_index)``).  The schedule can be flattened
back into an ordinary gate list (ancilla slot ``k`` becomes qubit
``num_data + k``) for statevector verification, and exposes all the metrics
the paper's evaluation reports: 2-qubit layer count ("circuit depth"),
1-/2-qubit gate counts, movement distance, and an execution-time estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal, Sequence

from repro.circuit.gate import Gate
from repro.core.movement import AtomMove, MovementStep
from repro.exceptions import ScheduleError
from repro.hardware.fpqa import FPQAConfig

Operand = tuple[Literal["slm", "aod"], int]


def slm(qubit: int) -> Operand:
    """Operand referring to a fixed SLM data qubit."""
    return ("slm", int(qubit))


def aod(slot: int) -> Operand:
    """Operand referring to a flying-ancilla AOD slot."""
    return ("aod", int(slot))


def _resolve(operand: Operand, num_data: int) -> int:
    kind, index = operand
    if kind == "slm":
        return index
    if kind == "aod":
        return num_data + index
    raise ScheduleError(f"unknown operand kind {kind!r}")


@dataclass(frozen=True)
class ScheduledGate:
    """A gate whose operands may be data qubits or ancilla slots."""

    name: str
    operands: tuple[Operand, ...]
    params: tuple[float, ...] = ()

    def to_gate(self, num_data: int) -> Gate:
        """Concrete :class:`Gate` once ancilla slots are given qubit indices."""
        return Gate(self.name, tuple(_resolve(op, num_data) for op in self.operands), self.params)

    @property
    def is_two_qubit(self) -> bool:
        return len(self.operands) == 2

    @property
    def data_qubits(self) -> tuple[int, ...]:
        return tuple(index for kind, index in self.operands if kind == "slm")

    @property
    def ancilla_slots(self) -> tuple[int, ...]:
        return tuple(index for kind, index in self.operands if kind == "aod")


# ----------------------------------------------------------------------
# stage types
# ----------------------------------------------------------------------
@dataclass
class Stage:
    """Base class for schedule stages."""

    label: str = ""

    # metric hooks -------------------------------------------------------
    def num_two_qubit_gates(self) -> int:
        return 0

    def num_one_qubit_gates(self) -> int:
        return 0

    def two_qubit_layers(self) -> int:
        """How many parallel 2-qubit layers this stage contributes to depth."""
        return 0

    def expanded_gates(self, num_data: int) -> list[Gate]:
        """Plain gates implementing the stage (for verification)."""
        return []

    def duration_us(self, config: FPQAConfig) -> float:
        return 0.0

    def kind(self) -> str:
        return type(self).__name__


@dataclass
class OneQubitStage(Stage):
    """A Raman-laser stage of parallel 1-qubit gates on data qubits."""

    gates: list[ScheduledGate] = field(default_factory=list)

    def num_one_qubit_gates(self) -> int:
        return len(self.gates)

    def expanded_gates(self, num_data: int) -> list[Gate]:
        return [g.to_gate(num_data) for g in self.gates]

    def duration_us(self, config: FPQAConfig) -> float:
        return config.one_qubit_time_us if self.gates else 0.0


@dataclass
class AncillaCreationStage(Stage):
    """Create flying ancillas: one parallel layer of fan-out CNOTs.

    ``copies`` lists ``(source, ancilla_slot)`` pairs; the source may be a
    data qubit or an already-live ancilla (the quantum-simulation router
    fans out copies from copies).
    """

    copies: list[tuple[Operand, int]] = field(default_factory=list)
    uses_atom_transfer: bool = True

    def num_two_qubit_gates(self) -> int:
        return len(self.copies)

    def two_qubit_layers(self) -> int:
        return 1 if self.copies else 0

    def expanded_gates(self, num_data: int) -> list[Gate]:
        return [
            Gate("cx", (_resolve(source, num_data), num_data + slot))
            for source, slot in self.copies
        ]

    def duration_us(self, config: FPQAConfig) -> float:
        transfer = config.atom_transfer_time_us if self.uses_atom_transfer else 0.0
        return transfer + (config.two_qubit_time_us if self.copies else 0.0)

    @property
    def ancilla_slots(self) -> list[int]:
        return [slot for _, slot in self.copies]


@dataclass
class MovementStage(Stage):
    """AOD rows/columns slide to new positions (no gates)."""

    step: MovementStep = field(default_factory=MovementStep)

    def duration_us(self, config: FPQAConfig) -> float:
        return self.step.duration_us(
            config.site_spacing_um, config.move_speed_um_per_s, config.t0_us
        )

    @property
    def max_distance(self) -> float:
        return self.step.max_distance


@dataclass
class RydbergStage(Stage):
    """One global Rydberg pulse executing a parallel layer of 2-qubit gates."""

    gates: list[ScheduledGate] = field(default_factory=list)

    def num_two_qubit_gates(self) -> int:
        return len(self.gates)

    def two_qubit_layers(self) -> int:
        return 1 if self.gates else 0

    def expanded_gates(self, num_data: int) -> list[Gate]:
        return [g.to_gate(num_data) for g in self.gates]

    def duration_us(self, config: FPQAConfig) -> float:
        return config.two_qubit_time_us if self.gates else 0.0


@dataclass
class AncillaRecycleStage(Stage):
    """Disentangle flying ancillas with the inverse fan-out CNOT layer."""

    copies: list[tuple[Operand, int]] = field(default_factory=list)
    uses_atom_transfer: bool = True

    def num_two_qubit_gates(self) -> int:
        return len(self.copies)

    def two_qubit_layers(self) -> int:
        return 1 if self.copies else 0

    def expanded_gates(self, num_data: int) -> list[Gate]:
        return [
            Gate("cx", (_resolve(source, num_data), num_data + slot))
            for source, slot in self.copies
        ]

    def duration_us(self, config: FPQAConfig) -> float:
        transfer = config.atom_transfer_time_us if self.uses_atom_transfer else 0.0
        return transfer + (config.two_qubit_time_us if self.copies else 0.0)


@dataclass
class MeasurementStage(Stage):
    """Terminal measurement of data qubits."""

    qubits: list[int] = field(default_factory=list)

    def expanded_gates(self, num_data: int) -> list[Gate]:
        return [Gate("measure", (q,)) for q in self.qubits]

    def duration_us(self, config: FPQAConfig) -> float:
        return 0.0


# ----------------------------------------------------------------------
# the schedule container
# ----------------------------------------------------------------------
@dataclass
class FPQASchedule:
    """A compiled FPQA program: ordered stages plus the machine configuration."""

    config: FPQAConfig
    num_data_qubits: int
    stages: list[Stage] = field(default_factory=list)
    name: str = "fpqa_schedule"
    metadata: dict = field(default_factory=dict)

    # construction ---------------------------------------------------------
    def append(self, stage: Stage) -> "FPQASchedule":
        self.stages.append(stage)
        return self

    def extend(self, stages: Iterable[Stage]) -> "FPQASchedule":
        for stage in stages:
            self.append(stage)
        return self

    # metrics ---------------------------------------------------------------
    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def two_qubit_depth(self) -> int:
        """Number of parallel 2-qubit gate layers — the paper's circuit depth."""
        return sum(stage.two_qubit_layers() for stage in self.stages)

    def num_two_qubit_gates(self) -> int:
        return sum(stage.num_two_qubit_gates() for stage in self.stages)

    def num_one_qubit_gates(self) -> int:
        return sum(stage.num_one_qubit_gates() for stage in self.stages)

    def num_rydberg_stages(self) -> int:
        return sum(1 for s in self.stages if isinstance(s, RydbergStage) and s.gates)

    def movement_steps(self) -> list[MovementStep]:
        return [s.step for s in self.stages if isinstance(s, MovementStage)]

    def total_movement_distance(self) -> float:
        """Sum over movement stages of the maximum displacement (grid units)."""
        return sum(step.max_distance for step in self.movement_steps())

    def movement_distances(self) -> list[float]:
        """Per-movement-stage maximum displacement (grid units)."""
        return [step.max_distance for step in self.movement_steps()]

    def max_ancillas_used(self) -> int:
        """Highest ancilla slot index used plus one (0 if no ancillas)."""
        highest = -1
        for stage in self.stages:
            if isinstance(stage, (AncillaCreationStage, AncillaRecycleStage)):
                for _, slot in stage.copies:
                    highest = max(highest, slot)
            elif isinstance(stage, RydbergStage):
                for gate in stage.gates:
                    for slot in gate.ancilla_slots:
                        highest = max(highest, slot)
        return highest + 1

    def max_concurrent_ancillas(self) -> int:
        """Peak number of simultaneously live flying ancillas."""
        live: set[int] = set()
        peak = 0
        for stage in self.stages:
            if isinstance(stage, AncillaCreationStage):
                live.update(slot for _, slot in stage.copies)
                peak = max(peak, len(live))
            elif isinstance(stage, AncillaRecycleStage):
                live.difference_update(slot for _, slot in stage.copies)
        return peak

    def total_qubits_used(self) -> int:
        """Data qubits plus peak live ancillas (the ``N`` of the Eq. 5 model)."""
        return self.num_data_qubits + self.max_concurrent_ancillas()

    def execution_time_us(self) -> float:
        """Wall-clock execution estimate summing every stage's duration."""
        return sum(stage.duration_us(self.config) for stage in self.stages)

    def time_breakdown_us(self) -> dict[str, float]:
        """Execution time split into movement / 2Q / 1Q / transfer buckets (Fig. 10)."""
        breakdown = {"movement": 0.0, "2q_gate": 0.0, "1q_gate": 0.0, "atom_transfer": 0.0}
        for stage in self.stages:
            duration = stage.duration_us(self.config)
            if isinstance(stage, MovementStage):
                breakdown["movement"] += duration
            elif isinstance(stage, OneQubitStage):
                breakdown["1q_gate"] += duration
            elif isinstance(stage, (AncillaCreationStage, AncillaRecycleStage)):
                transfer = self.config.atom_transfer_time_us if stage.uses_atom_transfer else 0.0
                breakdown["atom_transfer"] += transfer
                breakdown["2q_gate"] += max(0.0, duration - transfer)
            elif isinstance(stage, RydbergStage):
                breakdown["2q_gate"] += duration
        return breakdown

    def parallelism_histogram(self) -> dict[int, int]:
        """Histogram of 2-qubit gates per Rydberg stage (Fig. 15b)."""
        histogram: dict[int, int] = {}
        for stage in self.stages:
            if isinstance(stage, RydbergStage) and stage.gates:
                count = len(stage.gates)
                histogram[count] = histogram.get(count, 0) + 1
        return dict(sorted(histogram.items()))

    def average_parallelism(self) -> float:
        """Mean number of 2-qubit gates per Rydberg stage."""
        counts = [len(s.gates) for s in self.stages if isinstance(s, RydbergStage) and s.gates]
        return sum(counts) / len(counts) if counts else 0.0

    # verification helpers ---------------------------------------------------
    def validate(self) -> None:
        """Structural sanity checks.

        * Ancilla slots must be created before they are used in a Rydberg
          stage and recycled before being re-created.
        * Every Rydberg-stage gate must touch at most one data qubit per
          operand and reference only live ancillas.

        Raises
        ------
        ScheduleError
            If any invariant is violated.
        """
        live: set[int] = set()
        for position, stage in enumerate(self.stages):
            if isinstance(stage, AncillaCreationStage):
                for source, slot in stage.copies:
                    if slot in live:
                        raise ScheduleError(
                            f"stage {position}: ancilla slot {slot} created twice without recycle"
                        )
                    if source[0] == "aod" and source[1] not in live:
                        raise ScheduleError(
                            f"stage {position}: ancilla {slot} copies dead ancilla {source[1]}"
                        )
                    live.add(slot)
            elif isinstance(stage, AncillaRecycleStage):
                for _, slot in stage.copies:
                    if slot not in live:
                        raise ScheduleError(
                            f"stage {position}: recycling ancilla slot {slot} that is not live"
                        )
                    live.discard(slot)
            elif isinstance(stage, RydbergStage):
                used_operands: set[Operand] = set()
                for gate in stage.gates:
                    for operand in gate.operands:
                        if operand in used_operands:
                            raise ScheduleError(
                                f"stage {position}: operand {operand} used twice in one Rydberg pulse"
                            )
                        used_operands.add(operand)
                    for slot in gate.ancilla_slots:
                        if slot not in live:
                            raise ScheduleError(
                                f"stage {position}: gate uses dead ancilla slot {slot}"
                            )
                    for qubit in gate.data_qubits:
                        if not 0 <= qubit < self.num_data_qubits:
                            raise ScheduleError(
                                f"stage {position}: data qubit {qubit} out of range"
                            )

    def summary(self) -> dict:
        """Plain-dict metric summary used by the benchmark harness."""
        return {
            "name": self.name,
            "qubits": self.num_data_qubits,
            "depth": self.two_qubit_depth(),
            "2q_gates": self.num_two_qubit_gates(),
            "1q_gates": self.num_one_qubit_gates(),
            "rydberg_stages": self.num_rydberg_stages(),
            "movement_distance": round(self.total_movement_distance(), 3),
            "max_ancillas": self.max_concurrent_ancillas(),
            "execution_time_us": round(self.execution_time_us(), 3),
        }


def movement_stage_from_moves(moves: Sequence[AtomMove], label: str = "") -> MovementStage:
    """Convenience constructor for a movement stage."""
    step = MovementStep(moves=list(moves))
    return MovementStage(label=label, step=step)

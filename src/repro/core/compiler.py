"""Top-level Q-Pilot compiler facade.

:class:`QPilotCompiler` is the public entry point most users want: hand it
a workload (an arbitrary circuit, a list of Pauli strings, or a QAOA graph)
and it dispatches to the right router, evaluates the schedule, and returns
a :class:`CompilationResult` bundling the schedule and its metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.pauli import PauliString
from repro.core.evaluator import EvaluationResult, FidelityModel, PerformanceEvaluator
from repro.core.generic_router import GenericRouter, GenericRouterOptions
from repro.core.qaoa_router import QAOARouter, QAOARouterOptions
from repro.core.qsim_router import QSimRouter, QSimRouterOptions
from repro.core.schedule import FPQASchedule
from repro.exceptions import RoutingError
from repro.hardware.fpqa import FPQAConfig
from repro.obs.tracing import span


@dataclass
class CompilationResult:
    """A compiled schedule plus its evaluated metrics."""

    schedule: FPQASchedule
    evaluation: EvaluationResult
    router: str
    metadata: dict = field(default_factory=dict)

    @property
    def depth(self) -> int:
        """Circuit depth: number of parallel 2-qubit layers."""
        return self.evaluation.depth

    @property
    def num_two_qubit_gates(self) -> int:
        return self.evaluation.num_two_qubit_gates

    @property
    def compile_time_s(self) -> float | None:
        return self.evaluation.compile_time_s

    def summary(self) -> dict:
        data = self.evaluation.summary()
        data["router"] = self.router
        return data


class QPilotCompiler:
    """Facade over the generic, quantum-simulation and QAOA routers."""

    def __init__(
        self,
        config: FPQAConfig | None = None,
        *,
        fidelity_model: FidelityModel | None = None,
        generic_options: GenericRouterOptions | None = None,
        qsim_options: QSimRouterOptions | None = None,
        qaoa_options: QAOARouterOptions | None = None,
    ):
        self.config = config
        self.evaluator = PerformanceEvaluator(fidelity_model)
        self.generic_options = generic_options
        self.qsim_options = qsim_options
        self.qaoa_options = qaoa_options

    # ------------------------------------------------------------------
    def compile_circuit(self, circuit: QuantumCircuit) -> CompilationResult:
        """Compile an arbitrary circuit with the generic flying-ancilla router."""
        router = GenericRouter(self.config, self.generic_options)
        with span("route", router="generic"):
            schedule = router.compile(circuit)
        return self._package(schedule, "generic")

    def compile_pauli_strings(
        self, strings: Sequence[PauliString], num_qubits: int | None = None
    ) -> CompilationResult:
        """Compile a Trotter step with the quantum-simulation router."""
        router = QSimRouter(self.config, self.qsim_options)
        with span("route", router="qsim"):
            schedule = router.compile(strings, num_qubits)
        return self._package(schedule, "qsim")

    def compile_qaoa(
        self,
        num_qubits: int,
        edges: Iterable[tuple[int, int]],
        *,
        layers: int = 1,
        full_circuit: bool = False,
    ) -> CompilationResult:
        """Compile a QAOA cost layer (or full circuit) with the QAOA router."""
        router = QAOARouter(self.config, self.qaoa_options)
        with span("route", router="qaoa"):
            schedule = router.compile(
                num_qubits, edges, layers=layers, full_circuit=full_circuit
            )
        return self._package(schedule, "qaoa")

    def compile(self, workload, **kwargs) -> CompilationResult:
        """Dispatch on the workload type.

        * :class:`QuantumCircuit` -> generic router
        * a :class:`PauliString` or sequence of them -> quantum-simulation router
        * ``(num_qubits, edges)`` tuple -> QAOA router
        """
        if isinstance(workload, QuantumCircuit):
            return self.compile_circuit(workload)
        if isinstance(workload, PauliString):
            return self.compile_pauli_strings([workload], **kwargs)
        if isinstance(workload, (list, tuple)) and workload and isinstance(workload[0], PauliString):
            return self.compile_pauli_strings(list(workload), **kwargs)
        if (
            isinstance(workload, tuple)
            and len(workload) == 2
            and isinstance(workload[0], int)
        ):
            num_qubits, edges = workload
            return self.compile_qaoa(num_qubits, edges, **kwargs)
        raise RoutingError(f"cannot infer a router for workload of type {type(workload)!r}")

    # ------------------------------------------------------------------
    def _package(self, schedule: FPQASchedule, router: str) -> CompilationResult:
        with span("verify", router=router):
            schedule.validate()
            evaluation = self.evaluator.evaluate(schedule)
        return CompilationResult(
            schedule=schedule,
            evaluation=evaluation,
            router=router,
            metadata=dict(schedule.metadata),
        )

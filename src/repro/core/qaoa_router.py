"""Customised router for QAOA circuits (Alg. 3).

A Max-Cut QAOA cost layer applies a commuting ``RZZ(γ)`` gate on every edge
of the problem graph.  Q-Pilot compiles it as follows:

1. **one flying ancilla per data qubit** is created in a single parallel
   CNOT layer (ancilla ``i`` parks next to qubit ``i`` and copies its
   Z-basis state);
2. the router then builds the schedule stage by stage.  In each stage it
   picks the unexecuted edge with the smallest first endpoint as the seed,
   pins that ancilla's AOD column onto the partner qubit's SLM column and
   its AOD row onto the partner's SLM row, greedily matches more edges
   whose ancillas live in the same AOD row (subject to the no-crossing
   column order), and then slides every other AOD row, one at a time, to
   the vertical position that realises the most additional edges without
   creating any unintended interaction;
3. after all edges are done, the ancillas fly home and are recycled with a
   single parallel CNOT layer.

Because every gate between creation and recycling is diagonal, the ancilla
copies stay valid for the whole cost layer, so the total 2-qubit cost is
``2·n + |E|`` gates in ``2 + #stages`` layers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.circuit.qaoa import normalise_edges
from repro.core.movement import AtomMove, MovementStep
from repro.core.schedule import (
    AncillaCreationStage,
    AncillaRecycleStage,
    FPQASchedule,
    MovementStage,
    OneQubitStage,
    RydbergStage,
    ScheduledGate,
    aod,
    slm,
)
from repro.exceptions import RoutingError, WorkloadError
from repro.hardware.fpqa import FPQAConfig, SLMArray


@dataclass
class QAOARouterOptions:
    """Knobs for the QAOA router."""

    #: RZZ rotation angle for the cost layer.
    gamma: float = 0.7
    #: RX mixer angle (only used when compiling full QAOA layers).
    beta: float = 0.3
    #: Emit the |+>^n preparation layer when compiling a full circuit.
    include_state_preparation: bool = True
    #: Emit the RX mixer layer after each cost layer.
    include_mixer: bool = True
    #: Number of candidate seed edges tried per stage; the plan realising the
    #: most edges wins.  1 reproduces the paper's smallest-index seed exactly;
    #: a few trials noticeably increase per-stage parallelism at negligible
    #: compile-time cost.
    seed_trials: int = 4


@dataclass
class StagePlan:
    """One Rydberg stage chosen by the greedy matcher."""

    #: Edges executed in this stage, keyed by (ancilla data qubit, SLM qubit).
    pairs: list[tuple[int, int]]
    #: AOD column index -> SLM column it is parked over.
    column_map: dict[int, int]
    #: AOD row index -> SLM row it is parked over.
    row_map: dict[int, int]


class QAOARouter:
    """Flying-ancilla router specialised for commuting two-qubit (ZZ) layers."""

    def __init__(self, config: FPQAConfig | None = None, options: QAOARouterOptions | None = None):
        self.config = config
        self.options = options or QAOARouterOptions()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def compile(
        self,
        num_qubits: int,
        edges: Iterable[tuple[int, int]],
        *,
        layers: int = 1,
        full_circuit: bool = False,
    ) -> FPQASchedule:
        """Compile ``layers`` QAOA cost layers over the given graph.

        Parameters
        ----------
        num_qubits:
            Number of graph vertices (data qubits).
        edges:
            Problem graph edges.
        layers:
            Number of QAOA layers ``p``; every layer repeats the cost-layer
            schedule (each with its own ancilla creation/recycle because the
            mixer breaks the Z-basis copies).
        full_circuit:
            When True the schedule also contains the |+> preparation and the
            RX mixer Raman stages, making it a complete executable QAOA
            program rather than just the routed cost layers.
        """
        start_time = time.perf_counter()
        if num_qubits < 1:
            raise WorkloadError("num_qubits must be >= 1")
        edge_list = normalise_edges(edges)
        for a, b in edge_list:
            if b >= num_qubits:
                raise WorkloadError(f"edge ({a}, {b}) exceeds register of {num_qubits} qubits")
        config = self.config or FPQAConfig.square_for(num_qubits)
        if config.num_slm_sites < num_qubits:
            config = config.for_qubits(num_qubits)
        array = SLMArray(config, num_qubits)

        schedule = FPQASchedule(
            config=config,
            num_data_qubits=num_qubits,
            name=f"qpilot_qaoa[{num_qubits}q_{len(edge_list)}e]",
        )
        if full_circuit and self.options.include_state_preparation:
            schedule.append(
                OneQubitStage(
                    gates=[ScheduledGate("h", (slm(q),)) for q in range(num_qubits)],
                    label="prepare_plus",
                )
            )

        stage_plans_per_layer: list[list[StagePlan]] = []
        for layer in range(layers):
            plans = self._compile_cost_layer(num_qubits, edge_list, array, schedule, layer)
            stage_plans_per_layer.append(plans)
            if full_circuit and self.options.include_mixer:
                schedule.append(
                    OneQubitStage(
                        gates=[
                            ScheduledGate("rx", (slm(q),), (2.0 * self.options.beta,))
                            for q in range(num_qubits)
                        ],
                        label=f"mixer{layer}",
                    )
                )

        schedule.metadata.update(
            {
                "router": "qaoa",
                "compile_time_s": time.perf_counter() - start_time,
                "num_edges": len(edge_list),
                "stages_per_layer": [len(plans) for plans in stage_plans_per_layer],
            }
        )
        return schedule

    # ------------------------------------------------------------------
    # cost-layer compilation
    # ------------------------------------------------------------------
    def _compile_cost_layer(
        self,
        num_qubits: int,
        edges: list[tuple[int, int]],
        array: SLMArray,
        schedule: FPQASchedule,
        layer: int,
    ) -> list[StagePlan]:
        gamma = self.options.gamma
        label = f"layer{layer}"

        # 1. create one ancilla per data qubit (slot i mirrors qubit i)
        creation = [(slm(q), q) for q in range(num_qubits)]
        schedule.append(
            AncillaCreationStage(copies=creation, uses_atom_transfer=True, label=f"{label}:create")
        )

        ancilla_positions: dict[int, tuple[float, float]] = {
            q: tuple(map(float, array.position(q))) for q in range(num_qubits)
        }

        # 2. greedy stage construction
        remaining = set(edges)
        plans: list[StagePlan] = []
        while remaining:
            plan = self._plan_best_stage(remaining, array, num_qubits)
            if not plan.pairs:
                raise RoutingError("QAOA stage planner failed to schedule any edge")
            moves = []
            gates = []
            for ancilla_qubit, target_qubit in plan.pairs:
                target_row = plan.row_map[array.row_of(ancilla_qubit)]
                target_col = plan.column_map[array.col_of(ancilla_qubit)]
                new_pos = (float(target_row), float(target_col))
                moves.append(AtomMove(ancilla_qubit, ancilla_positions[ancilla_qubit], new_pos))
                ancilla_positions[ancilla_qubit] = new_pos
                gates.append(
                    ScheduledGate("rzz", (aod(ancilla_qubit), slm(target_qubit)), (gamma,))
                )
                edge = (min(ancilla_qubit, target_qubit), max(ancilla_qubit, target_qubit))
                remaining.discard(edge)
            stage_no = len(plans)
            schedule.append(
                MovementStage(step=MovementStep(moves=moves), label=f"{label}:move{stage_no}")
            )
            schedule.append(RydbergStage(gates=gates, label=f"{label}:stage{stage_no}"))
            plans.append(plan)

        # 3. fly every displaced ancilla home, then recycle all of them
        home_moves = []
        for q in range(num_qubits):
            home = tuple(map(float, array.position(q)))
            if ancilla_positions[q] != home:
                home_moves.append(AtomMove(q, ancilla_positions[q], home))
        if home_moves:
            schedule.append(
                MovementStage(step=MovementStep(moves=home_moves), label=f"{label}:return")
            )
        schedule.append(
            AncillaRecycleStage(copies=creation, uses_atom_transfer=True, label=f"{label}:recycle")
        )
        return plans

    # ------------------------------------------------------------------
    # stage planner (the greedy matcher of Alg. 3)
    # ------------------------------------------------------------------
    def _plan_best_stage(
        self, remaining: set[tuple[int, int]], array: SLMArray, num_qubits: int
    ) -> StagePlan:
        """Plan one stage, trying a few seed edges and keeping the densest plan.

        The first candidate is always the smallest remaining edge (the
        paper's choice); further candidates are the smallest edges whose
        first endpoint lies in a different SLM row, which explores seeds the
        smallest-index rule would starve.
        """
        ordered = sorted(remaining)
        seeds: list[tuple[int, int]] = [ordered[0]]
        seen_rows = {array.row_of(ordered[0][0])}
        for edge in ordered[1:]:
            if len(seeds) >= max(1, self.options.seed_trials):
                break
            row = array.row_of(edge[0])
            if row not in seen_rows:
                seeds.append(edge)
                seen_rows.add(row)
        best: StagePlan | None = None
        for seed in seeds:
            plan = self._plan_stage(remaining, array, num_qubits, seed=seed)
            if best is None or len(plan.pairs) > len(best.pairs):
                best = plan
        assert best is not None
        return best

    def _plan_stage(
        self,
        remaining: set[tuple[int, int]],
        array: SLMArray,
        num_qubits: int,
        *,
        seed: tuple[int, int] | None = None,
    ) -> StagePlan:
        """Plan one Rydberg stage of Alg. 3.

        The planner pins AOD rows to SLM rows and AOD columns to SLM columns
        greedily:

        1. the seed edge (smallest unexecuted edge) pins its ancilla's row and
           column onto its partner qubit;
        2. additional columns are pinned whenever an unexecuted edge connects
           an ancilla in an already-placed row to a qubit in that row's target
           SLM row, provided the column order stays monotone and every cross
           the new column forms with the placed rows is either empty or an
           unexecuted edge (which then also executes in this stage);
        3. the remaining AOD rows are swept outward from the seed row; each is
           placed at the legal SLM row that realises the most additional
           edges, or parked between rows if no legal placement exists.  After
           a row is placed, step 2 runs again because the new row may enable
           more column pins.

        Crosses that would re-execute an already-scheduled edge or touch a
        non-edge pair are unintended interactions and make a placement
        illegal, exactly as the paper requires.
        """
        seed = min(remaining) if seed is None else seed
        seed_src, seed_dst = seed
        seed_row = array.row_of(seed_src)

        row_map: dict[int, int] = {seed_row: array.row_of(seed_dst)}
        column_map: dict[int, int] = {array.col_of(seed_src): array.col_of(seed_dst)}
        pairs: list[tuple[int, int]] = [(seed_src, seed_dst)]
        scheduled: set[tuple[int, int]] = {seed}

        def cross_outcome(aod_row: int, slm_row: int, src_col: int, dst_col: int):
            """None (no interaction), "illegal", or the (ancilla, site) pair."""
            ancilla_qubit = array.qubit_at(aod_row, src_col)
            site_qubit = array.qubit_at(slm_row, dst_col)
            if ancilla_qubit is None or site_qubit is None:
                return None
            if ancilla_qubit == site_qubit:
                return "illegal"
            edge = (min(ancilla_qubit, site_qubit), max(ancilla_qubit, site_qubit))
            if edge in scheduled or edge not in remaining:
                return "illegal"
            return (ancilla_qubit, site_qubit)

        def commit(new_pairs: list[tuple[int, int]]) -> None:
            for src, dst in new_pairs:
                pairs.append((src, dst))
                scheduled.add((min(src, dst), max(src, dst)))

        def try_pin_column(src_col: int, dst_col: int) -> list[tuple[int, int]] | None:
            """Pairs gained by pinning a column, or None if illegal."""
            if src_col in column_map or dst_col in column_map.values():
                return None
            if not self._column_order_ok(column_map, src_col, dst_col):
                return None
            new_pairs: list[tuple[int, int]] = []
            seen: set[tuple[int, int]] = set()
            for aod_row, slm_row in row_map.items():
                outcome = cross_outcome(aod_row, slm_row, src_col, dst_col)
                if outcome is None:
                    continue
                if outcome == "illegal":
                    return None
                edge = (min(outcome), max(outcome))
                if edge in seen:
                    return None
                seen.add(edge)
                new_pairs.append(outcome)
            return new_pairs

        def pin_columns() -> None:
            """Pin new columns enabled by the currently placed rows."""
            progress = True
            while progress and len(column_map) < array.cols:
                progress = False
                for edge in sorted(remaining - scheduled):
                    for src, dst in (edge, edge[::-1]):
                        aod_row = array.row_of(src)
                        if aod_row not in row_map or array.row_of(dst) != row_map[aod_row]:
                            continue
                        gained = try_pin_column(array.col_of(src), array.col_of(dst))
                        if not gained:
                            continue
                        column_map[array.col_of(src)] = array.col_of(dst)
                        commit(gained)
                        progress = True
                        break
                    if progress:
                        break

        def best_row_placement(aod_row: int, candidates) -> tuple[int, list[tuple[int, int]]] | None:
            best: tuple[int, list[tuple[int, int]]] | None = None
            for slm_row in candidates:
                row_pairs: list[tuple[int, int]] = []
                seen: set[tuple[int, int]] = set()
                legal = True
                for src_col, dst_col in column_map.items():
                    outcome = cross_outcome(aod_row, slm_row, src_col, dst_col)
                    if outcome is None:
                        continue
                    if outcome == "illegal":
                        legal = False
                        break
                    edge = (min(outcome), max(outcome))
                    if edge in seen:
                        legal = False
                        break
                    seen.add(edge)
                    row_pairs.append(outcome)
                if not legal or not row_pairs:
                    continue
                if best is None or len(row_pairs) > len(best[1]):
                    best = (slm_row, row_pairs)
            return best

        pin_columns()

        # sweep rows below the seed row downward, then rows above it upward
        last_lower_y = row_map[seed_row]
        for row in range(seed_row + 1, array.rows):
            placement = best_row_placement(row, range(last_lower_y + 1, array.rows))
            if placement is None:
                continue
            slm_row, row_pairs = placement
            row_map[row] = slm_row
            last_lower_y = slm_row
            commit(row_pairs)
            pin_columns()
        last_upper_y = row_map[seed_row]
        for row in range(seed_row - 1, -1, -1):
            placement = best_row_placement(row, range(last_upper_y - 1, -1, -1))
            if placement is None:
                continue
            slm_row, row_pairs = placement
            row_map[row] = slm_row
            last_upper_y = slm_row
            commit(row_pairs)
            pin_columns()

        return StagePlan(pairs=pairs, column_map=column_map, row_map=row_map)

    @staticmethod
    def _column_order_ok(column_map: dict[int, int], new_src: int, new_dst: int) -> bool:
        """Adding ``new_src -> new_dst`` must keep the column mapping monotone."""
        for src, dst in column_map.items():
            if (src < new_src and dst >= new_dst) or (src > new_src and dst <= new_dst):
                return False
        return True


def route_qaoa(
    num_qubits: int,
    edges: Sequence[tuple[int, int]],
    config: FPQAConfig | None = None,
    options: QAOARouterOptions | None = None,
    *,
    layers: int = 1,
    full_circuit: bool = False,
) -> FPQASchedule:
    """Convenience wrapper around :class:`QAOARouter`."""
    return QAOARouter(config, options).compile(
        num_qubits, edges, layers=layers, full_circuit=full_circuit
    )

"""Customised router for QAOA circuits (Alg. 3).

A Max-Cut QAOA cost layer applies a commuting ``RZZ(γ)`` gate on every edge
of the problem graph.  Q-Pilot compiles it as follows:

1. **one flying ancilla per data qubit** is created in a single parallel
   CNOT layer (ancilla ``i`` parks next to qubit ``i`` and copies its
   Z-basis state);
2. the router then builds the schedule stage by stage.  In each stage it
   picks the unexecuted edge with the smallest first endpoint as the seed,
   pins that ancilla's AOD column onto the partner qubit's SLM column and
   its AOD row onto the partner's SLM row, greedily matches more edges
   whose ancillas live in the same AOD row (subject to the no-crossing
   column order), and then slides every other AOD row, one at a time, to
   the vertical position that realises the most additional edges without
   creating any unintended interaction;
3. after all edges are done, the ancillas fly home and are recycled with a
   single parallel CNOT layer.

Because every gate between creation and recycling is diagonal, the ancilla
copies stay valid for the whole cost layer, so the total 2-qubit cost is
``2·n + |E|`` gates in ``2 + #stages`` layers.

The stage planner itself (step 2) lives in
:mod:`repro.core.stage_planner`: this router drives the incremental
:class:`~repro.core.stage_planner.QAOAStagePlanner`, whose stages are
differentially tested against the seed full-rescan oracle
:func:`~repro.core.stage_planner.reference_plan_stage`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.circuit.qaoa import normalise_edges
from repro.core.movement import AtomMove, MovementStep
from repro.core.schedule import (
    AncillaCreationStage,
    AncillaRecycleStage,
    FPQASchedule,
    MovementStage,
    OneQubitStage,
    RydbergStage,
    ScheduledGate,
    aod,
    slm,
)
from repro.core.stage_planner import QAOAStagePlanner, StagePlan
from repro.exceptions import WorkloadError
from repro.hardware.fpqa import FPQAConfig, SLMArray

__all__ = ["QAOARouter", "QAOARouterOptions", "StagePlan", "route_qaoa"]


@dataclass
class QAOARouterOptions:
    """Knobs for the QAOA router."""

    #: RZZ rotation angle for the cost layer.
    gamma: float = 0.7
    #: RX mixer angle (only used when compiling full QAOA layers).
    beta: float = 0.3
    #: Emit the |+>^n preparation layer when compiling a full circuit.
    include_state_preparation: bool = True
    #: Emit the RX mixer layer after each cost layer.
    include_mixer: bool = True
    #: Number of candidate seed edges tried per stage; the plan realising the
    #: most edges wins.  1 reproduces the paper's smallest-index seed exactly;
    #: a few trials noticeably increase per-stage parallelism at negligible
    #: compile-time cost.
    seed_trials: int = 4


class QAOARouter:
    """Flying-ancilla router specialised for commuting two-qubit (ZZ) layers."""

    def __init__(self, config: FPQAConfig | None = None, options: QAOARouterOptions | None = None):
        self.config = config
        self.options = options or QAOARouterOptions()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def compile(
        self,
        num_qubits: int,
        edges: Iterable[tuple[int, int]],
        *,
        layers: int = 1,
        full_circuit: bool = False,
    ) -> FPQASchedule:
        """Compile ``layers`` QAOA cost layers over the given graph.

        Parameters
        ----------
        num_qubits:
            Number of graph vertices (data qubits).
        edges:
            Problem graph edges.
        layers:
            Number of QAOA layers ``p``; every layer repeats the cost-layer
            schedule (each with its own ancilla creation/recycle because the
            mixer breaks the Z-basis copies).
        full_circuit:
            When True the schedule also contains the |+> preparation and the
            RX mixer Raman stages, making it a complete executable QAOA
            program rather than just the routed cost layers.
        """
        start_time = time.perf_counter()
        if num_qubits < 1:
            raise WorkloadError("num_qubits must be >= 1")
        edge_list = normalise_edges(edges)
        for a, b in edge_list:
            if b >= num_qubits:
                raise WorkloadError(f"edge ({a}, {b}) exceeds register of {num_qubits} qubits")
        config = self.config or FPQAConfig.square_for(num_qubits)
        if config.num_slm_sites < num_qubits:
            config = config.for_qubits(num_qubits)
        array = SLMArray(config, num_qubits)

        schedule = FPQASchedule(
            config=config,
            num_data_qubits=num_qubits,
            name=f"qpilot_qaoa[{num_qubits}q_{len(edge_list)}e]",
        )
        if full_circuit and self.options.include_state_preparation:
            schedule.append(
                OneQubitStage(
                    gates=[ScheduledGate("h", (slm(q),)) for q in range(num_qubits)],
                    label="prepare_plus",
                )
            )

        stage_plans_per_layer: list[list[StagePlan]] = []
        for layer in range(layers):
            plans = self._compile_cost_layer(num_qubits, edge_list, array, schedule, layer)
            stage_plans_per_layer.append(plans)
            if full_circuit and self.options.include_mixer:
                schedule.append(
                    OneQubitStage(
                        gates=[
                            ScheduledGate("rx", (slm(q),), (2.0 * self.options.beta,))
                            for q in range(num_qubits)
                        ],
                        label=f"mixer{layer}",
                    )
                )

        schedule.metadata.update(
            {
                "router": "qaoa",
                "compile_time_s": time.perf_counter() - start_time,
                "num_edges": len(edge_list),
                "stages_per_layer": [len(plans) for plans in stage_plans_per_layer],
            }
        )
        return schedule

    # ------------------------------------------------------------------
    # cost-layer compilation
    # ------------------------------------------------------------------
    def _compile_cost_layer(
        self,
        num_qubits: int,
        edges: list[tuple[int, int]],
        array: SLMArray,
        schedule: FPQASchedule,
        layer: int,
    ) -> list[StagePlan]:
        gamma = self.options.gamma
        label = f"layer{layer}"

        # 1. create one ancilla per data qubit (slot i mirrors qubit i)
        creation = [(slm(q), q) for q in range(num_qubits)]
        schedule.append(
            AncillaCreationStage(copies=creation, uses_atom_transfer=True, label=f"{label}:create")
        )

        ancilla_positions: dict[int, tuple[float, float]] = {
            q: tuple(map(float, array.position(q))) for q in range(num_qubits)
        }

        # 2. greedy stage construction via the shared incremental planner
        planner = QAOAStagePlanner(array, edges, seed_trials=self.options.seed_trials)
        plans: list[StagePlan] = []
        while planner:
            plan = planner.plan_best_stage()
            planner.commit(plan)
            moves = []
            gates = []
            for ancilla_qubit, target_qubit in plan.pairs:
                target_row = plan.row_map[array.row_of(ancilla_qubit)]
                target_col = plan.column_map[array.col_of(ancilla_qubit)]
                new_pos = (float(target_row), float(target_col))
                moves.append(AtomMove(ancilla_qubit, ancilla_positions[ancilla_qubit], new_pos))
                ancilla_positions[ancilla_qubit] = new_pos
                gates.append(
                    ScheduledGate("rzz", (aod(ancilla_qubit), slm(target_qubit)), (gamma,))
                )
            stage_no = len(plans)
            schedule.append(
                MovementStage(step=MovementStep(moves=moves), label=f"{label}:move{stage_no}")
            )
            schedule.append(RydbergStage(gates=gates, label=f"{label}:stage{stage_no}"))
            plans.append(plan)

        # 3. fly every displaced ancilla home, then recycle all of them
        home_moves = []
        for q in range(num_qubits):
            home = tuple(map(float, array.position(q)))
            if ancilla_positions[q] != home:
                home_moves.append(AtomMove(q, ancilla_positions[q], home))
        if home_moves:
            schedule.append(
                MovementStage(step=MovementStep(moves=home_moves), label=f"{label}:return")
            )
        schedule.append(
            AncillaRecycleStage(copies=creation, uses_atom_transfer=True, label=f"{label}:recycle")
        )
        return plans

def route_qaoa(
    num_qubits: int,
    edges: Sequence[tuple[int, int]],
    config: FPQAConfig | None = None,
    options: QAOARouterOptions | None = None,
    *,
    layers: int = 1,
    full_circuit: bool = False,
) -> FPQASchedule:
    """Convenience wrapper around :class:`QAOARouter`."""
    return QAOARouter(config, options).compile(
        num_qubits, edges, layers=layers, full_circuit=full_circuit
    )

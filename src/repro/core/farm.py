"""Compile-farm: batched, parallel router-in-the-loop compilation.

Design-space exploration (the Fig. 14 study) recompiles the *same*
workload against many candidate FPQA configurations.  After PRs 1-3 made
each single compile fast, the remaining order of magnitude comes from
batching: a sweep is an embarrassingly parallel grid of independent
compilations, so the farm fans them out across a
:class:`concurrent.futures.ProcessPoolExecutor`.

Three pieces make that possible:

* :class:`WorkloadSpec` — a declarative, picklable description of one
  workload (random circuit / Pauli strings / QAOA graph).  The heavy
  workload object is built *lazily inside the worker process* from a few
  scalars, so jobs cross process boundaries as tiny messages instead of
  pickled circuits.  Specs replace the closure-only ``compile_fn`` API
  (closures cannot be pickled); the legacy closure path survives as a
  compatibility shim in :func:`repro.core.dse.sweep_array_width`.
* :class:`FarmJob` — one grid cell: ``(WorkloadSpec, FPQAConfig,
  FarmOptions)``.  Duplicate cells are memoised by a
  ``(workload fingerprint, config, options)`` key and compiled once.
* :class:`CompileFarm` — the executor.  ``executor="process"`` fans jobs
  across worker processes; ``executor="reference"`` is the deterministic
  in-process serial backend that runs the *same* job function in
  submission order — the oracle the differential suite pins the parallel
  backend against (the ROADMAP oracle pattern applied to batching).

Per-config immutables are shared, not re-built per job: every worker
process warms the gate-matrix ``lru_cache`` in its initialiser and keeps
module-level caches of built workloads (keyed by fingerprint) and SABRE
routers (whose all-pairs distance matrix is the expensive part), so a
sweep of W widths pays for each workload build and each distance matrix
once per worker instead of once per grid cell.

Two service-facing extensions (PR 5) ride on the same job model:

* ``executor="thread"`` fans jobs across a
  :class:`~concurrent.futures.ThreadPoolExecutor` — no process-spawn or
  pickling cost, which suits a long-lived compile service whose traffic
  is dominated by cache lookups and other IO.  It joins the same
  executor-oracle differential suite as the process backend.
* :meth:`CompileFarm.iter_results` streams ``(index, result)`` pairs as
  jobs finish instead of materialising the whole grid, so sweeps too
  large to hold in memory can be consumed incrementally
  (``sweep_grid(..., stream=True)`` builds on it).  ``run`` is a thin
  order-restoring wrapper around it.

Fault tolerance (PR 6): a sweep must survive partial failure — a worker
death previously raised ``BrokenProcessPool`` out of ``iter_results``
and lost the whole grid.  :class:`FarmPolicy` configures per-job
``timeout_s``, bounded retries with exponential backoff and seeded
jitter, and ``max_pool_respawns``.  The executor loop recovers a broken
process pool by respawning it once and resubmitting only the unfinished
jobs (memoised results are kept); when the respawn budget is exhausted
it *degrades* to the in-process reference executor so the sweep always
completes.  A job that exhausts its retry budget yields a
:class:`FarmJobError` record instead of raising, so one poisoned grid
cell cannot take down its neighbours.  The degradation ladder is
pinned by the chaos differential suite (``tests/test_faults.py``): with
a seeded :class:`~repro.utils.faults.FaultPlan` attached to
:class:`FarmOptions` (default off — zero overhead), a recovered run is
byte-identical to the fault-free ``reference`` run.

Overload robustness (PR 8): the serving layer propagates end-to-end
request deadlines into the farm as *relative* per-job budgets
(``iter_results(..., deadlines=...)``).  A job whose budget is already
spent when the dispatch loop reaches it is **cooperatively cancelled**
before it touches an executor — its slot finalises as a
:class:`FarmJobError` wrapping :class:`~repro.exceptions.DeadlineExceeded`
with no retries, so shed or expired work never burns a worker.  An
in-flight job whose deadline passes is abandoned the same way (terminal,
unlike a ``timeout_s`` overrun, which retries).  The ``stall-dispatch``
fault kind sleeps in the dispatch loop itself, which is how the overload
chaos suite forces deterministic expiries and breaker trips.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
import traceback as traceback_module
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, ClassVar, Iterable, Iterator, Sequence

from repro.utils.faults import (
    STALL_DISPATCH,
    FaultPlan,
    deterministic_draw,
    inject_compile_faults,
)

from repro.core.compiler import CompilationResult, QPilotCompiler
from repro.core.generic_router import GenericRouterOptions
from repro.core.qaoa_router import QAOARouterOptions
from repro.core.qsim_router import QSimRouterOptions
from repro.exceptions import DeadlineExceeded, QPilotError
from repro.hardware.fpqa import FPQAConfig
from repro.obs.events import log_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanRecord, Tracer, activate, span

logger = logging.getLogger(__name__)

#: Workload families the farm understands.  ``circuit``/``qsim``/``qaoa``
#: are the synthetic paper benchmarks; ``qasm`` carries untrusted
#: user-uploaded OpenQASM text (content-addressed by its sha1); ``qec``
#: and ``molecule`` expose the seed repo's surface-code and chemistry
#: workloads to the farm and the serving stack.
WORKLOAD_KINDS = ("circuit", "qsim", "qaoa", "qasm", "qec", "molecule")


def _canonical_params(params: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Sorted, tuple-ified (hashable) view of a params dict."""

    def freeze(value):
        if isinstance(value, (list, tuple)):
            return tuple(freeze(v) for v in value)
        return value

    return tuple(sorted((k, freeze(v)) for k, v in params.items()))


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative, picklable description of one workload.

    The spec stores only scalars (sizes, probabilities, seeds, edge lists)
    and builds the actual workload object on demand with :meth:`build` —
    in a farm, inside the worker process.  Construction is deterministic:
    equal specs always build equal workloads, which is what makes the
    parallel/serial differential oracle meaningful.
    """

    kind: str
    name: str
    num_qubits: int
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise QPilotError(
                f"unknown workload kind {self.kind!r}; expected one of {WORKLOAD_KINDS}"
            )
        if self.num_qubits < 1:
            raise QPilotError("workload needs at least one qubit")
        if self.kind == "qasm":
            self._validate_qasm()
        elif self.kind == "qec":
            self._validate_qec()
        elif self.kind == "molecule":
            self._validate_molecule()

    def _validate_qasm(self) -> None:
        """A qasm spec cannot exist with unparsable text or a wrong size.

        The ingestion boundary (:meth:`qasm` / ``CompileService.submit_qasm``)
        already applied a :class:`repro.circuit.CircuitLimits` guard; this
        re-parse (unbounded, structural only) guarantees that hand-built or
        archived specs are equally incapable of smuggling invalid text past
        the validators and into a farm worker.
        """
        from repro.circuit.qasm import CircuitLimits, from_qasm

        text = self.param("qasm")
        if not isinstance(text, str) or not text.strip():
            raise QPilotError("qasm workload needs a non-empty 'qasm' text param")
        circuit = from_qasm(text, limits=CircuitLimits.unbounded())
        if circuit.num_qubits != self.num_qubits:
            raise QPilotError(
                f"qasm spec claims {self.num_qubits} qubits but the text declares "
                f"qreg[{circuit.num_qubits}]"
            )

    def _validate_qec(self) -> None:
        distance = self.param("distance")
        rounds = self.param("rounds", 1)
        if not isinstance(distance, int) or distance < 2:
            raise QPilotError(f"qec workload needs an int distance >= 2, got {distance!r}")
        if not isinstance(rounds, int) or rounds < 1:
            raise QPilotError(f"qec workload needs an int rounds >= 1, got {rounds!r}")
        expected = 2 * distance * distance - 1
        if self.num_qubits != expected:
            raise QPilotError(
                f"distance-{distance} surface code uses {expected} qubits "
                f"(data + ancilla), spec claims {self.num_qubits}"
            )

    def _validate_molecule(self) -> None:
        from repro.workloads.molecules import MOLECULES

        molecule = self.param("molecule")
        if molecule not in MOLECULES:
            raise QPilotError(
                f"unknown molecule {molecule!r}; choose from {sorted(MOLECULES)}"
            )
        expected = MOLECULES[molecule].num_qubits
        if self.num_qubits != expected:
            raise QPilotError(
                f"molecule {molecule} uses {expected} qubits, spec claims {self.num_qubits}"
            )

    # -- constructors ---------------------------------------------------
    @classmethod
    def random_circuit(
        cls, num_qubits: int, gate_multiple: int, *, seed: int = 2024, name: str | None = None
    ) -> "WorkloadSpec":
        """Random circuit with ``gate_multiple * num_qubits`` CX gates (Fig. 11)."""
        return cls(
            kind="circuit",
            name=name or f"random_{gate_multiple}x_{num_qubits}q",
            num_qubits=num_qubits,
            params=_canonical_params({"gate_multiple": int(gate_multiple), "seed": int(seed)}),
        )

    @classmethod
    def qsim(
        cls,
        num_qubits: int,
        pauli_probability: float,
        *,
        num_strings: int = 100,
        seed: int = 2024,
        name: str | None = None,
    ) -> "WorkloadSpec":
        """Quantum-simulation workload of random Pauli strings (Fig. 12)."""
        return cls(
            kind="qsim",
            name=name or f"qsim_p{pauli_probability}_{num_qubits}q",
            num_qubits=num_qubits,
            params=_canonical_params(
                {
                    "pauli_probability": float(pauli_probability),
                    "num_strings": int(num_strings),
                    "seed": int(seed),
                }
            ),
        )

    @classmethod
    def qaoa_random_graph(
        cls,
        num_qubits: int,
        edge_probability: float,
        *,
        seed: int = 2024,
        layers: int = 1,
        name: str | None = None,
    ) -> "WorkloadSpec":
        """QAOA on an Erdős–Rényi G(n, p) graph (Fig. 13)."""
        return cls(
            kind="qaoa",
            name=name or f"qaoa_p{edge_probability}_{num_qubits}q",
            num_qubits=num_qubits,
            params=_canonical_params(
                {
                    "graph": "random",
                    "edge_probability": float(edge_probability),
                    "seed": int(seed),
                    "layers": int(layers),
                }
            ),
        )

    @classmethod
    def qaoa_regular_graph(
        cls,
        num_qubits: int,
        degree: int,
        *,
        seed: int = 2024,
        layers: int = 1,
        name: str | None = None,
    ) -> "WorkloadSpec":
        """QAOA on a random d-regular graph (Fig. 13)."""
        return cls(
            kind="qaoa",
            name=name or f"qaoa_{degree}reg_{num_qubits}q",
            num_qubits=num_qubits,
            params=_canonical_params(
                {
                    "graph": "regular",
                    "degree": int(degree),
                    "seed": int(seed),
                    "layers": int(layers),
                }
            ),
        )

    @classmethod
    def qaoa_edges(
        cls,
        num_qubits: int,
        edges: Iterable[tuple[int, int]],
        *,
        layers: int = 1,
        name: str | None = None,
    ) -> "WorkloadSpec":
        """QAOA on an explicit edge list."""
        edge_tuple = tuple(sorted((min(a, b), max(a, b)) for a, b in edges))
        return cls(
            kind="qaoa",
            name=name or f"qaoa_edges_{num_qubits}q",
            num_qubits=num_qubits,
            params=_canonical_params({"graph": "edges", "edges": edge_tuple, "layers": layers}),
        )

    @classmethod
    def qasm(
        cls, text: str, *, limits: "CircuitLimits | None" = None, name: str | None = None
    ) -> "WorkloadSpec":
        """Untrusted OpenQASM 2.0 upload, content-addressed by its sha1.

        The text is validated under ``limits`` (default
        :data:`repro.circuit.DEFAULT_LIMITS`) *here*, before the spec —
        and therefore any farm job — exists; a :class:`CircuitError`
        with line/column escapes on anything malformed, hostile or
        oversized.  Identical text yields an identical
        :meth:`fingerprint` (the name is excluded from it), so repeat
        uploads coalesce in the queue and warm-serve from the store
        exactly like synthetic workloads.
        """
        from repro.circuit.qasm import from_qasm

        circuit = from_qasm(text, limits=limits)
        sha1 = hashlib.sha1(text.encode("utf-8", errors="surrogatepass")).hexdigest()
        return cls(
            kind="qasm",
            name=name or f"qasm_{sha1[:12]}",
            num_qubits=circuit.num_qubits,
            params=_canonical_params({"qasm": text}),
        )

    @classmethod
    def qec_surface_code(
        cls, distance: int, *, rounds: int = 1, name: str | None = None
    ) -> "WorkloadSpec":
        """Surface-code syndrome-extraction circuit (``workloads/qec.py``).

        ``distance²`` data qubits plus ``distance² − 1`` stabilizer
        ancillas, measured ``rounds`` times.
        """
        distance = int(distance)
        rounds = int(rounds)
        return cls(
            kind="qec",
            name=name or f"surface_d{distance}_r{rounds}",
            num_qubits=2 * distance * distance - 1,
            params=_canonical_params(
                {"code": "surface", "distance": distance, "rounds": rounds}
            ),
        )

    @classmethod
    def molecule(cls, molecule: str, *, name: str | None = None) -> "WorkloadSpec":
        """Table 1 molecular Hamiltonian (``workloads/molecules.py``)."""
        from repro.workloads.molecules import MOLECULES

        if molecule not in MOLECULES:
            raise QPilotError(
                f"unknown molecule {molecule!r}; choose from {sorted(MOLECULES)}"
            )
        return cls(
            kind="molecule",
            name=name or f"molecule_{molecule}",
            num_qubits=MOLECULES[molecule].num_qubits,
            params=_canonical_params({"molecule": molecule}),
        )

    # -- materialisation ------------------------------------------------
    def param(self, key: str, default=None):
        for k, v in self.params:
            if k == key:
                return v
        return default

    def qasm_sha1(self) -> str:
        """Content hash of an uploaded QASM text (the upload's identity)."""
        if self.kind != "qasm":
            raise QPilotError(f"qasm_sha1 is only defined for qasm workloads, not {self.kind}")
        text = self.param("qasm")
        return hashlib.sha1(text.encode("utf-8", errors="surrogatepass")).hexdigest()

    def build(self):
        """Materialise the workload object (circuit / strings / edge list)."""
        if self.kind == "qasm":
            from repro.circuit.qasm import CircuitLimits, from_qasm

            # Ingestion already validated under real limits; the unbounded
            # re-parse here just rebuilds the (content-addressed) circuit.
            return from_qasm(self.param("qasm"), limits=CircuitLimits.unbounded())
        if self.kind == "qec":
            from repro.workloads.qec import surface_code_syndrome_circuit

            return surface_code_syndrome_circuit(
                self.param("distance"), rounds=self.param("rounds", 1)
            )
        if self.kind == "molecule":
            from repro.workloads.molecules import molecule_pauli_strings

            return molecule_pauli_strings(self.param("molecule"))
        if self.kind == "circuit":
            from repro.circuit.random_circuits import random_cx_circuit

            return random_cx_circuit(
                self.num_qubits,
                self.param("gate_multiple") * self.num_qubits,
                seed=self.param("seed"),
            )
        if self.kind == "qsim":
            from repro.circuit.pauli import random_pauli_strings

            return random_pauli_strings(
                self.num_qubits,
                self.param("num_strings"),
                self.param("pauli_probability"),
                seed=self.param("seed"),
            )
        graph = self.param("graph")
        if graph == "edges":
            return [tuple(edge) for edge in self.param("edges")]
        if graph == "regular":
            from repro.workloads.graphs import regular_graph_edges

            return regular_graph_edges(
                self.num_qubits, self.param("degree"), seed=self.param("seed")
            )
        from repro.workloads.graphs import random_graph_edges

        return random_graph_edges(
            self.num_qubits, self.param("edge_probability"), seed=self.param("seed")
        )

    def compile_with(self, compiler: QPilotCompiler, built=None) -> CompilationResult:
        """Compile this workload with the right router of ``compiler``."""
        workload = self.build() if built is None else built
        if self.kind in ("circuit", "qasm", "qec"):
            return compiler.compile_circuit(workload)
        if self.kind in ("qsim", "molecule"):
            return compiler.compile_pauli_strings(workload)
        return compiler.compile_qaoa(
            self.num_qubits, workload, layers=int(self.param("layers", 1))
        )

    def fingerprint(self) -> str:
        """Stable content hash — the workload axis of the farm's memo key."""
        payload = json.dumps(
            {"kind": self.kind, "num_qubits": self.num_qubits, "params": self.params},
            sort_keys=True,
            default=list,
        )
        return hashlib.sha1(payload.encode()).hexdigest()

    # -- archiving ------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-able spec, the workload half of a sweep archive's job record."""
        return {
            "kind": self.kind,
            "name": self.name,
            "num_qubits": self.num_qubits,
            "params": [[key, value] for key, value in self.params],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WorkloadSpec":
        """Rebuild a spec from :meth:`to_dict` (or its JSON round-trip).

        ``_canonical_params`` re-freezes list values back into tuples, so
        a round-tripped spec is *equal* to the original and shares its
        :meth:`fingerprint` — which is what lets an archived sweep warm
        the schedule store under the exact digests live traffic will ask
        for.
        """
        return cls(
            kind=str(data["kind"]),
            name=str(data["name"]),
            num_qubits=int(data["num_qubits"]),
            params=_canonical_params({str(k): v for k, v in data.get("params", ())}),
        )


@dataclass(frozen=True)
class FarmOptions:
    """Router knobs + extras for one farm job (the grid's *router axis*).

    ``label`` names the option set in sweep axes; ``include_sabre`` also
    routes circuit-kind workloads through the SABRE baseline on the
    smallest square grid device and records the swap count, so design
    points carry a baseline fingerprint.

    ``faults`` attaches a seeded :class:`~repro.utils.faults.FaultPlan`
    (default ``None`` — injection entirely off).  Riding on the options
    is what carries the plan into worker processes without globals, but
    like ``label`` it is *excluded* from :meth:`key` and hence from
    :meth:`FarmJob.digest`: injected faults must never change what a job
    computes, only how bumpy the road there is — a recovered run stays
    byte-identical (and cache-compatible) with a fault-free one.  Jobs
    differing only in their plan are therefore memoised together; use
    one plan per run.

    ``trace`` follows the same precedent for observability: when set,
    the worker entry points run the compile under a throwaway
    :class:`~repro.obs.tracing.Tracer` and return the finished span
    records on the result object.  Tracing never changes what a job
    computes, so ``trace`` is excluded from :meth:`key`, :meth:`digest`
    and :meth:`to_dict` exactly like ``faults``.
    """

    label: str = "default"
    generic: GenericRouterOptions | None = None
    qsim: QSimRouterOptions | None = None
    qaoa: QAOARouterOptions | None = None
    include_sabre: bool = False
    faults: FaultPlan | None = None
    trace: bool = False

    def key(self) -> str:
        """Canonical memo key (dataclass reprs are deterministic)."""
        return repr((self.generic, self.qsim, self.qaoa, self.include_sabre))

    # -- archiving ------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-able options — ``faults`` excluded, exactly like :meth:`key`.

        A fault plan never changes what a job computes, so it has no
        place in an archive meant to reproduce the job.
        """
        data: dict[str, Any] = {"label": self.label, "include_sabre": self.include_sabre}
        for name in ("generic", "qsim", "qaoa"):
            value = getattr(self, name)
            data[name] = None if value is None else asdict(value)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FarmOptions":
        """Rebuild options from :meth:`to_dict` (or its JSON round-trip)."""

        def freeze(value):
            if isinstance(value, list):
                return tuple(freeze(v) for v in value)
            return value

        router_classes = {
            "generic": GenericRouterOptions,
            "qsim": QSimRouterOptions,
            "qaoa": QAOARouterOptions,
        }
        kwargs: dict[str, Any] = {
            "label": str(data.get("label", "default")),
            "include_sabre": bool(data.get("include_sabre", False)),
        }
        for name, klass in router_classes.items():
            value = data.get(name)
            kwargs[name] = (
                None
                if value is None
                else klass(**{k: freeze(v) for k, v in value.items()})
            )
        return cls(**kwargs)


@dataclass(frozen=True)
class FarmJob:
    """One grid cell: compile ``workload`` on ``config`` with ``options``."""

    workload: WorkloadSpec
    config: FPQAConfig
    options: FarmOptions = field(default_factory=FarmOptions)

    def key(self) -> tuple:
        """Memo key: jobs with equal keys produce identical metrics."""
        return (self.workload.fingerprint(), self.config, self.options.key())

    def digest(self) -> str:
        """Content-addressed sha1 of :meth:`key` — the schedule-store key.

        Two jobs share a digest exactly when they share a memo key, so a
        disk cache addressed by digest answers any repeat of a grid cell
        the farm would have memoised in memory.
        """
        from repro.utils.serialization import config_to_dict

        payload = json.dumps(
            {
                "workload": self.workload.fingerprint(),
                "config": config_to_dict(self.config),
                "options": self.options.key(),
            },
            sort_keys=True,
        )
        return hashlib.sha1(payload.encode()).hexdigest()

    def fault_key(self) -> str:
        """Human-matchable key fault rules filter on (stable per job).

        A pure function of the job (kind, display name, array width), so
        a :class:`~repro.utils.faults.FaultPlan` decision is identical on
        every executor — the precondition for the chaos differential
        suite.  Display names appear here (unlike in :meth:`digest`)
        because rules match by substring and names are what humans write.
        """
        return f"{self.workload.kind}:{self.workload.name}@w{self.config.slm_cols}"


@dataclass(frozen=True)
class PointMetrics:
    """Compact, picklable metrics of one compiled design point.

    Workers return these instead of full schedules so results cross the
    process boundary as a few floats.  All values except the wall-clock
    ``compile_time_s`` are deterministic functions of the job.

    ``spans`` carries the worker-side trace records when the job ran
    with ``FarmOptions(trace=True)`` (``None`` otherwise — the default
    path pays nothing).  Like ``compile_time_s`` it is volatile
    observability state: excluded from :meth:`to_dict` (and therefore
    from store entries and sweep archives) and cleared by
    :meth:`deterministic`.
    """

    #: Discriminator shared with :class:`FarmJobResult`/:class:`FarmJobError`.
    failed: ClassVar[bool] = False

    depth: int
    error_rate: float
    success_probability: float
    num_two_qubit_gates: int
    num_one_qubit_gates: int
    num_atoms: int
    total_movement_distance: float
    execution_time_us: float
    average_parallelism: float
    compile_time_s: float | None = None
    sabre_num_swaps: int | None = None
    spans: tuple[SpanRecord, ...] | None = None

    @classmethod
    def from_result(
        cls, result: CompilationResult, *, sabre_num_swaps: int | None = None
    ) -> "PointMetrics":
        ev = result.evaluation
        return cls(
            depth=ev.depth,
            error_rate=ev.error_rate,
            success_probability=ev.success_probability,
            num_two_qubit_gates=ev.num_two_qubit_gates,
            num_one_qubit_gates=ev.num_one_qubit_gates,
            num_atoms=ev.num_atoms,
            total_movement_distance=ev.total_movement_distance,
            execution_time_us=ev.execution_time_us,
            average_parallelism=ev.average_parallelism,
            compile_time_s=ev.compile_time_s,
            sabre_num_swaps=sabre_num_swaps,
        )

    def to_dict(self) -> dict[str, Any]:
        # spans are volatile observability state and never enter the
        # serialised form (store entries / archives stay byte-stable)
        return {
            f.name: getattr(self, f.name) for f in fields(self) if f.name != "spans"
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PointMetrics":
        names = {f.name for f in fields(cls)} - {"spans"}
        return cls(**{k: v for k, v in data.items() if k in names})

    def deterministic(self) -> "PointMetrics":
        """Copy with the volatile fields cleared (for comparisons)."""
        return replace(self, compile_time_s=None, spans=None)


@dataclass(frozen=True)
class FarmJobResult:
    """A compiled grid cell *with* its schedule, for service/store use.

    The default farm path returns bare :class:`PointMetrics` (schedules
    stay in the worker); the compile service needs the schedule itself to
    persist it, so ``CompileFarm.run(..., with_schedules=True)`` returns
    these instead.  ``schedule`` is the canonical serialised dict
    (:func:`repro.utils.serialization.schedule_to_dict` with
    ``canonical=True``) — a plain JSON-compatible payload that crosses
    process boundaries cheaply and is byte-stable across identical
    compiles, which is what makes the content-addressed store testable.
    """

    failed: ClassVar[bool] = False

    metrics: PointMetrics
    router: str
    schedule: dict[str, Any]
    #: Worker-side trace records (populated when ``FarmOptions.trace`` is
    #: set; empty otherwise).  Volatile observability state — the service
    #: grafts these into its own tracer and never persists them.
    spans: tuple[SpanRecord, ...] = ()


@dataclass(frozen=True)
class FarmJobError:
    """Terminal failure record of one grid cell (yielded, never raised).

    When a job exhausts its retry budget the farm yields one of these in
    the result slot instead of letting the exception escape
    :meth:`CompileFarm.iter_results` — one poisoned cell must not lose
    the rest of the sweep.  Carries the original exception type and
    traceback so service-layer waiters can re-raise a faithful, typed
    :class:`~repro.exceptions.CompileError`.
    """

    failed: ClassVar[bool] = True

    error_type: str
    message: str
    traceback: str
    attempts: int
    fault_key: str

    @classmethod
    def from_exception(
        cls, exc: BaseException, *, attempts: int, fault_key: str
    ) -> "FarmJobError":
        return cls(
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            ),
            attempts=attempts,
            fault_key=fault_key,
        )

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class FarmPolicy:
    """Fault-tolerance knobs of one farm run (the degradation ladder).

    * ``timeout_s`` — per-job wall-clock budget on pooled executors; an
      overdue job counts as one failed attempt and is retried.  The
      in-process (reference/degraded) path cannot interrupt a compile,
      so timeouts apply only to pooled backends.
    * ``max_retries`` — failed attempts a job may retry (beyond its
      first attempt) before it finalises as a :class:`FarmJobError`.
    * ``backoff_base_s``/``backoff_max_s``/``backoff_jitter`` — retry
      delay ``min(max, base * 2**(failures-1))``, stretched by up to
      ``jitter`` fraction of itself using a *seeded* draw
      (:func:`~repro.utils.faults.deterministic_draw`), so backoff
      schedules are reproducible run to run.
    * ``max_pool_respawns`` — broken process pools respawned per run
      (only unfinished jobs are resubmitted; memoised results are kept).
      Once exhausted the run degrades to the in-process reference
      executor and always completes.
    """

    timeout_s: float | None = None
    max_retries: int = 2
    backoff_base_s: float = 0.02
    backoff_max_s: float = 1.0
    backoff_jitter: float = 0.25
    seed: int = 0
    max_pool_respawns: int = 1

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise QPilotError("timeout_s must be positive (or None to disable)")
        if self.max_retries < 0:
            raise QPilotError("max_retries must be non-negative")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise QPilotError("backoff delays must be non-negative")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise QPilotError("backoff_jitter must be in [0, 1]")
        if self.max_pool_respawns < 0:
            raise QPilotError("max_pool_respawns must be non-negative")

    def backoff_s(self, key: str, failures: int) -> float:
        """Delay before retry number ``failures`` of job ``key``."""
        if self.backoff_base_s <= 0:
            return 0.0
        base = min(self.backoff_max_s, self.backoff_base_s * 2 ** max(0, failures - 1))
        return base * (1.0 + self.backoff_jitter * deterministic_draw(self.seed, "backoff", key, failures))


# ---------------------------------------------------------------------------
# Worker side: module-level so it pickles by reference, with per-process
# caches of the expensive immutables.

#: Built workloads keyed by spec fingerprint (one build per worker, not per job).
_WORKLOAD_CACHE: dict[str, Any] = {}
#: SABRE routers keyed by grid side; each holds the cached all-pairs distance matrix.
_SABRE_ROUTER_CACHE: dict[int, Any] = {}
_CACHE_LIMIT = 64


def _cached_workload(spec: WorkloadSpec):
    # thread executor shares this cache across workers: hold the built
    # workload in a local so a concurrent clear() can't turn the final
    # lookup into a KeyError
    key = spec.fingerprint()
    workload = _WORKLOAD_CACHE.get(key)
    if workload is None:
        workload = spec.build()
        if len(_WORKLOAD_CACHE) >= _CACHE_LIMIT:
            _WORKLOAD_CACHE.clear()
        _WORKLOAD_CACHE[key] = workload
    return workload


def _sabre_swap_count(spec: WorkloadSpec, circuit) -> int:
    """Route a circuit workload through the SABRE baseline; cache the router."""
    import math

    from repro.baselines.layout import trivial_layout
    from repro.baselines.sabre import SabreOptions, SabreRouter
    from repro.hardware import grid_device

    side = int(math.ceil(math.sqrt(spec.num_qubits)))
    router = _SABRE_ROUTER_CACHE.get(side)
    if router is None:
        router = SabreRouter(grid_device(side, side), SabreOptions(layout_trials=1))
        if len(_SABRE_ROUTER_CACHE) >= _CACHE_LIMIT:
            _SABRE_ROUTER_CACHE.clear()
        _SABRE_ROUTER_CACHE[side] = router
    layout = trivial_layout(circuit, router.device)
    return router.run(circuit, layout).num_swaps


#: True only inside a process-pool worker (set by the initialiser there);
#: gates the ``crash-worker`` fault so in-process execution never _exits.
_IN_PROCESS_WORKER = False


def _worker_init(in_process_worker: bool = False) -> None:
    """Per-worker initialiser: warm the shared gate-matrix caches once."""
    global _IN_PROCESS_WORKER
    _IN_PROCESS_WORKER = _IN_PROCESS_WORKER or in_process_worker
    from repro.circuit.gate import gate_diagonal, gate_matrix_readonly

    for name in ("h", "x", "cx", "cz", "swap"):
        gate_matrix_readonly(name)
        gate_diagonal(name)


def _compile_attempt(job: FarmJob, attempt: int) -> tuple[CompilationResult, PointMetrics]:
    """One compile attempt: fault injection, workload build, route, SABRE.

    Span calls are the shared no-op unless a tracer is active (worker
    tracer when ``options.trace``, or a caller's tracer on the inline
    reference path), so the default path pays a single attribute check.
    """
    workload_spec = job.workload
    with span("compile", workload=workload_spec.name, kind=workload_spec.kind, attempt=attempt):
        if job.options.faults is not None:
            inject_compile_faults(
                job.options.faults,
                job.fault_key(),
                attempt,
                in_process_worker=_IN_PROCESS_WORKER,
            )
        options = job.options
        compiler = QPilotCompiler(
            job.config,
            generic_options=options.generic,
            qsim_options=options.qsim,
            qaoa_options=options.qaoa,
        )
        with span("workload-build", kind=workload_spec.kind):
            workload = _cached_workload(workload_spec)
        start = time.perf_counter()
        result = workload_spec.compile_with(compiler, built=workload)
        elapsed = time.perf_counter() - start
        sabre_swaps = None
        if options.include_sabre and workload_spec.kind == "circuit":
            with span("sabre"):
                sabre_swaps = _sabre_swap_count(workload_spec, workload)
        metrics = PointMetrics.from_result(result, sabre_num_swaps=sabre_swaps)
        if metrics.compile_time_s is None:
            metrics = replace(metrics, compile_time_s=elapsed)
        return result, metrics


def _compile_job(
    job: FarmJob, attempt: int = 0
) -> tuple[CompilationResult, PointMetrics, tuple[SpanRecord, ...] | None]:
    """Compile one grid cell; shared body of the two worker entry points.

    ``attempt`` is the number of failed attempts before this one.  It is
    threaded from the executor so fault-plan decisions — pure functions
    of ``(seed, kind, fault_key, attempt)`` — fire identically on every
    backend, and a bounded fault stops firing once retries pass it.

    With ``options.trace`` the attempt runs under a throwaway worker-local
    :class:`Tracer` and the finished records come back as the third
    element (picklable, ready for the caller to :func:`adopt`); otherwise
    the third element is ``None`` and no tracer is created.
    """
    if not job.options.trace:
        result, metrics = _compile_attempt(job, attempt)
        return result, metrics, None
    tracer = Tracer()
    with activate(tracer):
        result, metrics = _compile_attempt(job, attempt)
    return result, metrics, tuple(tracer.records())


def compile_farm_job(job: FarmJob, attempt: int = 0) -> PointMetrics:
    """Compile one grid cell and return its metrics (runs in the worker)."""
    _, metrics, spans = _compile_job(job, attempt)
    if spans:
        metrics = replace(metrics, spans=spans)
    return metrics


def compile_farm_job_with_schedule(job: FarmJob, attempt: int = 0) -> FarmJobResult:
    """Compile one grid cell and return metrics *plus* the canonical schedule.

    The schedule is serialised to its canonical dict inside the worker, so
    only JSON-compatible data crosses the process boundary.
    """
    from repro.utils.serialization import schedule_to_dict

    result, metrics, spans = _compile_job(job, attempt)
    return FarmJobResult(
        metrics=metrics,
        router=result.router,
        schedule=schedule_to_dict(result.schedule, canonical=True),
        spans=spans or (),
    )


# ---------------------------------------------------------------------------
# Executor side.

#: Executor backends: the serial one is the deterministic oracle the
#: differential suite pins the pooled backends against.  ``thread`` keeps
#: everything in-process (no spawn/pickle cost — the compile-service
#: backend); ``process`` fans across worker processes.
EXECUTORS = ("reference", "serial", "process", "parallel", "thread", "threads")

#: Aliases accepted by :class:`CompileFarm` -> canonical backend name.
_EXECUTOR_ALIASES = {
    "serial": "reference",
    "parallel": "process",
    "threads": "thread",
}


def available_workers() -> int:
    """Worker processes a ``process`` farm would use by default.

    Prefers the scheduler affinity mask (which honours cgroup/container
    CPU limits) over the raw host core count.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


class CompileFarm:
    """Batch executor for grids of :class:`FarmJob` compilations.

    ``run`` memoises duplicate jobs by :meth:`FarmJob.key` (each unique
    cell compiles once) and preserves submission order in the returned
    list regardless of executor, so serial and parallel runs are
    positionally comparable.  :meth:`iter_results` is the streaming
    variant: it yields ``(index, result)`` pairs as jobs finish, holding
    only in-flight results in memory.

    Failure handling is governed by :class:`FarmPolicy`: failed attempts
    retry with seeded exponential backoff, overdue pooled jobs time out
    and retry, a broken process pool is respawned (resubmitting only the
    unfinished jobs), and once the respawn budget is exhausted the rest
    of the run degrades to the in-process reference path.  A job that
    exhausts its retries lands as a :class:`FarmJobError` in its result
    slot — exceptions never escape :meth:`iter_results`.  ``job_reports``
    maps each job index of the last run to its ``status``
    (``ok``/``retried``/``failed``), attempt count and error record.
    """

    def __init__(
        self,
        executor: str = "process",
        *,
        max_workers: int | None = None,
        policy: FarmPolicy | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if executor not in EXECUTORS:
            raise QPilotError(f"unknown farm executor {executor!r}; expected one of {EXECUTORS}")
        self.executor = _EXECUTOR_ALIASES.get(executor, executor)
        self.max_workers = max_workers
        self.policy = policy or FarmPolicy()
        #: Optional metrics sink: cumulative ``farm_*`` counters across
        #: runs (``last_stats`` stays the per-run snapshot API).
        self.registry = registry
        self.last_stats: dict[str, Any] = {}
        self.job_reports: dict[int, dict[str, Any]] = {}

    def _record_run_stats(self, stats: dict[str, Any]) -> None:
        """Fold one run's ``last_stats`` into the cumulative registry."""
        registry = self.registry
        if registry is None:
            return
        registry.counter("farm_runs_total").inc()
        registry.counter("farm_jobs_total").inc(stats["num_jobs"])
        registry.counter("farm_unique_jobs_total").inc(stats["num_unique_jobs"])
        for name in ("retries", "pool_respawns", "timeouts", "failed_jobs", "expired"):
            if stats[name]:
                registry.counter(f"farm_{name}_total").inc(stats[name])
        if stats["degraded"]:
            registry.counter("farm_degraded_total").inc()
        registry.histogram("farm_run_wall_seconds").observe(stats["wall_s"])

    def _new_pool(self, backend: str, workers: int):
        if backend == "thread":
            _worker_init()  # threads share this process's gate-matrix caches
            return ThreadPoolExecutor(max_workers=workers)
        return ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init, initargs=(True,)
        )

    def _stall_dispatch(self, job: FarmJob, attempt: int) -> None:
        """Fire a ``stall-dispatch`` fault: sleep in the dispatch loop.

        Runs *before* the deadline check at each (re)submission site, so
        a stalled dispatch burns the job's own budget — the overload
        chaos suite's deterministic lever for deadline expiries.
        """
        plan = job.options.faults
        if plan is None:
            return
        duration = plan.fire_duration(STALL_DISPATCH, job.fault_key(), attempt)
        if duration > 0:
            time.sleep(duration)

    def _run_job_with_retry(
        self, job_fn, job: FarmJob, failures: int, counters: dict[str, int]
    ) -> tuple[Any, int]:
        """In-process attempt loop (reference backend and degraded mode).

        Starts from ``failures`` already on the job's ledger (pool
        crashes that preceded degradation) but always makes at least one
        attempt, so a degraded run finishes every job one way or the
        other.  Returns ``(result-or-FarmJobError, total failures)``.
        """
        policy = self.policy
        key = job.fault_key()
        while True:
            try:
                return job_fn(job, failures), failures
            except Exception as exc:
                failures += 1
                if failures > policy.max_retries:
                    log_event(
                        logger,
                        "job-failed",
                        job=key,
                        attempts=failures,
                        error=type(exc).__name__,
                    )
                    return (
                        FarmJobError.from_exception(exc, attempts=failures, fault_key=key),
                        failures,
                    )
                counters["retries"] += 1
                log_event(
                    logger, "job-retry", job=key, failures=failures, error=type(exc).__name__
                )
                delay = policy.backoff_s(key, failures)
                if delay:
                    time.sleep(delay)

    def iter_results(
        self,
        jobs: Sequence[FarmJob],
        *,
        with_schedules: bool = False,
        deadlines: Sequence[float | None] | None = None,
    ) -> Iterator[tuple[int, PointMetrics | FarmJobResult | FarmJobError]]:
        """Stream ``(index, result)`` pairs as jobs finish.

        ``index`` is the job's position in ``jobs``; memoised duplicates
        are yielded (with the shared result object) as soon as their
        unique cell finishes.  Pooled backends yield in completion order,
        the ``reference`` oracle in submission order — every *pair* is
        deterministic either way, only the interleaving differs.  Grids
        too large to hold as a list can be consumed incrementally;
        ``last_stats`` is populated once the iterator is exhausted.

        With ``with_schedules=True`` each successful result is a
        :class:`FarmJobResult` carrying the canonical schedule dict.  A
        job that exhausts the :class:`FarmPolicy` retry budget yields a
        :class:`FarmJobError` record in its slot instead of raising
        (check ``result.failed``); ``job_reports[index]`` carries the
        per-job status/attempts picture as soon as the pair is yielded.

        ``deadlines`` gives each job a *relative* wall-clock budget in
        seconds from the start of this call (None = no deadline; the
        service derives these from request ``deadline_s``).  A job whose
        budget expires before it is submitted is cooperatively cancelled
        — finalised as a :class:`FarmJobError` wrapping
        :class:`~repro.exceptions.DeadlineExceeded`, no executor time, no
        retries — and an in-flight job past its deadline is abandoned
        the same terminal way (a ``timeout_s`` overrun, by contrast,
        retries).  Duplicate jobs share the *loosest* of their budgets;
        waiters with tighter deadlines are expired by the service layer.
        """
        jobs = list(jobs)
        if deadlines is not None:
            deadlines = list(deadlines)
            if len(deadlines) != len(jobs):
                raise QPilotError(
                    f"deadlines must match jobs: got {len(deadlines)} for {len(jobs)} jobs"
                )
        unique: dict[tuple, int] = {}
        unique_jobs: list[FarmJob] = []
        indices_by_unique: list[list[int]] = []
        for index, job in enumerate(jobs):
            key = job.key()
            if key not in unique:
                unique[key] = len(unique_jobs)
                unique_jobs.append(job)
                indices_by_unique.append([])
            indices_by_unique[unique[key]].append(index)

        job_fn = compile_farm_job_with_schedule if with_schedules else compile_farm_job
        policy = self.policy
        self.job_reports = {}
        counters = {
            "retries": 0,
            "pool_respawns": 0,
            "timeouts": 0,
            "failed_jobs": 0,
            "expired": 0,
        }
        failures = [0] * len(unique_jobs)
        degraded = False

        # absolute per-slot deadlines, measured from the start of this
        # call; duplicates share the loosest budget (None = unbounded)
        t0 = time.monotonic()
        slot_deadline_at: list[float | None] = [None] * len(unique_jobs)
        if deadlines is not None:
            for slot, indices in enumerate(indices_by_unique):
                budgets = [deadlines[i] for i in indices]
                if all(budget is not None for budget in budgets):
                    slot_deadline_at[slot] = t0 + max(budgets)

        def report(slot: int, result: Any) -> list[tuple[int, Any]]:
            """Record a slot's terminal outcome; return its (index, result) pairs."""
            if isinstance(result, FarmJobError):
                counters["failed_jobs"] += 1
                entry = {
                    "status": "failed",
                    "attempts": result.attempts,
                    "error": result.to_dict(),
                }
            else:
                entry = {
                    "status": "retried" if failures[slot] else "ok",
                    "attempts": failures[slot] + 1,
                    "error": None,
                }
            for index in indices_by_unique[slot]:
                self.job_reports[index] = entry
            return [(index, result) for index in indices_by_unique[slot]]

        def expire_slot(slot: int) -> list[tuple[int, Any]]:
            """Finalise a slot whose deadline passed: terminal, no retries."""
            counters["expired"] += 1
            job = unique_jobs[slot]
            log_event(logger, "job-expired", job=job.fault_key(), failures=failures[slot])
            exc = DeadlineExceeded(
                f"farm job {job.fault_key()!r} deadline expired before completion",
                digest=job.digest(),
            )
            record = FarmJobError.from_exception(
                exc, attempts=failures[slot], fault_key=job.fault_key()
            )
            return report(slot, record)

        def dispatch_expired(slot: int) -> bool:
            """Cooperative-cancellation check at a (re)submission site."""
            at = slot_deadline_at[slot]
            return at is not None and time.monotonic() >= at

        start = time.perf_counter()
        if self.executor == "reference" or len(unique_jobs) <= 1:
            # A single unique job gains nothing from a pool; run it
            # in-process and report the backend that actually ran.
            backend, workers = "reference", 1
            for slot, job in enumerate(unique_jobs):
                self._stall_dispatch(job, failures[slot])
                if dispatch_expired(slot):
                    for pair in expire_slot(slot):
                        yield pair
                    continue
                result, failures[slot] = self._run_job_with_retry(
                    job_fn, job, failures[slot], counters
                )
                for pair in report(slot, result):
                    yield pair
        else:
            backend = self.executor
            workers = min(self.max_workers or available_workers(), len(unique_jobs))
            pool = self._new_pool(backend, workers)
            pending: dict[Future, int] = {}
            future_deadlines: dict[Future, float] = {}
            unresolved = set(range(len(unique_jobs)))
            respawns = 0

            def submit(slot: int) -> list[tuple[int, Any]]:
                """(Re)submit a slot — or cooperatively cancel it if expired."""
                self._stall_dispatch(unique_jobs[slot], failures[slot])
                if dispatch_expired(slot):
                    unresolved.discard(slot)
                    return expire_slot(slot)
                future = pool.submit(job_fn, unique_jobs[slot], failures[slot])
                pending[future] = slot
                now = time.monotonic()
                candidates = []
                if policy.timeout_s is not None:
                    candidates.append(now + policy.timeout_s)
                if slot_deadline_at[slot] is not None:
                    candidates.append(slot_deadline_at[slot])
                if candidates:
                    future_deadlines[future] = min(candidates)
                return []

            def register_failure(slot: int, exc: BaseException) -> list[tuple[int, Any]]:
                """One failed attempt: retry with backoff, or finalise the slot."""
                nonlocal degraded
                failures[slot] += 1
                key = unique_jobs[slot].fault_key()
                if failures[slot] > policy.max_retries:
                    unresolved.discard(slot)
                    log_event(
                        logger,
                        "job-failed",
                        job=key,
                        attempts=failures[slot],
                        error=type(exc).__name__,
                    )
                    record = FarmJobError.from_exception(
                        exc, attempts=failures[slot], fault_key=key
                    )
                    return report(slot, record)
                counters["retries"] += 1
                log_event(
                    logger, "job-retry", job=key, failures=failures[slot], error=type(exc).__name__
                )
                delay = policy.backoff_s(unique_jobs[slot].fault_key(), failures[slot])
                if delay:
                    time.sleep(delay)
                try:
                    return submit(slot)
                except BrokenExecutor:
                    degraded = True  # no pool left to retry on; drain inline
                return []

            try:
                initial_events: list[tuple[int, Any]] = []
                try:
                    for slot in range(len(unique_jobs)):
                        initial_events.extend(submit(slot))
                except BrokenExecutor:
                    degraded = True  # pool unusable from the start
                for pair in initial_events:
                    yield pair
                while unresolved:
                    if degraded:
                        # respawn budget exhausted: finish the remaining
                        # jobs on the in-process reference path so the
                        # sweep completes (memoised results are kept)
                        log_event(
                            logger,
                            "farm-degraded",
                            remaining=len(unresolved),
                            respawns=respawns,
                        )
                        for slot in sorted(unresolved):
                            self._stall_dispatch(unique_jobs[slot], failures[slot])
                            if dispatch_expired(slot):
                                for pair in expire_slot(slot):
                                    yield pair
                                continue
                            result, failures[slot] = self._run_job_with_retry(
                                job_fn, unique_jobs[slot], failures[slot], counters
                            )
                            for pair in report(slot, result):
                                yield pair
                        unresolved.clear()
                        break
                    if not pending:
                        degraded = True  # nothing in flight yet jobs remain
                        continue
                    timeout = None
                    if future_deadlines:
                        timeout = max(0.005, min(future_deadlines.values()) - time.monotonic())
                    done, _ = wait(list(pending), timeout=timeout, return_when=FIRST_COMPLETED)
                    events: list[tuple[int, Any]] = []
                    if not done:
                        # overdue jobs: queued ones are cancelled, running
                        # ones abandoned (their late results are discarded).
                        # A job past its *own* deadline expires terminally;
                        # a policy ``timeout_s`` overrun is a failed attempt
                        # and retries apply
                        now = time.monotonic()
                        overdue = [
                            future
                            for future, deadline in future_deadlines.items()
                            if future in pending and deadline <= now
                        ]
                        for future in overdue:
                            slot = pending.pop(future)
                            future_deadlines.pop(future, None)
                            future.cancel()
                            slot_at = slot_deadline_at[slot]
                            if slot_at is not None and slot_at <= now:
                                unresolved.discard(slot)
                                events.extend(expire_slot(slot))
                                continue
                            counters["timeouts"] += 1
                            exc = TimeoutError(
                                f"farm job {unique_jobs[slot].fault_key()!r} exceeded "
                                f"timeout_s={policy.timeout_s}"
                            )
                            events.extend(register_failure(slot, exc))
                        for pair in events:
                            yield pair
                        continue
                    # successes first: when a pool breaks, completed results
                    # must land before the crash sweep resubmits survivors
                    ordered = sorted(
                        done,
                        key=lambda f: 0 if (not f.cancelled() and f.exception() is None) else 1,
                    )
                    broken: list[tuple[int, BaseException]] = []
                    for future in ordered:
                        slot = pending.pop(future, None)
                        future_deadlines.pop(future, None)
                        if slot is None or future.cancelled():
                            continue  # abandoned after timeout, or cancelled
                        exc = future.exception()
                        if exc is None:
                            unresolved.discard(slot)
                            events.extend(report(slot, future.result()))
                        elif isinstance(exc, BrokenExecutor):
                            broken.append((slot, exc))
                        else:
                            events.extend(register_failure(slot, exc))
                    if broken:
                        # the pool is dead and every in-flight job died with
                        # it; the crash counts as one failed attempt for each
                        # (the crasher is indeterminate, and charging all of
                        # them keeps a determined crasher from respawning the
                        # pool at the same attempt number forever)
                        for future, slot in pending.items():
                            broken.append(
                                (slot, BrokenExecutor("process pool died with this job in flight"))
                            )
                        pending.clear()
                        future_deadlines.clear()
                        pool.shutdown(wait=False, cancel_futures=True)
                        if respawns < policy.max_pool_respawns:
                            respawns += 1
                            counters["pool_respawns"] += 1
                            log_event(
                                logger,
                                "pool-respawn",
                                respawns=respawns,
                                in_flight=len(broken),
                            )
                            pool = self._new_pool(backend, workers)
                            for slot, exc in broken:
                                events.extend(register_failure(slot, exc))
                        else:
                            degraded = True
                            for slot, _ in broken:
                                failures[slot] += 1
                    for pair in events:
                        yield pair
            finally:
                # an abandoned stream (consumer closed the generator early)
                # must cancel the queued remainder of the grid, not compile it
                pool.shutdown(wait=True, cancel_futures=True)
        wall = time.perf_counter() - start

        self.last_stats = {
            "executor": backend,
            "requested_executor": self.executor,
            "num_jobs": len(jobs),
            "num_unique_jobs": len(unique_jobs),
            "wall_s": wall,
            "max_workers": workers,
            "degraded": degraded,
            **counters,
        }
        self._record_run_stats(self.last_stats)

    def run(
        self,
        jobs: Sequence[FarmJob],
        *,
        with_schedules: bool = False,
        deadlines: Sequence[float | None] | None = None,
    ) -> list[PointMetrics | FarmJobResult | FarmJobError]:
        jobs = list(jobs)
        results: list[Any] = [None] * len(jobs)
        for index, result in self.iter_results(
            jobs, with_schedules=with_schedules, deadlines=deadlines
        ):
            results[index] = result
        return results

"""Q-Pilot core: flying-ancilla routers, schedules, evaluation, and DSE."""

from repro.core.ancilla import (
    ANCILLA_COMPATIBLE_GATES,
    ancilla_depth_overhead,
    ancilla_routed_cz_cost,
    breakeven_distance,
    is_ancilla_compatible,
    routed_cz_sequence,
    substitute_with_copy,
    swap_depth_overhead,
    swap_routed_cz_cost,
)
from repro.core.compiler import CompilationResult, QPilotCompiler
from repro.core.dse import DesignPoint, SweepResult, architecture_search, sweep_array_width
from repro.core.evaluator import EvaluationResult, FidelityModel, PerformanceEvaluator
from repro.core.generic_router import GenericRouter, GenericRouterOptions, route_circuit
from repro.core.movement import AtomMove, MovementStep, movement_statistics
from repro.core.qaoa_router import QAOARouter, QAOARouterOptions, route_qaoa
from repro.core.qsim_router import (
    QSimRouter,
    QSimRouterOptions,
    fanout_depth,
    fanout_layer_sizes,
    longest_path_stages,
    route_pauli_strings,
)
from repro.core.schedule import (
    AncillaCreationStage,
    AncillaRecycleStage,
    FPQASchedule,
    MeasurementStage,
    MovementStage,
    OneQubitStage,
    RydbergStage,
    ScheduledGate,
    Stage,
    aod,
    slm,
)

__all__ = [
    "QPilotCompiler",
    "CompilationResult",
    "GenericRouter",
    "GenericRouterOptions",
    "route_circuit",
    "QSimRouter",
    "QSimRouterOptions",
    "route_pauli_strings",
    "fanout_depth",
    "fanout_layer_sizes",
    "longest_path_stages",
    "QAOARouter",
    "QAOARouterOptions",
    "route_qaoa",
    "FPQASchedule",
    "Stage",
    "OneQubitStage",
    "AncillaCreationStage",
    "AncillaRecycleStage",
    "MovementStage",
    "RydbergStage",
    "MeasurementStage",
    "ScheduledGate",
    "slm",
    "aod",
    "PerformanceEvaluator",
    "EvaluationResult",
    "FidelityModel",
    "AtomMove",
    "MovementStep",
    "movement_statistics",
    "sweep_array_width",
    "architecture_search",
    "SweepResult",
    "DesignPoint",
    "routed_cz_sequence",
    "substitute_with_copy",
    "is_ancilla_compatible",
    "ANCILLA_COMPATIBLE_GATES",
    "ancilla_routed_cz_cost",
    "swap_routed_cz_cost",
    "ancilla_depth_overhead",
    "swap_depth_overhead",
    "breakeven_distance",
]

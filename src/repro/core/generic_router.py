"""Generic high-parallelism router for arbitrary circuits (Alg. 1).

The generic router compiles any quantum circuit onto the FPQA:

1. the circuit is transpiled into the native ``CZ + 1Q`` basis;
2. gates are consumed front-layer by front-layer;
3. 1-qubit gates execute immediately in Raman stages;
4. from the remaining front-layer CZ gates, a greedy scan (sorted by the
   first operand's index) selects the *maximum legal subset* — the largest
   prefix-compatible set of gates whose ancillas can share one AOD
   configuration without any row or column order reversal;
5. the selected gates execute as a flying-ancilla macro: one parallel
   fan-out CNOT layer (ancilla creation), an AOD move, one parallel CZ
   layer, a move back, and one parallel CNOT layer (ancilla recycle).

Every Rydberg macro therefore contributes three 2-qubit layers and
``3 k`` 2-qubit gates for ``k`` routed CZs, exactly the cost model of
Fig. 1(c) in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import DependencyDAG
from repro.circuit.decompose import decompose_to_cz
from repro.core.movement import AtomMove
from repro.core.schedule import (
    AncillaCreationStage,
    AncillaRecycleStage,
    FPQASchedule,
    MeasurementStage,
    MovementStage,
    OneQubitStage,
    RydbergStage,
    ScheduledGate,
    aod,
    slm,
)
from repro.exceptions import RoutingError
from repro.hardware.constraints import (
    GatePlacement,
    assign_aod_crosses,
    greedy_legal_subset,
)
from repro.hardware.fpqa import FPQAConfig, SLMArray
from repro.core.movement import MovementStep
from repro.obs.tracing import span


@dataclass
class GenericRouterOptions:
    """Knobs of the generic router."""

    #: Sort candidate gates by their first operand before the greedy scan
    #: (the paper's ordering).  Disabling this is used by ablation studies.
    sort_candidates: bool = True
    #: Emit a measurement stage at the end when the input circuit measures.
    include_measurement: bool = True
    #: Cap on gates accepted into a single Rydberg stage (None = unlimited).
    max_gates_per_stage: int | None = None


class GenericRouter:
    """Flying-ancilla router for arbitrary circuits."""

    def __init__(self, config: FPQAConfig | None = None, options: GenericRouterOptions | None = None):
        self.config = config
        self.options = options or GenericRouterOptions()

    # ------------------------------------------------------------------
    def compile(self, circuit: QuantumCircuit) -> FPQASchedule:
        """Compile a circuit into an :class:`FPQASchedule`.

        The SLM array defaults to a near-square array just large enough for
        the circuit when no configuration was supplied.
        """
        start_time = time.perf_counter()
        config = self.config or FPQAConfig.square_for(circuit.num_qubits)
        if config.num_slm_sites < circuit.num_qubits:
            config = config.for_qubits(circuit.num_qubits)
        array = SLMArray(config, circuit.num_qubits)

        had_measurements = any(g.name == "measure" for g in circuit.gates)
        native = decompose_to_cz(circuit)
        dag = DependencyDAG(native)

        schedule = FPQASchedule(
            config=config,
            num_data_qubits=circuit.num_qubits,
            name=f"qpilot_generic[{circuit.name}]",
        )

        # one bounds-checked divmod per qubit instead of per stage visit
        positions = [array.position(q) for q in range(circuit.num_qubits)]

        stage_index = 0
        while not dag.is_done():
            # the per-stage span is the shared no-op object unless a
            # tracer is active on this thread (disabled tracing must not
            # show up in the 150q/1500g perf smoke)
            with span("stage", index=stage_index):
                progressed = self._flush_one_qubit_gates(dag, schedule)
                if dag.is_done():
                    break
                front = sorted(
                    i for i in dag.front_layer_unsorted() if dag.gate(i).num_qubits == 2
                )
                if not front:
                    if progressed:
                        continue
                    raise RoutingError("front layer contains no executable gates")
                selected = self._select_legal_subset(front, dag, positions)
                if not selected:
                    raise RoutingError(
                        "could not select any front-layer gate (internal error)"
                    )
                self._emit_macro(selected, dag, array, schedule, stage_index)
                stage_index += 1

        if had_measurements and self.options.include_measurement:
            schedule.append(MeasurementStage(qubits=list(range(circuit.num_qubits)), label="measure"))

        schedule.metadata.update(
            {
                "router": "generic",
                "compile_time_s": time.perf_counter() - start_time,
                "num_macro_stages": stage_index,
                "source_2q_gates": native.num_two_qubit_gates(),
            }
        )
        return schedule

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _flush_one_qubit_gates(self, dag: DependencyDAG, schedule: FPQASchedule) -> bool:
        """Execute every 1-qubit gate reachable in the front layer."""
        progressed = False
        while True:
            one_qubit = sorted(
                i for i in dag.front_layer_unsorted() if dag.gate(i).num_qubits == 1
            )
            if not one_qubit:
                return progressed
            gates = []
            for index in one_qubit:
                gate = dag.gate(index)
                if not gate.is_directive:
                    gates.append(
                        ScheduledGate(gate.name, (slm(gate.qubits[0]),), gate.params)
                    )
                dag.execute(index)
            if gates:
                schedule.append(OneQubitStage(gates=gates, label="raman"))
                progressed = True

    def _select_legal_subset(
        self, front: list[int], dag: DependencyDAG, positions: list[tuple[int, int]]
    ) -> list[tuple[int, GatePlacement]]:
        """Greedy maximum legal subset of the front-layer CZ gates."""
        candidates: list[tuple[int, GatePlacement]] = []
        for index in front:
            gate = dag.gate(index)
            qubit_a, qubit_b = gate.qubits
            placement = GatePlacement(index, positions[qubit_a], positions[qubit_b])
            candidates.append((index, placement))
        if self.options.sort_candidates:
            candidates.sort(key=lambda item: min(dag.gate(item[0]).qubits))
        accepted_placements = greedy_legal_subset([p for _, p in candidates])
        accepted_ids = {p.gate_index for p in accepted_placements}
        selected = [(i, p) for i, p in candidates if i in accepted_ids]
        limit = self.options.max_gates_per_stage
        if limit is not None:
            selected = selected[:limit]
        return selected

    def _emit_macro(
        self,
        selected: list[tuple[int, GatePlacement]],
        dag: DependencyDAG,
        array: SLMArray,
        schedule: FPQASchedule,
        stage_index: int,
    ) -> None:
        """Emit create / move / execute / move-back / recycle stages."""
        placements = [p for _, p in selected]
        # the subset came from greedy_legal_subset, so skip the O(k²) re-check
        crosses = assign_aod_crosses(placements, validate=False)

        copies = []
        moves_out = []
        rydberg_gates = []
        moves_back = []
        for slot, (gate_index, placement) in enumerate(selected):
            gate = dag.gate(gate_index)
            qubit_a, qubit_b = gate.qubits
            copies.append((slm(qubit_a), slot))
            source_pos = (float(placement.source_row), float(placement.source_col))
            target_pos = (float(placement.target_row), float(placement.target_col))
            moves_out.append(AtomMove(slot, source_pos, target_pos))
            rydberg_gates.append(ScheduledGate(gate.name, (aod(slot), slm(qubit_b)), gate.params))
            moves_back.append(AtomMove(slot, target_pos, source_pos))
            dag.execute(gate_index)

        label = f"macro{stage_index}"
        schedule.append(
            AncillaCreationStage(copies=copies, uses_atom_transfer=True, label=f"{label}:create")
        )
        schedule.append(MovementStage(step=MovementStep(moves=moves_out), label=f"{label}:move"))
        schedule.append(RydbergStage(gates=rydberg_gates, label=f"{label}:rydberg"))
        schedule.append(MovementStage(step=MovementStep(moves=moves_back), label=f"{label}:return"))
        schedule.append(
            AncillaRecycleStage(copies=copies, uses_atom_transfer=True, label=f"{label}:recycle")
        )
        schedule.metadata.setdefault("aod_crosses", {})[stage_index] = {
            gate_index: crosses[placement.gate_index] for gate_index, placement in selected
        }


def route_circuit(
    circuit: QuantumCircuit,
    config: FPQAConfig | None = None,
    options: GenericRouterOptions | None = None,
) -> FPQASchedule:
    """Convenience wrapper: compile ``circuit`` with the generic router."""
    return GenericRouter(config, options).compile(circuit)

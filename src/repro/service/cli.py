"""Command-line front end of the compile service.

Usage (with ``PYTHONPATH=src`` or the package installed)::

    python -m repro.service compile --store /tmp/qpilot-store \
        --kind circuit --qubits 16 --gate-multiple 5 --width 8

    python -m repro.service sweep --store /tmp/qpilot-store \
        --kind qaoa --qubits 16 --edge-probability 0.3 --widths 4,8,16

    python -m repro.service warm --store /tmp/qpilot-store --sweep archive.json
    python -m repro.service stats --store /tmp/qpilot-store
    python -m repro.service clear --store /tmp/qpilot-store

``compile`` submits one request and reports whether it was served from
the content-addressed store or freshly routed; ``sweep`` streams one
request per width, printing each design point as it resolves.  Both
print service statistics afterwards (``--json`` for machine-readable
output).  ``warm`` replays an archived DSE trajectory
(``SweepResult.to_json`` output) into the store so live traffic finds it
hot; ``stats`` reports entry count and on-disk bytes.  ``--memory-entries``
sizes the in-process LRU front tier and ``--compress`` gzips new disk
entries (old entries stay readable).

Overload knobs (PR 8): ``--client-id``, ``--priority`` and
``--deadline-s`` attach serving metadata to compile/sweep requests
(quota accounting, priority lane, end-to-end budget);
``--max-dead-letters`` bounds the dead-letter list and
``--evict-lock-stale-s`` tunes the store's eviction-lock staleness
cutoff.  The stats output reports the overload counters (rejected /
shed / expired, breaker state and trips, dead-letter drops).

Untrusted circuits (PR 9): ``--qasm FILE`` compiles/sweeps a
user-supplied OpenQASM 2.0 file through the service's hardened
ingestion boundary instead of a synthetic ``--kind`` workload, and
``--kind qec`` / ``--kind molecule`` (with ``--distance``/``--rounds``
and ``--molecule``) expose the surface-code and chemistry workloads.
Invalid QASM exits with status **2** and a typed one-line rejection
(error type, line, column) — never a traceback; valid uploads are
content-addressed so a repeat upload is a store hit.

Observability: ``compile``/``sweep --trace FILE`` runs the request under
a :class:`~repro.obs.tracing.Tracer` and writes the span tree as JSON;
``trace show FILE`` renders such a file flame-style; ``compile``/
``sweep --metrics [json|prom]`` dumps the service's metrics registry
after the command, and ``stats --metrics [json|prom]`` exposes a
store's registry (counters plus entry/byte gauges) in JSON or
Prometheus text format; ``--events FILE`` (or ``-`` for stderr)
attaches the JSON-lines structured event log for the run.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext
from pathlib import Path
from typing import Callable, Sequence

from repro.core.dse import SweepResult
from repro.core.farm import FarmOptions, WorkloadSpec
from repro.exceptions import InvalidCircuitError
from repro.obs.events import configure_event_log, remove_event_log
from repro.obs.tracing import Tracer, activate, format_trace
from repro.service.queue import CompileRequest
from repro.service.service import DEFAULT_MEMORY_ENTRIES, CompileService
from repro.service.store import ScheduleStore
from repro.utils.faults import FaultPlan

#: Exit status for a typed ingestion rejection (invalid untrusted QASM).
EXIT_INVALID_CIRCUIT = 2


def _run_observed(
    args: argparse.Namespace, body: Callable[[argparse.Namespace], int]
) -> int:
    """Run a command body under the requested tracer / event log.

    ``--trace FILE`` activates a :class:`Tracer` for the whole command
    and writes the span tree as JSON afterwards (readable with
    ``trace show FILE``); ``--events FILE`` attaches the JSON-lines
    event-log handler for the duration (``-`` streams to stderr).
    """
    trace_path = getattr(args, "trace", None)
    events_path = getattr(args, "events", None)
    handler = None
    if events_path:
        handler = configure_event_log(None if events_path == "-" else events_path)
    tracer = Tracer() if trace_path else None
    try:
        with (activate(tracer) if tracer is not None else nullcontext()):
            code = body(args)
    finally:
        if handler is not None:
            remove_event_log(handler)
    if tracer is not None:
        Path(trace_path).write_text(
            json.dumps(tracer.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return code


def _print_metrics(service: CompileService, mode: str) -> None:
    if mode == "prom":
        sys.stdout.write(service.metrics_prometheus())
    else:
        print(json.dumps(service.metrics_dict(), indent=2, sort_keys=True))


def _service_from_args(args: argparse.Namespace) -> CompileService:
    return CompileService(
        args.store,
        executor=args.executor,
        max_workers=args.jobs,
        memory_entries=args.memory_entries,
        compress=args.compress,
        max_dead_letters=getattr(args, "max_dead_letters", None),
        evict_lock_stale_s=getattr(args, "evict_lock_stale_s", None),
    )


def _comma_ints(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part)


def _fault_plan(args: argparse.Namespace) -> FaultPlan | None:
    """Fault plan from ``--faults`` JSON, else the QPILOT_FAULTS env preset."""
    if getattr(args, "faults", None):
        return FaultPlan.from_json(args.faults)
    return FaultPlan.from_env()


def _request_options(args: argparse.Namespace) -> FarmOptions:
    return FarmOptions(faults=_fault_plan(args))


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kind",
        choices=("circuit", "qsim", "qaoa", "qec", "molecule"),
        default="circuit",
        help="workload family (default: circuit)",
    )
    parser.add_argument(
        "--qasm",
        default=None,
        metavar="FILE",
        help="compile an untrusted OpenQASM 2.0 file instead of --kind "
        "(validated at the service's ingestion boundary; invalid input "
        f"exits {EXIT_INVALID_CIRCUIT} with a typed rejection)",
    )
    parser.add_argument("--qubits", type=int, default=16, help="number of data qubits")
    parser.add_argument("--seed", type=int, default=2024, help="workload RNG seed")
    parser.add_argument(
        "--gate-multiple", type=int, default=5, help="[circuit] CX gates per qubit"
    )
    parser.add_argument(
        "--pauli-probability", type=float, default=0.3, help="[qsim] per-qubit Pauli weight"
    )
    parser.add_argument(
        "--num-strings", type=int, default=20, help="[qsim] number of Pauli strings"
    )
    parser.add_argument(
        "--edge-probability", type=float, default=0.3, help="[qaoa] G(n, p) edge probability"
    )
    parser.add_argument(
        "--distance", type=int, default=3, help="[qec] surface-code distance"
    )
    parser.add_argument(
        "--rounds", type=int, default=1, help="[qec] syndrome-extraction rounds"
    )
    parser.add_argument(
        "--molecule",
        default="H2",
        help="[molecule] Table 1 molecule name (H2, LiH_UCCSD, H2O, BeH2)",
    )


def _workload_from_args(args: argparse.Namespace, service: CompileService) -> WorkloadSpec:
    if args.qasm:
        text = Path(args.qasm).read_text(encoding="utf-8")
        return service.ingest_qasm(text)
    if args.kind == "circuit":
        return WorkloadSpec.random_circuit(args.qubits, args.gate_multiple, seed=args.seed)
    if args.kind == "qsim":
        return WorkloadSpec.qsim(
            args.qubits, args.pauli_probability, num_strings=args.num_strings, seed=args.seed
        )
    if args.kind == "qec":
        return WorkloadSpec.qec_surface_code(args.distance, rounds=args.rounds)
    if args.kind == "molecule":
        return WorkloadSpec.molecule(args.molecule)
    return WorkloadSpec.qaoa_random_graph(args.qubits, args.edge_probability, seed=args.seed)


def _print_invalid(exc: InvalidCircuitError, args: argparse.Namespace) -> int:
    """Report a typed ingestion rejection (never a traceback)."""
    if args.json:
        payload = {
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "line": exc.line,
                "column": exc.column,
            }
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        where = "" if exc.line is None else f" (line {exc.line}, column {exc.column})"
        print(f"rejected: {type(exc).__name__}{where}: {exc}", file=sys.stderr)
    return EXIT_INVALID_CIRCUIT


def _stats_dict(service: CompileService) -> dict:
    stats = service.stats.to_dict()
    stats["store"] = service.store.stats.to_dict()
    return stats


def _print_stats(service: CompileService) -> None:
    stats = _stats_dict(service)
    hit_rate = stats["cache_hit_rate"]
    print(
        f"service: {stats['completed']} completed, "
        f"{stats['cache_hits']} cache hits / {stats['cache_misses']} misses "
        f"(hit rate {hit_rate if hit_rate is None else round(hit_rate, 3)}), "
        f"{stats['farm_dispatches']} farm dispatches"
    )
    print(
        f"overload: {stats['rejected']} rejected, {stats['shed']} shed, "
        f"{stats['expired']} expired, breaker {stats['breaker_state']} "
        f"({stats['breaker_trips']} trips), "
        f"{stats['dead_letters_dropped']} dead letters dropped"
    )


def _response_dict(response) -> dict:
    m = response.metrics
    return {
        "source": response.source,
        "digest": response.digest,
        "router": response.router,
        "width": response.schedule["config"]["slm_cols"],
        "depth": m.depth,
        "error_rate": m.error_rate,
    }


def _cmd_compile(args: argparse.Namespace) -> int:
    return _run_observed(args, _compile_body)


def _compile_body(args: argparse.Namespace) -> int:
    service = _service_from_args(args)
    try:
        workload = _workload_from_args(args, service)
    except InvalidCircuitError as exc:
        return _print_invalid(exc, args)
    request = CompileRequest.for_width(
        workload,
        args.width,
        options=_request_options(args),
        client_id=args.client_id,
        priority=args.priority,
        deadline_s=args.deadline_s,
    )
    response = service.compile(request)
    if args.metrics:
        _print_metrics(service, args.metrics)
        return 0
    if args.json:
        payload = _response_dict(response)
        payload["stats"] = _stats_dict(service)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    m = response.metrics
    print(
        f"{response.source}: {request.workload.name} @ width {args.width} "
        f"[{response.router}] depth={m.depth} error_rate={m.error_rate:.4f} "
        f"digest={response.digest[:12]}"
    )
    _print_stats(service)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    return _run_observed(args, _sweep_body)


def _sweep_body(args: argparse.Namespace) -> int:
    service = _service_from_args(args)
    try:
        workload = _workload_from_args(args, service)
    except InvalidCircuitError as exc:
        return _print_invalid(exc, args)
    options = _request_options(args)
    requests = [
        CompileRequest.for_width(
            workload,
            width,
            options=options,
            client_id=args.client_id,
            priority=args.priority,
            deadline_s=args.deadline_s,
        )
        for width in args.widths
    ]
    if args.metrics:
        for _ in service.stream(requests):
            pass
        _print_metrics(service, args.metrics)
        return 1 if service.queue.dead_letters else 0
    if args.json:
        payload = {"points": [_response_dict(r) for r in service.stream(requests)]}
        payload["failed"] = [
            {"digest": t.digest, "error_type": t.error_type, "error": t.error}
            for t in service.queue.dead_letters
        ]
        payload["stats"] = _stats_dict(service)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if service.queue.dead_letters else 0
    for response in service.stream(requests):
        m = response.metrics
        print(
            f"{response.source}: width {response.schedule['config']['slm_cols']} "
            f"depth={m.depth} error_rate={m.error_rate:.4f}"
        )
    for ticket in service.queue.dead_letters:
        print(
            f"failed: {ticket.request.workload.name} digest={ticket.digest[:12]} "
            f"({ticket.error_type}): {ticket.error}"
        )
    _print_stats(service)
    return 1 if service.queue.dead_letters else 0


def _cmd_warm(args: argparse.Namespace) -> int:
    sweep = SweepResult.from_json(Path(args.sweep).read_text(encoding="utf-8"))
    service = _service_from_args(args)
    counts = service.warm_from(sweep)
    if args.json:
        payload = dict(counts)
        payload["stats"] = _stats_dict(service)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"warm: {counts['points']} points, {counts['warmed']} warmed, "
        f"{counts['already']} already cached, {counts['skipped']} skipped"
    )
    _print_stats(service)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    store = ScheduleStore(args.store)
    entries = len(store)
    disk_bytes = store.disk_bytes()
    if args.metrics:
        # registry exposition: the lifetime counters of *this* store
        # object are zero (it was just opened), but the disk gauges make
        # the store inspectable by any Prometheus-speaking scraper
        store.registry.gauge("store_disk_entries").set(entries)
        store.registry.gauge("store_disk_bytes").set(disk_bytes)
        if args.metrics == "prom":
            sys.stdout.write(store.registry.to_prometheus())
        else:
            print(json.dumps(store.registry.to_dict(), indent=2, sort_keys=True))
        return 0
    data = {
        "root": str(store.root),
        "entries": entries,
        "disk_bytes": disk_bytes,
    }
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(f"store {data['root']}: {data['entries']} entries, {data['disk_bytes']} bytes")
    return 0


def _cmd_trace_show(args: argparse.Namespace) -> int:
    """Render a ``--trace`` JSON file flame-style (durations, % of root)."""
    try:
        document = json.loads(Path(args.file).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"cannot read trace file {args.file}: {exc}", file=sys.stderr)
        return 1
    print(format_trace(document))
    return 0


def _cmd_clear(args: argparse.Namespace) -> int:
    removed = ScheduleStore(args.store).clear()
    print(f"removed {removed} entries")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.service", description=__doc__.splitlines()[0]
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compile_cmd = commands.add_parser("compile", help="compile one request through the service")
    _add_workload_arguments(compile_cmd)
    compile_cmd.add_argument("--width", type=int, default=8, help="array width (SLM columns)")
    compile_cmd.set_defaults(func=_cmd_compile)

    sweep_cmd = commands.add_parser("sweep", help="stream a width sweep through the service")
    _add_workload_arguments(sweep_cmd)
    sweep_cmd.add_argument(
        "--widths",
        type=_comma_ints,
        default=(4, 8, 16),
        help="comma-separated array widths (default: 4,8,16)",
    )
    sweep_cmd.set_defaults(func=_cmd_sweep)

    warm_cmd = commands.add_parser(
        "warm", help="pre-warm a store from an archived DSE trajectory"
    )
    warm_cmd.add_argument(
        "--sweep", required=True, help="SweepResult JSON file (core.dse sweep archive)"
    )
    warm_cmd.set_defaults(func=_cmd_warm)

    stats_cmd = commands.add_parser("stats", help="inspect a schedule store")
    stats_cmd.add_argument(
        "--metrics",
        choices=("json", "prom"),
        default=None,
        help="dump the store's metrics registry (json or Prometheus text)",
    )
    stats_cmd.set_defaults(func=_cmd_stats)

    clear_cmd = commands.add_parser("clear", help="empty a schedule store")
    clear_cmd.set_defaults(func=_cmd_clear)

    trace_cmd = commands.add_parser("trace", help="work with --trace span files")
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_show = trace_sub.add_parser("show", help="render a trace file flame-style")
    trace_show.add_argument("file", help="JSON file written by compile/sweep --trace")
    trace_show.set_defaults(func=_cmd_trace_show)

    for sub in (compile_cmd, sweep_cmd, warm_cmd, stats_cmd, clear_cmd):
        sub.add_argument("--store", required=True, help="schedule-store directory")
        sub.add_argument("--json", action="store_true", help="machine-readable output")
    for sub in (compile_cmd, sweep_cmd, warm_cmd):
        sub.add_argument(
            "--executor",
            choices=("thread", "process", "reference"),
            default="thread",
            help="farm backend for cache misses (default: thread)",
        )
        sub.add_argument("--jobs", type=int, default=None, help="farm pool width")
        sub.add_argument(
            "--faults",
            default=None,
            help="JSON FaultPlan for chaos testing (default: QPILOT_FAULTS env)",
        )
        sub.add_argument(
            "--memory-entries",
            type=int,
            default=DEFAULT_MEMORY_ENTRIES,
            help=f"in-process LRU tier size (default: {DEFAULT_MEMORY_ENTRIES})",
        )
        sub.add_argument(
            "--compress", action="store_true", help="gzip new store entries on disk"
        )
        sub.add_argument(
            "--max-dead-letters",
            type=int,
            default=None,
            help="bound on the failed-ticket dead-letter list (default: 256)",
        )
        sub.add_argument(
            "--evict-lock-stale-s",
            type=float,
            default=None,
            help="age (s) past which a store eviction lock is broken (default: 30)",
        )
    for sub in (compile_cmd, sweep_cmd):
        sub.add_argument(
            "--trace",
            default=None,
            metavar="FILE",
            help="trace the command and write the span tree as JSON to FILE",
        )
        sub.add_argument(
            "--metrics",
            choices=("json", "prom"),
            default=None,
            help="print the service metrics registry instead of the normal output",
        )
        sub.add_argument(
            "--events",
            default=None,
            metavar="FILE",
            help="write JSON-lines structured events to FILE ('-' for stderr)",
        )
        sub.add_argument(
            "--client-id",
            default="anonymous",
            help="client identity for per-client quota accounting",
        )
        sub.add_argument(
            "--priority",
            default=None,
            help="priority lane (interactive/batch/background; default: interactive)",
        )
        sub.add_argument(
            "--deadline-s",
            type=float,
            default=None,
            help="end-to-end deadline budget in seconds (default: none)",
        )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Compile-as-a-service layer on top of the compiler and the farm.

The service subsystem (PR 5) packages the one-shot compiler behind a
long-lived serving interface, the way a production deployment would run
it:

* :mod:`repro.service.store` — :class:`ScheduleStore`, a disk-backed,
  content-addressed cache of canonical-JSON schedules keyed by the
  farm's ``(workload fingerprint, config, options)`` sha1 digest;
* :mod:`repro.service.queue` — :class:`CompileRequest` tickets and the
  deduplicating FIFO :class:`JobQueue` (identical in-flight requests
  coalesce);
* :mod:`repro.service.service` — :class:`CompileService`, the loop that
  answers warm keys from the store, farms cold keys (thread, process or
  reference executor) and streams responses incrementally;
* :mod:`repro.service.cli` — ``python -m repro.service`` command line.

PR 6 makes the layer fault-tolerant: the farm retries, respawns broken
pools and degrades to the in-process reference executor
(:class:`~repro.core.farm.FarmPolicy`); a job that exhausts its budget
fails only its own ticket — typed
(:class:`~repro.exceptions.CompileError`), observed by every coalesced
waiter, and buried on ``JobQueue.dead_letters``; store writes are
log-and-continue; and the store's eviction is lockfile-guarded so
multiple daemons can share one root.  Every failure mode is reproducible
via the seeded :class:`~repro.utils.faults.FaultPlan` registry.

PR 8 makes the layer overload-robust: the queue runs under a
:class:`QueuePolicy` (admission control with typed
:class:`~repro.exceptions.AdmissionError` rejections, weighted priority
lanes, per-client quotas, load shedding past a high-water mark),
requests carry end-to-end ``deadline_s`` budgets that expire typed
(:class:`~repro.exceptions.DeadlineExceeded`) and propagate into the
farm, and a :class:`CircuitBreaker` around farm dispatch fails cold keys
fast (:class:`~repro.exceptions.CircuitOpenError`) while warm keys keep
serving from the store.

PR 9 opens the front door to *untrusted* circuits:
:meth:`CompileService.submit_qasm` (and ``compile --qasm file.oq`` on
the CLI) validates user-supplied OpenQASM under a
:class:`~repro.circuit.CircuitLimits` resource guard before any queue
ticket exists — rejections are typed
(:class:`~repro.exceptions.InvalidCircuitError`, with line/column),
counted in ``ServiceStats.rejected_invalid``, and never reach the farm
or the dead-letter list, while valid uploads are content-addressed by
their sha1 and coalesce/warm-serve exactly like synthetic workloads.

Quick start::

    from repro.core import WorkloadSpec
    from repro.service import CompileRequest, CompileService

    service = CompileService("/tmp/qpilot-store")
    request = CompileRequest.for_width(WorkloadSpec.random_circuit(16, 5), 8)
    cold = service.compile(request)     # routed, persisted
    warm = service.compile(request)     # answered from disk, zero routing
    assert warm.cached and warm.schedule == cold.schedule
    print(service.stats.to_dict())
"""

from repro.exceptions import (
    AdmissionError,
    CircuitOpenError,
    CompileError,
    DeadlineExceeded,
    InvalidCircuitError,
    LoadShedError,
)
from repro.service.queue import CompileRequest, JobQueue, QueuedJob, QueuePolicy
from repro.service.service import (
    BreakerPolicy,
    CircuitBreaker,
    CompileResponse,
    CompileService,
    ServiceStats,
)
from repro.service.store import ScheduleStore, StoreEntry, StoreStats
from repro.utils.faults import FaultPlan, FaultRule

__all__ = [
    "AdmissionError",
    "BreakerPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "CompileError",
    "CompileRequest",
    "CompileResponse",
    "CompileService",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultRule",
    "InvalidCircuitError",
    "JobQueue",
    "LoadShedError",
    "QueuePolicy",
    "QueuedJob",
    "ScheduleStore",
    "ServiceStats",
    "StoreEntry",
    "StoreStats",
]

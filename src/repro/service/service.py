"""The compile service: queue + content-addressed store + compile farm.

:class:`CompileService` turns the one-shot in-process compiler into a
long-lived serving layer:

* clients :meth:`~CompileService.submit` :class:`CompileRequest` tickets
  (identical in-flight requests coalesce in the :class:`JobQueue`);
* :meth:`~CompileService.process_batch` drains the queue — warm keys are
  answered straight from the :class:`ScheduleStore` (zero router
  invocations), cold keys are dispatched through the
  :class:`~repro.core.farm.CompileFarm` once and persisted;
* :meth:`~CompileService.stream` is the incremental path: responses are
  yielded as they resolve (cache hits immediately, compiles as each
  finishes), so arbitrarily large request sweeps flow through without
  materialising the grid.

A service built from a store *path* fronts the disk store with the
in-memory LRU tier (:data:`DEFAULT_MEMORY_ENTRIES`), so the hot head of
real traffic is served without any disk I/O; :meth:`~CompileService.warm_from`
pre-populates the store from an archived
:class:`~repro.core.dse.SweepResult` trajectory.

``ServiceStats`` aggregates the serving picture: request counts,
coalescing, cache hit rate, farm dispatches, queue depth and throughput.
The differential guarantees compose: the farm's executor oracle makes
every backend produce byte-identical canonical schedules, and the store
persists exactly those bytes — so a cache hit is indistinguishable from
a recompile, which is what makes caching *correct* and not just fast.

Overload robustness (PR 8) keeps that guarantee under pressure instead
of queueing unboundedly:

* **Admission control + priority lanes** — the :class:`JobQueue` runs
  under a :class:`~repro.service.queue.QueuePolicy`: over-depth and
  over-quota submissions are rejected with a typed
  :class:`~repro.exceptions.AdmissionError`, and admitted work drains by
  deterministic weighted round-robin over priority lanes.
* **End-to-end deadlines** — a request's ``deadline_s`` budget follows
  it through the queue (expired tickets fail fast with
  :class:`~repro.exceptions.DeadlineExceeded`, never dispatched) and
  into the farm (the remaining budget is the job's deadline; see
  ``CompileFarm.iter_results(deadlines=...)``).
* **Load shedding** — when depth crosses the policy's
  ``shed_high_water`` mark, the lowest-priority newest queued work is
  dropped with :class:`~repro.exceptions.LoadShedError`.
* **Circuit breaker** — :class:`CircuitBreaker` watches farm dispatch:
  after ``failure_threshold`` consecutive failures it opens, cold keys
  are rejected immediately with
  :class:`~repro.exceptions.CircuitOpenError` while warm keys keep
  serving from the store, and after a seeded deterministic timeout a
  single half-open probe decides whether to close again.

Shedding, expiry and breaking change *which* requests complete, never
*what* they return — every admitted-and-completed request still returns
canonical bytes identical to the fault-free reference run, pinned by the
overload chaos suite (``tests/test_overload.py``).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.core.farm import (
    CompileFarm,
    FarmJobError,
    FarmJobResult,
    FarmOptions,
    FarmPolicy,
    PointMetrics,
    WorkloadSpec,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dse import SweepResult
from repro.core.schedule import FPQASchedule
from repro.exceptions import (
    AdmissionError,
    CircuitError,
    CircuitOpenError,
    DeadlineExceeded,
    InvalidCircuitError,
    LoadShedError,
    QPilotError,
)
from repro.hardware.fpqa import FPQAConfig
from repro.obs.events import log_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import adopt, span, tracing_enabled
from repro.service.queue import (
    FAILED,
    CompileRequest,
    JobQueue,
    QueuedJob,
    QueuePolicy,
)
from repro.service.store import ScheduleStore, StoreEntry
from repro.utils.faults import deterministic_draw
from repro.utils.serialization import canonical_json, schedule_from_dict

logger = logging.getLogger(__name__)

#: Where a response came from.
SOURCE_CACHE = "cache"
SOURCE_COMPILED = "compiled"

#: Requests consumed per :meth:`CompileService.stream` chunk when neither
#: ``chunk_size`` nor the service ``batch_size`` is set.
DEFAULT_STREAM_CHUNK = 32

#: Memory-tier size the service gives a store it constructs itself (pass
#: ``memory_entries=None`` — or a ready-made :class:`ScheduleStore` — to
#: opt out).  A serving process wants its hot head answered without disk
#: I/O; 256 parsed entries is a few MB for typical schedules.
DEFAULT_MEMORY_ENTRIES = 256

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Knobs of the farm-dispatch circuit breaker.

    ``failure_threshold`` consecutive dispatch failures trip the breaker
    open; it stays open for :meth:`open_duration` seconds, then admits a
    single half-open probe whose outcome closes it (success) or re-trips
    it (failure).  The open duration is ``reset_timeout_s`` stretched by
    up to ``jitter`` fraction of itself using a *seeded* draw keyed by
    the trip count (:func:`~repro.utils.faults.deterministic_draw`), so
    reopen timing is reproducible run to run — the same determinism
    discipline as the farm's retry backoff.
    """

    failure_threshold: int = 5
    reset_timeout_s: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise QPilotError("failure_threshold must be at least 1")
        if self.reset_timeout_s <= 0:
            raise QPilotError("reset_timeout_s must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise QPilotError("jitter must be in [0, 1]")

    def open_duration(self, trips: int) -> float:
        """Seconds the breaker stays open after trip number ``trips``."""
        return self.reset_timeout_s * (
            1.0 + self.jitter * deterministic_draw(self.seed, "breaker-reset", "trip", trips)
        )


class CircuitBreaker:
    """Closed → open → half-open state machine around farm dispatch.

    The service records one success/failure per dispatched unique job;
    ``failure_threshold`` *consecutive* failures open the breaker.  While
    open, :meth:`current_state` lazily transitions to half-open once the
    seeded open duration elapses (no timers — state is a pure function of
    the injected ``clock``), and :meth:`allow_probe` grants exactly one
    probe slot; the probe's outcome closes or re-trips the breaker.
    Warm-key serving never consults the breaker — only cold dispatch
    does, which is what "serve warm keys while open" means.
    """

    def __init__(
        self, policy: BreakerPolicy | None = None, *, clock: Callable[[], float] | None = None
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self.clock = clock or time.monotonic
        self._state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self.opened_until = 0.0
        self._probe_claimed = False

    def current_state(self) -> str:
        """The live state (open lazily becomes half-open past its timeout)."""
        if self._state == BREAKER_OPEN and self.clock() >= self.opened_until:
            self._state = BREAKER_HALF_OPEN
            self._probe_claimed = False
            log_event(logger, "breaker-half-open", trips=self.trips)
        return self._state

    def allow_probe(self) -> bool:
        """Claim the single half-open probe slot (True exactly once)."""
        if self.current_state() != BREAKER_HALF_OPEN or self._probe_claimed:
            return False
        self._probe_claimed = True
        return True

    def record_success(self) -> None:
        """A dispatch succeeded: close and reset the consecutive count."""
        if self._state != BREAKER_CLOSED:
            log_event(logger, "breaker-closed", trips=self.trips)
        self._state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self._probe_claimed = False

    def record_failure(self) -> None:
        """A dispatch failed: count it, tripping at the threshold.

        A half-open probe failure re-trips immediately; failures recorded
        while already open (stragglers from a batch dispatched before the
        trip) count but cannot re-trip.
        """
        state = self.current_state()
        self.consecutive_failures += 1
        if state == BREAKER_HALF_OPEN or (
            state == BREAKER_CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self.trips += 1
        self._state = BREAKER_OPEN
        self.opened_until = self.clock() + self.policy.open_duration(self.trips)
        self.consecutive_failures = 0
        self._probe_claimed = False
        log_event(logger, "breaker-open", trips=self.trips)


@dataclass(frozen=True)
class CompileResponse:
    """What the service hands back for one resolved request."""

    digest: str
    router: str
    metrics: PointMetrics
    schedule: dict[str, Any]
    source: str

    @property
    def cached(self) -> bool:
        return self.source == SOURCE_CACHE

    def schedule_json(self) -> str:
        """Canonical schedule JSON (byte-stable across cache and compile)."""
        return canonical_json(self.schedule)

    def load_schedule(self) -> FPQASchedule:
        return schedule_from_dict(self.schedule)

    @classmethod
    def from_store(cls, entry: StoreEntry) -> "CompileResponse":
        return cls(
            digest=entry.digest,
            router=entry.router,
            metrics=entry.metrics,
            schedule=entry.schedule,
            source=SOURCE_CACHE,
        )

    @classmethod
    def from_farm(cls, digest: str, result: FarmJobResult) -> "CompileResponse":
        return cls(
            digest=digest,
            router=result.router,
            metrics=result.metrics,
            schedule=result.schedule,
            source=SOURCE_COMPILED,
        )


@dataclass
class ServiceStats:
    """Aggregate serving statistics since service construction.

    Since the observability PR this dataclass is a *view*: the counters
    live in the service's :class:`~repro.obs.metrics.MetricsRegistry`
    (``service_*`` instruments) and ``CompileService.stats`` builds one
    of these from the registry on access — there is no second,
    hand-maintained copy of any number.

    The fault-tolerance counters mirror the farm's per-run stats,
    accumulated across every dispatch: ``retries`` (failed attempts that
    were retried), ``pool_respawns`` (broken process pools rebuilt),
    ``timeouts`` (jobs past their per-job budget), ``failed_jobs``
    (tickets that exhausted the retry budget and were dead-lettered),
    ``store_write_errors`` (results served despite a failed persist) and
    ``degraded`` (sticky: some run fell back to the in-process reference
    executor).

    The overload counters tally *submissions* (coalesced waiters each
    count — every one observed the outcome): ``rejected`` (admission
    refusals plus breaker-open cold rejections), ``shed`` (dropped past
    the high-water mark), ``expired`` (deadline ran out, in queue or in
    the farm) and ``dead_letters_dropped`` (failed tickets trimmed off
    the bounded dead-letter list).  ``breaker_state``/``breaker_trips``
    and the per-lane ``lane_depths`` snapshot complete the overload
    picture.

    ``rejected_invalid`` counts untrusted uploads refused at the
    ingestion boundary (:meth:`CompileService.submit_qasm`) — malformed
    or resource-guard-breaching QASM that never became a queue ticket,
    never reached the farm and never dead-lettered.
    """

    requests: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    farm_dispatches: int = 0
    completed: int = 0
    busy_s: float = 0.0
    queue_depth: int = 0
    retries: int = 0
    pool_respawns: int = 0
    timeouts: int = 0
    failed_jobs: int = 0
    store_write_errors: int = 0
    degraded: bool = False
    rejected: int = 0
    rejected_invalid: int = 0
    shed: int = 0
    expired: int = 0
    dead_letters_dropped: int = 0
    breaker_state: str = BREAKER_CLOSED
    breaker_trips: int = 0
    lane_depths: dict[str, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float | None:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else None

    @property
    def throughput_rps(self) -> float | None:
        """Completed requests per second of service busy time."""
        return self.completed / self.busy_s if self.busy_s > 0 else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "farm_dispatches": self.farm_dispatches,
            "completed": self.completed,
            "busy_s": self.busy_s,
            "throughput_rps": self.throughput_rps,
            "queue_depth": self.queue_depth,
            "retries": self.retries,
            "pool_respawns": self.pool_respawns,
            "timeouts": self.timeouts,
            "failed_jobs": self.failed_jobs,
            "store_write_errors": self.store_write_errors,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "rejected_invalid": self.rejected_invalid,
            "shed": self.shed,
            "expired": self.expired,
            "dead_letters_dropped": self.dead_letters_dropped,
            "breaker_state": self.breaker_state,
            "breaker_trips": self.breaker_trips,
            "lane_depths": dict(self.lane_depths),
        }


class CompileService:
    """Long-lived compile-as-a-service facade over farm + store + queue.

    Parameters
    ----------
    store:
        A :class:`ScheduleStore` or a path to (create and) use as one.
        When constructing from a path the service turns the in-memory
        LRU front tier on (:data:`DEFAULT_MEMORY_ENTRIES`; override with
        ``memory_entries``, gzip the disk tier with ``compress=True``).
        A ready-made store is used exactly as configured.
    executor:
        Farm backend for cache misses.  Defaults to ``"thread"`` — a
        serving process wants no spawn cost and its traffic is dominated
        by store lookups; use ``"process"`` for compile-heavy batches or
        ``"reference"`` for the deterministic serial oracle.
    max_workers, batch_size:
        Pool width for the farm, and the default number of unique
        requests drained per :meth:`process_batch` call (None = all).
    policy:
        The farm's :class:`~repro.core.farm.FarmPolicy` — retry budget,
        backoff, per-job timeout, pool respawns.  A job that exhausts it
        fails only its own ticket (typed, dead-lettered); the batch and
        the service survive.
    queue_policy:
        The :class:`~repro.service.queue.QueuePolicy` — admission limits
        (``max_depth``, ``max_pending_per_client``), priority lanes and
        the ``shed_high_water`` mark.  Defaults to unbounded with the
        standard lanes (the pre-overload-control behaviour).
    breaker:
        The :class:`BreakerPolicy` of the farm-dispatch circuit breaker
        (always on; the default trips after 5 consecutive failures).
    clock:
        Monotonic time source for deadlines and breaker timing
        (injectable so overload tests are deterministic).  The farm keeps
        real time — deadlines cross into it as *relative* budgets.
    max_dead_letters, evict_lock_stale_s:
        Bounds threaded through to :attr:`JobQueue.max_dead_letters` and
        the store's eviction-lock staleness cutoff
        (``evict_lock_stale_s`` applies only to stores the service
        constructs from a path; a ready-made store keeps its own).
    """

    def __init__(
        self,
        store: ScheduleStore | str | Path,
        *,
        executor: str = "thread",
        max_workers: int | None = None,
        batch_size: int | None = None,
        policy: FarmPolicy | None = None,
        memory_entries: int | None = DEFAULT_MEMORY_ENTRIES,
        compress: bool = False,
        queue_policy: QueuePolicy | None = None,
        breaker: BreakerPolicy | None = None,
        clock: Callable[[], float] | None = None,
        max_dead_letters: int | None = None,
        evict_lock_stale_s: float | None = None,
        registry: MetricsRegistry | None = None,
    ):
        # one registry per service by default, so concurrent services
        # (and tests) observe only their own traffic; pass
        # ``registry=repro.obs.REGISTRY`` to publish process-wide
        self.registry = registry if registry is not None else MetricsRegistry()
        if isinstance(store, ScheduleStore):
            self.store = store
        else:
            store_kwargs: dict[str, Any] = {
                "memory_entries": memory_entries,
                "compress": compress,
                "registry": self.registry,
            }
            if evict_lock_stale_s is not None:
                store_kwargs["evict_lock_stale_s"] = evict_lock_stale_s
            self.store = ScheduleStore(store, **store_kwargs)
        self.farm = CompileFarm(
            executor, max_workers=max_workers, policy=policy, registry=self.registry
        )
        self._clock = clock or time.monotonic
        self.queue = JobQueue(
            queue_policy, max_dead_letters=max_dead_letters, clock=self._clock
        )
        self.breaker = CircuitBreaker(breaker, clock=self._clock)
        self.batch_size = batch_size
        # hot-path instrument handles (the registry get-or-create is
        # locked; the serving loop should not pay it per request)
        metric = self.registry.counter
        self._c_requests = metric("service_requests_total")
        self._c_coalesced = metric("service_coalesced_total")
        self._c_cache_hits = metric("service_cache_hits_total")
        self._c_cache_misses = metric("service_cache_misses_total")
        self._c_farm_dispatches = metric("service_farm_dispatches_total")
        self._c_completed = metric("service_completed_total")
        self._c_busy = metric("service_busy_seconds_total")
        self._c_retries = metric("service_retries_total")
        self._c_pool_respawns = metric("service_pool_respawns_total")
        self._c_timeouts = metric("service_timeouts_total")
        self._c_failed_jobs = metric("service_failed_jobs_total")
        self._c_store_write_errors = metric("service_store_write_errors_total")
        self._c_rejected = metric("service_rejected_total")
        self._c_rejected_invalid = metric("service_rejected_invalid_total")
        self._c_shed = metric("service_shed_total")
        self._c_expired = metric("service_expired_total")
        self._g_degraded = self.registry.gauge("service_degraded")

    # -- stats ----------------------------------------------------------
    @property
    def stats(self) -> ServiceStats:
        """Live aggregate stats — a view over the metrics registry."""
        self._refresh_gauges()
        return ServiceStats(
            requests=int(self._c_requests.value),
            coalesced=int(self._c_coalesced.value),
            cache_hits=int(self._c_cache_hits.value),
            cache_misses=int(self._c_cache_misses.value),
            farm_dispatches=int(self._c_farm_dispatches.value),
            completed=int(self._c_completed.value),
            busy_s=float(self._c_busy.value),
            queue_depth=self.queue.depth,
            retries=int(self._c_retries.value),
            pool_respawns=int(self._c_pool_respawns.value),
            timeouts=int(self._c_timeouts.value),
            failed_jobs=int(self._c_failed_jobs.value),
            store_write_errors=int(self._c_store_write_errors.value),
            degraded=bool(self._g_degraded.value),
            rejected=int(self._c_rejected.value),
            rejected_invalid=int(self._c_rejected_invalid.value),
            shed=int(self._c_shed.value),
            expired=int(self._c_expired.value),
            dead_letters_dropped=self.queue.dead_letters_dropped,
            breaker_state=self.breaker.current_state(),
            breaker_trips=self.breaker.trips,
            lane_depths=self.queue.lane_depths(),
        )

    def _refresh_gauges(self) -> None:
        """Mirror live queue/breaker readings into registry gauges.

        Called on every stats/exposition access so the gauges in
        ``stats --metrics`` output match what the :class:`ServiceStats`
        view reports.
        """
        registry = self.registry
        registry.gauge("service_queue_depth").set(self.queue.depth)
        for lane, depth in self.queue.lane_depths().items():
            registry.gauge("service_lane_depth", lane=lane).set(depth)
        registry.gauge("service_dead_letters_dropped").set(self.queue.dead_letters_dropped)
        registry.gauge("service_breaker_trips").set(self.breaker.trips)
        state = self.breaker.current_state()
        for name in (BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN):
            registry.gauge("service_breaker_state", state=name).set(
                1 if name == state else 0
            )

    def metrics_dict(self) -> dict[str, Any]:
        """Registry JSON exposition with gauges refreshed."""
        self._refresh_gauges()
        return self.registry.to_dict()

    def metrics_prometheus(self) -> str:
        """Registry Prometheus text exposition with gauges refreshed."""
        self._refresh_gauges()
        return self.registry.to_prometheus()

    def _absorb_farm_stats(self) -> None:
        """Fold the farm's last-run fault counters into the service view."""
        last = self.farm.last_stats
        for counter, key in (
            (self._c_retries, "retries"),
            (self._c_pool_respawns, "pool_respawns"),
            (self._c_timeouts, "timeouts"),
        ):
            if last.get(key):
                counter.inc(last[key])
        if last.get("degraded"):
            self._g_degraded.set(1)

    def _observe_compile(self, result: FarmJobResult) -> None:
        """Record a successful compile in the per-router time histogram."""
        elapsed = result.metrics.compile_time_s
        if elapsed is not None:
            self.registry.histogram(
                "service_compile_seconds", router=result.router
            ).observe(elapsed)

    # -- persistence -----------------------------------------------------
    def _store_put(self, digest: str, result: FarmJobResult) -> bool:
        """Persist a result, logging (never raising) on failure.

        A compile that succeeded must reach its waiters even when the
        disk is unhappy — the store is a cache, not the source of truth.
        Returns False when the write failed (the next identical request
        recompiles).
        """
        try:
            with span("store-write", digest=digest[:12]):
                self.store.put(digest, result)
            return True
        except Exception as exc:
            self._c_store_write_errors.inc()
            log_event(
                logger,
                "store-write-failed",
                digest=digest[:12],
                error=type(exc).__name__,
                message=str(exc),
            )
            return False

    def _fail_ticket(self, ticket: QueuedJob, error: FarmJobError) -> None:
        """Fail a ticket with its typed cause and dead-letter it."""
        ticket.fail(error)
        self.queue.bury(ticket)
        self._c_failed_jobs.inc()
        log_event(
            logger,
            "dead-letter",
            digest=ticket.digest[:12],
            error=error.error_type,
            attempts=error.attempts,
        )

    def _expire_ticket(self, ticket: QueuedJob) -> None:
        """Fail a ticket whose deadline ran out; every waiter sees it."""
        ticket.fail(
            DeadlineExceeded(
                f"request {ticket.digest[:12]} deadline expired before completion",
                digest=ticket.digest,
            )
        )
        self.queue.bury(ticket)
        self._c_expired.inc(ticket.submissions)
        log_event(
            logger, "request-expired", digest=ticket.digest[:12], waiters=ticket.submissions
        )

    def _reject_open(self, ticket: QueuedJob) -> None:
        """Fail a cold ticket refused because the breaker is open."""
        ticket.fail(
            CircuitOpenError(
                f"circuit breaker open; cold request {ticket.digest[:12]} rejected",
                digest=ticket.digest,
            )
        )
        self.queue.bury(ticket)
        self._c_rejected.inc(ticket.submissions)
        log_event(
            logger,
            "request-rejected",
            digest=ticket.digest[:12],
            reason="breaker-open",
            waiters=ticket.submissions,
        )

    def _shed_over_high_water(self) -> None:
        """Drop lowest-priority queued work past the high-water mark."""
        high = self.queue.policy.shed_high_water
        if high is None or self.queue.depth <= high:
            return
        for ticket in self.queue.shed(self.queue.depth - high):
            ticket.fail(
                LoadShedError(
                    f"request {ticket.digest[:12]} shed: queue depth crossed "
                    f"high water ({high})",
                    client_id=ticket.request.client_id,
                    lane=ticket.lane,
                    reason="load-shed",
                )
            )
            self.queue.bury(ticket)
            self._c_shed.inc(ticket.submissions)
            log_event(
                logger,
                "request-shed",
                digest=ticket.digest[:12],
                lane=ticket.lane,
                waiters=ticket.submissions,
            )

    def _breaker_admits(self) -> bool:
        """Whether cold dispatch is allowed right now (claims the probe)."""
        state = self.breaker.current_state()
        if state == BREAKER_CLOSED:
            return True
        if state == BREAKER_HALF_OPEN:
            return self.breaker.allow_probe()
        return False

    # -- submission ------------------------------------------------------
    def submit(self, request: CompileRequest) -> QueuedJob:
        """Queue one request; identical pending requests share a ticket.

        Raises :class:`~repro.exceptions.AdmissionError` when the queue
        policy refuses the request (over depth, over the client's quota,
        unknown lane) — overload rejects fast instead of queueing
        unboundedly.  A successful submit may shed *other* queued work if
        depth crossed the policy's high-water mark (those tickets fail
        with :class:`~repro.exceptions.LoadShedError`).
        """
        self._c_requests.inc()
        try:
            ticket = self.queue.submit(request)
        except AdmissionError as exc:
            self._c_rejected.inc()
            log_event(
                logger,
                "request-rejected",
                digest=request.digest()[:12],
                reason="admission",
                error=type(exc).__name__,
            )
            raise
        if ticket.submissions > 1:
            self._c_coalesced.inc()
        self._shed_over_high_water()
        return ticket

    def submit_all(self, requests: Iterable[CompileRequest]) -> list[QueuedJob]:
        return [self.submit(request) for request in requests]

    # -- the service loop ------------------------------------------------
    def process_batch(self, limit: int | None = None) -> list[QueuedJob]:
        """Drain one batch: answer warm keys from the store, farm the rest.

        Returns the popped tickets in weighted lane order.  Only cold
        keys reach the farm — a batch of all-warm requests performs
        **zero** router invocations.  Overload semantics: tickets whose
        deadline already passed fail fast with
        :class:`~repro.exceptions.DeadlineExceeded` (expired-in-queue
        work is never dispatched), cold keys are rejected with
        :class:`~repro.exceptions.CircuitOpenError` while the breaker is
        open (warm keys keep serving from the store), and dispatched
        jobs carry their remaining deadline budget into the farm.
        """
        start = time.perf_counter()
        batch = self.queue.pop_batch(self.batch_size if limit is None else limit)
        cold: list[QueuedJob] = []
        for ticket in batch:
            if ticket.expired(self._clock()):
                self._expire_ticket(ticket)
                continue
            with span("store-get", digest=ticket.digest[:12]) as get_span:
                entry = self.store.get(ticket.digest)
                get_span.set("outcome", "hit" if entry is not None else "miss")
            # re-check after the read: a slow store (``slow-store-read``)
            # can burn the whole budget on the warm path
            if ticket.expired(self._clock()):
                self._expire_ticket(ticket)
                continue
            if entry is not None:
                self._c_cache_hits.inc()
                ticket.resolve(CompileResponse.from_store(entry))
                self.queue.finish(ticket)
            else:
                self._c_cache_misses.inc()
                cold.append(ticket)
        dispatch: list[QueuedJob] = []
        for ticket in cold:
            if self._breaker_admits():
                dispatch.append(ticket)
            else:
                self._reject_open(ticket)
        if dispatch:
            now = self._clock()
            ready: list[QueuedJob] = []
            budgets: list[float | None] = []
            for ticket in dispatch:
                budget = ticket.remaining_budget(now)
                if budget is not None and budget <= 0:
                    self._expire_ticket(ticket)
                    continue
                ready.append(ticket)
                budgets.append(budget)
            jobs = [ticket.request.job() for ticket in ready]
            if jobs and tracing_enabled():
                # digest/memo keys exclude ``trace``, so flipping it on
                # changes nothing about what (or under which key) the
                # farm computes — it only ships span records back
                jobs = [
                    replace(job, options=replace(job.options, trace=True))
                    for job in jobs
                ]
            self._c_farm_dispatches.inc(len(jobs))
            try:
                if jobs:
                    with span("farm-dispatch", jobs=len(jobs)):
                        results = self.farm.run(jobs, with_schedules=True, deadlines=budgets)
                        for result in results:
                            if isinstance(result, FarmJobResult) and result.spans:
                                adopt(result.spans)
                    self._absorb_farm_stats()
                else:
                    results = []
                for ticket, result in zip(ready, results):
                    if isinstance(result, FarmJobError):
                        # one poisoned job fails only its own ticket —
                        # typed, dead-lettered, visible to every
                        # coalesced waiter on the shared object.  Both
                        # real failures and in-farm expiries count
                        # against the breaker: either way the farm is
                        # not completing work right now
                        if result.error_type == "DeadlineExceeded":
                            self._expire_ticket(ticket)
                        else:
                            self._fail_ticket(ticket, result)
                        self.breaker.record_failure()
                        continue
                    self.breaker.record_success()
                    self._observe_compile(result)
                    self._store_put(ticket.digest, result)
                    ticket.resolve(CompileResponse.from_farm(ticket.digest, result))
                    self.queue.finish(ticket)
            except BaseException as exc:
                # tickets are already out of the queue — mark the unresolved
                # ones failed so waiters see the error instead of hanging
                for ticket in ready:
                    if not ticket.done and not ticket.failed:
                        ticket.fail(exc)
                        self.queue.finish(ticket)
                raise
        # per *resolved* submission, exactly like stream(): coalesced
        # waiters each count as a completed request, but a failed
        # ticket's submissions were never served and must not inflate
        # completed (and through it throughput_rps) under faults
        done = sum(ticket.submissions for ticket in batch if ticket.done)
        if done:
            self._c_completed.inc(done)
        self._c_busy.inc(time.perf_counter() - start)
        return batch

    def drain(self) -> list[QueuedJob]:
        """Process batches until the queue is empty."""
        resolved: list[QueuedJob] = []
        while self.queue.depth:
            resolved.extend(self.process_batch())
        return resolved

    def resolve(self, ticket: QueuedJob) -> CompileResponse:
        """Drive the service loop until ``ticket`` resolves (or raise typed)."""
        while not ticket.done:
            if ticket.status == FAILED:
                ticket.raise_error()
            if not self.queue.depth:
                raise QPilotError("ticket pending but queue empty — ticket failed?")
            self.process_batch()
        return ticket.response

    def compile(self, request: CompileRequest) -> CompileResponse:
        """Synchronous convenience: submit one request and resolve it now.

        Coalesces with any identical request already queued (both tickets
        resolve together, in queue order).
        """
        # the root span wraps submit *and* resolve so one traced compile
        # is a single rooted tree (ingest/store/farm spans nest inside)
        with span("request", workload=request.workload.name):
            return self.resolve(self.submit(request))

    # -- untrusted ingestion ----------------------------------------------
    def ingest_qasm(self, text: str, *, limits=None, name: str | None = None) -> WorkloadSpec:
        """Validate untrusted OpenQASM text into a content-addressed spec.

        This is the abuse boundary: the text is parsed under ``limits``
        (default :data:`repro.circuit.DEFAULT_LIMITS`) before any queue
        ticket or farm job exists.  A failure — syntax, hostile angle
        expression, out-of-range or duplicate operands, missing or
        conflicting ``qreg``, resource-guard breach — increments
        ``ServiceStats.rejected_invalid`` and raises a typed
        :class:`~repro.exceptions.InvalidCircuitError` carrying the
        offending line/column, with the underlying
        :class:`~repro.exceptions.CircuitError` chained as ``__cause__``.
        Invalid input is **never** dispatched and never dead-letters.
        """
        try:
            with span("ingest", bytes=len(text)):
                return WorkloadSpec.qasm(text, limits=limits, name=name)
        except CircuitError as exc:
            self._c_rejected_invalid.inc()
            log_event(
                logger,
                "invalid-circuit",
                error=type(exc).__name__,
                line=getattr(exc, "line", None),
                column=getattr(exc, "column", None),
            )
            raise InvalidCircuitError(
                f"invalid QASM circuit rejected: {exc}",
                line=getattr(exc, "line", None),
                column=getattr(exc, "column", None),
            ) from exc

    def submit_qasm(
        self,
        text: str,
        *,
        width: int | None = None,
        config: "FPQAConfig | None" = None,
        options: FarmOptions | None = None,
        limits=None,
        name: str | None = None,
        client_id: str = "anonymous",
        priority: str | None = None,
        deadline_s: float | None = None,
    ) -> QueuedJob:
        """Queue one untrusted QASM upload (validated first; see above).

        Exactly one of ``width`` (an FPQA array width sized to the
        circuit) or a ready-made ``config`` must be given.  Identical
        text under identical config/options coalesces with any pending
        ticket and warm-serves from the store — uploads are
        content-addressed by their sha1 like every other workload.
        """
        spec = self.ingest_qasm(text, limits=limits, name=name)
        if (width is None) == (config is None):
            raise QPilotError("submit_qasm needs exactly one of width= or config=")
        if config is None:
            config = FPQAConfig.with_width(spec.num_qubits, int(width))
        request = CompileRequest(
            workload=spec,
            config=config,
            options=options or FarmOptions(),
            client_id=client_id,
            priority=priority,
            deadline_s=deadline_s,
        )
        return self.submit(request)

    def compile_qasm(self, text: str, **kwargs) -> CompileResponse:
        """Synchronous convenience: :meth:`submit_qasm` + :meth:`resolve`."""
        with span("request", workload="qasm"):
            return self.resolve(self.submit_qasm(text, **kwargs))

    # -- cache warming ---------------------------------------------------
    def warm_from(self, sweep: "SweepResult") -> dict[str, int]:
        """Warm the store from an archived DSE trajectory.

        ``sweep`` is a :class:`~repro.core.dse.SweepResult` — typically
        ``SweepResult.from_json`` of an archive file.  Every point whose
        job record (``DesignPoint.job``, written by ``sweep_grid``) can
        be rebuilt into a :class:`CompileRequest` and whose digest is not
        already servable gets compiled through the normal streaming path
        and persisted — so a store can be pre-populated from yesterday's
        trajectories before today's traffic arrives.

        Returns counts: ``points`` (seen), ``warmed`` (compiled and
        persisted now), ``already`` (servable before the call) and
        ``skipped`` (failed points and pre-job-record archives).
        """
        counts = {"points": 0, "warmed": 0, "already": 0, "skipped": 0}
        requests: list[CompileRequest] = []
        seen: set[str] = set()
        for point in sweep.points:
            counts["points"] += 1
            record = getattr(point, "job", None)
            if point.failed or not record:
                counts["skipped"] += 1
                continue
            try:
                request = CompileRequest(
                    workload=WorkloadSpec.from_dict(record["workload"]),
                    config=point.config,
                    options=FarmOptions.from_dict(record.get("options") or {}),
                )
                digest = request.digest()
            except (KeyError, TypeError, ValueError, QPilotError):
                counts["skipped"] += 1
                continue
            if digest in seen or digest in self.store:
                counts["already"] += 1
                continue
            seen.add(digest)
            requests.append(request)
        for _ in self.stream(requests):
            pass  # responses persist as they land; warming wants no output
        counts["warmed"] = len(requests)
        return counts

    # -- streaming -------------------------------------------------------
    def stream(
        self, requests: Iterable[CompileRequest], *, chunk_size: int | None = None
    ) -> Iterator[CompileResponse]:
        """Yield a response per *request* as each resolves, incrementally.

        Requests are consumed in chunks (``chunk_size``, defaulting to
        ``batch_size`` or :data:`DEFAULT_STREAM_CHUNK`): within a chunk,
        cache hits are yielded immediately and misses stream out of the
        farm in completion order (:meth:`CompileFarm.iter_results`), each
        persisted to the store as it lands.  Duplicate requests each get
        a response — in-chunk duplicates share one compile, cross-chunk
        duplicates hit the store — so the output count always matches the
        input count.  Memory stays bounded by the chunk size and the
        in-flight compiles, not the sweep size, and the input may be an
        unbounded generator — the service-side face of
        ``sweep_grid(..., stream=True)``.
        """
        size = chunk_size if chunk_size is not None else (
            self.batch_size or DEFAULT_STREAM_CHUNK
        )
        if size < 1:
            raise QPilotError("stream chunk_size must be at least 1")
        chunk: list[CompileRequest] = []
        for request in requests:
            chunk.append(request)
            if len(chunk) >= size:
                yield from self._stream_chunk(chunk)
                chunk = []
        if chunk:
            yield from self._stream_chunk(chunk)

    def _stream_chunk(self, chunk: list[CompileRequest]) -> Iterator[CompileResponse]:
        # The streaming path is pull-based — the consumer's pace is its
        # own backpressure — so admission quotas deliberately do not
        # apply here.  Deadlines and the circuit breaker do: an expired
        # or breaker-rejected request is typed + dead-lettered and the
        # output count shrinks by its submissions, same as a failure.
        start = time.perf_counter()
        cold_tickets: list[QueuedJob] = []
        cold_index: dict[str, int] = {}
        default_lane = self.queue.policy.default_lane
        for request in chunk:
            self._c_requests.inc()
            digest = request.digest()
            deadline_at = (
                None
                if request.deadline_s is None
                else self._clock() + request.deadline_s
            )
            if digest in cold_index:
                # already being compiled in this chunk — the shared ticket
                # will emit one extra response when it resolves, and its
                # deadline tightens to the strictest waiter's
                self._c_coalesced.inc()
                ticket = cold_tickets[cold_index[digest]]
                ticket.submissions += 1
                if deadline_at is not None and (
                    ticket.deadline_at is None or deadline_at < ticket.deadline_at
                ):
                    ticket.deadline_at = deadline_at
                continue
            with span("store-get", digest=digest[:12]) as get_span:
                entry = self.store.get(digest)
                get_span.set("outcome", "hit" if entry is not None else "miss")
            lane = request.priority if request.priority is not None else default_lane
            if deadline_at is not None and self._clock() >= deadline_at:
                # the budget is gone already (e.g. a slow store read) —
                # expired even if the key turned out warm
                self._expire_ticket(
                    QueuedJob(
                        request=request, digest=digest, lane=lane, deadline_at=deadline_at
                    )
                )
                continue
            if entry is not None:
                self._c_cache_hits.inc()
                self._c_completed.inc()
                self._c_busy.inc(time.perf_counter() - start)
                yield CompileResponse.from_store(entry)
                start = time.perf_counter()
            else:
                self._c_cache_misses.inc()
                cold_index[digest] = len(cold_tickets)
                cold_tickets.append(
                    QueuedJob(
                        request=request, digest=digest, lane=lane, deadline_at=deadline_at
                    )
                )
        dispatch: list[QueuedJob] = []
        for ticket in cold_tickets:
            if self._breaker_admits():
                dispatch.append(ticket)
            else:
                self._reject_open(ticket)
        if dispatch:
            now = self._clock()
            ready: list[QueuedJob] = []
            budgets: list[float | None] = []
            for ticket in dispatch:
                budget = ticket.remaining_budget(now)
                if budget is not None and budget <= 0:
                    self._expire_ticket(ticket)
                    continue
                ready.append(ticket)
                budgets.append(budget)
            jobs = [ticket.request.job() for ticket in ready]
            if jobs and tracing_enabled():
                jobs = [
                    replace(job, options=replace(job.options, trace=True))
                    for job in jobs
                ]
            self._c_farm_dispatches.inc(len(jobs))
            if jobs:
                for index, result in self.farm.iter_results(
                    jobs, with_schedules=True, deadlines=budgets
                ):
                    ticket = ready[index]
                    if isinstance(result, FarmJobResult) and result.spans:
                        # graft worker spans under whatever span is live
                        # on the consumer's thread right now
                        adopt(result.spans)
                    if isinstance(result, FarmJobError):
                        # the stream keeps flowing for the healthy requests;
                        # the failed ticket is typed + dead-lettered, so
                        # callers find it on ``queue.dead_letters`` (the
                        # output count shrinks by its submissions)
                        if result.error_type == "DeadlineExceeded":
                            self._expire_ticket(ticket)
                        else:
                            self._fail_ticket(ticket, result)
                        self.breaker.record_failure()
                        continue
                    self.breaker.record_success()
                    self._observe_compile(result)
                    self._store_put(ticket.digest, result)
                    response = CompileResponse.from_farm(ticket.digest, result)
                    ticket.resolve(response)
                    for _ in range(ticket.submissions):
                        self._c_completed.inc()
                        self._c_busy.inc(time.perf_counter() - start)
                        yield response
                        start = time.perf_counter()
                self._absorb_farm_stats()

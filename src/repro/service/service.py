"""The compile service: queue + content-addressed store + compile farm.

:class:`CompileService` turns the one-shot in-process compiler into a
long-lived serving layer:

* clients :meth:`~CompileService.submit` :class:`CompileRequest` tickets
  (identical in-flight requests coalesce in the :class:`JobQueue`);
* :meth:`~CompileService.process_batch` drains the queue — warm keys are
  answered straight from the :class:`ScheduleStore` (zero router
  invocations), cold keys are dispatched through the
  :class:`~repro.core.farm.CompileFarm` once and persisted;
* :meth:`~CompileService.stream` is the incremental path: responses are
  yielded as they resolve (cache hits immediately, compiles as each
  finishes), so arbitrarily large request sweeps flow through without
  materialising the grid.

A service built from a store *path* fronts the disk store with the
in-memory LRU tier (:data:`DEFAULT_MEMORY_ENTRIES`), so the hot head of
real traffic is served without any disk I/O; :meth:`~CompileService.warm_from`
pre-populates the store from an archived
:class:`~repro.core.dse.SweepResult` trajectory.

``ServiceStats`` aggregates the serving picture: request counts,
coalescing, cache hit rate, farm dispatches, queue depth and throughput.
The differential guarantees compose: the farm's executor oracle makes
every backend produce byte-identical canonical schedules, and the store
persists exactly those bytes — so a cache hit is indistinguishable from
a recompile, which is what makes caching *correct* and not just fast.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.core.farm import (
    CompileFarm,
    FarmJobError,
    FarmJobResult,
    FarmOptions,
    FarmPolicy,
    PointMetrics,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dse import SweepResult
from repro.core.schedule import FPQASchedule
from repro.exceptions import QPilotError
from repro.service.queue import FAILED, CompileRequest, JobQueue, QueuedJob
from repro.service.store import ScheduleStore, StoreEntry
from repro.utils.serialization import canonical_json, schedule_from_dict

logger = logging.getLogger(__name__)

#: Where a response came from.
SOURCE_CACHE = "cache"
SOURCE_COMPILED = "compiled"

#: Requests consumed per :meth:`CompileService.stream` chunk when neither
#: ``chunk_size`` nor the service ``batch_size`` is set.
DEFAULT_STREAM_CHUNK = 32

#: Memory-tier size the service gives a store it constructs itself (pass
#: ``memory_entries=None`` — or a ready-made :class:`ScheduleStore` — to
#: opt out).  A serving process wants its hot head answered without disk
#: I/O; 256 parsed entries is a few MB for typical schedules.
DEFAULT_MEMORY_ENTRIES = 256


@dataclass(frozen=True)
class CompileResponse:
    """What the service hands back for one resolved request."""

    digest: str
    router: str
    metrics: PointMetrics
    schedule: dict[str, Any]
    source: str

    @property
    def cached(self) -> bool:
        return self.source == SOURCE_CACHE

    def schedule_json(self) -> str:
        """Canonical schedule JSON (byte-stable across cache and compile)."""
        return canonical_json(self.schedule)

    def load_schedule(self) -> FPQASchedule:
        return schedule_from_dict(self.schedule)

    @classmethod
    def from_store(cls, entry: StoreEntry) -> "CompileResponse":
        return cls(
            digest=entry.digest,
            router=entry.router,
            metrics=entry.metrics,
            schedule=entry.schedule,
            source=SOURCE_CACHE,
        )

    @classmethod
    def from_farm(cls, digest: str, result: FarmJobResult) -> "CompileResponse":
        return cls(
            digest=digest,
            router=result.router,
            metrics=result.metrics,
            schedule=result.schedule,
            source=SOURCE_COMPILED,
        )


@dataclass
class ServiceStats:
    """Aggregate serving statistics since service construction.

    The fault-tolerance counters mirror the farm's per-run stats,
    accumulated across every dispatch: ``retries`` (failed attempts that
    were retried), ``pool_respawns`` (broken process pools rebuilt),
    ``timeouts`` (jobs past their per-job budget), ``failed_jobs``
    (tickets that exhausted the retry budget and were dead-lettered),
    ``store_write_errors`` (results served despite a failed persist) and
    ``degraded`` (sticky: some run fell back to the in-process reference
    executor).
    """

    requests: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    farm_dispatches: int = 0
    completed: int = 0
    busy_s: float = 0.0
    queue_depth: int = 0
    retries: int = 0
    pool_respawns: int = 0
    timeouts: int = 0
    failed_jobs: int = 0
    store_write_errors: int = 0
    degraded: bool = False

    @property
    def cache_hit_rate(self) -> float | None:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else None

    @property
    def throughput_rps(self) -> float | None:
        """Completed requests per second of service busy time."""
        return self.completed / self.busy_s if self.busy_s > 0 else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "farm_dispatches": self.farm_dispatches,
            "completed": self.completed,
            "busy_s": self.busy_s,
            "throughput_rps": self.throughput_rps,
            "queue_depth": self.queue_depth,
            "retries": self.retries,
            "pool_respawns": self.pool_respawns,
            "timeouts": self.timeouts,
            "failed_jobs": self.failed_jobs,
            "store_write_errors": self.store_write_errors,
            "degraded": self.degraded,
        }


class CompileService:
    """Long-lived compile-as-a-service facade over farm + store + queue.

    Parameters
    ----------
    store:
        A :class:`ScheduleStore` or a path to (create and) use as one.
        When constructing from a path the service turns the in-memory
        LRU front tier on (:data:`DEFAULT_MEMORY_ENTRIES`; override with
        ``memory_entries``, gzip the disk tier with ``compress=True``).
        A ready-made store is used exactly as configured.
    executor:
        Farm backend for cache misses.  Defaults to ``"thread"`` — a
        serving process wants no spawn cost and its traffic is dominated
        by store lookups; use ``"process"`` for compile-heavy batches or
        ``"reference"`` for the deterministic serial oracle.
    max_workers, batch_size:
        Pool width for the farm, and the default number of unique
        requests drained per :meth:`process_batch` call (None = all).
    policy:
        The farm's :class:`~repro.core.farm.FarmPolicy` — retry budget,
        backoff, per-job timeout, pool respawns.  A job that exhausts it
        fails only its own ticket (typed, dead-lettered); the batch and
        the service survive.
    """

    def __init__(
        self,
        store: ScheduleStore | str | Path,
        *,
        executor: str = "thread",
        max_workers: int | None = None,
        batch_size: int | None = None,
        policy: FarmPolicy | None = None,
        memory_entries: int | None = DEFAULT_MEMORY_ENTRIES,
        compress: bool = False,
    ):
        self.store = (
            store
            if isinstance(store, ScheduleStore)
            else ScheduleStore(store, memory_entries=memory_entries, compress=compress)
        )
        self.farm = CompileFarm(executor, max_workers=max_workers, policy=policy)
        self.queue = JobQueue()
        self.batch_size = batch_size
        self._stats = ServiceStats()

    # -- stats ----------------------------------------------------------
    @property
    def stats(self) -> ServiceStats:
        """Live aggregate stats (queue depth up to date)."""
        self._stats.queue_depth = self.queue.depth
        return self._stats

    def _absorb_farm_stats(self) -> None:
        """Fold the farm's last-run fault counters into the service view."""
        last = self.farm.last_stats
        self._stats.retries += last.get("retries", 0)
        self._stats.pool_respawns += last.get("pool_respawns", 0)
        self._stats.timeouts += last.get("timeouts", 0)
        self._stats.degraded = self._stats.degraded or bool(last.get("degraded"))

    # -- persistence -----------------------------------------------------
    def _store_put(self, digest: str, result: FarmJobResult) -> bool:
        """Persist a result, logging (never raising) on failure.

        A compile that succeeded must reach its waiters even when the
        disk is unhappy — the store is a cache, not the source of truth.
        Returns False when the write failed (the next identical request
        recompiles).
        """
        try:
            self.store.put(digest, result)
            return True
        except Exception as exc:
            self._stats.store_write_errors += 1
            logger.warning(
                "schedule store write failed for %s (%s: %s); serving result anyway",
                digest[:12],
                type(exc).__name__,
                exc,
            )
            return False

    def _fail_ticket(self, ticket: QueuedJob, error: FarmJobError) -> None:
        """Fail a ticket with its typed cause and dead-letter it."""
        ticket.fail(error)
        self.queue.bury(ticket)
        self._stats.failed_jobs += 1

    # -- submission ------------------------------------------------------
    def submit(self, request: CompileRequest) -> QueuedJob:
        """Queue one request; identical pending requests share a ticket."""
        ticket = self.queue.submit(request)
        self._stats.requests += 1
        if ticket.submissions > 1:
            self._stats.coalesced += 1
        return ticket

    def submit_all(self, requests: Iterable[CompileRequest]) -> list[QueuedJob]:
        return [self.submit(request) for request in requests]

    # -- the service loop ------------------------------------------------
    def process_batch(self, limit: int | None = None) -> list[QueuedJob]:
        """Drain one batch: answer warm keys from the store, farm the rest.

        Returns the resolved tickets in submission order.  Only cold keys
        reach the farm — a batch of all-warm requests performs **zero**
        router invocations.
        """
        start = time.perf_counter()
        batch = self.queue.pop_batch(self.batch_size if limit is None else limit)
        cold: list[QueuedJob] = []
        for ticket in batch:
            entry = self.store.get(ticket.digest)
            if entry is not None:
                self._stats.cache_hits += 1
                ticket.resolve(CompileResponse.from_store(entry))
            else:
                self._stats.cache_misses += 1
                cold.append(ticket)
        if cold:
            jobs = [ticket.request.job() for ticket in cold]
            self._stats.farm_dispatches += len(jobs)
            try:
                results = self.farm.run(jobs, with_schedules=True)
                self._absorb_farm_stats()
                for ticket, result in zip(cold, results):
                    if isinstance(result, FarmJobError):
                        # one poisoned job fails only its own ticket —
                        # typed, dead-lettered, visible to every
                        # coalesced waiter on the shared object
                        self._fail_ticket(ticket, result)
                        continue
                    self._store_put(ticket.digest, result)
                    ticket.resolve(CompileResponse.from_farm(ticket.digest, result))
            except BaseException as exc:
                # tickets are already out of the queue — mark the unresolved
                # ones failed so waiters see the error instead of hanging
                for ticket in cold:
                    if not ticket.done and not ticket.failed:
                        ticket.fail(exc)
                raise
        # per *resolved* submission, exactly like stream(): coalesced
        # waiters each count as a completed request, but a failed
        # ticket's submissions were never served and must not inflate
        # completed (and through it throughput_rps) under faults
        self._stats.completed += sum(
            ticket.submissions for ticket in batch if ticket.done
        )
        self._stats.busy_s += time.perf_counter() - start
        return batch

    def drain(self) -> list[QueuedJob]:
        """Process batches until the queue is empty."""
        resolved: list[QueuedJob] = []
        while self.queue.depth:
            resolved.extend(self.process_batch())
        return resolved

    def compile(self, request: CompileRequest) -> CompileResponse:
        """Synchronous convenience: submit one request and resolve it now.

        Coalesces with any identical request already queued (both tickets
        resolve together, in queue order).
        """
        ticket = self.submit(request)
        while not ticket.done:
            if ticket.status == FAILED:
                ticket.raise_error()
            if not self.queue.depth:
                raise QPilotError("ticket pending but queue empty — ticket failed?")
            self.process_batch()
        return ticket.response

    # -- cache warming ---------------------------------------------------
    def warm_from(self, sweep: "SweepResult") -> dict[str, int]:
        """Warm the store from an archived DSE trajectory.

        ``sweep`` is a :class:`~repro.core.dse.SweepResult` — typically
        ``SweepResult.from_json`` of an archive file.  Every point whose
        job record (``DesignPoint.job``, written by ``sweep_grid``) can
        be rebuilt into a :class:`CompileRequest` and whose digest is not
        already servable gets compiled through the normal streaming path
        and persisted — so a store can be pre-populated from yesterday's
        trajectories before today's traffic arrives.

        Returns counts: ``points`` (seen), ``warmed`` (compiled and
        persisted now), ``already`` (servable before the call) and
        ``skipped`` (failed points and pre-job-record archives).
        """
        from repro.core.farm import WorkloadSpec

        counts = {"points": 0, "warmed": 0, "already": 0, "skipped": 0}
        requests: list[CompileRequest] = []
        seen: set[str] = set()
        for point in sweep.points:
            counts["points"] += 1
            record = getattr(point, "job", None)
            if point.failed or not record:
                counts["skipped"] += 1
                continue
            try:
                request = CompileRequest(
                    workload=WorkloadSpec.from_dict(record["workload"]),
                    config=point.config,
                    options=FarmOptions.from_dict(record.get("options") or {}),
                )
                digest = request.digest()
            except (KeyError, TypeError, ValueError, QPilotError):
                counts["skipped"] += 1
                continue
            if digest in seen or digest in self.store:
                counts["already"] += 1
                continue
            seen.add(digest)
            requests.append(request)
        for _ in self.stream(requests):
            pass  # responses persist as they land; warming wants no output
        counts["warmed"] = len(requests)
        return counts

    # -- streaming -------------------------------------------------------
    def stream(
        self, requests: Iterable[CompileRequest], *, chunk_size: int | None = None
    ) -> Iterator[CompileResponse]:
        """Yield a response per *request* as each resolves, incrementally.

        Requests are consumed in chunks (``chunk_size``, defaulting to
        ``batch_size`` or :data:`DEFAULT_STREAM_CHUNK`): within a chunk,
        cache hits are yielded immediately and misses stream out of the
        farm in completion order (:meth:`CompileFarm.iter_results`), each
        persisted to the store as it lands.  Duplicate requests each get
        a response — in-chunk duplicates share one compile, cross-chunk
        duplicates hit the store — so the output count always matches the
        input count.  Memory stays bounded by the chunk size and the
        in-flight compiles, not the sweep size, and the input may be an
        unbounded generator — the service-side face of
        ``sweep_grid(..., stream=True)``.
        """
        size = chunk_size if chunk_size is not None else (
            self.batch_size or DEFAULT_STREAM_CHUNK
        )
        if size < 1:
            raise QPilotError("stream chunk_size must be at least 1")
        chunk: list[CompileRequest] = []
        for request in requests:
            chunk.append(request)
            if len(chunk) >= size:
                yield from self._stream_chunk(chunk)
                chunk = []
        if chunk:
            yield from self._stream_chunk(chunk)

    def _stream_chunk(self, chunk: list[CompileRequest]) -> Iterator[CompileResponse]:
        start = time.perf_counter()
        cold_tickets: list[QueuedJob] = []
        cold_index: dict[str, int] = {}
        for request in chunk:
            self._stats.requests += 1
            digest = request.digest()
            if digest in cold_index:
                # already being compiled in this chunk — the shared ticket
                # will emit one extra response when it resolves
                self._stats.coalesced += 1
                cold_tickets[cold_index[digest]].submissions += 1
                continue
            entry = self.store.get(digest)
            if entry is not None:
                self._stats.cache_hits += 1
                self._stats.completed += 1
                self._stats.busy_s += time.perf_counter() - start
                yield CompileResponse.from_store(entry)
                start = time.perf_counter()
            else:
                self._stats.cache_misses += 1
                cold_index[digest] = len(cold_tickets)
                cold_tickets.append(QueuedJob(request=request, digest=digest))
        if cold_tickets:
            jobs = [ticket.request.job() for ticket in cold_tickets]
            self._stats.farm_dispatches += len(jobs)
            for index, result in self.farm.iter_results(jobs, with_schedules=True):
                ticket = cold_tickets[index]
                if isinstance(result, FarmJobError):
                    # the stream keeps flowing for the healthy requests;
                    # the failed ticket is typed + dead-lettered, so
                    # callers find it on ``queue.dead_letters`` (the
                    # output count shrinks by its submissions)
                    self._fail_ticket(ticket, result)
                    continue
                self._store_put(ticket.digest, result)
                response = CompileResponse.from_farm(ticket.digest, result)
                ticket.resolve(response)
                for _ in range(ticket.submissions):
                    self._stats.completed += 1
                    self._stats.busy_s += time.perf_counter() - start
                    yield response
                    start = time.perf_counter()
            self._absorb_farm_stats()

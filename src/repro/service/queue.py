"""Compile requests and the admission-controlled, priority-laned job queue.

Clients describe work as :class:`CompileRequest` values — a picklable
:class:`~repro.core.farm.WorkloadSpec` plus the target
:class:`~repro.hardware.fpqa.FPQAConfig` and router
:class:`~repro.core.farm.FarmOptions` — exactly the farm's job model, so
a request *is* a grid cell and inherits its content-addressed digest.
Serving metadata rides alongside: ``client_id`` (fairness accounting),
``priority`` (which lane the request queues in) and ``deadline_s`` (the
end-to-end budget).  None of it participates in the digest — a request
is the *same work* whoever asks for it and however urgently, which is
what lets requests from different clients coalesce and share cache
entries.

:class:`JobQueue` is the service's admission layer, governed by a
:class:`QueuePolicy`:

* **Admission control** — submitting beyond ``max_depth`` unique pending
  requests, beyond a client's ``max_pending_per_client`` quota, or into
  an unknown lane raises a typed
  :class:`~repro.exceptions.AdmissionError` *instead of growing the
  queue*.  Overload becomes fast rejection, never unbounded memory.
* **Priority lanes** — each request queues FIFO in its lane, and
  :meth:`pop_batch` drains lanes by deterministic weighted round-robin
  (lane declared order, up to ``weight`` tickets per visit), so the
  interleaving is a pure function of the submit/pop sequence and is
  pinned by tests.  A duplicate submission at a higher priority promotes
  the shared ticket into the better lane.
* **In-flight coalescing** — submitting an *identical* request (same
  digest) while the first is still queued coalesces onto the same
  ticket; a coalesced ticket's deadline is the *tightest* of its
  waiters' budgets.
* **Load shedding** — :meth:`shed` removes queued tickets
  lowest-priority-lane first, newest first within a lane, for the
  service to fail with :class:`~repro.exceptions.LoadShedError` when
  depth crosses the policy's high-water mark.

Failure is part of the ticket lifecycle: :meth:`QueuedJob.fail` records
the *typed* cause (exception type, message, traceback, attempts), every
coalesced waiter observes it on the shared ticket, and
:meth:`QueuedJob.raise_error` re-raises it faithfully — service-level
causes (:class:`~repro.exceptions.AdmissionError`,
:class:`~repro.exceptions.DeadlineExceeded`,
:class:`~repro.exceptions.CircuitOpenError`) come back as themselves,
farm failures as a :class:`~repro.exceptions.CompileError`.  Failed
tickets are buried on the queue's ``dead_letters`` list (bounded by
``max_dead_letters``; trims are counted in ``dead_letters_dropped``, so
loss is visible, never silent).
"""

from __future__ import annotations

import time
import traceback as traceback_module
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.farm import FarmJob, FarmJobError, FarmOptions, WorkloadSpec
from repro.exceptions import (
    AdmissionError,
    CircuitOpenError,
    CompileError,
    DeadlineExceeded,
    QPilotError,
)
from repro.hardware.fpqa import FPQAConfig

#: Lifecycle states of a queued job.
PENDING = "pending"
DONE = "done"
FAILED = "failed"

#: Default priority lanes, highest priority first: ``(name, weight)``
#: pairs.  The weights set the drain ratio under contention — for every
#: 4 interactive tickets the scheduler serves up to 2 batch and 1
#: background ticket, deterministically.
DEFAULT_LANES: tuple[tuple[str, int], ...] = (
    ("interactive", 4),
    ("batch", 2),
    ("background", 1),
)

#: Typed causes :meth:`QueuedJob.raise_error` re-raises as themselves
#: (service-layer rejections) instead of wrapping in ``CompileError``.
_TYPED_CAUSES = (AdmissionError, DeadlineExceeded, CircuitOpenError)


@dataclass(frozen=True)
class QueuePolicy:
    """Admission and scheduling policy of one :class:`JobQueue`.

    * ``max_depth`` — unique pending requests admitted before submission
      raises ``AdmissionError(reason="queue-full")`` (None = unbounded,
      the pre-overload-control behaviour).
    * ``max_pending_per_client`` — pending *submissions* (coalesced ones
      included: each is work the client is waiting on) one ``client_id``
      may hold before ``AdmissionError(reason="client-quota")``.
    * ``lanes`` — ``(name, weight)`` pairs, highest priority first.
      :meth:`JobQueue.pop_batch` serves up to ``weight`` tickets from a
      lane per round-robin visit; shedding drops from the *last* lane
      first.
    * ``shed_high_water`` — queue depth above which the service sheds
      lowest-priority queued work down to the mark (None = never shed).
      Must not exceed ``max_depth``: admission is the hard wall, the
      high-water mark the soft one below it.
    """

    max_depth: int | None = None
    max_pending_per_client: int | None = None
    lanes: tuple[tuple[str, int], ...] = DEFAULT_LANES
    shed_high_water: int | None = None

    def __post_init__(self) -> None:
        lanes = tuple((str(name), int(weight)) for name, weight in self.lanes)
        object.__setattr__(self, "lanes", lanes)
        if not lanes:
            raise QPilotError("QueuePolicy needs at least one lane")
        names = [name for name, _ in lanes]
        if len(set(names)) != len(names):
            raise QPilotError(f"lane names must be unique, got {names}")
        if any(weight < 1 for _, weight in lanes):
            raise QPilotError("lane weights must be at least 1")
        if self.max_depth is not None and self.max_depth < 1:
            raise QPilotError("max_depth must be at least 1 (or None for unbounded)")
        if self.max_pending_per_client is not None and self.max_pending_per_client < 1:
            raise QPilotError(
                "max_pending_per_client must be at least 1 (or None for unbounded)"
            )
        if self.shed_high_water is not None:
            if self.shed_high_water < 1:
                raise QPilotError("shed_high_water must be at least 1 (or None)")
            if self.max_depth is not None and self.shed_high_water > self.max_depth:
                raise QPilotError("shed_high_water must not exceed max_depth")

    @property
    def default_lane(self) -> str:
        """Lane a request with ``priority=None`` queues in (the first)."""
        return self.lanes[0][0]

    def lane_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.lanes)

    def lane_index(self, name: str) -> int:
        for index, (lane, _) in enumerate(self.lanes):
            if lane == name:
                return index
        raise QPilotError(f"unknown lane {name!r}; expected one of {self.lane_names()}")


@dataclass(frozen=True)
class CompileRequest:
    """One client request: compile ``workload`` on ``config`` with ``options``.

    ``client_id``, ``priority`` and ``deadline_s`` are *serving*
    metadata — they steer admission, lane scheduling and expiry but
    never the digest, so identical work coalesces and shares cache
    entries across clients and priorities.  ``priority`` names a policy
    lane (None = the policy's first lane); ``deadline_s`` is the
    end-to-end budget in seconds from submission (None = no deadline).
    """

    workload: WorkloadSpec
    config: FPQAConfig
    options: FarmOptions = field(default_factory=FarmOptions)
    client_id: str = "anonymous"
    priority: str | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise QPilotError("deadline_s must be positive (or None for no deadline)")

    def job(self) -> FarmJob:
        """The farm job this request maps to."""
        return FarmJob(workload=self.workload, config=self.config, options=self.options)

    def digest(self) -> str:
        """Content-addressed key shared with the farm memo and the store.

        A pure function of the *work* (workload, config, options) — the
        serving metadata is deliberately excluded.
        """
        return self.job().digest()

    @classmethod
    def for_width(
        cls,
        workload: WorkloadSpec,
        width: int,
        *,
        options: FarmOptions | None = None,
        client_id: str = "anonymous",
        priority: str | None = None,
        deadline_s: float | None = None,
        **config_kwargs: Any,
    ) -> "CompileRequest":
        """Request the workload on the standard array of a given width."""
        config = FPQAConfig.with_width(workload.num_qubits, int(width), **config_kwargs)
        return cls(
            workload=workload,
            config=config,
            options=options or FarmOptions(),
            client_id=client_id,
            priority=priority,
            deadline_s=deadline_s,
        )


@dataclass
class QueuedJob:
    """Ticket for one unique in-flight request.

    ``submissions`` counts how many client requests coalesced onto this
    ticket, ``clients`` breaks that down per ``client_id`` (the quota
    ledger the queue releases when the ticket finishes), ``lane`` is the
    lane the ticket currently queues in and ``deadline_at`` the tightest
    absolute deadline (queue-clock seconds) among its waiters.
    ``response`` is filled by the service when the job resolves (a
    ``CompileResponse``), ``error`` (plus the typed
    ``error_type``/``error_traceback``/``attempts`` trio and the live
    ``cause`` exception) when it fails.  Because coalesced waiters share
    the ticket *object*, a failure is observed by every one of them —
    :meth:`raise_error` turns it back into the faithful typed exception.
    """

    request: CompileRequest
    digest: str
    status: str = PENDING
    submissions: int = 1
    lane: str = ""
    deadline_at: float | None = None
    clients: dict[str, int] = field(default_factory=dict)
    response: Any = None
    error: str | None = None
    error_type: str | None = None
    error_traceback: str | None = None
    attempts: int | None = None
    cause: BaseException | None = None
    #: Set once the queue has released this ticket's quota accounting.
    finished: bool = False

    @property
    def done(self) -> bool:
        return self.status == DONE

    @property
    def failed(self) -> bool:
        return self.status == FAILED

    def resolve(self, response: Any) -> None:
        self.status = DONE
        self.response = response

    def expired(self, now: float) -> bool:
        """Whether this ticket's deadline has passed at queue-clock ``now``."""
        return self.deadline_at is not None and now >= self.deadline_at

    def remaining_budget(self, now: float) -> float | None:
        """Seconds of deadline budget left at ``now`` (None = no deadline)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - now

    def fail(self, error: str | BaseException | FarmJobError) -> None:
        """Mark the ticket failed, keeping the typed cause when given one.

        Accepts a plain message (legacy), a live exception, or the farm's
        :class:`~repro.core.farm.FarmJobError` record — whichever the
        failure site has in hand.
        """
        self.status = FAILED
        if isinstance(error, FarmJobError):
            self.error = error.message
            self.error_type = error.error_type
            self.error_traceback = error.traceback
            self.attempts = error.attempts
        elif isinstance(error, BaseException):
            self.cause = error
            self.error = str(error)
            self.error_type = type(error).__name__
            self.error_traceback = "".join(
                traceback_module.format_exception(type(error), error, error.__traceback__)
            )
        else:
            self.error = str(error)

    def raise_error(self) -> None:
        """Re-raise a failed ticket as its faithful typed exception.

        Service-layer causes — shed, expired, breaker-rejected — are
        re-raised as themselves; farm failures become a typed
        :class:`~repro.exceptions.CompileError`.
        """
        if self.status != FAILED:
            raise QPilotError("raise_error on a ticket that has not failed")
        if isinstance(self.cause, _TYPED_CAUSES):
            raise self.cause
        raise CompileError(
            f"compile request {self.digest[:12]} failed"
            + (f" ({self.error_type})" if self.error_type else "")
            + f": {self.error}",
            error_type=self.error_type,
            traceback=self.error_traceback,
            digest=self.digest,
            attempts=self.attempts,
        )


class JobQueue:
    """Admission-controlled priority queue of unique compile requests.

    Identical in-flight requests coalesce onto one ticket; tickets queue
    FIFO within their priority lane and :meth:`pop_batch` drains lanes
    by deterministic weighted round-robin.  The :class:`QueuePolicy`
    bounds the queue: over-depth and over-quota submissions are rejected
    with a typed :class:`~repro.exceptions.AdmissionError` — the queue
    *never* grows without limit.

    ``dead_letters`` collects tickets that ultimately failed (capped at
    ``max_dead_letters``, oldest dropped first and counted in
    ``dead_letters_dropped``): the service buries each failure there so
    every coalesced waiter — and any operator — can see what could not
    be served and why, without the list growing without bound under a
    persistent fault.

    ``clock`` is the monotonic time source deadlines are computed
    against (injectable so expiry is deterministic in tests).
    """

    #: Default for ``max_dead_letters`` (kept as a class attribute for
    #: backwards compatibility with pre-policy callers).
    MAX_DEAD_LETTERS = 256

    def __init__(
        self,
        policy: QueuePolicy | None = None,
        *,
        max_dead_letters: int | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.policy = policy or QueuePolicy()
        if max_dead_letters is not None and max_dead_letters < 0:
            raise QPilotError("max_dead_letters must be non-negative")
        self.max_dead_letters = (
            self.MAX_DEAD_LETTERS if max_dead_letters is None else max_dead_letters
        )
        self.clock = clock or time.monotonic
        self._pending: dict[str, QueuedJob] = {}
        # per-lane FIFO of queued tickets (digest -> ticket, oldest first)
        self._lanes: dict[str, OrderedDict[str, QueuedJob]] = {
            name: OrderedDict() for name in self.policy.lane_names()
        }
        # weighted-round-robin scheduler state: current lane + remaining
        # credit for it (reset to the lane's weight on every re-entry)
        self._cursor = 0
        self._credit = self.policy.lanes[0][1]
        # pending submissions per client (the quota ledger)
        self._client_pending: dict[str, int] = {}
        self.submitted = 0
        self.coalesced = 0
        self.rejected = 0
        self.dead_letters: list[QueuedJob] = []
        self.dead_letters_dropped = 0

    # -- introspection ---------------------------------------------------
    @property
    def depth(self) -> int:
        """Unique requests currently waiting."""
        return len(self._pending)

    def lane_depths(self) -> dict[str, int]:
        """Queued-ticket count per lane (every policy lane, zeros kept)."""
        return {name: len(bucket) for name, bucket in self._lanes.items()}

    def client_pending(self, client_id: str) -> int:
        """Pending submissions currently held by one client."""
        return self._client_pending.get(client_id, 0)

    def pending_by_client(self) -> dict[str, int]:
        """Snapshot of the quota ledger (clients with zero pending omitted)."""
        return dict(self._client_pending)

    # -- admission -------------------------------------------------------
    def _reject(self, message: str, *, client_id: str, lane: str, reason: str) -> None:
        self.rejected += 1
        raise AdmissionError(message, client_id=client_id, lane=lane, reason=reason)

    def submit(self, request: CompileRequest) -> QueuedJob:
        """Admit a request, coalescing onto an identical pending one.

        Raises :class:`~repro.exceptions.AdmissionError` (typed, with a
        machine-readable ``reason``) instead of admitting work the
        policy forbids — the only way the queue stays bounded under
        overload.
        """
        lane = request.priority if request.priority is not None else self.policy.default_lane
        client = request.client_id
        if lane not in self._lanes:
            self._reject(
                f"unknown priority lane {lane!r}; expected one of {self.policy.lane_names()}",
                client_id=client,
                lane=lane,
                reason="unknown-lane",
            )
        quota = self.policy.max_pending_per_client
        if quota is not None and self._client_pending.get(client, 0) >= quota:
            self._reject(
                f"client {client!r} is at its pending quota ({quota})",
                client_id=client,
                lane=lane,
                reason="client-quota",
            )
        digest = request.digest()
        ticket = self._pending.get(digest)
        if ticket is not None:
            ticket.submissions += 1
            ticket.clients[client] = ticket.clients.get(client, 0) + 1
            self._client_pending[client] = self._client_pending.get(client, 0) + 1
            self.coalesced += 1
            self.submitted += 1
            self._tighten_deadline(ticket, request)
            self._promote(ticket, lane)
            return ticket
        if self.policy.max_depth is not None and self.depth >= self.policy.max_depth:
            self._reject(
                f"queue is at max_depth ({self.policy.max_depth})",
                client_id=client,
                lane=lane,
                reason="queue-full",
            )
        deadline_at = (
            None if request.deadline_s is None else self.clock() + request.deadline_s
        )
        ticket = QueuedJob(
            request=request,
            digest=digest,
            lane=lane,
            deadline_at=deadline_at,
            clients={client: 1},
        )
        self._pending[digest] = ticket
        self._lanes[lane][digest] = ticket
        self._client_pending[client] = self._client_pending.get(client, 0) + 1
        self.submitted += 1
        return ticket

    def submit_all(self, requests: Iterable[CompileRequest]) -> list[QueuedJob]:
        """Enqueue many requests; tickets are returned per *submission*
        (coalesced duplicates share a ticket object)."""
        return [self.submit(request) for request in requests]

    def _tighten_deadline(self, ticket: QueuedJob, request: CompileRequest) -> None:
        """A coalesced ticket's deadline is the tightest of its waiters'."""
        if request.deadline_s is None:
            return
        candidate = self.clock() + request.deadline_s
        if ticket.deadline_at is None or candidate < ticket.deadline_at:
            ticket.deadline_at = candidate

    def _promote(self, ticket: QueuedJob, lane: str) -> None:
        """Move a still-queued ticket to ``lane`` if it is higher priority."""
        if lane == ticket.lane:
            return
        if self.policy.lane_index(lane) >= self.policy.lane_index(ticket.lane):
            return
        bucket = self._lanes[ticket.lane]
        if ticket.digest not in bucket:
            return  # already popped; nothing to reschedule
        del bucket[ticket.digest]
        self._lanes[lane][ticket.digest] = ticket
        ticket.lane = lane

    # -- scheduling ------------------------------------------------------
    def _pop_next(self) -> QueuedJob:
        """Next ticket under deterministic weighted round-robin.

        Visits lanes in declared order, serving up to ``weight`` FIFO
        tickets per visit; a lane's credit refills every time the cursor
        re-enters it.  The resulting interleaving is a pure function of
        the submit/pop sequence — no clocks, no randomness.
        """
        lanes = self.policy.lanes
        for _ in range(len(lanes) + 1):
            name, _weight = lanes[self._cursor]
            bucket = self._lanes[name]
            if bucket and self._credit > 0:
                self._credit -= 1
                digest, ticket = bucket.popitem(last=False)
                del self._pending[digest]
                return ticket
            self._cursor = (self._cursor + 1) % len(lanes)
            self._credit = lanes[self._cursor][1]
        raise QPilotError("pop from an empty queue")  # pragma: no cover

    def pop_batch(self, limit: int | None = None) -> list[QueuedJob]:
        """Dequeue up to ``limit`` tickets in weighted lane order (all if None)."""
        if limit is not None and limit < 1:
            raise QPilotError("pop_batch limit must be at least 1")
        count = self.depth if limit is None else min(limit, self.depth)
        return [self._pop_next() for _ in range(count)]

    # -- load shedding ---------------------------------------------------
    def shed(self, count: int) -> list[QueuedJob]:
        """Remove up to ``count`` queued tickets for the service to fail.

        Victims are chosen lowest-priority lane first (the *last*
        declared lane), newest first within a lane — the work whose loss
        costs least and whose waiters have waited the shortest.  The
        caller owns failing and burying them; accounting is released
        there (via :meth:`bury`).
        """
        if count < 1:
            return []
        victims: list[QueuedJob] = []
        for name, _weight in reversed(self.policy.lanes):
            bucket = self._lanes[name]
            while bucket and len(victims) < count:
                digest, ticket = bucket.popitem(last=True)
                del self._pending[digest]
                victims.append(ticket)
            if len(victims) >= count:
                break
        return victims

    # -- completion accounting ------------------------------------------
    def finish(self, ticket: QueuedJob) -> None:
        """Release a ticket's per-client quota (idempotent).

        Called when a ticket reaches a terminal state — resolved by the
        service, or failed and buried.  Tickets the queue never admitted
        (the streaming path builds bare tickets) carry no accounting and
        are a no-op.
        """
        if ticket.finished:
            return
        ticket.finished = True
        for client, count in ticket.clients.items():
            remaining = self._client_pending.get(client, 0) - count
            if remaining > 0:
                self._client_pending[client] = remaining
            else:
                self._client_pending.pop(client, None)

    def bury(self, ticket: QueuedJob) -> None:
        """Record a failed ticket on the dead-letter list (bounded).

        Trimmed tickets are gone, but never silently: every drop counts
        in ``dead_letters_dropped`` (surfaced through ``ServiceStats``).
        """
        if not ticket.failed:
            raise QPilotError("only failed tickets can be buried")
        self.finish(ticket)
        self.dead_letters.append(ticket)
        if len(self.dead_letters) > self.max_dead_letters:
            drop = len(self.dead_letters) - self.max_dead_letters
            self.dead_letters_dropped += drop
            del self.dead_letters[:drop]

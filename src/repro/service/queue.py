"""Compile requests and the deduplicating job queue.

Clients describe work as :class:`CompileRequest` values — a picklable
:class:`~repro.core.farm.WorkloadSpec` plus the target
:class:`~repro.hardware.fpqa.FPQAConfig` and router
:class:`~repro.core.farm.FarmOptions` — exactly the farm's job model, so
a request *is* a grid cell and inherits its content-addressed digest.

:class:`JobQueue` is the service's admission layer.  Submitting a
request returns a :class:`QueuedJob` ticket; submitting an *identical*
request (same digest) while the first is still pending coalesces onto
the same ticket instead of queueing duplicate work — the in-flight
analogue of the farm's memoisation and the store's disk cache.  The
queue is FIFO over unique digests, so service throughput is fair in
submission order.

Failure is part of the ticket lifecycle: :meth:`QueuedJob.fail` records
the *typed* cause (exception type, message, traceback, attempts), every
coalesced waiter observes it on the shared ticket, and
:meth:`QueuedJob.raise_error` re-raises it as a
:class:`~repro.exceptions.CompileError`.  Failed tickets are buried on
the queue's ``dead_letters`` list so operators can inspect what the
service could not serve.
"""

from __future__ import annotations

import traceback as traceback_module
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.farm import FarmJob, FarmJobError, FarmOptions, WorkloadSpec
from repro.exceptions import CompileError, QPilotError
from repro.hardware.fpqa import FPQAConfig

#: Lifecycle states of a queued job.
PENDING = "pending"
DONE = "done"
FAILED = "failed"


@dataclass(frozen=True)
class CompileRequest:
    """One client request: compile ``workload`` on ``config`` with ``options``."""

    workload: WorkloadSpec
    config: FPQAConfig
    options: FarmOptions = field(default_factory=FarmOptions)

    def job(self) -> FarmJob:
        """The farm job this request maps to."""
        return FarmJob(workload=self.workload, config=self.config, options=self.options)

    def digest(self) -> str:
        """Content-addressed key shared with the farm memo and the store."""
        return self.job().digest()

    @classmethod
    def for_width(
        cls,
        workload: WorkloadSpec,
        width: int,
        *,
        options: FarmOptions | None = None,
        **config_kwargs: Any,
    ) -> "CompileRequest":
        """Request the workload on the standard array of a given width."""
        config = FPQAConfig.with_width(workload.num_qubits, int(width), **config_kwargs)
        return cls(workload=workload, config=config, options=options or FarmOptions())


@dataclass
class QueuedJob:
    """Ticket for one unique in-flight request.

    ``submissions`` counts how many client requests coalesced onto this
    ticket; ``response`` is filled by the service when the job resolves
    (a ``CompileResponse``), ``error`` (plus the typed
    ``error_type``/``error_traceback``/``attempts`` trio) when it fails.
    Because coalesced waiters share the ticket *object*, a failure is
    observed by every one of them — :meth:`raise_error` turns it back
    into a faithful :class:`~repro.exceptions.CompileError`.
    """

    request: CompileRequest
    digest: str
    status: str = PENDING
    submissions: int = 1
    response: Any = None
    error: str | None = None
    error_type: str | None = None
    error_traceback: str | None = None
    attempts: int | None = None

    @property
    def done(self) -> bool:
        return self.status == DONE

    @property
    def failed(self) -> bool:
        return self.status == FAILED

    def resolve(self, response: Any) -> None:
        self.status = DONE
        self.response = response

    def fail(self, error: str | BaseException | FarmJobError) -> None:
        """Mark the ticket failed, keeping the typed cause when given one.

        Accepts a plain message (legacy), a live exception, or the farm's
        :class:`~repro.core.farm.FarmJobError` record — whichever the
        failure site has in hand.
        """
        self.status = FAILED
        if isinstance(error, FarmJobError):
            self.error = error.message
            self.error_type = error.error_type
            self.error_traceback = error.traceback
            self.attempts = error.attempts
        elif isinstance(error, BaseException):
            self.error = str(error)
            self.error_type = type(error).__name__
            self.error_traceback = "".join(
                traceback_module.format_exception(type(error), error, error.__traceback__)
            )
        else:
            self.error = str(error)

    def raise_error(self) -> None:
        """Re-raise a failed ticket as a typed :class:`CompileError`."""
        if self.status != FAILED:
            raise QPilotError("raise_error on a ticket that has not failed")
        raise CompileError(
            f"compile request {self.digest[:12]} failed"
            + (f" ({self.error_type})" if self.error_type else "")
            + f": {self.error}",
            error_type=self.error_type,
            traceback=self.error_traceback,
            digest=self.digest,
            attempts=self.attempts,
        )


class JobQueue:
    """FIFO queue of unique compile requests with in-flight coalescing.

    ``dead_letters`` collects tickets that ultimately failed (capped at
    ``MAX_DEAD_LETTERS``, oldest dropped first): the service buries each
    failure there so every coalesced waiter — and any operator — can see
    what could not be served and why, without the queue growing without
    bound under a persistent fault.
    """

    #: Failed tickets kept for inspection before the oldest are dropped.
    MAX_DEAD_LETTERS = 256

    def __init__(self) -> None:
        self._pending: "OrderedDict[str, QueuedJob]" = OrderedDict()
        self.submitted = 0
        self.coalesced = 0
        self.dead_letters: list[QueuedJob] = []

    def bury(self, ticket: QueuedJob) -> None:
        """Record a failed ticket on the dead-letter list (bounded)."""
        if not ticket.failed:
            raise QPilotError("only failed tickets can be buried")
        self.dead_letters.append(ticket)
        if len(self.dead_letters) > self.MAX_DEAD_LETTERS:
            del self.dead_letters[: -self.MAX_DEAD_LETTERS]

    @property
    def depth(self) -> int:
        """Unique requests currently waiting."""
        return len(self._pending)

    def submit(self, request: CompileRequest) -> QueuedJob:
        """Enqueue a request, coalescing onto an identical pending one."""
        self.submitted += 1
        digest = request.digest()
        ticket = self._pending.get(digest)
        if ticket is not None:
            ticket.submissions += 1
            self.coalesced += 1
            return ticket
        ticket = QueuedJob(request=request, digest=digest)
        self._pending[digest] = ticket
        return ticket

    def submit_all(self, requests: Iterable[CompileRequest]) -> list[QueuedJob]:
        """Enqueue many requests; tickets are returned per *submission*
        (coalesced duplicates share a ticket object)."""
        return [self.submit(request) for request in requests]

    def pop_batch(self, limit: int | None = None) -> list[QueuedJob]:
        """Dequeue up to ``limit`` tickets in FIFO order (all if None)."""
        if limit is not None and limit < 1:
            raise QPilotError("pop_batch limit must be at least 1")
        count = self.depth if limit is None else min(limit, self.depth)
        return [self._pending.popitem(last=False)[1] for _ in range(count)]

"""Content-addressed, disk-backed schedule store.

The compile service's persistence layer: every compiled schedule is
written to disk under the sha1 digest of its farm job key
(``(workload fingerprint, FPQAConfig, options)`` — see
:meth:`repro.core.farm.FarmJob.digest`), so a repeat of any grid cell the
farm would have memoised *in memory* is answered from disk instead —
across service restarts, processes and machines sharing the store root.

Entries are canonical JSON (:func:`repro.utils.serialization.canonical_json`)
wrapping the schedule's canonical dict, its compact
:class:`~repro.core.farm.PointMetrics` and the router name.  Because the
schedule payload is the *canonical* serialisation (volatile wall-clock
metadata stripped, keys sorted), a cached schedule re-renders
byte-identical to a fresh compile of the same job — the durability suite
pins that.

Reads are corruption-safe: a missing, truncated, garbled or
wrong-schema entry is a *miss*, never a crash; the bad file is unlinked
(``missing_ok`` — a concurrent process repairing the same entry must not
turn the repair into a crash) so the next compile rewrites it.  Writes
are atomic (``tempfile`` + ``os.replace``), so a reader never observes a
torn entry.  ``max_entries`` bounds the store with least-recently-used
eviction (hits refresh the entry mtime); eviction scans are guarded by
an ``O_EXCL`` lockfile so multiple daemons sharing one store root never
race each other below the limit — the multiprocess hammer test in
``tests/test_faults.py`` pins both properties.

For chaos testing the store accepts a seeded
:class:`~repro.utils.faults.FaultPlan` (default ``None`` — injection
off): ``fail-store-write`` makes :meth:`put` raise
:class:`~repro.utils.faults.InjectedStoreWriteError` (exercising the
service's log-and-continue path) and ``corrupt-store-entry`` garbles the
entry's bytes after a successful write (exercising the
corruption-unlink repair on the next read).  Fault keys are the entry
digests, and per-digest write attempts are counted so bounded rules
(``max_fires``) stop firing once the fault has been exercised.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.core.farm import FarmJobResult, PointMetrics
from repro.core.schedule import FPQASchedule
from repro.exceptions import QPilotError
from repro.utils.faults import (
    CORRUPT_STORE_ENTRY,
    FAIL_STORE_WRITE,
    FaultPlan,
    InjectedStoreWriteError,
)
from repro.utils.serialization import canonical_json, schedule_from_dict

_STORE_SCHEMA_VERSION = 1

#: Age (seconds) past which another daemon's eviction lock is presumed
#: abandoned (crashed holder) and broken.  Eviction scans take
#: milliseconds, so this is orders of magnitude of headroom.
_EVICT_LOCK_STALE_S = 30.0


@dataclass
class StoreStats:
    """Counters of one store's lifetime (since construction)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float | None:
        """Hits / lookups, or None before the first lookup."""
        return self.hits / self.lookups if self.lookups else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class StoreEntry:
    """One cached compile: canonical schedule dict + metrics + router."""

    digest: str
    router: str
    metrics: PointMetrics
    schedule: dict[str, Any]

    def schedule_json(self) -> str:
        """The canonical schedule JSON — byte-identical to
        ``schedule_to_json(schedule, canonical=True)`` of a fresh compile."""
        return canonical_json(self.schedule)

    def load_schedule(self) -> FPQASchedule:
        """Rebuild the full :class:`FPQASchedule` object."""
        return schedule_from_dict(self.schedule)

    @classmethod
    def from_result(cls, digest: str, result: FarmJobResult) -> "StoreEntry":
        return cls(
            digest=digest,
            router=result.router,
            metrics=result.metrics,
            schedule=result.schedule,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": _STORE_SCHEMA_VERSION,
            "digest": self.digest,
            "router": self.router,
            "metrics": self.metrics.to_dict(),
            "schedule": self.schedule,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StoreEntry":
        if data.get("schema_version") != _STORE_SCHEMA_VERSION:
            raise QPilotError(
                f"unsupported store entry schema version {data.get('schema_version')!r}"
            )
        return cls(
            digest=str(data["digest"]),
            router=str(data["router"]),
            metrics=PointMetrics.from_dict(data["metrics"]),
            schedule=dict(data["schedule"]),
        )


class ScheduleStore:
    """Disk-backed, content-addressed cache of compiled schedules.

    Entries live at ``root/<digest[:2]>/<digest>.json`` (two-level
    sharding keeps directories small on big stores).  The store is safe
    to share between service instances pointed at the same root — atomic
    writes mean concurrent writers of the *same* digest converge on
    identical bytes.  ``max_entries`` is enforced from each writer's own
    entry count (kept incrementally; eviction scans resync it from
    disk), so with several concurrent writers the bound is approximate
    between evictions, never corrupt.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        max_entries: int | None = None,
        faults: FaultPlan | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise QPilotError("max_entries must be at least 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.faults = faults
        self.stats = StoreStats()
        # entry count, maintained incrementally so bounded-store writes
        # don't re-scan the whole tree; None until first needed
        self._count: int | None = None
        # per-digest write attempts, so bounded fault rules stop firing
        self._write_attempts: dict[str, int] = {}

    # -- addressing -----------------------------------------------------
    def path_for(self, digest: str) -> Path:
        """Where an entry with this digest lives (existing or not)."""
        return self.root / digest[:2] / f"{digest}.json"

    def _entry_paths(self) -> Iterator[Path]:
        return self.root.glob("??/*.json")

    def __len__(self) -> int:
        if self._count is None:
            self._count = sum(1 for _ in self._entry_paths())
        return self._count

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def digests(self) -> list[str]:
        """Digests of all entries currently on disk (sorted)."""
        return sorted(path.stem for path in self._entry_paths())

    # -- lookup ---------------------------------------------------------
    def get(self, digest: str) -> StoreEntry | None:
        """Fetch an entry, or None on miss.

        Corrupted entries (truncated writes, garbled bytes, wrong schema,
        digest mismatch) count as misses: the bad file is removed and the
        caller recompiles, which rewrites a good entry.
        """
        path = self.path_for(digest)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            entry = StoreEntry.from_dict(json.loads(text))
            if entry.digest != digest:
                raise QPilotError(f"store entry {path} digest mismatch")
        except (ValueError, KeyError, TypeError, AttributeError, QPilotError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            # missing_ok: a concurrent daemon may be repairing the same
            # bad entry — both unlinking it must not raise in either
            try:
                path.unlink(missing_ok=True)
                if self._count is not None:
                    self._count -= 1
            except OSError:
                pass
            return None
        self.stats.hits += 1
        self._touch(path)
        return entry

    # -- insert ---------------------------------------------------------
    def put(self, digest: str, result: FarmJobResult) -> StoreEntry:
        """Persist one compiled job under its digest (atomic write).

        Raises :class:`~repro.utils.faults.InjectedStoreWriteError` when
        a ``fail-store-write`` fault fires (chaos testing only; with no
        plan attached this is a single ``is None`` check).  Callers that
        must stay up across a failed write — the compile service — catch
        and log instead of propagating.
        """
        attempt = self._write_attempts.get(digest, 0)
        self._write_attempts[digest] = attempt + 1
        if self.faults is not None and self.faults.should_fire(
            FAIL_STORE_WRITE, digest, attempt
        ):
            raise InjectedStoreWriteError(
                f"injected store-write fault for {digest[:12]} (attempt {attempt})"
            )
        entry = StoreEntry.from_result(digest, result)
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        existed = path.exists()
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{digest[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as tmp:
                tmp.write(canonical_json(entry.to_dict()) + "\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        if not existed and self._count is not None:
            self._count += 1
        if self.faults is not None and self.faults.should_fire(
            CORRUPT_STORE_ENTRY, digest, attempt
        ):
            # garble the just-written entry: the next read must treat it
            # as a miss, unlink it, and let a recompile repair it
            path.write_text('{"schema_version": "corrupted-by-fault-injection"')
        if self.max_entries is not None:
            self._evict_over_limit(keep=path)
        return entry

    # -- maintenance ----------------------------------------------------
    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                path.unlink(missing_ok=True)
                removed += 1
            except OSError:
                pass
        self._count = None  # recount lazily (unlinks may have failed)
        return removed

    def _touch(self, path: Path) -> None:
        """Refresh an entry's mtime so LRU eviction sees the hit."""
        try:
            os.utime(path)
        except OSError:
            pass

    def _acquire_evict_lock(self) -> int | None:
        """Try to take the store-wide eviction lock (``O_EXCL`` create).

        Returns an open fd on success, ``None`` when another daemon holds
        the lock (its scan covers our excess too — skipping is correct,
        the bound is approximate between evictions by design).  A lock
        older than :data:`_EVICT_LOCK_STALE_S` belonged to a crashed
        holder and is broken.
        """
        lock = self.root / ".evict.lock"
        for _ in range(2):  # second pass only after breaking a stale lock
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:
                    continue  # holder just released it; retry the create
                if age <= _EVICT_LOCK_STALE_S:
                    return None
                try:
                    lock.unlink(missing_ok=True)
                except OSError:
                    return None
                continue
            except OSError:
                return None  # unwritable root: skip eviction, never crash
            try:
                os.write(fd, f"{os.getpid()}\n".encode())
            except OSError:
                pass
            return fd
        return None

    def _release_evict_lock(self, fd: int) -> None:
        try:
            os.close(fd)
        except OSError:
            pass
        try:
            (self.root / ".evict.lock").unlink(missing_ok=True)
        except OSError:
            pass

    def _evict_over_limit(self, *, keep: Path) -> None:
        """Drop least-recently-used entries until within ``max_entries``.

        The O(1) count check keeps the common (not-over-limit) write
        cheap; the full scan only happens when eviction looks due, and
        its result resyncs the count (healing drift from other writers
        sharing the root).  The scan runs under the store-wide lockfile:
        concurrent daemons sharing a root must not race each other's
        scans into evicting far below the limit (each sees the other's
        unlinks as its own excess).
        """
        if len(self) - self.max_entries <= 0:
            return
        lock_fd = self._acquire_evict_lock()
        if lock_fd is None:
            self._count = None  # another daemon is evicting; recount lazily
            return
        try:
            paths = list(self._entry_paths())
            self._count = len(paths)
            excess = self._count - self.max_entries
            if excess <= 0:
                return

            def mtime(path: Path) -> float:
                try:
                    return path.stat().st_mtime
                except OSError:
                    return 0.0

            for path in sorted(paths, key=mtime):
                if excess <= 0:
                    break
                if path == keep:
                    continue
                try:
                    path.unlink(missing_ok=True)
                    if self._count is not None:
                        self._count -= 1
                    self.stats.evictions += 1
                    excess -= 1
                except OSError:
                    pass
        finally:
            self._release_evict_lock(lock_fd)

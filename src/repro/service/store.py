"""Content-addressed, multi-tier schedule store.

The compile service's persistence layer: every compiled schedule is
written to disk under the sha1 digest of its farm job key
(``(workload fingerprint, FPQAConfig, options)`` — see
:meth:`repro.core.farm.FarmJob.digest`), so a repeat of any grid cell the
farm would have memoised *in memory* is answered from disk instead —
across service restarts, processes and machines sharing the store root.

The store is two-tiered when ``memory_entries`` is set: an in-process
LRU dict of :class:`StoreEntry` objects fronts the disk tier, so the hot
head of a traffic distribution is served with **zero** disk I/O — no
``read_text``, no ``stat``, no ``utime`` (pinned by a test that
monkeypatches exactly those).  Entries are immutable once written (the
digest *is* the content), which is what makes the memory copy safe to
serve even after another daemon rewrote or evicted the disk entry.  The
trade-off is documented and deliberate: a memory-tier hit does not
refresh the disk entry's mtime, so disk LRU ranks entries by their last
*disk* access — an entry hot enough to live in memory can be evicted
from disk and still be served, and falls back to a recompile only after
it also ages out of memory.

Entries can optionally be gzip-compressed on disk (``compress=True``) —
reads sniff the two magic bytes, so compressed and uncompressed entries
coexist in one root and old stores stay readable.  The entry schema is
versioned: version-2 entries record their ``codec``; version-1 entries
(pre-compression) are still parsed and are migrated in place on first
read (rewritten at the current schema and the store's codec).

Entries are canonical JSON (:func:`repro.utils.serialization.canonical_json`)
wrapping the schedule's canonical dict, its compact
:class:`~repro.core.farm.PointMetrics` and the router name.  Because the
schedule payload is the *canonical* serialisation (volatile wall-clock
metadata stripped, keys sorted), a cached schedule re-renders
byte-identical to a fresh compile of the same job — the durability suite
pins that.

Reads are corruption-safe: a missing, truncated, garbled or
wrong-schema entry is a *miss*, never a crash; the bad file is unlinked
(``missing_ok`` — a concurrent process repairing the same entry must not
turn the repair into a crash) so the next compile rewrites it.  Writes
are atomic (``tempfile`` + ``os.replace``), so a reader never observes a
torn entry.  ``max_entries`` bounds the store with least-recently-used
eviction (hits refresh the entry mtime); eviction scans are guarded by
an ``O_EXCL`` lockfile so multiple daemons sharing one store root never
race each other below the limit — the multiprocess hammer test in
``tests/test_faults.py`` pins both properties.

For chaos testing the store accepts a seeded
:class:`~repro.utils.faults.FaultPlan` (default ``None`` — injection
off): ``fail-store-write`` makes :meth:`put` raise
:class:`~repro.utils.faults.InjectedStoreWriteError` (exercising the
service's log-and-continue path) and ``corrupt-store-entry`` garbles the
entry's bytes after a successful write (exercising the
corruption-unlink repair on the next read).  Fault keys are the entry
digests, and per-digest write attempts are counted so bounded rules
(``max_fires``) stop firing once the fault has been exercised.
"""

from __future__ import annotations

import gzip
import json
import logging
import os
import tempfile
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.core.farm import FarmJobResult, PointMetrics
from repro.core.schedule import FPQASchedule
from repro.exceptions import QPilotError
from repro.obs.events import log_event
from repro.obs.metrics import MetricsRegistry
from repro.utils.faults import (
    CORRUPT_STORE_ENTRY,
    FAIL_STORE_WRITE,
    SLOW_STORE_READ,
    FaultPlan,
    InjectedStoreWriteError,
)
from repro.utils.serialization import canonical_json, schedule_from_dict

logger = logging.getLogger(__name__)

_STORE_SCHEMA_VERSION = 2

#: Schema versions :meth:`StoreEntry.from_dict` still parses.  Version 1
#: predates compression (no ``codec`` field, always raw JSON); reading
#: one migrates it in place to the current schema.
_SUPPORTED_SCHEMA_VERSIONS = (1, _STORE_SCHEMA_VERSION)

_GZIP_MAGIC = b"\x1f\x8b"

#: Default age (seconds) past which another daemon's eviction lock is
#: presumed abandoned (crashed holder) and broken.  Eviction scans take
#: milliseconds, so this is orders of magnitude of headroom.  Tunable
#: per store via the ``evict_lock_stale_s`` constructor parameter.
_EVICT_LOCK_STALE_S = 30.0


@dataclass
class StoreStats:
    """Counters of one store's lifetime (since construction).

    ``hits`` is the total across tiers; ``memory_hits`` + ``disk_hits``
    always equals it, so per-tier hit rates are first-class (the load
    benchmark's headline numbers).  ``evictions`` counts disk-tier LRU
    evictions, ``memory_evictions`` the in-process tier's.  ``migrated``
    counts legacy schema-version-1 entries rewritten on read.

    Since the observability PR this dataclass is a *view*: the numbers
    live in the store's :class:`~repro.obs.metrics.MetricsRegistry`
    (``store_*`` instruments) and ``ScheduleStore.stats`` builds one of
    these on access — no parallel hand-maintained counters.
    """

    hits: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    memory_evictions: int = 0
    corrupt: int = 0
    migrated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float | None:
        """Hits / lookups, or None before the first lookup."""
        return self.hits / self.lookups if self.lookups else None

    @property
    def memory_hit_rate(self) -> float | None:
        """Memory-tier hits / lookups, or None before the first lookup."""
        return self.memory_hits / self.lookups if self.lookups else None

    @property
    def disk_hit_rate(self) -> float | None:
        """Disk-tier hits / lookups, or None before the first lookup."""
        return self.disk_hits / self.lookups if self.lookups else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "memory_evictions": self.memory_evictions,
            "corrupt": self.corrupt,
            "migrated": self.migrated,
            "hit_rate": self.hit_rate,
            "memory_hit_rate": self.memory_hit_rate,
            "disk_hit_rate": self.disk_hit_rate,
        }


@dataclass(frozen=True)
class StoreEntry:
    """One cached compile: canonical schedule dict + metrics + router."""

    digest: str
    router: str
    metrics: PointMetrics
    schedule: dict[str, Any]

    def schedule_json(self) -> str:
        """The canonical schedule JSON — byte-identical to
        ``schedule_to_json(schedule, canonical=True)`` of a fresh compile."""
        return canonical_json(self.schedule)

    def load_schedule(self) -> FPQASchedule:
        """Rebuild the full :class:`FPQASchedule` object."""
        return schedule_from_dict(self.schedule)

    @classmethod
    def from_result(cls, digest: str, result: FarmJobResult) -> "StoreEntry":
        return cls(
            digest=digest,
            router=result.router,
            metrics=result.metrics,
            schedule=result.schedule,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": _STORE_SCHEMA_VERSION,
            "digest": self.digest,
            "router": self.router,
            "metrics": self.metrics.to_dict(),
            "schedule": self.schedule,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StoreEntry":
        """Parse an entry dict of any supported schema version.

        Version 1 (pre-compression) lacks the ``codec`` field but is
        otherwise identical; :meth:`ScheduleStore.get` migrates such
        entries in place after a successful parse.
        """
        if data.get("schema_version") not in _SUPPORTED_SCHEMA_VERSIONS:
            raise QPilotError(
                f"unsupported store entry schema version {data.get('schema_version')!r}"
            )
        return cls(
            digest=str(data["digest"]),
            router=str(data["router"]),
            metrics=PointMetrics.from_dict(data["metrics"]),
            schedule=dict(data["schedule"]),
        )


class ScheduleStore:
    """Multi-tier, content-addressed cache of compiled schedules.

    Disk entries live at ``root/<digest[:2]>/<digest>.json`` (two-level
    sharding keeps directories small on big stores).  The store is safe
    to share between service instances pointed at the same root — atomic
    writes mean concurrent writers of the *same* digest converge on
    identical bytes.  ``max_entries`` is enforced from each writer's own
    entry count (kept incrementally; eviction scans resync it from
    disk), so with several concurrent writers the bound is approximate
    between evictions, never corrupt.

    ``memory_entries`` turns on the in-process LRU front tier: the last N
    distinct entries read or written are kept as parsed
    :class:`StoreEntry` objects and served without touching the disk at
    all.  ``compress=True`` gzips entry files on write (reads always
    sniff, so mixed roots work); the compressed bytes are deterministic
    (``mtime=0``), preserving write-once convergence between concurrent
    writers of one digest.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        max_entries: int | None = None,
        memory_entries: int | None = None,
        compress: bool = False,
        faults: FaultPlan | None = None,
        evict_lock_stale_s: float = _EVICT_LOCK_STALE_S,
        registry: MetricsRegistry | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise QPilotError("max_entries must be at least 1")
        if memory_entries is not None and memory_entries < 1:
            raise QPilotError("memory_entries must be at least 1")
        if evict_lock_stale_s <= 0:
            raise QPilotError("evict_lock_stale_s must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.memory_entries = memory_entries
        self.compress = compress
        self.faults = faults
        self.evict_lock_stale_s = evict_lock_stale_s
        # counters live here; ``stats`` is a view built on access (a
        # service shares its registry with the store it constructs)
        self.registry = registry if registry is not None else MetricsRegistry()
        metric = self.registry.counter
        self._c_memory_hits = metric("store_memory_hits_total")
        self._c_disk_hits = metric("store_disk_hits_total")
        self._c_misses = metric("store_misses_total")
        self._c_writes = metric("store_writes_total")
        self._c_evictions = metric("store_evictions_total")
        self._c_memory_evictions = metric("store_memory_evictions_total")
        self._c_corrupt = metric("store_corrupt_total")
        self._c_migrated = metric("store_migrated_total")
        # the memory tier: digest -> StoreEntry, most-recently-used last
        self._memory: "OrderedDict[str, StoreEntry]" = OrderedDict()
        # entry count, maintained incrementally so bounded-store writes
        # don't re-scan the whole tree; None until first needed
        self._count: int | None = None
        # per-digest write/read attempts, so bounded fault rules stop firing
        self._write_attempts: dict[str, int] = {}
        self._read_attempts: dict[str, int] = {}

    # -- stats ----------------------------------------------------------
    @property
    def stats(self) -> StoreStats:
        """Lifetime counters — a view over the metrics registry."""
        memory_hits = int(self._c_memory_hits.value)
        disk_hits = int(self._c_disk_hits.value)
        return StoreStats(
            hits=memory_hits + disk_hits,
            memory_hits=memory_hits,
            disk_hits=disk_hits,
            misses=int(self._c_misses.value),
            writes=int(self._c_writes.value),
            evictions=int(self._c_evictions.value),
            memory_evictions=int(self._c_memory_evictions.value),
            corrupt=int(self._c_corrupt.value),
            migrated=int(self._c_migrated.value),
        )

    # -- addressing -----------------------------------------------------
    def path_for(self, digest: str) -> Path:
        """Where an entry with this digest lives (existing or not)."""
        return self.root / digest[:2] / f"{digest}.json"

    def _entry_paths(self) -> Iterator[Path]:
        return self.root.glob("??/*.json")

    def __len__(self) -> int:
        if self._count is None:
            self._count = sum(1 for _ in self._entry_paths())
        return self._count

    def __contains__(self, digest: str) -> bool:
        """Whether a lookup of ``digest`` would be served (either tier)."""
        return digest in self._memory or self.path_for(digest).exists()

    def digests(self) -> list[str]:
        """Digests of all entries currently on disk (sorted)."""
        return sorted(path.stem for path in self._entry_paths())

    def disk_bytes(self) -> int:
        """Total on-disk size of all entry files, in bytes."""
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    # -- memory tier ----------------------------------------------------
    def _memory_store(self, digest: str, entry: StoreEntry) -> None:
        """Insert/refresh an entry in the LRU front tier (bounded)."""
        if self.memory_entries is None:
            return
        self._memory[digest] = entry
        self._memory.move_to_end(digest)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self._c_memory_evictions.inc()

    # -- lookup ---------------------------------------------------------
    def get(self, digest: str) -> StoreEntry | None:
        """Fetch an entry, or None on miss.

        The memory tier answers first — a memory hit performs zero disk
        I/O.  Corrupted disk entries (truncated writes, garbled bytes,
        wrong schema, digest mismatch) count as misses: the bad file is
        removed and the caller recompiles, which rewrites a good entry.
        Legacy schema-version-1 entries parse fine and are migrated in
        place (rewritten at the current schema and codec).

        A ``slow-store-read`` fault sleeps here before the lookup —
        *both* tiers — simulating a slow or contended disk so end-to-end
        deadlines can expire on the warm path (chaos testing only; with
        no plan attached this is a single ``is None`` check).
        """
        if self.faults is not None:
            attempt = self._read_attempts.get(digest, 0)
            self._read_attempts[digest] = attempt + 1
            duration = self.faults.fire_duration(SLOW_STORE_READ, digest, attempt)
            if duration > 0:
                time.sleep(duration)
        memory_entry = self._memory.get(digest)
        if memory_entry is not None:
            self._memory.move_to_end(digest)
            self._c_memory_hits.inc()
            return memory_entry
        path = self.path_for(digest)
        try:
            raw = path.read_bytes()
        except OSError:
            self._c_misses.inc()
            return None
        try:
            if raw[:2] == _GZIP_MAGIC:
                text = gzip.decompress(raw).decode("utf-8")
            else:
                text = raw.decode("utf-8")
            data = json.loads(text)
            entry = StoreEntry.from_dict(data)
            if entry.digest != digest:
                raise QPilotError(f"store entry {path} digest mismatch")
        except (
            ValueError,
            KeyError,
            TypeError,
            AttributeError,
            EOFError,
            OSError,  # gzip.BadGzipFile on garbled compressed entries
            zlib.error,
            QPilotError,
        ):
            self._c_corrupt.inc()
            self._c_misses.inc()
            log_event(logger, "corrupt-entry", digest=digest[:12], path=str(path))
            # a concurrent daemon may have repaired the same bad entry
            # first — its unlink must not crash us, and must not be
            # double-counted: only decrement for a file *we* removed
            # (otherwise the cached count drifts low and silently defers
            # eviction)
            try:
                path.unlink()
            except FileNotFoundError:
                pass  # already removed by the other daemon
            except OSError:
                pass
            else:
                if self._count is not None:
                    self._count -= 1
            return None
        self._c_disk_hits.inc()
        if data.get("schema_version") != _STORE_SCHEMA_VERSION:
            # migration-on-read: rewrite the legacy entry at the current
            # schema (and this store's codec); the rewrite refreshes the
            # mtime, doubling as the LRU touch
            self._c_migrated.inc()
            log_event(
                logger,
                "entry-migrated",
                digest=digest[:12],
                from_version=data.get("schema_version"),
            )
            try:
                self._write_entry_file(path, entry)
            except OSError:
                self._touch(path)  # migration is best-effort, LRU is not
        else:
            self._touch(path)
        self._memory_store(digest, entry)
        return entry

    # -- insert ---------------------------------------------------------
    def put(self, digest: str, result: FarmJobResult) -> StoreEntry:
        """Persist one compiled job under its digest (atomic write).

        Raises :class:`~repro.utils.faults.InjectedStoreWriteError` when
        a ``fail-store-write`` fault fires (chaos testing only; with no
        plan attached this is a single ``is None`` check).  Callers that
        must stay up across a failed write — the compile service — catch
        and log instead of propagating.
        """
        attempt = self._write_attempts.get(digest, 0)
        self._write_attempts[digest] = attempt + 1
        if self.faults is not None and self.faults.should_fire(
            FAIL_STORE_WRITE, digest, attempt
        ):
            raise InjectedStoreWriteError(
                f"injected store-write fault for {digest[:12]} (attempt {attempt})"
            )
        entry = StoreEntry.from_result(digest, result)
        path = self.path_for(digest)
        existed = path.exists()
        self._write_entry_file(path, entry)
        self._c_writes.inc()
        if not existed and self._count is not None:
            self._count += 1
        if self.faults is not None and self.faults.should_fire(
            CORRUPT_STORE_ENTRY, digest, attempt
        ):
            # garble the just-written entry: the next read must treat it
            # as a miss, unlink it, and let a recompile repair it — drop
            # the memory copy too, or the front tier would mask the
            # injected corruption from the very test exercising it
            path.write_text('{"schema_version": "corrupted-by-fault-injection"')
            self._memory.pop(digest, None)
        else:
            self._memory_store(digest, entry)
        if self.max_entries is not None:
            self._evict_over_limit(keep=path)
        return entry

    def _write_entry_file(self, path: Path, entry: StoreEntry) -> None:
        """Atomically write one entry file at the store's current codec."""
        data = entry.to_dict()
        data["codec"] = "gzip" if self.compress else "raw"
        payload = (canonical_json(data) + "\n").encode("utf-8")
        if self.compress:
            # mtime=0 keeps the compressed bytes deterministic, so
            # concurrent writers of one digest still converge bit-for-bit
            payload = gzip.compress(payload, mtime=0)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{entry.digest[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as tmp:
                tmp.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- maintenance ----------------------------------------------------
    def clear(self) -> int:
        """Remove every entry (both tiers); returns how many files were removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                path.unlink(missing_ok=True)
                removed += 1
            except OSError:
                pass
        self._memory.clear()
        self._count = None  # recount lazily (unlinks may have failed)
        # a long-lived daemon clearing its store starts a fresh fault
        # epoch too — per-digest attempt ledgers must not leak forever
        self._write_attempts.clear()
        self._read_attempts.clear()
        return removed

    def _touch(self, path: Path) -> None:
        """Refresh an entry's mtime so LRU eviction sees the hit."""
        try:
            os.utime(path)
        except OSError:
            pass

    def _acquire_evict_lock(self) -> int | None:
        """Try to take the store-wide eviction lock (``O_EXCL`` create).

        Returns an open fd on success, ``None`` when another daemon holds
        the lock (its scan covers our excess too — skipping is correct,
        the bound is approximate between evictions by design).  A lock
        older than ``evict_lock_stale_s`` belonged to a crashed holder
        and is broken.
        """
        lock = self.root / ".evict.lock"
        for _ in range(2):  # second pass only after breaking a stale lock
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:
                    continue  # holder just released it; retry the create
                if age <= self.evict_lock_stale_s:
                    return None
                try:
                    lock.unlink(missing_ok=True)
                except OSError:
                    return None
                continue
            except OSError:
                return None  # unwritable root: skip eviction, never crash
            try:
                os.write(fd, f"{os.getpid()}\n".encode())
            except OSError:
                pass
            return fd
        return None

    def _release_evict_lock(self, fd: int) -> None:
        try:
            os.close(fd)
        except OSError:
            pass
        try:
            (self.root / ".evict.lock").unlink(missing_ok=True)
        except OSError:
            pass

    def _evict_over_limit(self, *, keep: Path) -> None:
        """Drop least-recently-used entries until within ``max_entries``.

        The O(1) count check keeps the common (not-over-limit) write
        cheap; the full scan only happens when eviction looks due, and
        its result resyncs the count (healing drift from other writers
        sharing the root).  The scan runs under the store-wide lockfile:
        concurrent daemons sharing a root must not race each other's
        scans into evicting far below the limit (each sees the other's
        unlinks as its own excess).
        """
        if len(self) - self.max_entries <= 0:
            return
        lock_fd = self._acquire_evict_lock()
        if lock_fd is None:
            self._count = None  # another daemon is evicting; recount lazily
            return
        try:
            paths = list(self._entry_paths())
            self._count = len(paths)
            excess = self._count - self.max_entries
            if excess <= 0:
                return

            def lru_key(path: Path) -> tuple[float, str]:
                # mtime alone ties on coarse-granularity filesystems for
                # entries written within one quantum, making eviction
                # order depend on directory-scan order; the name breaks
                # the tie deterministically
                try:
                    return (path.stat().st_mtime, path.name)
                except OSError:
                    return (0.0, path.name)

            removed = 0
            for path in sorted(paths, key=lru_key):
                if excess <= 0:
                    break
                if path == keep:
                    continue
                try:
                    path.unlink(missing_ok=True)
                    if self._count is not None:
                        self._count -= 1
                    self._c_evictions.inc()
                    removed += 1
                    excess -= 1
                except OSError:
                    pass
            if removed:
                log_event(
                    logger, "store-evicted", removed=removed, max_entries=self.max_entries
                )
        finally:
            self._release_evict_lock(lock_fd)

"""``python -m repro.service`` — compile-service command line."""

import sys

from repro.service.cli import main

sys.exit(main())

"""Random-number helper utilities.

All stochastic code in the library accepts either an integer seed, a numpy
``Generator`` or ``None`` and funnels it through :func:`ensure_rng` so that
benchmarks are reproducible end to end.
"""

from __future__ import annotations

import numpy as np


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a numpy random Generator from a seed, Generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``."""
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]

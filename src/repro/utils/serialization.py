"""JSON serialisation of compiled FPQA schedules.

Downstream tools (visualisers, hardware control stacks, external
evaluators) need compiled programs in a machine-readable form.  This module
converts an :class:`~repro.core.schedule.FPQASchedule` to and from a plain
JSON-compatible dictionary.  The round-trip is lossless for everything the
executor needs: stage order, gates (with operand kinds), ancilla
creation/recycle pairs, and atom moves.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.movement import AtomMove, MovementStep
from repro.core.schedule import (
    AncillaCreationStage,
    AncillaRecycleStage,
    FPQASchedule,
    MeasurementStage,
    MovementStage,
    OneQubitStage,
    RydbergStage,
    ScheduledGate,
    Stage,
)
from repro.exceptions import ScheduleError
from repro.hardware.fpqa import FPQAConfig

_SCHEMA_VERSION = 1

#: Metadata keys that vary run-to-run (wall-clock timings) and are dropped
#: from canonical serialisations so golden files stay byte-stable.
VOLATILE_METADATA_KEYS = frozenset({"compile_time_s"})


def canonical_json(data: Any, *, indent: int | None = 2) -> str:
    """Canonical JSON text: sorted keys, fixed indent — byte-stable.

    One serialisation convention shared by the golden schedule files, the
    DSE trajectory archives and the compile-service schedule store: equal
    data always renders to equal bytes, so content-addressed storage and
    byte-diff regression tests work on the text directly.
    """
    return json.dumps(data, indent=indent, sort_keys=True)


def _gate_to_dict(gate: ScheduledGate) -> dict[str, Any]:
    return {
        "name": gate.name,
        "operands": [[kind, index] for kind, index in gate.operands],
        "params": list(gate.params),
    }


def _gate_from_dict(data: dict[str, Any]) -> ScheduledGate:
    return ScheduledGate(
        name=data["name"],
        operands=tuple((kind, int(index)) for kind, index in data["operands"]),
        params=tuple(float(p) for p in data.get("params", [])),
    )


def _copies_to_list(copies) -> list:
    return [[[kind, index], slot] for (kind, index), slot in copies]


def _copies_from_list(data) -> list:
    return [((kind, int(index)), int(slot)) for (kind, index), slot in data]


def stage_to_dict(stage: Stage) -> dict[str, Any]:
    """Serialise one schedule stage."""
    base: dict[str, Any] = {"kind": type(stage).__name__, "label": stage.label}
    if isinstance(stage, OneQubitStage):
        base["gates"] = [_gate_to_dict(g) for g in stage.gates]
    elif isinstance(stage, RydbergStage):
        base["gates"] = [_gate_to_dict(g) for g in stage.gates]
    elif isinstance(stage, (AncillaCreationStage, AncillaRecycleStage)):
        base["copies"] = _copies_to_list(stage.copies)
        base["uses_atom_transfer"] = stage.uses_atom_transfer
    elif isinstance(stage, MovementStage):
        base["moves"] = [
            {"ancilla": m.ancilla, "from": list(m.from_pos), "to": list(m.to_pos)}
            for m in stage.step.moves
        ]
    elif isinstance(stage, MeasurementStage):
        base["qubits"] = list(stage.qubits)
    else:  # pragma: no cover - future stage types
        raise ScheduleError(f"cannot serialise stage type {type(stage).__name__}")
    return base


def stage_from_dict(data: dict[str, Any]) -> Stage:
    """Deserialise one schedule stage."""
    kind = data.get("kind")
    label = data.get("label", "")
    if kind == "OneQubitStage":
        return OneQubitStage(label=label, gates=[_gate_from_dict(g) for g in data["gates"]])
    if kind == "RydbergStage":
        return RydbergStage(label=label, gates=[_gate_from_dict(g) for g in data["gates"]])
    if kind == "AncillaCreationStage":
        return AncillaCreationStage(
            label=label,
            copies=_copies_from_list(data["copies"]),
            uses_atom_transfer=bool(data.get("uses_atom_transfer", True)),
        )
    if kind == "AncillaRecycleStage":
        return AncillaRecycleStage(
            label=label,
            copies=_copies_from_list(data["copies"]),
            uses_atom_transfer=bool(data.get("uses_atom_transfer", True)),
        )
    if kind == "MovementStage":
        moves = [
            AtomMove(int(m["ancilla"]), tuple(m["from"]), tuple(m["to"]))
            for m in data.get("moves", [])
        ]
        return MovementStage(label=label, step=MovementStep(moves=moves))
    if kind == "MeasurementStage":
        return MeasurementStage(label=label, qubits=[int(q) for q in data.get("qubits", [])])
    raise ScheduleError(f"unknown stage kind {kind!r} in serialised schedule")


def config_to_dict(config: FPQAConfig) -> dict[str, Any]:
    """Serialise the FPQA configuration."""
    return {
        "slm_rows": config.slm_rows,
        "slm_cols": config.slm_cols,
        "aod_rows": config.aod_rows,
        "aod_cols": config.aod_cols,
        "rydberg_radius_um": config.rydberg_radius_um,
        "site_spacing_um": config.site_spacing_um,
        "interaction_offset_um": config.interaction_offset_um,
        "move_speed_um_per_s": config.move_speed_um_per_s,
        "t0_us": config.t0_us,
        "t2_s": config.t2_s,
        "one_qubit_fidelity": config.one_qubit_fidelity,
        "two_qubit_fidelity": config.two_qubit_fidelity,
        "one_qubit_time_us": config.one_qubit_time_us,
        "two_qubit_time_us": config.two_qubit_time_us,
        "atom_transfer_time_us": config.atom_transfer_time_us,
    }


def schedule_to_dict(schedule: FPQASchedule, *, canonical: bool = False) -> dict[str, Any]:
    """Serialise a full schedule (config, stages, metadata, metrics).

    With ``canonical=True`` the volatile metadata keys (wall-clock compile
    timings) are dropped, so serialising the same logical schedule twice —
    or a deserialised round-trip of it — yields identical output.  Golden
    regression files use this mode.
    """
    metadata = {k: v for k, v in schedule.metadata.items() if _is_jsonable(v)}
    if canonical:
        metadata = {k: v for k, v in metadata.items() if k not in VOLATILE_METADATA_KEYS}
    # Normalise through one JSON round-trip: routers stash dicts with int
    # keys (and tuples) in metadata, which ``sort_keys`` orders numerically
    # on the way out but lexicographically after deserialisation — the
    # serialised form must be identical either way for content-addressed
    # storage and golden byte-diffs to work.
    metadata = json.loads(json.dumps(metadata))
    return {
        "schema_version": _SCHEMA_VERSION,
        "name": schedule.name,
        "num_data_qubits": schedule.num_data_qubits,
        "config": config_to_dict(schedule.config),
        "stages": [stage_to_dict(stage) for stage in schedule.stages],
        "metadata": metadata,
        "metrics": schedule.summary(),
    }


def schedule_from_dict(data: dict[str, Any]) -> FPQASchedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output."""
    if data.get("schema_version") != _SCHEMA_VERSION:
        raise ScheduleError(f"unsupported schedule schema version {data.get('schema_version')!r}")
    config = FPQAConfig(**data["config"])
    schedule = FPQASchedule(
        config=config,
        num_data_qubits=int(data["num_data_qubits"]),
        name=data.get("name", "fpqa_schedule"),
        metadata=dict(data.get("metadata", {})),
    )
    for stage_data in data["stages"]:
        schedule.append(stage_from_dict(stage_data))
    return schedule


def schedule_to_json(
    schedule: FPQASchedule, *, indent: int | None = 2, canonical: bool = False
) -> str:
    """Serialise a schedule to a JSON string.

    ``canonical=True`` additionally sorts keys and strips volatile metadata
    so the output is byte-stable across runs (the golden-file format).
    """
    return json.dumps(
        schedule_to_dict(schedule, canonical=canonical), indent=indent, sort_keys=canonical
    )


def schedule_from_json(text: str) -> FPQASchedule:
    """Parse a schedule from a JSON string."""
    return schedule_from_dict(json.loads(text))


def _is_jsonable(value) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False

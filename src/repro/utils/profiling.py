"""Lightweight wall-clock timing helpers for the perf-tracking benchmarks.

The compile-speed harness (``benchmarks/bench_compile_speed.py``) uses
these to measure router hot paths and to append results to a *trajectory
file* (``BENCH_compile.json``): a JSON document that accumulates one entry
per benchmark run so that successive performance PRs can be compared
against each other without digging through git history.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Any, Callable


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as t:
    ...     do_work()
    >>> t.elapsed  # seconds
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_call(
    fn: Callable[..., Any],
    *args: Any,
    repeats: int = 1,
    warmup: int = 0,
    **kwargs: Any,
) -> tuple[Any, float]:
    """Time ``fn(*args, **kwargs)``, returning ``(result, best_seconds)``.

    ``warmup`` extra calls run first without being timed (they populate
    caches and trigger interpreter specialisation); the best of ``repeats``
    timed calls is reported, the standard way to suppress scheduler noise
    in micro-benchmarks.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn(*args, **kwargs)
    best = math.inf
    result: Any = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best


class TrajectoryRecorder:
    """Append benchmark entries to a JSON trajectory file.

    The file holds ``{"benchmark": ..., "entries": [...]}``; every
    :meth:`record` call appends one entry with a timestamp, so the file
    grows by one entry per benchmark run and preserves the full history.
    """

    def __init__(self, path: str | Path, benchmark: str):
        self.path = Path(path)
        self.benchmark = benchmark

    def load(self) -> dict:
        if self.path.exists():
            try:
                document = json.loads(self.path.read_text())
            except (ValueError, OSError):
                document = None
            if isinstance(document, dict) and isinstance(document.get("entries"), list):
                return document
            # unreadable or malformed: move it aside so record() never
            # overwrites the accumulated trajectory history
            backup = self.path.with_name(self.path.name + ".corrupt")
            try:
                self.path.replace(backup)
            except OSError:
                pass
        return {"benchmark": self.benchmark, "entries": []}

    def record(self, entry: dict) -> dict:
        """Append ``entry`` (timestamped) and write the file back."""
        document = self.load()
        stamped = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), **entry}
        document["entries"].append(stamped)
        self.path.write_text(json.dumps(document, indent=1, sort_keys=False) + "\n")
        return stamped

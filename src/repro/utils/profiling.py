"""Lightweight wall-clock timing helpers for the perf-tracking benchmarks.

The compile-speed harness (``benchmarks/bench_compile_speed.py``) uses
these to measure router hot paths and to append results to a *trajectory
file* (``BENCH_compile.json``): a JSON document that accumulates one entry
per benchmark run so that successive performance PRs can be compared
against each other without digging through git history.

Since the observability PR there is exactly one timing implementation in
the repo: :class:`Timer` and :class:`TrajectoryRecorder` are re-exports
of the :mod:`repro.obs` primitives (`repro.obs.tracing.Timer` is also
what spans use internally), and :func:`time_call` is built on
:class:`Timer`.  The public API here is unchanged — existing imports of
``repro.utils.profiling`` keep working.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.obs.metrics import TrajectoryRecorder
from repro.obs.tracing import Timer

__all__ = ["Timer", "TrajectoryRecorder", "time_call"]


def time_call(
    fn: Callable[..., Any],
    *args: Any,
    repeats: int = 1,
    warmup: int = 0,
    **kwargs: Any,
) -> tuple[Any, float]:
    """Time ``fn(*args, **kwargs)``, returning ``(result, best_seconds)``.

    ``warmup`` extra calls run first without being timed (they populate
    caches and trigger interpreter specialisation); the best of ``repeats``
    timed calls is reported, the standard way to suppress scheduler noise
    in micro-benchmarks.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn(*args, **kwargs)
    best = math.inf
    result: Any = None
    for _ in range(repeats):
        with Timer() as timer:
            result = fn(*args, **kwargs)
        best = min(best, timer.elapsed)
    return result, best

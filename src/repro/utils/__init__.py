"""Shared utilities: RNG handling, reporting, and schedule serialisation."""

from repro.utils.rng import ensure_rng, spawn

__all__ = ["ensure_rng", "spawn"]

# Note: repro.utils.reporting and repro.utils.serialization are imported
# directly by their users; serialization is not re-exported here to avoid a
# circular import with repro.core.


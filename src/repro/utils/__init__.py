"""Shared utilities: RNG handling, timing, reporting, and serialisation."""

from repro.utils.faults import FaultPlan, FaultRule, deterministic_draw
from repro.utils.profiling import Timer, TrajectoryRecorder, time_call
from repro.utils.rng import ensure_rng, spawn

__all__ = [
    "ensure_rng",
    "spawn",
    "FaultPlan",
    "FaultRule",
    "deterministic_draw",
    "Timer",
    "TrajectoryRecorder",
    "time_call",
]

# Note: repro.utils.reporting and repro.utils.serialization are imported
# directly by their users; serialization is not re-exported here to avoid a
# circular import with repro.core.


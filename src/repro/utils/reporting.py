"""Plain-text reporting helpers for benchmarks and examples.

The benchmark harness prints the same rows/series the paper's tables and
figures report.  These helpers render lists of dict rows as aligned ASCII
tables and simple CSV, with no third-party dependencies.
"""

from __future__ import annotations

import io
from typing import Iterable, Mapping, Sequence


def format_table(rows: Sequence[Mapping], *, columns: Sequence[str] | None = None, title: str | None = None) -> str:
    """Render dict rows as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(header[i]), max((len(r[i]) for r in body), default=0)) for i in range(len(header))]
    out = io.StringIO()
    if title:
        out.write(f"{title}\n")
    out.write("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip() + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in body:
        out.write("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip() + "\n")
    return out.getvalue()


def format_csv(rows: Sequence[Mapping], *, columns: Sequence[str] | None = None) -> str:
    """Render dict rows as CSV text."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(str(c) for c in columns)]
    for row in rows:
        lines.append(",".join(_fmt(row.get(c, "")) for c in columns))
    return "\n".join(lines) + "\n"


def format_series(series: Iterable[tuple], *, header: tuple[str, ...] = ("x", "y"), title: str | None = None) -> str:
    """Render an (x, y[, ...]) series as a small table (for figure data)."""
    rows = [dict(zip(header, point)) for point in series]
    return format_table(rows, columns=list(header), title=title)


def ratio(baseline: float, ours: float) -> float:
    """Improvement ratio baseline/ours, guarding against zero."""
    if ours <= 0:
        return float("inf") if baseline > 0 else 1.0
    return baseline / ours


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (used to aggregate ratios)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)

"""Deterministic, seeded fault injection for the compile fabric.

Robustness work is only testable if every failure mode is reproducible:
a worker crash that happens "sometimes" cannot pin a recovery path in
tier-1.  This module therefore models faults as *data* — a
:class:`FaultPlan` is a frozen, picklable registry of :class:`FaultRule`
values — and every fire/no-fire decision is a pure function of
``(plan seed, fault kind, fault key, attempt)``.  Nothing depends on
wall clock, call order or executor interleaving, so the same plan
produces the same faults whether jobs run serially in-process, across a
thread pool or across worker processes — which is what makes the chaos
differential suite (``tests/test_faults.py``) meaningful: a
fault-injected run that ultimately succeeds must be byte-identical to
the fault-free ``reference`` run.

Fault kinds (the compile fabric's failure modes):

* ``crash-worker`` — hard-kill the worker process (``os._exit``) so the
  farm sees a real :class:`~concurrent.futures.process.BrokenProcessPool`.
  Only fires inside actual pool worker processes; in the in-process
  (``reference``/degraded) and thread executors it is a no-op, which is
  what lets the farm's degradation ladder terminate.
* ``sleep-in-compile`` — sleep ``duration_s`` before compiling, to push
  a job past the farm's per-job ``timeout_s``.
* ``raise-in-compile`` — raise :class:`InjectedCompileError` from the
  worker, exercising retry/backoff.
* ``fail-store-write`` — make :meth:`ScheduleStore.put` raise, so the
  service's log-and-continue path runs.
* ``corrupt-store-entry`` — garble the entry's bytes after a store
  write, so the next read takes the corruption-unlink repair path.
* ``slow-store-read`` — sleep ``duration_s`` inside
  :meth:`ScheduleStore.get` before the lookup, simulating a slow or
  contended disk so end-to-end deadlines can expire on the warm path.
* ``stall-dispatch`` — sleep ``duration_s`` in the farm's dispatch loop
  before a job is submitted to its executor, simulating a stalled farm:
  queued jobs burn their deadline budget without ever reaching a
  worker, which is how the overload chaos suite forces deterministic
  deadline expiries and circuit-breaker trips.

Plans are carried on :class:`~repro.core.farm.FarmOptions` (compile-side
faults) and :class:`~repro.service.store.ScheduleStore` (store-side
faults), both defaulting to ``None`` — with no plan attached every hook
is a single ``is None`` check, so fault injection has zero overhead when
disabled.  ``FaultPlan.from_env()`` reads a JSON plan from the
``QPILOT_FAULTS`` environment variable, which is how the CI chaos job
turns the rate up without code changes.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass, fields
from typing import Any

from repro.exceptions import QPilotError
from repro.obs.events import log_event

logger = logging.getLogger(__name__)

#: Fault kinds the registry understands.
CRASH_WORKER = "crash-worker"
SLEEP_IN_COMPILE = "sleep-in-compile"
RAISE_IN_COMPILE = "raise-in-compile"
FAIL_STORE_WRITE = "fail-store-write"
CORRUPT_STORE_ENTRY = "corrupt-store-entry"
SLOW_STORE_READ = "slow-store-read"
STALL_DISPATCH = "stall-dispatch"

FAULT_KINDS = (
    CRASH_WORKER,
    SLEEP_IN_COMPILE,
    RAISE_IN_COMPILE,
    FAIL_STORE_WRITE,
    CORRUPT_STORE_ENTRY,
    SLOW_STORE_READ,
    STALL_DISPATCH,
)

#: Environment variable holding a JSON fault plan (the CI chaos preset).
FAULTS_ENV_VAR = "QPILOT_FAULTS"


class InjectedFaultError(QPilotError):
    """Base class of every error raised *by* fault injection itself."""


class InjectedCompileError(InjectedFaultError):
    """A ``raise-in-compile`` fault fired inside a compile."""


class InjectedStoreWriteError(InjectedFaultError):
    """A ``fail-store-write`` fault fired inside ``ScheduleStore.put``."""


def deterministic_draw(seed: int, kind: str, key: str, attempt: int) -> float:
    """Uniform [0, 1) draw that is a pure function of its arguments.

    Replaces ``random.random()`` everywhere fault injection (and the
    farm's backoff jitter) needs randomness: equal inputs give equal
    draws in every process, on every executor, in every run.
    """
    payload = f"{seed}|{kind}|{key}|{attempt}".encode()
    return int.from_bytes(hashlib.sha1(payload).digest()[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultRule:
    """One fault: *which* failure, *where* it applies, *how often*.

    ``match`` is a substring filter on the fault key (the farm uses
    ``FarmJob.fault_key()``, the store uses the entry digest); the empty
    string matches everything.  ``max_fires`` bounds the rule per key:
    the fault fires only while ``attempt < max_fires``, so a rule with
    ``max_fires=1`` fails each matching job exactly once and its retry
    succeeds — the canonical recoverable fault.  ``rate`` thins firing
    probabilistically via :func:`deterministic_draw` (still fully
    deterministic for a given plan seed).
    """

    kind: str
    rate: float = 1.0
    match: str = ""
    max_fires: int | None = 1
    duration_s: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise QPilotError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise QPilotError(f"fault rate must be in [0, 1], got {self.rate!r}")
        if self.max_fires is not None and self.max_fires < 1:
            raise QPilotError("max_fires must be at least 1 (or None for unbounded)")
        if self.duration_s < 0:
            raise QPilotError("duration_s must be non-negative")

    def fires(self, seed: int, key: str, attempt: int) -> bool:
        """Does this rule fire for ``key`` on (0-based) ``attempt``?"""
        if self.match not in key:
            return False
        if self.max_fires is not None and attempt >= self.max_fires:
            return False
        if self.rate >= 1.0:
            return True
        return deterministic_draw(seed, self.kind, key, attempt) < self.rate

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultRule":
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise QPilotError(f"unknown FaultRule keys {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded registry of fault rules — the whole chaos experiment.

    Frozen and picklable, so a plan rides inside a
    :class:`~repro.core.farm.FarmJob` across process boundaries intact.
    Plans never participate in memo keys or store digests: injecting
    faults must not change *what* is computed, only *how bumpy* the road
    there is.
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        # tolerate list input from from_dict/JSON
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    # -- decisions ------------------------------------------------------
    def should_fire(self, kind: str, key: str, attempt: int = 0) -> bool:
        """True if any rule of ``kind`` fires for ``key`` on ``attempt``."""
        return any(
            rule.kind == kind and rule.fires(self.seed, key, attempt)
            for rule in self.rules
        )

    def fire_duration(self, kind: str, key: str, attempt: int = 0) -> float:
        """Seconds the firing rules of ``kind`` want (0.0 when none fire).

        The shared body of every duration-bearing fault
        (``sleep-in-compile``, ``slow-store-read``, ``stall-dispatch``):
        the longest firing rule wins.
        """
        return max(
            (
                rule.duration_s
                for rule in self.rules
                if rule.kind == kind and rule.fires(self.seed, key, attempt)
            ),
            default=0.0,
        )

    def sleep_duration(self, key: str, attempt: int = 0) -> float:
        """Seconds a firing ``sleep-in-compile`` rule wants (0.0 if none)."""
        return self.fire_duration(SLEEP_IN_COMPILE, key, attempt)

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        unknown = set(data) - {"seed", "rules"}
        if unknown:
            raise QPilotError(f"unknown FaultPlan keys {sorted(unknown)}")
        return cls(
            seed=int(data.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(rule) for rule in data.get("rules", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise QPilotError(f"invalid fault plan JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise QPilotError("fault plan JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def from_env(cls, var: str = FAULTS_ENV_VAR) -> "FaultPlan | None":
        """Plan from the environment (the CI chaos preset), or None."""
        text = os.environ.get(var)
        return cls.from_json(text) if text else None

    # -- convenience ----------------------------------------------------
    @classmethod
    def single(cls, kind: str, *, seed: int = 0, **rule_kwargs: Any) -> "FaultPlan":
        """Plan with one rule — the common shape in tests."""
        return cls(seed=seed, rules=(FaultRule(kind=kind, **rule_kwargs),))


def inject_compile_faults(
    plan: FaultPlan | None, key: str, attempt: int, *, in_process_worker: bool = False
) -> None:
    """Apply compile-side faults (crash / sleep / raise) at a compile site.

    Called by the farm's worker entry point before each compile.
    ``crash-worker`` hard-kills the process only when
    ``in_process_worker`` is set (a real pool worker); everywhere else it
    is a no-op, so the in-process degradation fallback and the
    ``reference`` oracle always terminate.  Sleep happens before raise so
    a plan can combine both against the same key.
    """
    if plan is None:
        return
    if in_process_worker and plan.should_fire(CRASH_WORKER, key, attempt):
        log_event(logger, "fault-fired", kind=CRASH_WORKER, key=key, attempt=attempt)
        os._exit(13)  # simulate a hard worker death: no cleanup, no excuses
    duration = plan.sleep_duration(key, attempt)
    if duration > 0:
        log_event(
            logger, "fault-fired", kind=SLEEP_IN_COMPILE, key=key, attempt=attempt
        )
        time.sleep(duration)
    if plan.should_fire(RAISE_IN_COMPILE, key, attempt):
        log_event(
            logger, "fault-fired", kind=RAISE_IN_COMPILE, key=key, attempt=attempt
        )
        raise InjectedCompileError(
            f"injected compile fault for {key!r} (attempt {attempt})"
        )

"""Execution timeline analysis (Fig. 10).

The paper breaks the execution of three compiled programs (QAOA-40,
QSIM-10, BV-70) into movement, 2-qubit-gate and 1-qubit-gate segments and
shows that movement dominates the wall-clock time.  This module converts a
compiled schedule into the same segment list and per-category totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schedule import (
    AncillaCreationStage,
    AncillaRecycleStage,
    FPQASchedule,
    MeasurementStage,
    MovementStage,
    OneQubitStage,
    RydbergStage,
)


@dataclass(frozen=True)
class TimelineSegment:
    """One contiguous activity on the machine."""

    category: str  # "movement", "2q_gate", "1q_gate", "atom_transfer"
    start_us: float
    duration_us: float
    label: str = ""

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass
class ExecutionTimeline:
    """Ordered activity segments of one compiled program."""

    schedule_name: str
    segments: list[TimelineSegment] = field(default_factory=list)

    @property
    def total_time_us(self) -> float:
        return self.segments[-1].end_us if self.segments else 0.0

    def category_totals(self) -> dict[str, float]:
        """Total time per activity category (the Fig. 10 bars)."""
        totals: dict[str, float] = {}
        for segment in self.segments:
            totals[segment.category] = totals.get(segment.category, 0.0) + segment.duration_us
        return totals

    def category_fractions(self) -> dict[str, float]:
        total = self.total_time_us
        if total <= 0:
            return {}
        return {k: v / total for k, v in self.category_totals().items()}

    def dominant_category(self) -> str | None:
        totals = self.category_totals()
        if not totals:
            return None
        return max(totals, key=totals.get)


def execution_timeline(schedule: FPQASchedule) -> ExecutionTimeline:
    """Convert a schedule into an ordered timeline of activity segments."""
    timeline = ExecutionTimeline(schedule_name=schedule.name)
    config = schedule.config
    clock = 0.0
    for stage in schedule.stages:
        duration = stage.duration_us(config)
        if duration <= 0:
            continue
        if isinstance(stage, MovementStage):
            category = "movement"
            segments = [(category, duration)]
        elif isinstance(stage, OneQubitStage):
            segments = [("1q_gate", duration)]
        elif isinstance(stage, RydbergStage):
            segments = [("2q_gate", duration)]
        elif isinstance(stage, (AncillaCreationStage, AncillaRecycleStage)):
            transfer = config.atom_transfer_time_us if stage.uses_atom_transfer else 0.0
            segments = []
            if transfer > 0:
                segments.append(("atom_transfer", transfer))
            gate_time = duration - transfer
            if gate_time > 0:
                segments.append(("2q_gate", gate_time))
        elif isinstance(stage, MeasurementStage):
            continue
        else:  # pragma: no cover - future stage types
            segments = [("other", duration)]
        for category, seg_duration in segments:
            timeline.segments.append(
                TimelineSegment(
                    category=category,
                    start_us=clock,
                    duration_us=seg_duration,
                    label=stage.label,
                )
            )
            clock += seg_duration
    return timeline


def compare_timelines(timelines: list[ExecutionTimeline]) -> list[dict]:
    """Summary rows for several programs (the Fig. 10 comparison)."""
    rows = []
    for timeline in timelines:
        totals = timeline.category_totals()
        rows.append(
            {
                "program": timeline.schedule_name,
                "total_us": round(timeline.total_time_us, 2),
                "movement_us": round(totals.get("movement", 0.0), 2),
                "2q_us": round(totals.get("2q_gate", 0.0), 2),
                "1q_us": round(totals.get("1q_gate", 0.0), 2),
                "transfer_us": round(totals.get("atom_transfer", 0.0), 2),
                "dominant": timeline.dominant_category(),
            }
        )
    return rows

"""Per-stage parallelism analysis (Fig. 15b).

The paper reports, for QAOA workloads of 20/50/100 qubits, the distribution
of the number of 2-qubit gates executed per Rydberg stage and the resulting
average parallelism (3.32, 4.13 and 4.90 respectively) — parallelism grows
with problem size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import FPQASchedule, RydbergStage


@dataclass
class ParallelismProfile:
    """Distribution of 2-qubit gates per Rydberg stage for one schedule."""

    label: str
    histogram: dict[int, int]

    @property
    def num_stages(self) -> int:
        return sum(self.histogram.values())

    @property
    def total_gates(self) -> int:
        return sum(count * stages for count, stages in self.histogram.items())

    @property
    def average_parallelism(self) -> float:
        stages = self.num_stages
        return self.total_gates / stages if stages else 0.0

    @property
    def max_parallelism(self) -> int:
        return max(self.histogram, default=0)

    def stage_ratio(self, parallel_gates: int) -> float:
        """Fraction of stages that execute exactly ``parallel_gates`` gates."""
        stages = self.num_stages
        return self.histogram.get(parallel_gates, 0) / stages if stages else 0.0

    def ratios(self) -> dict[int, float]:
        """Histogram normalised to ratios (the Fig. 15b y-axis)."""
        stages = self.num_stages
        if not stages:
            return {}
        return {k: v / stages for k, v in sorted(self.histogram.items())}


def parallelism_profile(schedule: FPQASchedule, label: str | None = None) -> ParallelismProfile:
    """Build the parallelism distribution of one compiled schedule."""
    return ParallelismProfile(
        label=label or schedule.name,
        histogram=schedule.parallelism_histogram(),
    )


def stage_sizes(schedule: FPQASchedule) -> list[int]:
    """Number of 2-qubit gates in every Rydberg stage, in schedule order."""
    return [
        len(stage.gates)
        for stage in schedule.stages
        if isinstance(stage, RydbergStage) and stage.gates
    ]


def compare_parallelism(profiles: list[ParallelismProfile]) -> list[dict]:
    """Summary rows for several workloads (the Fig. 15b legend table)."""
    return [
        {
            "workload": profile.label,
            "stages": profile.num_stages,
            "avg_parallelism": round(profile.average_parallelism, 3),
            "max_parallelism": profile.max_parallelism,
        }
        for profile in profiles
    ]

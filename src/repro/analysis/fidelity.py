"""Fidelity / error-rate analysis (Fig. 15a).

Thin wrappers around :class:`repro.core.evaluator.FidelityModel` producing
the error-rate-vs-2Q-error curves the paper plots for three small
workloads (random, quantum simulation, QAOA).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluator import FidelityModel, PerformanceEvaluator
from repro.core.schedule import FPQASchedule


@dataclass
class ErrorCurve:
    """Overall circuit error rate as a function of the 2-qubit gate error rate."""

    label: str
    two_qubit_error_rates: list[float]
    circuit_error_rates: list[float]

    def as_pairs(self) -> list[tuple[float, float]]:
        return list(zip(self.two_qubit_error_rates, self.circuit_error_rates))

    def error_at(self, two_qubit_error: float) -> float:
        """Interpolated circuit error at a given 2Q error rate."""
        return float(
            np.interp(
                two_qubit_error,
                self.two_qubit_error_rates,
                self.circuit_error_rates,
            )
        )


def default_error_sweep(num_points: int = 25) -> list[float]:
    """Logarithmic sweep of 2-qubit gate error rates from 1e-6 to 1e-1."""
    return [float(x) for x in np.logspace(-6, -1, num_points)]


def error_curve(
    schedule: FPQASchedule,
    label: str,
    *,
    two_qubit_error_rates: list[float] | None = None,
) -> ErrorCurve:
    """Compute the Fig. 15a curve for one compiled schedule."""
    sweep = two_qubit_error_rates or default_error_sweep()
    evaluator = PerformanceEvaluator()
    points = evaluator.error_rate_vs_two_qubit_error(schedule, sweep)
    return ErrorCurve(
        label=label,
        two_qubit_error_rates=[p[0] for p in points],
        circuit_error_rates=[p[1] for p in points],
    )


def error_threshold(curve: ErrorCurve, target_error: float = 0.5) -> float | None:
    """Largest 2Q error rate at which the circuit error stays below ``target_error``.

    Returns None when even the smallest swept 2Q error exceeds the target.
    """
    best: float | None = None
    for two_q, overall in curve.as_pairs():
        if overall < target_error:
            best = two_q
    return best


def fidelity_report(schedule: FPQASchedule) -> dict:
    """One-shot fidelity summary for a schedule using its configured model."""
    evaluator = PerformanceEvaluator(FidelityModel.from_config(schedule.config))
    evaluation = evaluator.evaluate(schedule)
    return {
        "name": schedule.name,
        "atoms": evaluation.num_atoms,
        "depth": evaluation.depth,
        "success_probability": evaluation.success_probability,
        "error_rate": evaluation.error_rate,
    }

"""Movement spatiotemporal analysis (Fig. 9).

For a compiled schedule the paper visualises, per movement step, the
displacement of every AOD atom, the X/Y trajectory of each atom over time,
and histograms of (i) how many movements each atom performs, (ii) the total
distance each atom travels, and (iii) its average speed.  This module
computes the same series from the schedule's movement stages.

The accumulation is array-native: :class:`MovementReport` flattens every
segment of every trajectory into one set of NumPy arrays, computes all
segment distances in a single vectorised pass, and reduces them to
per-atom aggregates with ``np.bincount``.  The histograms then bin those
aggregate arrays directly, so analysing a schedule is O(moves) NumPy work
instead of a Python loop per atom per series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.core.schedule import FPQASchedule, MovementStage


@dataclass
class AtomTrajectory:
    """Movement history of one AOD atom across the schedule."""

    ancilla: int
    #: (movement step index, from position, to position) in SLM grid units.
    segments: list[tuple[int, tuple[float, float], tuple[float, float]]] = field(default_factory=list)

    @property
    def num_movements(self) -> int:
        return sum(1 for _, src, dst in self.segments if src != dst)

    @property
    def total_distance(self) -> float:
        total = 0.0
        for _, src, dst in self.segments:
            total += ((dst[0] - src[0]) ** 2 + (dst[1] - src[1]) ** 2) ** 0.5
        return total

    def positions_over_time(self) -> list[tuple[int, float, float]]:
        """(step, row, col) samples after each of the atom's movements."""
        return [(step, dst[0], dst[1]) for step, _, dst in self.segments]

    def average_speed_m_per_s(self, site_spacing_um: float, step_duration_us: float) -> float:
        """Average speed assuming each movement takes ``step_duration_us``."""
        moves = self.num_movements
        if moves == 0 or step_duration_us <= 0:
            return 0.0
        metres = self.total_distance * site_spacing_um * 1e-6
        seconds = moves * step_duration_us * 1e-6
        return metres / seconds


@dataclass
class MovementReport:
    """All Fig. 9 series for one schedule.

    The per-atom aggregate arrays (``atom_ids`` / ``atom_movement_counts``
    / ``atom_total_distances``, all aligned index-wise) are derived from
    the trajectories lazily, in one vectorised pass shared by every
    histogram.
    """

    schedule_name: str
    step_max_distances: list[float]
    trajectories: dict[int, AtomTrajectory]
    site_spacing_um: float
    typical_step_duration_us: float

    @cached_property
    def _aggregates(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(atom ids, per-atom movement counts, per-atom total distances)."""
        atom_ids = np.asarray(sorted(self.trajectories), dtype=np.intp)
        if not atom_ids.size:
            return atom_ids, np.empty(0, dtype=np.int64), np.empty(0)
        segment_counts = [len(self.trajectories[a].segments) for a in atom_ids]
        coords = np.asarray(
            [
                (*src, *dst)
                for atom in atom_ids
                for _, src, dst in self.trajectories[atom].segments
            ],
            dtype=float,
        ).reshape(-1, 4)
        dense = np.repeat(np.arange(atom_ids.size), segment_counts)
        distances = np.hypot(coords[:, 2] - coords[:, 0], coords[:, 3] - coords[:, 1])
        moved = (coords[:, 0:2] != coords[:, 2:4]).any(axis=1)
        movement_counts = np.bincount(dense, weights=moved, minlength=atom_ids.size)
        total_distances = np.bincount(dense, weights=distances, minlength=atom_ids.size)
        return atom_ids, movement_counts.astype(np.int64), total_distances

    @property
    def atom_ids(self) -> np.ndarray:
        """Ancilla ids in ascending order, aligned with the aggregate arrays."""
        return self._aggregates[0]

    @property
    def atom_movement_counts(self) -> np.ndarray:
        """Number of non-zero movements per atom."""
        return self._aggregates[1]

    @property
    def atom_total_distances(self) -> np.ndarray:
        """Total travel distance per atom (grid units)."""
        return self._aggregates[2]

    def atom_speeds_m_per_s(self) -> np.ndarray:
        """Per-atom average speed, aligned with ``atom_ids`` (0 for still atoms)."""
        moves = self.atom_movement_counts
        if self.typical_step_duration_us <= 0:
            return np.zeros(moves.shape)
        metres = self.atom_total_distances * self.site_spacing_um * 1e-6
        seconds = np.maximum(moves, 1) * self.typical_step_duration_us * 1e-6
        return np.where(moves > 0, metres / seconds, 0.0)

    def movements_histogram(self) -> dict[int, int]:
        """Histogram: number of atoms vs number of movements performed."""
        values, counts = np.unique(self.atom_movement_counts, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def distance_histogram(self, bin_size: float = 10.0) -> dict[float, int]:
        """Histogram of per-atom total travel distance (grid units, binned)."""
        buckets = np.round(self.atom_total_distances / bin_size) * bin_size
        values, counts = np.unique(buckets, return_counts=True)
        return {float(v): int(c) for v, c in zip(values, counts)}

    def speed_histogram(self, bin_size_m_per_s: float = 0.01) -> dict[float, int]:
        """Histogram of per-atom average speeds (m/s, binned)."""
        speeds = self.atom_speeds_m_per_s()
        speeds = speeds[speeds > 0]
        buckets = np.round(speeds / bin_size_m_per_s) * bin_size_m_per_s
        values, counts = np.unique(buckets, return_counts=True)
        return {float(v): int(c) for v, c in zip(values, counts)}

    def mean_speed_m_per_s(self) -> float:
        speeds = self.atom_speeds_m_per_s()
        moving = speeds[self.atom_movement_counts > 0]
        return float(moving.mean()) if moving.size else 0.0

    def summary(self) -> dict:
        return {
            "schedule": self.schedule_name,
            "movement_steps": len(self.step_max_distances),
            "atoms_tracked": len(self.trajectories),
            "total_max_distance": round(sum(self.step_max_distances), 2),
            "mean_speed_m_per_s": round(self.mean_speed_m_per_s(), 4),
        }


def movement_report(schedule: FPQASchedule) -> MovementReport:
    """Extract the Fig. 9 movement series from a compiled schedule."""
    trajectories: dict[int, AtomTrajectory] = {}
    step_max: list[float] = []
    step_index = 0
    for stage in schedule.stages:
        if not isinstance(stage, MovementStage):
            continue
        step_max.append(stage.step.max_distance)
        for move in stage.step.moves:
            trajectory = trajectories.setdefault(move.ancilla, AtomTrajectory(ancilla=move.ancilla))
            trajectory.segments.append((step_index, move.from_pos, move.to_pos))
        step_index += 1
    config = schedule.config
    # one movement step's duration at the typical displacement of one site
    typical_duration = config.t0_us + config.site_spacing_um / config.move_speed_um_per_s * 1e6
    return MovementReport(
        schedule_name=schedule.name,
        step_max_distances=step_max,
        trajectories=trajectories,
        site_spacing_um=config.site_spacing_um,
        typical_step_duration_us=typical_duration,
    )

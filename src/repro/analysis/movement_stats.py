"""Movement spatiotemporal analysis (Fig. 9).

For a compiled schedule the paper visualises, per movement step, the
displacement of every AOD atom, the X/Y trajectory of each atom over time,
and histograms of (i) how many movements each atom performs, (ii) the total
distance each atom travels, and (iii) its average speed.  This module
computes the same series from the schedule's movement stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schedule import FPQASchedule, MovementStage


@dataclass
class AtomTrajectory:
    """Movement history of one AOD atom across the schedule."""

    ancilla: int
    #: (movement step index, from position, to position) in SLM grid units.
    segments: list[tuple[int, tuple[float, float], tuple[float, float]]] = field(default_factory=list)

    @property
    def num_movements(self) -> int:
        return sum(1 for _, src, dst in self.segments if src != dst)

    @property
    def total_distance(self) -> float:
        total = 0.0
        for _, src, dst in self.segments:
            total += ((dst[0] - src[0]) ** 2 + (dst[1] - src[1]) ** 2) ** 0.5
        return total

    def positions_over_time(self) -> list[tuple[int, float, float]]:
        """(step, row, col) samples after each of the atom's movements."""
        return [(step, dst[0], dst[1]) for step, _, dst in self.segments]

    def average_speed_m_per_s(self, site_spacing_um: float, step_duration_us: float) -> float:
        """Average speed assuming each movement takes ``step_duration_us``."""
        moves = self.num_movements
        if moves == 0 or step_duration_us <= 0:
            return 0.0
        metres = self.total_distance * site_spacing_um * 1e-6
        seconds = moves * step_duration_us * 1e-6
        return metres / seconds


@dataclass
class MovementReport:
    """All Fig. 9 series for one schedule."""

    schedule_name: str
    step_max_distances: list[float]
    trajectories: dict[int, AtomTrajectory]
    site_spacing_um: float
    typical_step_duration_us: float

    def movements_histogram(self) -> dict[int, int]:
        """Histogram: number of atoms vs number of movements performed."""
        histogram: dict[int, int] = {}
        for trajectory in self.trajectories.values():
            histogram[trajectory.num_movements] = histogram.get(trajectory.num_movements, 0) + 1
        return dict(sorted(histogram.items()))

    def distance_histogram(self, bin_size: float = 10.0) -> dict[float, int]:
        """Histogram of per-atom total travel distance (grid units, binned)."""
        histogram: dict[float, int] = {}
        for trajectory in self.trajectories.values():
            bucket = round(trajectory.total_distance / bin_size) * bin_size
            histogram[bucket] = histogram.get(bucket, 0) + 1
        return dict(sorted(histogram.items()))

    def speed_histogram(self, bin_size_m_per_s: float = 0.01) -> dict[float, int]:
        """Histogram of per-atom average speeds (m/s, binned)."""
        histogram: dict[float, int] = {}
        for trajectory in self.trajectories.values():
            speed = trajectory.average_speed_m_per_s(
                self.site_spacing_um, self.typical_step_duration_us
            )
            if speed <= 0:
                continue
            bucket = round(speed / bin_size_m_per_s) * bin_size_m_per_s
            histogram[bucket] = histogram.get(bucket, 0) + 1
        return dict(sorted(histogram.items()))

    def mean_speed_m_per_s(self) -> float:
        speeds = [
            t.average_speed_m_per_s(self.site_spacing_um, self.typical_step_duration_us)
            for t in self.trajectories.values()
            if t.num_movements > 0
        ]
        return sum(speeds) / len(speeds) if speeds else 0.0

    def summary(self) -> dict:
        return {
            "schedule": self.schedule_name,
            "movement_steps": len(self.step_max_distances),
            "atoms_tracked": len(self.trajectories),
            "total_max_distance": round(sum(self.step_max_distances), 2),
            "mean_speed_m_per_s": round(self.mean_speed_m_per_s(), 4),
        }


def movement_report(schedule: FPQASchedule) -> MovementReport:
    """Extract the Fig. 9 movement series from a compiled schedule."""
    trajectories: dict[int, AtomTrajectory] = {}
    step_max: list[float] = []
    step_index = 0
    for stage in schedule.stages:
        if not isinstance(stage, MovementStage):
            continue
        step_max.append(stage.step.max_distance)
        for move in stage.step.moves:
            trajectory = trajectories.setdefault(move.ancilla, AtomTrajectory(ancilla=move.ancilla))
            trajectory.segments.append((step_index, move.from_pos, move.to_pos))
        step_index += 1
    config = schedule.config
    # one movement step's duration at the typical displacement of one site
    typical_duration = config.t0_us + config.site_spacing_um / config.move_speed_um_per_s * 1e6
    return MovementReport(
        schedule_name=schedule.name,
        step_max_distances=step_max,
        trajectories=trajectories,
        site_spacing_um=config.site_spacing_um,
        typical_step_duration_us=typical_duration,
    )

"""Post-compilation analysis: fidelity curves, parallelism, movement, timelines."""

from repro.analysis.fidelity import (
    ErrorCurve,
    default_error_sweep,
    error_curve,
    error_threshold,
    fidelity_report,
)
from repro.analysis.movement_stats import AtomTrajectory, MovementReport, movement_report
from repro.analysis.parallelism import (
    ParallelismProfile,
    compare_parallelism,
    parallelism_profile,
    stage_sizes,
)
from repro.analysis.timeline import (
    ExecutionTimeline,
    TimelineSegment,
    compare_timelines,
    execution_timeline,
)

__all__ = [
    "ErrorCurve",
    "error_curve",
    "error_threshold",
    "default_error_sweep",
    "fidelity_report",
    "ParallelismProfile",
    "parallelism_profile",
    "stage_sizes",
    "compare_parallelism",
    "MovementReport",
    "AtomTrajectory",
    "movement_report",
    "ExecutionTimeline",
    "TimelineSegment",
    "execution_timeline",
    "compare_timelines",
]

"""Exception hierarchy for the Q-Pilot reproduction library.

All library-specific errors derive from :class:`QPilotError` so that callers
can catch a single base class when they want to distinguish library failures
from programming errors.
"""

from __future__ import annotations


class QPilotError(Exception):
    """Base class for every error raised by this library."""


class CircuitError(QPilotError):
    """Raised for malformed circuits or invalid gate constructions."""


class DecompositionError(CircuitError):
    """Raised when a gate cannot be decomposed into the requested basis."""


class HardwareError(QPilotError):
    """Raised for invalid hardware configurations (devices, FPQA arrays)."""


class RoutingError(QPilotError):
    """Raised when a router cannot produce a legal schedule."""


class ScheduleError(QPilotError):
    """Raised for inconsistent or illegal FPQA schedules."""


class WorkloadError(QPilotError):
    """Raised for invalid benchmark workload specifications."""


class SolverTimeoutError(QPilotError):
    """Raised (or recorded) when the exact solver baseline exceeds its budget."""


class VerificationError(QPilotError):
    """Raised when a compiled schedule fails semantic verification."""


class CompileError(QPilotError):
    """A compile request ultimately failed after the farm's retry budget.

    Carries the typed cause so every coalesced waiter on a failed ticket
    sees *what* failed (original exception type, traceback, attempts),
    not just a flattened message.
    """

    def __init__(
        self,
        message: str,
        *,
        error_type: str | None = None,
        traceback: str | None = None,
        digest: str | None = None,
        attempts: int | None = None,
    ):
        super().__init__(message)
        self.error_type = error_type
        self.traceback = traceback
        self.digest = digest
        self.attempts = attempts

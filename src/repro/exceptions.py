"""Exception hierarchy for the Q-Pilot reproduction library.

All library-specific errors derive from :class:`QPilotError` so that callers
can catch a single base class when they want to distinguish library failures
from programming errors.
"""

from __future__ import annotations


class QPilotError(Exception):
    """Base class for every error raised by this library."""


class CircuitError(QPilotError):
    """Raised for malformed circuits or invalid gate constructions.

    Errors raised while parsing OpenQASM text additionally carry the
    1-based ``line`` and ``column`` of the offending token so callers
    (and the service's rejection responses) can point at the exact
    source location; both are ``None`` for errors without one.
    """

    def __init__(self, message: str, *, line: int | None = None, column: int | None = None):
        super().__init__(message)
        self.line = line
        self.column = column


class DecompositionError(CircuitError):
    """Raised when a gate cannot be decomposed into the requested basis."""


class HardwareError(QPilotError):
    """Raised for invalid hardware configurations (devices, FPQA arrays)."""


class RoutingError(QPilotError):
    """Raised when a router cannot produce a legal schedule."""


class ScheduleError(QPilotError):
    """Raised for inconsistent or illegal FPQA schedules."""


class WorkloadError(QPilotError):
    """Raised for invalid benchmark workload specifications."""


class SolverTimeoutError(QPilotError):
    """Raised (or recorded) when the exact solver baseline exceeds its budget."""


class VerificationError(QPilotError):
    """Raised when a compiled schedule fails semantic verification."""


class AdmissionError(QPilotError):
    """A request was refused at the service's front door.

    Raised by :meth:`repro.service.queue.JobQueue.submit` when admitting
    the request would breach the queue's :class:`QueuePolicy` — the queue
    is at ``max_depth``, the client is at ``max_pending_per_client``, or
    the request names an unknown priority lane.  Admission control is
    what keeps the queue bounded: overload turns into fast typed
    rejections instead of unbounded memory growth.  Carries the
    ``client_id``, ``lane`` and a machine-readable ``reason``
    (``"queue-full"`` / ``"client-quota"`` / ``"unknown-lane"``).
    """

    def __init__(
        self,
        message: str,
        *,
        client_id: str | None = None,
        lane: str | None = None,
        reason: str | None = None,
    ):
        super().__init__(message)
        self.client_id = client_id
        self.lane = lane
        self.reason = reason


class LoadShedError(AdmissionError):
    """An admitted request was dropped by load shedding.

    When queue depth crosses the policy's ``shed_high_water`` mark the
    service drops the lowest-priority, most recently queued work first;
    every coalesced waiter on a shed ticket observes this error.
    """


class DeadlineExceeded(QPilotError):
    """A request's end-to-end deadline expired before it completed.

    Raised to every coalesced waiter of a ticket whose ``deadline_s``
    budget ran out — in the queue (fail fast, never dispatched) or in
    the farm (the remaining budget is the job's per-job timeout).
    """

    def __init__(self, message: str, *, digest: str | None = None):
        super().__init__(message)
        self.digest = digest


class CircuitOpenError(QPilotError):
    """The farm circuit breaker is open; a cold key was rejected.

    While the breaker is open the service still serves warm keys from
    the store but refuses to dispatch new compiles — failing fast beats
    queueing work behind a farm that is currently failing everything.
    """

    def __init__(self, message: str, *, digest: str | None = None):
        super().__init__(message)
        self.digest = digest


class InvalidCircuitError(QPilotError):
    """An untrusted circuit was rejected at the service's ingestion boundary.

    Raised by :meth:`repro.service.CompileService.submit_qasm` (and the
    ``--qasm`` CLI path) when user-supplied OpenQASM fails validation —
    unparsable text, out-of-range or duplicate operands, conflicting or
    missing ``qreg``, or a breach of the :class:`repro.circuit.CircuitLimits`
    resource guard.  The underlying :class:`CircuitError` is chained as
    ``__cause__``; ``line`` / ``column`` locate the offending token when
    known.  Rejections are counted in ``ServiceStats.rejected_invalid``
    and never reach the farm or the dead-letter list.
    """

    def __init__(self, message: str, *, line: int | None = None, column: int | None = None):
        super().__init__(message)
        self.line = line
        self.column = column


class CompileError(QPilotError):
    """A compile request ultimately failed after the farm's retry budget.

    Carries the typed cause so every coalesced waiter on a failed ticket
    sees *what* failed (original exception type, traceback, attempts),
    not just a flattened message.
    """

    def __init__(
        self,
        message: str,
        *,
        error_type: str | None = None,
        traceback: str | None = None,
        digest: str | None = None,
        attempts: int | None = None,
    ):
        super().__init__(message)
        self.error_type = error_type
        self.traceback = traceback
        self.digest = digest
        self.attempts = attempts

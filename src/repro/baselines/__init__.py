"""Baseline compilers: SABRE routing on fixed devices and solver stand-ins."""

from repro.baselines.layout import Layout, degree_aware_layout, random_layout, trivial_layout
from repro.baselines.sabre import (
    RoutedCircuit,
    SabreOptions,
    SabreRouter,
    verify_routed_circuit,
)
from repro.baselines.scheduling import BaselineSchedule, ScheduledLayer, asap_schedule
from repro.baselines.solver import (
    ExactStageSolver,
    IterativePeelingSolver,
    SolverResult,
    lower_bound_depth,
)
from repro.baselines.transpiler import (
    BaselineResult,
    BaselineTranspiler,
    best_baseline,
    compile_on_all_baselines,
)

__all__ = [
    "Layout",
    "trivial_layout",
    "random_layout",
    "degree_aware_layout",
    "SabreRouter",
    "SabreOptions",
    "RoutedCircuit",
    "verify_routed_circuit",
    "asap_schedule",
    "BaselineSchedule",
    "ScheduledLayer",
    "BaselineTranspiler",
    "BaselineResult",
    "compile_on_all_baselines",
    "best_baseline",
    "ExactStageSolver",
    "IterativePeelingSolver",
    "SolverResult",
    "lower_bound_depth",
]

"""End-to-end baseline transpiler for fixed-coupling devices.

This plays the role of "Qiskit's transpiler at optimisation level 3" in the
paper's evaluation: decompose to the device's native 2-qubit basis, find a
SABRE initial layout, SWAP-route, and ASAP-schedule.  The result exposes
the two metrics the paper reports for every baseline device: compiled
2-qubit gate count and compiled circuit depth (parallel 2-Q gate layers).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.sabre import RoutedCircuit, SabreOptions, SabreRouter
from repro.baselines.scheduling import BaselineSchedule, asap_schedule
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.decompose import decompose_to_cx
from repro.exceptions import RoutingError
from repro.hardware.coupling import CouplingGraph
from repro.hardware.devices import device_catalogue


@dataclass
class BaselineResult:
    """Compilation result for one circuit on one baseline device."""

    device_name: str
    circuit_name: str
    num_qubits: int
    num_two_qubit_gates: int
    two_qubit_depth: int
    num_one_qubit_gates: int
    num_swaps: int
    compile_time_s: float
    routed: RoutedCircuit | None = None
    schedule: BaselineSchedule | None = None
    metadata: dict = field(default_factory=dict)

    def summary(self) -> dict:
        """Plain-dict summary used by the benchmark harness."""
        return {
            "device": self.device_name,
            "circuit": self.circuit_name,
            "qubits": self.num_qubits,
            "2q_gates": self.num_two_qubit_gates,
            "depth": self.two_qubit_depth,
            "1q_gates": self.num_one_qubit_gates,
            "swaps": self.num_swaps,
            "compile_time_s": round(self.compile_time_s, 4),
        }


class BaselineTranspiler:
    """Decompose + layout + SABRE-route + schedule, for one device."""

    def __init__(self, device: CouplingGraph, options: SabreOptions | None = None):
        self.device = device
        self.options = options or SabreOptions()

    def compile(self, circuit: QuantumCircuit, *, keep_artifacts: bool = False) -> BaselineResult:
        """Compile a circuit onto the device and measure depth / gate count.

        Parameters
        ----------
        circuit:
            Logical circuit in any supported gate set.
        keep_artifacts:
            If True, the routed circuit and the ASAP schedule are attached
            to the result (costs memory for large circuits).
        """
        if circuit.num_qubits > self.device.num_qubits:
            raise RoutingError(
                f"circuit {circuit.name} needs {circuit.num_qubits} qubits; "
                f"device {self.device.name} has {self.device.num_qubits}"
            )
        start = time.perf_counter()
        native = decompose_to_cx(circuit)
        router = SabreRouter(self.device, self.options)
        routed = router.run(native)
        schedule = asap_schedule(routed.circuit)
        elapsed = time.perf_counter() - start
        result = BaselineResult(
            device_name=self.device.name,
            circuit_name=circuit.name,
            num_qubits=circuit.num_qubits,
            num_two_qubit_gates=routed.circuit.num_two_qubit_gates(),
            two_qubit_depth=schedule.two_qubit_depth,
            num_one_qubit_gates=routed.circuit.num_one_qubit_gates(),
            num_swaps=routed.num_swaps,
            compile_time_s=elapsed,
        )
        if keep_artifacts:
            result.routed = routed
            result.schedule = schedule
        return result


def compile_on_all_baselines(
    circuit: QuantumCircuit,
    devices: dict[str, CouplingGraph] | None = None,
    options: SabreOptions | None = None,
) -> dict[str, BaselineResult]:
    """Compile one circuit on every baseline device that can hold it."""
    devices = devices or device_catalogue()
    results: dict[str, BaselineResult] = {}
    for name, device in devices.items():
        if circuit.num_qubits > device.num_qubits:
            continue
        transpiler = BaselineTranspiler(device, options)
        results[name] = transpiler.compile(circuit)
    return results


def best_baseline(results: dict[str, BaselineResult], metric: str = "two_qubit_depth") -> BaselineResult:
    """The best-performing baseline under the requested metric (lower is better)."""
    if not results:
        raise RoutingError("no baseline results to compare")
    if metric == "two_qubit_depth":
        return min(results.values(), key=lambda r: r.two_qubit_depth)
    if metric == "num_two_qubit_gates":
        return min(results.values(), key=lambda r: r.num_two_qubit_gates)
    raise RoutingError(f"unknown comparison metric {metric!r}")

"""ASAP scheduling of routed circuits into parallel gate layers.

The paper's depth metric is "the number of parallel 2-Q gate layers".  For
the baseline devices this is obtained by packing the routed circuit's gates
as soon as possible subject to qubit dependencies, then counting the layers
that contain at least one 2-qubit gate.  This module also produces a timing
estimate so the baselines can be compared on wall-clock execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate


@dataclass
class ScheduledLayer:
    """One ASAP layer: gates that execute simultaneously."""

    index: int
    gates: list[Gate] = field(default_factory=list)

    @property
    def num_two_qubit(self) -> int:
        return sum(1 for g in self.gates if g.is_two_qubit)

    @property
    def num_one_qubit(self) -> int:
        return sum(1 for g in self.gates if g.is_one_qubit and not g.is_directive)


@dataclass
class BaselineSchedule:
    """ASAP layering of a routed circuit, with summary metrics."""

    layers: list[ScheduledLayer]
    num_qubits: int

    @property
    def depth(self) -> int:
        """Total number of layers (1-qubit layers included)."""
        return len(self.layers)

    @property
    def two_qubit_depth(self) -> int:
        """Number of layers containing at least one 2-qubit gate."""
        return sum(1 for layer in self.layers if layer.num_two_qubit > 0)

    @property
    def num_two_qubit_gates(self) -> int:
        return sum(layer.num_two_qubit for layer in self.layers)

    @property
    def num_one_qubit_gates(self) -> int:
        return sum(layer.num_one_qubit for layer in self.layers)

    def parallelism_histogram(self) -> dict[int, int]:
        """Histogram of 2-qubit gates per 2-qubit layer."""
        histogram: dict[int, int] = {}
        for layer in self.layers:
            if layer.num_two_qubit > 0:
                histogram[layer.num_two_qubit] = histogram.get(layer.num_two_qubit, 0) + 1
        return dict(sorted(histogram.items()))

    def execution_time_us(self, one_qubit_time_us: float = 0.5, two_qubit_time_us: float = 0.27) -> float:
        """Rough execution time: each layer costs its slowest gate."""
        total = 0.0
        for layer in self.layers:
            if layer.num_two_qubit > 0:
                total += two_qubit_time_us
            elif layer.num_one_qubit > 0:
                total += one_qubit_time_us
        return total


def asap_schedule(circuit: QuantumCircuit) -> BaselineSchedule:
    """Pack a circuit's gates into ASAP layers (dependencies only)."""
    level: dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    layers: list[ScheduledLayer] = []
    for gate in circuit.gates:
        if gate.is_barrier:
            barrier_level = max((level[q] for q in gate.qubits), default=0)
            for q in gate.qubits:
                level[q] = barrier_level
            continue
        if gate.is_directive:
            continue
        new_level = max(level[q] for q in gate.qubits) + 1
        for q in gate.qubits:
            level[q] = new_level
        while len(layers) < new_level:
            layers.append(ScheduledLayer(index=len(layers)))
        layers[new_level - 1].gates.append(gate)
    return BaselineSchedule(layers=layers, num_qubits=circuit.num_qubits)

"""SABRE-style SWAP routing for fixed-coupling devices.

This is the baseline "Qiskit transpiler" stand-in: a faithful
re-implementation of the SABRE heuristic (Li, Ding, Xie — ASPLOS'19), which
is the algorithm behind Qiskit's default routing pass at optimisation
level 3.  Given a circuit in a {CX/CZ + 1Q} basis, an initial layout and a
coupling graph, it inserts SWAPs so that every 2-qubit gate acts on
adjacent physical qubits, while minimising a look-ahead distance cost.

The router also implements SABRE's reverse-traversal trick for improving
the initial layout: route the circuit forward, then backward, reusing the
final layout of each pass as the initial layout of the next.

The swap search is array-native: a routing pass keeps the
logical→physical mapping as a pair of int arrays and scores every SWAP
candidate of a step in one batched NumPy evaluation — a
(num_candidates × num_pairs) gather from the cached distance matrix with
decay and extended-set weight applied as vector ops
(:func:`score_swaps`).  The seed's scalar scorer survives verbatim as
:func:`reference_score_swaps`, the oracle for the differential suite:
both scorers produce bit-identical scores, so a router running with
``SabreOptions(scorer="reference")`` chooses the same swap at every step
and emits gate-identical routed circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import DependencyDAG
from repro.circuit.gate import Gate
from repro.exceptions import RoutingError
from repro.baselines.layout import Layout, degree_aware_layout, trivial_layout
from repro.hardware.coupling import CouplingGraph
from repro.utils.rng import ensure_rng


@dataclass
class SabreOptions:
    """Tuning knobs of the SABRE heuristic."""

    extended_set_size: int = 20
    extended_set_weight: float = 0.5
    decay_increment: float = 0.001
    decay_reset_interval: int = 5
    seed: int | None = 11
    max_iterations_factor: int = 200
    layout_trials: int = 2
    #: "vectorized" (batched NumPy scorer) or "reference" (the seed's scalar
    #: per-candidate scorer) — both choose identical swaps; the reference
    #: exists as the oracle for the differential tests.
    scorer: str = "vectorized"


@dataclass
class RoutedCircuit:
    """Result of SWAP routing a circuit onto a device."""

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int
    device_name: str
    metadata: dict = field(default_factory=dict)

    @property
    def num_two_qubit_gates(self) -> int:
        """2-qubit gate count of the routed circuit (SWAPs already decomposed)."""
        return self.circuit.num_two_qubit_gates()

    @property
    def two_qubit_depth(self) -> int:
        """Parallel 2-qubit layer count of the routed circuit."""
        return self.circuit.two_qubit_depth()


class SabreRouter:
    """SWAP router with the SABRE look-ahead heuristic."""

    def __init__(self, device: CouplingGraph, options: SabreOptions | None = None):
        self.device = device
        self.options = options or SabreOptions()
        if self.options.scorer not in ("vectorized", "reference"):
            raise RoutingError(
                f"unknown SABRE scorer {self.options.scorer!r}; "
                "expected 'vectorized' or 'reference'"
            )
        # All-pairs BFS distances, shared by every routing pass (the layout
        # search alone runs 3 passes per trial).  CouplingGraph memoizes the
        # matrix too; holding it here additionally pins the array for the
        # router's lifetime and keeps _route_pass free of the lookup.
        self._distance_matrix = device.distance_matrix()
        # Per-physical-qubit candidate swaps in canonical (min, max) form, so
        # candidate generation is pure set union with no per-step min/max.
        self._swap_tuples: list[list[tuple[int, int]]] = [
            [(p, n) if p < n else (n, p) for n in sorted(device.neighbors(p))]
            for p in range(device.num_qubits)
        ]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        initial_layout: Layout | None = None,
        *,
        decompose_swaps: bool = True,
    ) -> RoutedCircuit:
        """Route a circuit, returning the SWAP-inserted physical circuit.

        The output circuit acts on *physical* qubit indices.  Inserted
        SWAPs are decomposed into 3 CX each when ``decompose_swaps`` is
        True (the paper counts native 2-qubit gates).
        """
        if circuit.num_qubits > self.device.num_qubits:
            raise RoutingError(
                f"circuit needs {circuit.num_qubits} qubits, device has {self.device.num_qubits}"
            )
        layout = initial_layout.copy() if initial_layout else self._default_layout(circuit)
        gates, final_layout, num_swaps = self._route_pass(circuit, layout.copy())
        physical = QuantumCircuit(self.device.num_qubits, name=f"{circuit.name}@{self.device.name}")
        for gate in gates:
            if gate.name == "swap" and decompose_swaps:
                a, b = gate.qubits
                physical.cx(a, b)
                physical.cx(b, a)
                physical.cx(a, b)
            else:
                physical.append(gate)
        return RoutedCircuit(
            circuit=physical,
            initial_layout=layout,
            final_layout=final_layout,
            num_swaps=num_swaps,
            device_name=self.device.name,
        )

    def find_initial_layout(self, circuit: QuantumCircuit) -> Layout:
        """SABRE layout: refine a seed layout by forward/backward routing passes."""
        rng = ensure_rng(self.options.seed)
        best_layout: Layout | None = None
        best_cost = np.inf
        seeds = [degree_aware_layout(circuit, self.device), trivial_layout(circuit, self.device)]
        while len(seeds) < max(1, self.options.layout_trials):
            chosen = rng.choice(self.device.num_qubits, size=circuit.num_qubits, replace=False)
            seeds.append(Layout.from_permutation([int(p) for p in chosen]))
        reversed_circuit = _reverse_two_qubit_structure(circuit)
        for seed_layout in seeds[: self.options.layout_trials]:
            layout = seed_layout.copy()
            # forward pass then backward pass, keeping the final layout each time
            _, layout_after_fwd, _ = self._route_pass(circuit, layout.copy())
            _, layout_after_bwd, _ = self._route_pass(reversed_circuit, layout_after_fwd.copy())
            _, final_layout, swaps = self._route_pass(circuit, layout_after_bwd.copy())
            if swaps < best_cost:
                best_cost = swaps
                best_layout = layout_after_bwd
        assert best_layout is not None
        return best_layout

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _default_layout(self, circuit: QuantumCircuit) -> Layout:
        if circuit.num_two_qubit_gates() == 0:
            return trivial_layout(circuit, self.device)
        return self.find_initial_layout(circuit)

    def _route_pass(
        self, circuit: QuantumCircuit, layout: Layout
    ) -> tuple[list[Gate], Layout, int]:
        """Single SABRE routing pass.  Returns (physical gates, final layout, #swaps).

        The layout is held as two int arrays for the duration of the pass —
        ``phys_of`` (logical → physical) and ``log_at`` (physical → logical,
        -1 for empty traps) — so the scorer can gather distances for every
        candidate swap in one vectorised pass instead of copying a
        ``Layout`` per candidate.
        """
        dag = DependencyDAG(circuit)
        dist = self._distance_matrix
        decay = np.ones(self.device.num_qubits)
        options = self.options
        rng = ensure_rng(options.seed)

        mapping_dict = layout.as_dict()
        phys_of = np.full(max(mapping_dict, default=-1) + 1, -1, dtype=np.intp)
        log_at = np.full(self.device.num_qubits, -1, dtype=np.intp)
        for logical, phys in mapping_dict.items():
            phys_of[logical] = phys
            log_at[phys] = logical
        used_logicals = {q for gate in circuit.gates for q in gate.qubits}
        unmapped = [q for q in used_logicals if q >= len(phys_of) or phys_of[q] < 0]
        if unmapped:
            raise RoutingError(f"layout does not map circuit qubits {sorted(unmapped)}")

        out_gates: list[Gate] = []
        num_swaps = 0
        steps_since_progress = 0
        max_steps = options.max_iterations_factor * max(1, circuit.num_qubits) + 10 * len(circuit)

        iteration = 0
        while not dag.is_done():
            iteration += 1
            if iteration > max_steps + 10 * len(circuit):
                raise RoutingError("SABRE routing failed to converge (internal error)")
            front = dag.front_layer()
            executable: list[int] = []
            blocked_two_qubit: list[int] = []
            for index in front:
                gate = dag.gate(index)
                if gate.num_qubits == 1 or gate.is_directive:
                    executable.append(index)
                elif gate.num_qubits == 2:
                    a, b = gate.qubits
                    # distance 1 in the cached all-pairs matrix == coupled
                    if dist[phys_of[a], phys_of[b]] == 1:
                        executable.append(index)
                    else:
                        blocked_two_qubit.append(index)
                else:
                    raise RoutingError(
                        f"gate {gate.name} has {gate.num_qubits} qubits; decompose before routing"
                    )
            if executable:
                for index in executable:
                    gate = dag.gate(index)
                    mapping = {q: int(phys_of[q]) for q in gate.qubits}
                    out_gates.append(gate.remap(mapping))
                    dag.execute(index)
                decay[:] = 1.0
                steps_since_progress = 0
                continue

            if not blocked_two_qubit:
                raise RoutingError("front layer is empty but the DAG is not done")

            steps_since_progress += 1
            if steps_since_progress % options.decay_reset_interval == 0:
                decay[:] = 1.0

            swap_candidates = self._swap_candidates(blocked_two_qubit, dag, phys_of)
            if not swap_candidates:
                raise RoutingError("no SWAP candidates available; device may be disconnected")
            extended = dag.lookahead(options.extended_set_size)
            # blocked gates are 2-qubit by construction
            front_pairs = [dag.gate(i).qubits for i in blocked_two_qubit]
            extended_pairs = [g.qubits for g in map(dag.gate, extended) if g.num_qubits == 2]
            if options.scorer == "reference":
                scores = reference_score_swaps(
                    swap_candidates,
                    front_pairs,
                    extended_pairs,
                    Layout({q: int(p) for q, p in enumerate(phys_of) if p >= 0}),
                    dist,
                    decay,
                    options.extended_set_weight,
                )
            else:
                scores = score_swaps(
                    swap_candidates,
                    front_pairs,
                    extended_pairs,
                    phys_of,
                    dist,
                    decay,
                    options.extended_set_weight,
                )
            phys_a, phys_b = swap_candidates[select_min_score(scores, rng)]
            out_gates.append(Gate("swap", (phys_a, phys_b)))
            log_a, log_b = log_at[phys_a], log_at[phys_b]
            log_at[phys_a], log_at[phys_b] = log_b, log_a
            if log_a >= 0:
                phys_of[log_a] = phys_b
            if log_b >= 0:
                phys_of[log_b] = phys_a
            num_swaps += 1
            decay[phys_a] += options.decay_increment
            decay[phys_b] += options.decay_increment
            if steps_since_progress > max_steps:
                raise RoutingError(
                    "SABRE made no progress for too long; the device graph may be disconnected"
                )
        final_layout = Layout({q: int(p) for q, p in enumerate(phys_of) if p >= 0})
        return out_gates, final_layout, num_swaps

    def _swap_candidates(
        self, blocked: list[int], dag: DependencyDAG, phys_of: np.ndarray
    ) -> list[tuple[int, int]]:
        """SWAPs adjacent to any qubit involved in a blocked front gate."""
        candidates: set[tuple[int, int]] = set()
        for index in blocked:
            gate = dag.gate(index)
            for logical in gate.qubits:
                candidates.update(self._swap_tuples[phys_of[logical]])
        return sorted(candidates)


def score_swaps(
    candidates: Sequence[tuple[int, int]],
    front_pairs: Sequence[tuple[int, int]],
    extended_pairs: Sequence[tuple[int, int]],
    phys_of: np.ndarray,
    dist: np.ndarray,
    decay: np.ndarray,
    extended_set_weight: float,
) -> np.ndarray:
    """Batched SABRE look-ahead cost of every candidate swap.

    One (num_candidates × num_pairs) gather from the distance matrix per
    pair set: a candidate swap (u, v) only relocates the logical qubits on
    u and v, so the post-swap physical position of a pair endpoint is its
    current position with u and v exchanged — a pure ``np.where`` rewrite,
    no mapping copies.  Scores are bit-identical to
    :func:`reference_score_swaps`: distance sums are exact integers and the
    per-candidate float expression applies the same operations in the same
    order.
    """
    if not len(candidates):
        return np.empty(0)
    cand = np.asarray(candidates, dtype=np.intp)
    swap_u = cand[:, 0:1]
    swap_v = cand[:, 1:2]
    num_front = len(front_pairs)
    num_ext = len(extended_pairs)

    # One flat endpoint vector for both pair sets: post-swap positions are
    # the current positions with u and v exchanged per candidate row.
    ends = phys_of[np.asarray(list(front_pairs) + list(extended_pairs), dtype=np.intp)]
    ends = ends.reshape(1, -1)
    swapped = np.where(ends == swap_u, swap_v, np.where(ends == swap_v, swap_u, ends))
    pair_dist = dist[swapped[:, 0::2], swapped[:, 1::2]]

    front_cost = pair_dist[:, :num_front].sum(axis=1, dtype=np.int64) / max(1, num_front)
    if num_ext:
        ext_cost = pair_dist[:, num_front:].sum(axis=1, dtype=np.int64) / num_ext
    else:
        ext_cost = 0.0
    decay_factor = np.maximum(decay[cand[:, 0]], decay[cand[:, 1]])
    return decay_factor * (front_cost + extended_set_weight * ext_cost)


def reference_score_swaps(
    candidates: Sequence[tuple[int, int]],
    front_pairs: Sequence[tuple[int, int]],
    extended_pairs: Sequence[tuple[int, int]],
    layout: Layout,
    dist: np.ndarray,
    decay: np.ndarray,
    extended_set_weight: float,
) -> list[float]:
    """The seed's scalar SABRE scorer (per-candidate layout copy + Python sums).

    Kept verbatim as the oracle for :func:`score_swaps`'s differential
    tests; a router constructed with ``SabreOptions(scorer="reference")``
    routes entire circuits through it.
    """
    scores: list[float] = []
    for phys_a, phys_b in candidates:
        trial = layout.copy()
        trial.swap_physical(phys_a, phys_b)
        front_cost = sum(
            dist[trial.physical(a), trial.physical(b)] for a, b in front_pairs
        )
        front_cost /= max(1, len(front_pairs))
        if extended_pairs:
            ext_cost = sum(
                dist[trial.physical(a), trial.physical(b)] for a, b in extended_pairs
            ) / len(extended_pairs)
        else:
            ext_cost = 0.0
        scores.append(
            max(decay[phys_a], decay[phys_b]) * (front_cost + extended_set_weight * ext_cost)
        )
    return scores


def select_min_score(scores: Sequence[float] | np.ndarray, rng: np.random.Generator) -> int:
    """Index of the minimum score, ties broken uniformly with the pass RNG.

    Reproduces the seed's sequential scan exactly — including its tolerance
    semantics and its single ``rng.integers`` draw per step — so both
    scorers consume identical randomness and pick identical swaps.
    """
    if isinstance(scores, np.ndarray):
        scores = scores.tolist()  # exact float64 -> float; plain-float compares
    best_score = np.inf
    best: list[int] = []
    for index, score in enumerate(scores):
        if score < best_score - 1e-12:
            best_score = score
            best = [index]
        elif abs(score - best_score) <= 1e-12:
            best.append(index)
    return best[int(rng.integers(len(best)))]


def _reverse_two_qubit_structure(circuit: QuantumCircuit) -> QuantumCircuit:
    """Reverse the gate order (used by SABRE's backward layout pass)."""
    reversed_circuit = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_rev")
    for gate in reversed(circuit.gates):
        if gate.is_directive:
            continue
        reversed_circuit.append(gate)
    return reversed_circuit


def verify_routed_circuit(
    original: QuantumCircuit, routed: RoutedCircuit, device: CouplingGraph
) -> bool:
    """Sanity checks on a routed circuit.

    * Every 2-qubit gate in the routed circuit acts on coupled physical qubits.
    * The number of non-SWAP 2-qubit gates matches the original circuit.
    """
    original_2q = original.num_two_qubit_gates()
    routed_2q = 0
    for gate in routed.circuit.gates:
        if gate.is_two_qubit:
            a, b = gate.qubits
            if not device.are_adjacent(a, b):
                return False
            routed_2q += 1
    expected = original_2q + 3 * routed.num_swaps
    return routed_2q == expected

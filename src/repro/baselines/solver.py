"""Solver-based FPQA compiler baselines (Table 2 stand-ins).

The paper compares Q-Pilot against two solver-based FPQA compilers:

* the SMT-solver compiler of Tan et al. [61] ("solver"), which finds
  depth-optimal schedules but scales exponentially, and
* its iterative-peeling relaxation [62] ("iter-p"), which trades optimality
  for runtime but still struggles beyond ~50 qubits.

Neither SMT engine is available offline, so this module implements
behaviour-preserving stand-ins operating on the same abstraction those
compilers optimise for QAOA workloads: partition the interaction graph's
edges into the minimum number of parallel Rydberg stages.  Because the
solver-based compilers move *data* atoms with full AOD flexibility, a stage
may contain any set of vertex-disjoint edges (a matching); the optimum
stage count is therefore the chromatic index of the graph.

* :class:`ExactStageSolver` finds the true minimum by branch-and-bound
  (exponential, honours a wall-clock timeout) — the "solver" row.
* :class:`IterativePeelingSolver` repeatedly peels a maximum matching
  (polynomial via networkx, near-optimal depth) — the "iter-p" row.

Both report runtime and depth so the Table 2 comparison (optimal-ish depth,
exploding runtime vs. Q-Pilot's sub-second heuristic) can be regenerated.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

import networkx as nx

from repro.circuit.qaoa import normalise_edges
from repro.exceptions import SolverTimeoutError, WorkloadError


@dataclass
class SolverResult:
    """Outcome of a solver-based compilation."""

    method: str
    num_qubits: int
    num_edges: int
    depth: int | None
    runtime_s: float
    timed_out: bool
    stages: list[list[tuple[int, int]]] = field(default_factory=list)

    def summary(self) -> dict:
        return {
            "method": self.method,
            "qubits": self.num_qubits,
            "edges": self.num_edges,
            "depth": self.depth if self.depth is not None else "timeout",
            "runtime_s": round(self.runtime_s, 4) if not self.timed_out else "timeout",
        }


def _validate(num_qubits: int, edges: list[tuple[int, int]]) -> list[tuple[int, int]]:
    edges = normalise_edges(edges)
    for a, b in edges:
        if b >= num_qubits:
            raise WorkloadError(f"edge ({a}, {b}) exceeds {num_qubits} qubits")
    return edges


def _stages_are_matchings(stages: list[list[tuple[int, int]]]) -> bool:
    for stage in stages:
        seen: set[int] = set()
        for a, b in stage:
            if a in seen or b in seen:
                return False
            seen.add(a)
            seen.add(b)
    return True


class ExactStageSolver:
    """Branch-and-bound minimum stage partition (edge chromatic number).

    This mirrors the optimal solver's behaviour: provably minimal depth on
    small instances and exponential runtime, controlled by ``timeout_s``.
    """

    def __init__(self, timeout_s: float = 60.0):
        self.timeout_s = float(timeout_s)

    def compile(self, num_qubits: int, edges: list[tuple[int, int]]) -> SolverResult:
        """Find the minimum number of parallel stages covering every edge."""
        edges = _validate(num_qubits, edges)
        start = time.perf_counter()
        if not edges:
            return SolverResult("solver", num_qubits, 0, 0, 0.0, False, [])
        max_degree = max(self._degrees(num_qubits, edges).values())
        deadline = start + self.timeout_s
        # Vizing: chromatic index is max_degree or max_degree + 1.
        for k in (max_degree, max_degree + 1):
            try:
                assignment = self._search(edges, k, deadline)
            except SolverTimeoutError:
                elapsed = time.perf_counter() - start
                return SolverResult("solver", num_qubits, len(edges), None, elapsed, True, [])
            if assignment is not None:
                stages = [[] for _ in range(k)]
                for edge, colour in assignment.items():
                    stages[colour].append(edge)
                stages = [sorted(stage) for stage in stages if stage]
                elapsed = time.perf_counter() - start
                assert _stages_are_matchings(stages)
                return SolverResult(
                    "solver", num_qubits, len(edges), len(stages), elapsed, False, stages
                )
        raise AssertionError("Vizing's theorem guarantees a solution")  # pragma: no cover

    @staticmethod
    def _degrees(num_qubits: int, edges: list[tuple[int, int]]) -> dict[int, int]:
        degrees = {q: 0 for q in range(num_qubits)}
        for a, b in edges:
            degrees[a] += 1
            degrees[b] += 1
        return degrees

    def _search(
        self, edges: list[tuple[int, int]], num_colours: int, deadline: float
    ) -> dict[tuple[int, int], int] | None:
        """Backtracking edge-colouring with ``num_colours`` colours."""
        # order edges by degree of saturation style heuristic: most-constrained first
        adjacency: dict[int, list[tuple[int, int]]] = {}
        for edge in edges:
            for v in edge:
                adjacency.setdefault(v, []).append(edge)
        order = sorted(edges, key=lambda e: -(len(adjacency[e[0]]) + len(adjacency[e[1]])))
        assignment: dict[tuple[int, int], int] = {}
        vertex_colours: dict[int, set[int]] = {v: set() for v in adjacency}
        counter = itertools.count()

        def backtrack(position: int) -> bool:
            if next(counter) % 512 == 0 and time.perf_counter() > deadline:
                raise SolverTimeoutError("exact solver exceeded its time budget")
            if position == len(order):
                return True
            edge = order[position]
            a, b = edge
            # symmetry breaking: limit first edges to their index colour
            max_colour = min(num_colours, position + 1)
            for colour in range(max_colour):
                if colour in vertex_colours[a] or colour in vertex_colours[b]:
                    continue
                assignment[edge] = colour
                vertex_colours[a].add(colour)
                vertex_colours[b].add(colour)
                if backtrack(position + 1):
                    return True
                del assignment[edge]
                vertex_colours[a].remove(colour)
                vertex_colours[b].remove(colour)
            return False

        return dict(assignment) if backtrack(0) else None


class IterativePeelingSolver:
    """Iteratively peel maximum matchings: the relaxed solver baseline."""

    def __init__(self, timeout_s: float = 600.0, *, slowdown_model: float = 0.0):
        self.timeout_s = float(timeout_s)
        # The real iterative solver still solves a small optimisation problem
        # per round.  By default we only charge the genuine matching cost;
        # setting ``slowdown_model`` > 0 additionally models the published
        # per-round solver constant (seconds per edge*qubit remaining).
        self.slowdown_model = slowdown_model

    def compile(self, num_qubits: int, edges: list[tuple[int, int]]) -> SolverResult:
        """Peel maximum matchings until no edges remain."""
        edges = _validate(num_qubits, edges)
        start = time.perf_counter()
        remaining = set(edges)
        stages: list[list[tuple[int, int]]] = []
        while remaining:
            if time.perf_counter() - start > self.timeout_s:
                return SolverResult(
                    "iter-p", num_qubits, len(edges), None, time.perf_counter() - start, True, []
                )
            graph = nx.Graph()
            graph.add_nodes_from(range(num_qubits))
            graph.add_edges_from(remaining)
            matching = nx.max_weight_matching(graph, maxcardinality=True)
            stage = sorted((min(a, b), max(a, b)) for a, b in matching)
            if not stage:
                break
            stages.append(stage)
            remaining.difference_update(stage)
            # model the per-round optimisation cost of the real solver
            _burn_time(self.slowdown_model * len(remaining) * num_qubits)
        elapsed = time.perf_counter() - start
        assert _stages_are_matchings(stages)
        return SolverResult("iter-p", num_qubits, len(edges), len(stages), elapsed, False, stages)


def _burn_time(seconds: float) -> None:
    """Busy-wait used to model the real solver's per-round optimisation cost."""
    if seconds <= 0:
        return
    end = time.perf_counter() + min(seconds, 2.0)
    while time.perf_counter() < end:
        pass


def lower_bound_depth(num_qubits: int, edges: list[tuple[int, int]]) -> int:
    """Max vertex degree: a lower bound on any stage partition's depth."""
    edges = _validate(num_qubits, edges)
    degrees: dict[int, int] = {}
    for a, b in edges:
        degrees[a] = degrees.get(a, 0) + 1
        degrees[b] = degrees.get(b, 0) + 1
    return max(degrees.values(), default=0)

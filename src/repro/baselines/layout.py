"""Initial qubit layout (placement) strategies for fixed-coupling devices.

Before SWAP routing, logical qubits must be assigned to physical qubits.
The strategies here mirror what Qiskit's preset pass managers provide:
trivial layout, a degree-matching greedy layout, and SABRE's
reverse-traversal layout refinement (implemented in
:mod:`repro.baselines.sabre` on top of these seeds).
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import RoutingError
from repro.hardware.coupling import CouplingGraph
from repro.utils.rng import ensure_rng


class Layout:
    """A bijection between logical qubits and a subset of physical qubits."""

    def __init__(self, logical_to_physical: dict[int, int]):
        self._l2p = dict(logical_to_physical)
        self._p2l = {p: l for l, p in self._l2p.items()}
        if len(self._p2l) != len(self._l2p):
            raise RoutingError("layout maps two logical qubits to the same physical qubit")

    @classmethod
    def trivial(cls, num_logical: int) -> "Layout":
        """Identity layout: logical i -> physical i."""
        return cls({i: i for i in range(num_logical)})

    @classmethod
    def from_permutation(cls, physical_qubits: Sequence[int]) -> "Layout":
        """Layout mapping logical i to ``physical_qubits[i]``."""
        return cls({i: int(p) for i, p in enumerate(physical_qubits)})

    # ------------------------------------------------------------------
    def physical(self, logical: int) -> int:
        """Physical qubit hosting a logical qubit."""
        return self._l2p[logical]

    def logical(self, physical: int) -> int | None:
        """Logical qubit hosted on a physical qubit (None if empty)."""
        return self._p2l.get(physical)

    def swap_physical(self, phys_a: int, phys_b: int) -> None:
        """Exchange the logical qubits sitting on two physical qubits."""
        log_a = self._p2l.get(phys_a)
        log_b = self._p2l.get(phys_b)
        if log_a is not None:
            self._l2p[log_a] = phys_b
        if log_b is not None:
            self._l2p[log_b] = phys_a
        if log_a is not None:
            self._p2l[phys_b] = log_a
        elif phys_b in self._p2l:
            del self._p2l[phys_b]
        if log_b is not None:
            self._p2l[phys_a] = log_b
        elif phys_a in self._p2l:
            del self._p2l[phys_a]

    def copy(self) -> "Layout":
        return Layout(self._l2p)

    def as_dict(self) -> dict[int, int]:
        return dict(self._l2p)

    @property
    def num_logical(self) -> int:
        return len(self._l2p)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._l2p == other._l2p

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Layout({self._l2p})"


def trivial_layout(circuit: QuantumCircuit, device: CouplingGraph) -> Layout:
    """Logical qubit i -> physical qubit i."""
    _check_fit(circuit, device)
    return Layout.trivial(circuit.num_qubits)


def random_layout(
    circuit: QuantumCircuit, device: CouplingGraph, seed: int | np.random.Generator | None = None
) -> Layout:
    """A uniformly random placement (useful as a SABRE seed)."""
    _check_fit(circuit, device)
    rng = ensure_rng(seed)
    chosen = rng.choice(device.num_qubits, size=circuit.num_qubits, replace=False)
    return Layout.from_permutation([int(p) for p in chosen])


def degree_aware_layout(circuit: QuantumCircuit, device: CouplingGraph) -> Layout:
    """Greedy placement matching busy logical qubits to well-connected physical qubits.

    Logical qubits are sorted by how many 2-qubit gates touch them; physical
    qubits are visited in a BFS order starting from the highest-degree
    physical qubit so that heavily used logical qubits land in a densely
    connected neighbourhood.
    """
    _check_fit(circuit, device)
    interaction_count = {q: 0 for q in range(circuit.num_qubits)}
    for a, b in circuit.two_qubit_pairs():
        interaction_count[a] += 1
        interaction_count[b] += 1
    logical_order = sorted(interaction_count, key=lambda q: -interaction_count[q])

    start = max(range(device.num_qubits), key=device.degree)
    visited: list[int] = []
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        visited.append(node)
        for nbr in sorted(device.neighbors(node), key=lambda n: -device.degree(n)):
            if nbr not in seen:
                seen.add(nbr)
                queue.append(nbr)
    # append any disconnected leftovers
    for q in range(device.num_qubits):
        if q not in seen:
            visited.append(q)

    mapping = {logical: visited[i] for i, logical in enumerate(logical_order)}
    return Layout(mapping)


def _check_fit(circuit: QuantumCircuit, device: CouplingGraph) -> None:
    if circuit.num_qubits > device.num_qubits:
        raise RoutingError(
            f"circuit needs {circuit.num_qubits} qubits but device "
            f"{device.name} only has {device.num_qubits}"
        )

"""Hardened OpenQASM 2 export / import.

Only the subset of OpenQASM 2.0 needed to round-trip this library's
circuits is supported (one quantum register, the gate names in
:mod:`repro.circuit.gate`).  This exists so users can move compiled
baseline circuits in and out of other toolchains — and, since the
serving stack accepts user uploads, the import path treats its input
as **untrusted**:

- gate parameters are evaluated by a small recursive-descent arithmetic
  parser (numbers, ``pi``, ``+ - * /``, unary minus, parentheses) —
  never ``eval`` — so hostile expressions like ``9**9**9`` or
  ``__import__`` are rejected in microseconds with a typed error;
- operand indices are validated against the declared ``qreg`` size,
  duplicate operands and conflicting / missing ``qreg`` declarations
  are rejected;
- a :class:`CircuitLimits` resource guard bounds text bytes, qubits,
  gate count and expression nesting *before* any gate object is built.

Every rejection raises :class:`repro.exceptions.CircuitError` carrying
the 1-based ``line`` and ``column`` of the offending token.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate, parameter_count
from repro.exceptions import CircuitError

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

_QASM_NAMES = {
    "id": "id",
    "x": "x",
    "y": "y",
    "z": "z",
    "h": "h",
    "s": "s",
    "sdg": "sdg",
    "t": "t",
    "tdg": "tdg",
    "sx": "sx",
    "sxdg": "sxdg",
    "rx": "rx",
    "ry": "ry",
    "rz": "rz",
    "p": "p",
    "u": "u3",
    "u1": "u1",
    "u2": "u2",
    "u3": "u3",
    "cx": "cx",
    "cz": "cz",
    "cy": "cy",
    "ch": "ch",
    "cp": "cp",
    "crx": "crx",
    "cry": "cry",
    "crz": "crz",
    "swap": "swap",
    "iswap": "iswap",
    "rzz": "rzz",
    "rxx": "rxx",
    "ccx": "ccx",
    "ccz": "ccz",
    "cswap": "cswap",
    "measure": "measure",
    "reset": "reset",
    "barrier": "barrier",
}
_REVERSE_NAMES = {v: k for k, v in _QASM_NAMES.items()}
_REVERSE_NAMES["u3"] = "u"


@dataclass(frozen=True)
class CircuitLimits:
    """Resource guard applied to untrusted QASM before any gate is built.

    The defaults comfortably cover every workload this library generates
    while keeping a hostile upload from exhausting memory or CPU: the
    text-byte cap is checked before the parser touches the input, the
    qubit cap at the ``qreg`` declaration, the gate cap as statements
    accumulate, and the parse-depth cap inside the angle-expression
    parser.  Use :meth:`unbounded` to parse trusted, already-validated
    text (e.g. re-building a content-addressed workload in a farm
    worker).
    """

    max_qubits: int = 256
    max_gates: int = 100_000
    max_text_bytes: int = 1_000_000
    max_parse_depth: int = 32

    def __post_init__(self) -> None:
        for field in ("max_qubits", "max_gates", "max_text_bytes", "max_parse_depth"):
            value = getattr(self, field)
            if not isinstance(value, int) or value < 1:
                raise CircuitError(f"CircuitLimits.{field} must be a positive int, got {value!r}")

    @classmethod
    def unbounded(cls) -> "CircuitLimits":
        """Limits large enough to never trigger (for pre-validated text)."""
        big = 2**62
        return cls(max_qubits=big, max_gates=big, max_text_bytes=big, max_parse_depth=10_000)


DEFAULT_LIMITS = CircuitLimits()


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to an OpenQASM 2.0 string."""
    lines = [_HEADER.rstrip("\n")]
    lines.append(f"qreg q[{circuit.num_qubits}];")
    has_measure = any(g.name == "measure" for g in circuit.gates)
    if has_measure:
        lines.append(f"creg c[{circuit.num_qubits}];")
    for gate in circuit.gates:
        qasm_name = _QASM_NAMES.get(gate.name)
        if qasm_name is None:
            raise CircuitError(f"gate {gate.name} has no OpenQASM 2 equivalent")
        operands = ", ".join(f"q[{q}]" for q in gate.qubits)
        if gate.name == "measure":
            q = gate.qubits[0]
            lines.append(f"measure q[{q}] -> c[{q}];")
            continue
        if gate.params:
            params = ", ".join(_format_angle(p) for p in gate.params)
            lines.append(f"{qasm_name}({params}) {operands};")
        else:
            lines.append(f"{qasm_name} {operands};")
    return "\n".join(lines) + "\n"


def _format_angle(value: float) -> str:
    """Render an angle, using pi fractions when exact."""
    for denom in (1, 2, 4, 8):
        for numer_sign in (1, -1):
            target = numer_sign * math.pi / denom
            if abs(value - target) < 1e-12:
                sign = "-" if numer_sign < 0 else ""
                return f"{sign}pi/{denom}" if denom != 1 else f"{sign}pi"
    return repr(float(value))


_NUMBER_RE = re.compile(r"(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][+-]?\d+)?")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")
_INDEXED_OPERAND_RE = re.compile(r"^([A-Za-z_][A-Za-z_0-9]*)\s*\[\s*(\d+)\s*\]$")
_QREG_RE = re.compile(r"^qreg\s+([A-Za-z_][A-Za-z_0-9]*)\s*\[\s*(\d+)\s*\]$")
_CREG_RE = re.compile(r"^creg\s+([A-Za-z_][A-Za-z_0-9]*)\s*\[\s*(\d+)\s*\]$")
_MEASURE_RE = re.compile(
    r"^measure\s+([A-Za-z_][A-Za-z_0-9]*)\s*\[\s*(\d+)\s*\]"
    r"\s*->\s*([A-Za-z_][A-Za-z_0-9]*)\s*\[\s*(\d+)\s*\]$"
)


class _AngleParser:
    """Recursive-descent evaluator for the QASM angle expression grammar.

    ``expr := term (('+'|'-') term)*``;
    ``term := factor (('*'|'/') factor)*``;
    ``factor := ('+'|'-') factor | '(' expr ')' | NUMBER | 'pi'``.

    Nesting is bounded by ``max_depth`` and every error carries the
    1-based line and column of the offending character in the original
    source line (``col_offset`` is the 0-based index where this
    expression starts within that line).
    """

    def __init__(self, text: str, line_no: int, col_offset: int, max_depth: int):
        self.text = text
        self.pos = 0
        self.line_no = line_no
        self.col_offset = col_offset
        self.max_depth = max_depth

    def error(self, message: str, pos: int | None = None) -> CircuitError:
        at = self.pos if pos is None else pos
        return CircuitError(
            f"line {self.line_no}: {message}",
            line=self.line_no,
            column=self.col_offset + at + 1,
        )

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def _peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def parse(self) -> float:
        if not self.text.strip():
            raise self.error("empty parameter in QASM gate", pos=0)
        value = self._expr(0)
        self._skip_ws()
        if self.pos < len(self.text):
            raise self.error(f"unexpected {self.text[self.pos]!r} in angle expression")
        if not math.isfinite(value):
            raise self.error("angle expression is not finite", pos=0)
        return value

    def _expr(self, depth: int) -> float:
        value = self._term(depth)
        while True:
            self._skip_ws()
            op = self._peek()
            if op not in ("+", "-"):
                return value
            self.pos += 1
            rhs = self._term(depth)
            value = value + rhs if op == "+" else value - rhs

    def _term(self, depth: int) -> float:
        value = self._factor(depth)
        while True:
            self._skip_ws()
            op = self._peek()
            if op not in ("*", "/"):
                return value
            op_pos = self.pos
            self.pos += 1
            rhs = self._factor(depth)
            if op == "/":
                if rhs == 0.0:
                    raise self.error("division by zero in angle expression", pos=op_pos)
                value = value / rhs
            else:
                value = value * rhs

    def _factor(self, depth: int) -> float:
        if depth >= self.max_depth:
            raise self.error(f"angle expression nested deeper than {self.max_depth}")
        self._skip_ws()
        char = self._peek()
        if char == "-":
            self.pos += 1
            return -self._factor(depth + 1)
        if char == "+":
            self.pos += 1
            return self._factor(depth + 1)
        if char == "(":
            self.pos += 1
            value = self._expr(depth + 1)
            self._skip_ws()
            if self._peek() != ")":
                raise self.error("unclosed '(' in angle expression")
            self.pos += 1
            return value
        match = _NUMBER_RE.match(self.text, self.pos)
        if match:
            self.pos = match.end()
            return float(match.group())
        match = _IDENT_RE.match(self.text, self.pos)
        if match:
            if match.group() != "pi":
                raise self.error(f"unknown identifier {match.group()!r} in angle expression")
            self.pos = match.end()
            return math.pi
        if not char:
            raise self.error("angle expression ended unexpectedly")
        raise self.error(f"unexpected {char!r} in angle expression")


def _parse_angle(
    token: str,
    *,
    line_no: int = 0,
    col_offset: int = 0,
    max_depth: int = DEFAULT_LIMITS.max_parse_depth,
) -> float:
    """Safely evaluate one QASM angle expression (no ``eval``)."""
    return _AngleParser(token, line_no, col_offset, max_depth).parse()


def _err(message: str, line_no: int, column: int) -> CircuitError:
    return CircuitError(f"line {line_no}: {message}", line=line_no, column=column)


def _iter_statements(text: str):
    """Yield ``(line_no, col, statement)`` triples, one per ``;``-terminated statement.

    Comments are stripped; a non-blank trailer without a terminating
    semicolon is an error.  Columns are 0-based offsets into the
    original line so downstream errors can point at exact characters.
    """
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        code = raw_line.split("//")[0]
        pos = 0
        while pos < len(code):
            semi = code.find(";", pos)
            if semi < 0:
                trailer = code[pos:]
                if trailer.strip():
                    column = pos + (len(trailer) - len(trailer.lstrip())) + 1
                    raise _err(f"statement missing ';': {trailer.strip()!r}", line_no, column)
                break
            statement = code[pos:semi]
            lead = len(statement) - len(statement.lstrip())
            stripped = statement.strip()
            if stripped:
                yield line_no, pos + lead, stripped
            pos = semi + 1


def _split_gate_statement(
    statement: str, line_no: int, col: int
) -> tuple[str, str | None, int, str, int]:
    """Split ``name(params) operands`` → (name, params, params_col, operands, operands_col)."""
    match = _IDENT_RE.match(statement)
    if match is None:
        raise _err(f"cannot parse statement: {statement!r}", line_no, col + 1)
    name = match.group()
    pos = match.end()
    while pos < len(statement) and statement[pos] in " \t":
        pos += 1
    params_text: str | None = None
    params_col = col + pos
    if pos < len(statement) and statement[pos] == "(":
        depth = 1
        start = pos + 1
        scan = start
        while scan < len(statement) and depth:
            if statement[scan] == "(":
                depth += 1
            elif statement[scan] == ")":
                depth -= 1
            scan += 1
        if depth:
            raise _err("unclosed '(' in gate parameters", line_no, col + pos + 1)
        params_text = statement[start : scan - 1]
        params_col = col + start
        pos = scan
    operands = statement[pos:]
    lead = len(operands) - len(operands.lstrip())
    return name, params_text, params_col, operands.strip(), col + pos + lead


def _parse_operands(
    operand_text: str,
    operands_col: int,
    line_no: int,
    register: tuple[str, int],
    *,
    gate_name: str,
) -> tuple[int, ...]:
    """Validate a comma-separated operand list against the declared qreg."""
    reg_name, reg_size = register
    if not operand_text:
        raise _err(f"gate {gate_name} has no operands", line_no, operands_col + 1)
    if gate_name == "barrier" and operand_text.strip() == reg_name:
        return tuple(range(reg_size))
    qubits: list[int] = []
    cursor = operands_col
    for part in operand_text.split(","):
        lead = len(part) - len(part.lstrip())
        column = cursor + lead + 1
        token = part.strip()
        match = _INDEXED_OPERAND_RE.match(token)
        if match is None:
            raise _err(
                f"cannot parse operand {token!r} (expected {reg_name}[<index>])",
                line_no,
                column,
            )
        name, index_text = match.groups()
        if name != reg_name:
            raise _err(f"operand references undeclared register {name!r}", line_no, column)
        index = int(index_text)
        if index >= reg_size:
            raise _err(
                f"operand {name}[{index}] out of range for qreg {reg_name}[{reg_size}]",
                line_no,
                column,
            )
        if index in qubits:
            raise _err(f"duplicate operand {name}[{index}] in {gate_name}", line_no, column)
        qubits.append(index)
        cursor += len(part) + 1
    return tuple(qubits)


def from_qasm(text: str, *, limits: CircuitLimits | None = None) -> QuantumCircuit:
    """Parse an untrusted OpenQASM 2.0 string into a :class:`QuantumCircuit`.

    ``limits`` defaults to :data:`DEFAULT_LIMITS`; every validation
    failure raises a :class:`CircuitError` carrying ``line``/``column``.
    """
    if limits is None:
        limits = DEFAULT_LIMITS
    nbytes = len(text.encode("utf-8", errors="surrogatepass"))
    if nbytes > limits.max_text_bytes:
        raise CircuitError(
            f"QASM text is {nbytes} bytes, over the {limits.max_text_bytes}-byte limit"
        )
    register: tuple[str, int] | None = None
    gates: list[Gate] = []
    for line_no, col, statement in _iter_statements(text):
        if statement.startswith("OPENQASM") or statement.startswith("include"):
            continue
        if statement.startswith("qreg"):
            match = _QREG_RE.match(statement)
            if match is None:
                raise _err(f"cannot parse qreg declaration: {statement!r}", line_no, col + 1)
            name, size_text = match.groups()
            size = int(size_text)
            if register is not None:
                prior = f"{register[0]}[{register[1]}]"
                raise _err(
                    f"conflicting qreg {name}[{size}] (already declared {prior})",
                    line_no,
                    col + 1,
                )
            if size < 1:
                raise _err(f"qreg {name}[{size}] must hold at least one qubit", line_no, col + 1)
            if size > limits.max_qubits:
                raise _err(
                    f"qreg {name}[{size}] exceeds the {limits.max_qubits}-qubit limit",
                    line_no,
                    col + 1,
                )
            register = (name, size)
            continue
        if statement.startswith("creg"):
            if _CREG_RE.match(statement) is None:
                raise _err(f"cannot parse creg declaration: {statement!r}", line_no, col + 1)
            continue
        if register is None:
            raise _err(
                f"statement before any qreg declaration: {statement!r}", line_no, col + 1
            )
        if len(gates) >= limits.max_gates:
            raise _err(
                f"circuit exceeds the {limits.max_gates}-gate limit", line_no, col + 1
            )
        if statement.startswith("measure"):
            match = _MEASURE_RE.match(statement)
            if match is None:
                raise _err(f"cannot parse measure: {statement!r}", line_no, col + 1)
            reg_name, reg_size = register
            name, index = match.group(1), int(match.group(2))
            if name != reg_name:
                raise _err(f"measure references undeclared register {name!r}", line_no, col + 1)
            if index >= reg_size:
                raise _err(
                    f"measure {name}[{index}] out of range for qreg {reg_name}[{reg_size}]",
                    line_no,
                    col + 1,
                )
            gates.append(Gate("measure", (index,)))
            continue
        qasm_name, params_text, params_col, operand_text, operands_col = _split_gate_statement(
            statement, line_no, col
        )
        name = _REVERSE_NAMES.get(qasm_name)
        if name is None:
            raise _err(f"unsupported QASM gate {qasm_name!r}", line_no, col + 1)
        params: tuple[float, ...] = ()
        if params_text is not None:
            parts = params_text.split(",")
            values = []
            cursor = params_col
            for part in parts:
                values.append(
                    _parse_angle(
                        part,
                        line_no=line_no,
                        col_offset=cursor,
                        max_depth=limits.max_parse_depth,
                    )
                )
                cursor += len(part) + 1
            params = tuple(values)
        expected = parameter_count(name)
        if name != "barrier" and expected != len(params):
            raise _err(
                f"gate {name} expects {expected} params, got {len(params)}", line_no, col + 1
            )
        qubits = _parse_operands(
            operand_text, operands_col, line_no, register, gate_name=name
        )
        try:
            gates.append(Gate(name, qubits, params))
        except CircuitError as exc:
            raise _err(str(exc), line_no, col + 1) from exc
    if register is None:
        raise CircuitError("QASM text does not declare a qreg")
    return QuantumCircuit(register[1], gates, name="from_qasm")

"""Minimal OpenQASM 2 export / import.

Only the subset of OpenQASM 2.0 needed to round-trip this library's
circuits is supported (one quantum register, the gate names in
:mod:`repro.circuit.gate`).  This exists so users can move compiled
baseline circuits in and out of other toolchains.
"""

from __future__ import annotations

import math
import re

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate, parameter_count
from repro.exceptions import CircuitError

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

_QASM_NAMES = {
    "id": "id",
    "x": "x",
    "y": "y",
    "z": "z",
    "h": "h",
    "s": "s",
    "sdg": "sdg",
    "t": "t",
    "tdg": "tdg",
    "sx": "sx",
    "sxdg": "sxdg",
    "rx": "rx",
    "ry": "ry",
    "rz": "rz",
    "p": "p",
    "u": "u3",
    "u1": "u1",
    "u2": "u2",
    "u3": "u3",
    "cx": "cx",
    "cz": "cz",
    "cy": "cy",
    "ch": "ch",
    "cp": "cp",
    "crx": "crx",
    "cry": "cry",
    "crz": "crz",
    "swap": "swap",
    "iswap": "iswap",
    "rzz": "rzz",
    "rxx": "rxx",
    "ccx": "ccx",
    "ccz": "ccz",
    "cswap": "cswap",
    "measure": "measure",
    "reset": "reset",
    "barrier": "barrier",
}
_REVERSE_NAMES = {v: k for k, v in _QASM_NAMES.items()}
_REVERSE_NAMES["u3"] = "u"

_GATE_RE = re.compile(r"^\s*([a-zA-Z_][\w]*)\s*(?:\(([^)]*)\))?\s+(.*?);\s*$")
_OPERAND_RE = re.compile(r"q\[(\d+)\]")


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to an OpenQASM 2.0 string."""
    lines = [_HEADER.rstrip("\n")]
    lines.append(f"qreg q[{circuit.num_qubits}];")
    has_measure = any(g.name == "measure" for g in circuit.gates)
    if has_measure:
        lines.append(f"creg c[{circuit.num_qubits}];")
    for gate in circuit.gates:
        qasm_name = _QASM_NAMES.get(gate.name)
        if qasm_name is None:
            raise CircuitError(f"gate {gate.name} has no OpenQASM 2 equivalent")
        operands = ", ".join(f"q[{q}]" for q in gate.qubits)
        if gate.name == "measure":
            q = gate.qubits[0]
            lines.append(f"measure q[{q}] -> c[{q}];")
            continue
        if gate.params:
            params = ", ".join(_format_angle(p) for p in gate.params)
            lines.append(f"{qasm_name}({params}) {operands};")
        else:
            lines.append(f"{qasm_name} {operands};")
    return "\n".join(lines) + "\n"


def _format_angle(value: float) -> str:
    """Render an angle, using pi fractions when exact."""
    for denom in (1, 2, 4, 8):
        for numer_sign in (1, -1):
            target = numer_sign * math.pi / denom
            if abs(value - target) < 1e-12:
                sign = "-" if numer_sign < 0 else ""
                return f"{sign}pi/{denom}" if denom != 1 else f"{sign}pi"
    return repr(float(value))


def _parse_angle(token: str) -> float:
    token = token.strip().replace(" ", "")
    if not token:
        raise CircuitError("empty parameter in QASM gate")
    token = token.replace("pi", repr(math.pi))
    try:
        return float(eval(token, {"__builtins__": {}}, {}))  # noqa: S307 - restricted eval of arithmetic
    except Exception as exc:  # pragma: no cover - defensive
        raise CircuitError(f"cannot parse QASM angle {token!r}") from exc


def from_qasm(text: str) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 string produced by :func:`to_qasm`."""
    num_qubits = None
    gates: list[Gate] = []
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line or line.startswith("OPENQASM") or line.startswith("include"):
            continue
        if line.startswith("qreg"):
            match = re.search(r"\[(\d+)\]", line)
            if not match:
                raise CircuitError(f"cannot parse qreg declaration: {line}")
            num_qubits = int(match.group(1))
            continue
        if line.startswith("creg"):
            continue
        if line.startswith("measure"):
            match = _OPERAND_RE.search(line)
            if not match:
                raise CircuitError(f"cannot parse measure: {line}")
            gates.append(Gate("measure", (int(match.group(1)),)))
            continue
        match = _GATE_RE.match(line)
        if not match:
            raise CircuitError(f"cannot parse QASM line: {line}")
        qasm_name, params_text, operand_text = match.groups()
        name = _REVERSE_NAMES.get(qasm_name)
        if name is None:
            raise CircuitError(f"unsupported QASM gate {qasm_name}")
        qubits = tuple(int(m) for m in _OPERAND_RE.findall(operand_text))
        params: tuple[float, ...] = ()
        if params_text:
            params = tuple(_parse_angle(tok) for tok in params_text.split(","))
        expected = parameter_count(name)
        if name not in {"barrier"} and expected != len(params):
            raise CircuitError(
                f"gate {name} expects {expected} params, QASM line has {len(params)}: {line}"
            )
        gates.append(Gate(name, qubits, params))
    if num_qubits is None:
        raise CircuitError("QASM text does not declare a qreg")
    return QuantumCircuit(num_qubits, gates, name="from_qasm")

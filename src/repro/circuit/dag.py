"""Gate dependency DAG and front-layer extraction.

Routers consume circuits layer by layer: the *front layer* is the set of
gates with no unexecuted predecessor (Alg. 1 in the paper calls it the
"source layer of the dependency graph").  :class:`DependencyDAG` maintains
this structure incrementally so routers can pop gates as they schedule them
without rebuilding the graph.

The implementation is a *ready-set* DAG: every gate carries a counter of
unexecuted predecessors, and gates whose counter is zero live in a ready
set.  ``front_layer()`` therefore costs O(|front| log |front|) (the sort
for determinism) instead of a scan over every remaining gate, and
``execute()`` costs O(out-degree) — the two operations routers call once
per gate, which makes whole-circuit routing linear in the gate count
rather than quadratic.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.exceptions import CircuitError


class DependencyDAG:
    """Dependency graph over the gates of a circuit.

    Two gates depend on each other when they share a qubit; the earlier one
    in program order must execute first.  Gates are identified by their
    index in the originating circuit.
    """

    def __init__(self, circuit: QuantumCircuit, *, include_one_qubit: bool = True):
        self._circuit = circuit
        self._include_one_qubit = include_one_qubit
        self._gates: dict[int, Gate] = {}
        # Adjacency is immutable after _build(); successors are kept sorted
        # so lookahead() iterates deterministically without re-sorting.
        self._predecessors: dict[int, tuple[int, ...]] = {}
        self._successors: dict[int, tuple[int, ...]] = {}
        self._executed: set[int] = set()
        # Ready-set state: count of unexecuted predecessors per gate, and
        # the set of unexecuted gates whose count is zero (the front layer).
        self._unmet: dict[int, int] = {}
        self._front: set[int] = set()
        self._num_remaining = 0
        self._build()

    def _build(self) -> None:
        preds: dict[int, set[int]] = {}
        succs: dict[int, set[int]] = {}
        last_on_qubit: dict[int, int] = {}
        for index, gate in enumerate(self._circuit.gates):
            if gate.is_barrier:
                continue
            if not self._include_one_qubit and gate.num_qubits < 2:
                continue
            self._gates[index] = gate
            for qubit in gate.qubits:
                if qubit in last_on_qubit:
                    prev = last_on_qubit[qubit]
                    if prev != index:
                        preds.setdefault(index, set()).add(prev)
                        succs.setdefault(prev, set()).add(index)
                last_on_qubit[qubit] = index
        self._predecessors = {i: tuple(sorted(p)) for i, p in preds.items()}
        self._successors = {i: tuple(sorted(s)) for i, s in succs.items()}
        self._reset_ready_state()

    def _reset_ready_state(self) -> None:
        """Initialise counters and ready set for a fresh (unexecuted) DAG."""
        self._executed.clear()
        self._unmet = {i: len(self._predecessors.get(i, ())) for i in self._gates}
        self._front = {i for i, count in self._unmet.items() if count == 0}
        self._num_remaining = len(self._gates)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def circuit(self) -> QuantumCircuit:
        """The originating circuit."""
        return self._circuit

    @property
    def num_gates(self) -> int:
        """Total number of gates tracked by the DAG."""
        return len(self._gates)

    @property
    def num_remaining(self) -> int:
        """Number of gates not yet marked executed."""
        return self._num_remaining

    def is_done(self) -> bool:
        """True when every gate has been executed."""
        return self._num_remaining == 0

    def gate(self, index: int) -> Gate:
        """Return the gate with the given circuit index."""
        return self._gates[index]

    def predecessors(self, index: int) -> frozenset[int]:
        """Indices of gates that must execute before ``index``."""
        return frozenset(self._predecessors.get(index, ()))

    def successors(self, index: int) -> frozenset[int]:
        """Indices of gates that depend on ``index``."""
        return frozenset(self._successors.get(index, ()))

    def front_layer(self) -> list[int]:
        """Indices of unexecuted gates whose predecessors are all executed.

        The result is sorted by circuit order for determinism.
        """
        return sorted(self._front)

    def front_layer_unsorted(self) -> tuple[int, ...]:
        """Front-layer indices in unspecified order.

        Cheaper than :meth:`front_layer` when the caller filters before
        sorting (e.g. the routers split 1Q from 2Q gates first).
        """
        return tuple(self._front)

    def front_layer_gates(self) -> list[Gate]:
        """Gate objects of the current front layer (circuit order)."""
        return [self._gates[i] for i in self.front_layer()]

    def lookahead(self, depth: int) -> list[int]:
        """Return up to ``depth`` upcoming gate indices beyond the front layer.

        Used by the SABRE heuristic's extended set.  The order approximates
        topological order by circuit index.
        """
        upcoming: list[int] = []
        frontier = self.front_layer()
        visited = set(frontier)
        queue = deque(frontier)
        while queue and len(upcoming) < depth:
            current = queue.popleft()
            for succ in self._successors.get(current, ()):
                if succ in visited or succ in self._executed:
                    continue
                visited.add(succ)
                upcoming.append(succ)
                queue.append(succ)
                if len(upcoming) >= depth:
                    break
        return upcoming

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def execute(self, index: int) -> None:
        """Mark a front-layer gate as executed.

        Raises
        ------
        CircuitError
            If the gate is unknown, already executed, or has unexecuted
            predecessors.
        """
        if index not in self._gates:
            raise CircuitError(f"gate index {index} is not part of this DAG")
        if index in self._executed:
            raise CircuitError(f"gate index {index} was already executed")
        if self._unmet[index]:
            unmet = [p for p in self._predecessors.get(index, ()) if p not in self._executed]
            raise CircuitError(f"gate {index} has unexecuted predecessors {unmet}")
        self._front.discard(index)
        self._executed.add(index)
        self._num_remaining -= 1
        for succ in self._successors.get(index, ()):
            remaining = self._unmet[succ] - 1
            self._unmet[succ] = remaining
            if remaining == 0 and succ not in self._executed:
                self._front.add(succ)

    def execute_many(self, indices: Iterable[int]) -> None:
        """Execute several gates; order within ``indices`` is resolved greedily."""
        pending = list(indices)
        # Execute in circuit order so intra-batch dependencies resolve.
        for index in sorted(pending):
            self.execute(index)

    def reset(self) -> None:
        """Forget all execution state."""
        self._reset_ready_state()

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def executed_order_is_valid(self, order: Sequence[int]) -> bool:
        """Check that ``order`` is a valid topological execution order."""
        seen: set[int] = set()
        for index in order:
            if index not in self._gates:
                return False
            if any(p not in seen for p in self._predecessors.get(index, ())):
                return False
            seen.add(index)
        return seen == set(self._gates)

    def longest_path_length(self) -> int:
        """Length (in gates) of the longest dependency chain."""
        depth: dict[int, int] = {}
        for index in sorted(self._gates):
            preds = self._predecessors.get(index, ())
            depth[index] = 1 + max((depth[p] for p in preds), default=0)
        return max(depth.values(), default=0)

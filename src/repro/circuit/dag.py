"""Gate dependency DAG and front-layer extraction.

Routers consume circuits layer by layer: the *front layer* is the set of
gates with no unexecuted predecessor (Alg. 1 in the paper calls it the
"source layer of the dependency graph").  :class:`DependencyDAG` maintains
this structure incrementally so routers can pop gates as they schedule them
without rebuilding the graph.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.exceptions import CircuitError


class DependencyDAG:
    """Dependency graph over the gates of a circuit.

    Two gates depend on each other when they share a qubit; the earlier one
    in program order must execute first.  Gates are identified by their
    index in the originating circuit.
    """

    def __init__(self, circuit: QuantumCircuit, *, include_one_qubit: bool = True):
        self._circuit = circuit
        self._include_one_qubit = include_one_qubit
        self._gates: dict[int, Gate] = {}
        self._predecessors: dict[int, set[int]] = defaultdict(set)
        self._successors: dict[int, set[int]] = defaultdict(set)
        self._remaining: set[int] = set()
        self._executed: set[int] = set()
        self._build()

    def _build(self) -> None:
        last_on_qubit: dict[int, int] = {}
        for index, gate in enumerate(self._circuit.gates):
            if gate.is_barrier:
                continue
            if not self._include_one_qubit and gate.num_qubits < 2:
                continue
            self._gates[index] = gate
            self._remaining.add(index)
            for qubit in gate.qubits:
                if qubit in last_on_qubit:
                    prev = last_on_qubit[qubit]
                    if prev != index:
                        self._predecessors[index].add(prev)
                        self._successors[prev].add(index)
                last_on_qubit[qubit] = index

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def circuit(self) -> QuantumCircuit:
        """The originating circuit."""
        return self._circuit

    @property
    def num_gates(self) -> int:
        """Total number of gates tracked by the DAG."""
        return len(self._gates)

    @property
    def num_remaining(self) -> int:
        """Number of gates not yet marked executed."""
        return len(self._remaining)

    def is_done(self) -> bool:
        """True when every gate has been executed."""
        return not self._remaining

    def gate(self, index: int) -> Gate:
        """Return the gate with the given circuit index."""
        return self._gates[index]

    def predecessors(self, index: int) -> frozenset[int]:
        """Indices of gates that must execute before ``index``."""
        return frozenset(self._predecessors.get(index, set()))

    def successors(self, index: int) -> frozenset[int]:
        """Indices of gates that depend on ``index``."""
        return frozenset(self._successors.get(index, set()))

    def front_layer(self) -> list[int]:
        """Indices of unexecuted gates whose predecessors are all executed.

        The result is sorted by circuit order for determinism.
        """
        front = [
            index
            for index in self._remaining
            if all(p in self._executed for p in self._predecessors.get(index, ()))
        ]
        return sorted(front)

    def front_layer_gates(self) -> list[Gate]:
        """Gate objects of the current front layer (circuit order)."""
        return [self._gates[i] for i in self.front_layer()]

    def lookahead(self, depth: int) -> list[int]:
        """Return up to ``depth`` upcoming gate indices beyond the front layer.

        Used by the SABRE heuristic's extended set.  The order approximates
        topological order by circuit index.
        """
        upcoming: list[int] = []
        frontier = set(self.front_layer())
        visited = set(frontier)
        queue = sorted(frontier)
        while queue and len(upcoming) < depth:
            current = queue.pop(0)
            for succ in sorted(self._successors.get(current, ())):
                if succ in visited or succ in self._executed:
                    continue
                visited.add(succ)
                upcoming.append(succ)
                queue.append(succ)
                if len(upcoming) >= depth:
                    break
        return upcoming

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def execute(self, index: int) -> None:
        """Mark a front-layer gate as executed.

        Raises
        ------
        CircuitError
            If the gate is unknown, already executed, or has unexecuted
            predecessors.
        """
        if index not in self._gates:
            raise CircuitError(f"gate index {index} is not part of this DAG")
        if index in self._executed:
            raise CircuitError(f"gate index {index} was already executed")
        unmet = [p for p in self._predecessors.get(index, ()) if p not in self._executed]
        if unmet:
            raise CircuitError(f"gate {index} has unexecuted predecessors {unmet}")
        self._remaining.discard(index)
        self._executed.add(index)

    def execute_many(self, indices: Iterable[int]) -> None:
        """Execute several gates; order within ``indices`` is resolved greedily."""
        pending = list(indices)
        # Execute in circuit order so intra-batch dependencies resolve.
        for index in sorted(pending):
            self.execute(index)

    def reset(self) -> None:
        """Forget all execution state."""
        self._executed.clear()
        self._remaining = set(self._gates)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def executed_order_is_valid(self, order: Sequence[int]) -> bool:
        """Check that ``order`` is a valid topological execution order."""
        seen: set[int] = set()
        for index in order:
            if index not in self._gates:
                return False
            if any(p not in seen for p in self._predecessors.get(index, ())):
                return False
            seen.add(index)
        return seen == set(self._gates)

    def longest_path_length(self) -> int:
        """Length (in gates) of the longest dependency chain."""
        depth: dict[int, int] = {}
        for index in sorted(self._gates):
            preds = self._predecessors.get(index, ())
            depth[index] = 1 + max((depth[p] for p in preds), default=0)
        return max(depth.values(), default=0)

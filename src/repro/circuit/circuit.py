"""Quantum circuit container.

:class:`QuantumCircuit` is a light-weight, append-only list of
:class:`~repro.circuit.gate.Gate` objects plus a qubit count.  It provides
the handful of queries compilers care about: gate counts, 2-qubit gate
layers (the paper's circuit-depth metric), composition, inversion and qubit
remapping.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator, Sequence

from repro.circuit.gate import Gate, validate_gates
from repro.exceptions import CircuitError


class QuantumCircuit:
    """A sequence of gates over ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Number of qubits in the circuit register.
    gates:
        Optional initial gate list (copied).
    name:
        Optional human-readable name, used in reports.
    """

    def __init__(self, num_qubits: int, gates: Iterable[Gate] | None = None, name: str = "circuit"):
        if num_qubits <= 0:
            raise CircuitError("a circuit needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self._gates: list[Gate] = []
        self.name = name
        if gates is not None:
            for gate in gates:
                self.append(gate)

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubits in the register."""
        return self._num_qubits

    @property
    def gates(self) -> tuple[Gate, ...]:
        """Immutable view of the gate list."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return self._num_qubits == other._num_qubits and self._gates == other._gates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuantumCircuit(name={self.name!r}, num_qubits={self._num_qubits}, num_gates={len(self)})"

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append a gate, validating its qubit indices. Returns self."""
        validate_gates([gate], self._num_qubits)
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        """Append several gates. Returns self."""
        for gate in gates:
            self.append(gate)
        return self

    def add(self, name: str, qubits: Sequence[int], params: Sequence[float] = ()) -> "QuantumCircuit":
        """Append a gate by name. Returns self."""
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    # one-qubit shorthands -------------------------------------------------
    def i(self, q: int) -> "QuantumCircuit":
        return self.add("id", [q])

    def x(self, q: int) -> "QuantumCircuit":
        return self.add("x", [q])

    def y(self, q: int) -> "QuantumCircuit":
        return self.add("y", [q])

    def z(self, q: int) -> "QuantumCircuit":
        return self.add("z", [q])

    def h(self, q: int) -> "QuantumCircuit":
        return self.add("h", [q])

    def s(self, q: int) -> "QuantumCircuit":
        return self.add("s", [q])

    def sdg(self, q: int) -> "QuantumCircuit":
        return self.add("sdg", [q])

    def t(self, q: int) -> "QuantumCircuit":
        return self.add("t", [q])

    def tdg(self, q: int) -> "QuantumCircuit":
        return self.add("tdg", [q])

    def sx(self, q: int) -> "QuantumCircuit":
        return self.add("sx", [q])

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("rx", [q], [theta])

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("ry", [q], [theta])

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("rz", [q], [theta])

    def p(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("p", [q], [theta])

    def u(self, theta: float, phi: float, lam: float, q: int) -> "QuantumCircuit":
        return self.add("u", [q], [theta, phi, lam])

    def measure(self, q: int) -> "QuantumCircuit":
        return self.add("measure", [q])

    # two-qubit shorthands -------------------------------------------------
    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("cx", [control, target])

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("cz", [a, b])

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("cy", [control, target])

    def cp(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.add("cp", [control, target], [theta])

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("swap", [a, b])

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add("rzz", [a, b], [theta])

    def rxx(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add("rxx", [a, b], [theta])

    def ccx(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self.add("ccx", [c1, c2, target])

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        qs = tuple(qubits) if qubits else tuple(range(self._num_qubits))
        return self.append(Gate("barrier", qs))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def count_gates(self, predicate: Callable[[Gate], bool] | None = None) -> int:
        """Count gates matching ``predicate`` (all unitary gates if None)."""
        if predicate is None:
            predicate = lambda g: not g.is_barrier  # noqa: E731
        return sum(1 for g in self._gates if predicate(g))

    def num_one_qubit_gates(self) -> int:
        """Number of 1-qubit unitary gates (measure/reset excluded)."""
        return sum(1 for g in self._gates if g.is_one_qubit and not g.is_directive)

    def num_two_qubit_gates(self) -> int:
        """Number of 2-qubit gates."""
        return sum(1 for g in self._gates if g.is_two_qubit)

    def gate_counts(self) -> Counter:
        """Histogram of gate names."""
        return Counter(g.name for g in self._gates)

    def two_qubit_pairs(self) -> list[tuple[int, int]]:
        """Operand pairs of every 2-qubit gate, in circuit order."""
        return [(g.qubits[0], g.qubits[1]) for g in self._gates if g.is_two_qubit]

    def active_qubits(self) -> set[int]:
        """Set of qubits touched by at least one gate."""
        used: set[int] = set()
        for g in self._gates:
            used.update(g.qubits)
        return used

    def depth(self, *, two_qubit_only: bool = False) -> int:
        """Return the circuit depth.

        With ``two_qubit_only=True`` this is the paper's metric: the number
        of layers containing at least one 2-qubit gate when gates are packed
        greedily (ASAP) while respecting qubit dependencies.  1-qubit gates
        still create dependencies but do not open layers of their own.
        """
        if not self._gates:
            return 0
        if not two_qubit_only:
            level = [0] * self._num_qubits
            for g in self._gates:
                if g.is_barrier:
                    barrier_level = max(level[q] for q in g.qubits)
                    for q in g.qubits:
                        level[q] = barrier_level
                    continue
                new_level = max(level[q] for q in g.qubits) + 1
                for q in g.qubits:
                    level[q] = new_level
            return max(level)
        return self.two_qubit_depth()

    def two_qubit_depth(self) -> int:
        """Number of parallel 2-qubit gate layers (ASAP packing).

        This is the circuit-depth definition used throughout the Q-Pilot
        paper's evaluation: single-qubit gates are ignored for layer
        counting but still order 2-qubit gates on the same qubit.
        """
        level = [0] * self._num_qubits
        for g in self._gates:
            if g.is_barrier or g.is_directive:
                continue
            if g.is_two_qubit or g.num_qubits > 2:
                new_level = max(level[q] for q in g.qubits) + 1
                for q in g.qubits:
                    level[q] = new_level
            # 1Q gates do not advance the 2Q layer counter
        return max(level) if level else 0

    # ------------------------------------------------------------------
    # interchange
    # ------------------------------------------------------------------
    def to_qasm(self) -> str:
        """Serialise to an OpenQASM 2.0 string (see :mod:`repro.circuit.qasm`)."""
        from repro.circuit.qasm import to_qasm

        return to_qasm(self)

    @classmethod
    def from_qasm(cls, text: str, *, limits=None) -> "QuantumCircuit":
        """Parse untrusted OpenQASM 2.0 text under a :class:`CircuitLimits` guard."""
        from repro.circuit.qasm import from_qasm

        return from_qasm(text, limits=limits)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "QuantumCircuit":
        """Return a shallow copy (gates are immutable)."""
        return QuantumCircuit(self._num_qubits, self._gates, name or self.name)

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return a new circuit with ``other`` appended after ``self``."""
        if other.num_qubits > self._num_qubits:
            raise CircuitError(
                f"cannot compose a {other.num_qubits}-qubit circuit onto {self._num_qubits} qubits"
            )
        out = self.copy()
        out.extend(other.gates)
        return out

    def inverse(self) -> "QuantumCircuit":
        """Return the inverse circuit (reversed order, inverted gates)."""
        out = QuantumCircuit(self._num_qubits, name=f"{self.name}_dg")
        for gate in reversed(self._gates):
            if gate.is_barrier:
                out.append(gate)
                continue
            out.append(gate.inverse())
        return out

    def remap_qubits(self, mapping: dict[int, int], num_qubits: int | None = None) -> "QuantumCircuit":
        """Return a copy with every qubit ``q`` replaced by ``mapping[q]``."""
        new_n = num_qubits if num_qubits is not None else self._num_qubits
        out = QuantumCircuit(new_n, name=self.name)
        for gate in self._gates:
            out.append(gate.remap(mapping))
        return out

    def without_directives(self) -> "QuantumCircuit":
        """Return a copy with measure/reset/barrier removed."""
        return QuantumCircuit(
            self._num_qubits,
            (g for g in self._gates if not g.is_directive),
            name=self.name,
        )

    def layers(self, *, two_qubit_only: bool = False) -> list[list[Gate]]:
        """Partition gates into ASAP layers.

        With ``two_qubit_only=True``, only 2-qubit gates are returned and
        layered; 1-qubit gates are dropped (but still impose ordering when
        appearing between 2-qubit gates on the same qubit — since dropping
        them does not change which 2-qubit gates share qubits, the layer
        structure of 2-qubit gates is unaffected).
        """
        level: dict[int, int] = {q: 0 for q in range(self._num_qubits)}
        layered: list[list[Gate]] = []
        for g in self._gates:
            if g.is_barrier or g.is_directive:
                continue
            if two_qubit_only and g.num_qubits < 2:
                continue
            new_level = max(level[q] for q in g.qubits) + 1
            for q in g.qubits:
                level[q] = new_level
            while len(layered) < new_level:
                layered.append([])
            layered[new_level - 1].append(g)
        return layered

    def to_text_diagram(self, max_gates: int = 40) -> str:
        """Return a compact text listing of the circuit (for examples/docs)."""
        lines = [f"{self.name}: {self._num_qubits} qubits, {len(self)} gates"]
        for gate in self._gates[:max_gates]:
            lines.append(f"  {gate}")
        if len(self) > max_gates:
            lines.append(f"  ... ({len(self) - max_gates} more gates)")
        return "\n".join(lines)

"""Gate model for the quantum-circuit intermediate representation.

A :class:`Gate` is an immutable record of an operation applied to one or
more qubits.  The library is a *compiler*, so gates carry just enough
semantic information for routing and scheduling decisions:

* the gate name (lower-case, Qiskit-compatible where possible),
* the qubit operands,
* optional real parameters (rotation angles),
* whether the gate is diagonal in the computational basis (this drives the
  flying-ancilla legality checks), and
* the unitary matrix for the small-scale statevector verification.

Only the gates needed by the Q-Pilot flows are implemented, but the set is
large enough to express the paper's benchmarks (random circuits, Pauli
string evolution, QAOA) and the baseline devices' native sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import CircuitError

#: Names of gates that act on exactly one qubit.
ONE_QUBIT_GATES = frozenset(
    {
        "id",
        "x",
        "y",
        "z",
        "h",
        "s",
        "sdg",
        "t",
        "tdg",
        "sx",
        "sxdg",
        "rx",
        "ry",
        "rz",
        "p",
        "u",
        "u1",
        "u2",
        "u3",
        "measure",
        "reset",
    }
)

#: Names of gates that act on exactly two qubits.
TWO_QUBIT_GATES = frozenset(
    {
        "cx",
        "cz",
        "cy",
        "ch",
        "cp",
        "crx",
        "cry",
        "crz",
        "swap",
        "iswap",
        "rzz",
        "rxx",
        "ryy",
        "ecr",
    }
)

#: Names of gates that act on three qubits (only used by random circuits
#: before decomposition).
THREE_QUBIT_GATES = frozenset({"ccx", "ccz", "cswap"})

#: Gates that are diagonal in the computational (Z) basis.  Diagonal gates
#: commute with each other and with Z-basis fan-outs, which is what makes
#: flying-ancilla routing exact for them.
DIAGONAL_GATES = frozenset({"id", "z", "s", "sdg", "t", "tdg", "rz", "p", "u1", "cz", "cp", "crz", "rzz", "ccz"})

#: Gates with no parameters.
_PARAMETER_COUNTS = {
    "id": 0,
    "x": 0,
    "y": 0,
    "z": 0,
    "h": 0,
    "s": 0,
    "sdg": 0,
    "t": 0,
    "tdg": 0,
    "sx": 0,
    "sxdg": 0,
    "rx": 1,
    "ry": 1,
    "rz": 1,
    "p": 1,
    "u1": 1,
    "u2": 2,
    "u3": 3,
    "u": 3,
    "measure": 0,
    "reset": 0,
    "cx": 0,
    "cz": 0,
    "cy": 0,
    "ch": 0,
    "cp": 1,
    "crx": 1,
    "cry": 1,
    "crz": 1,
    "swap": 0,
    "iswap": 0,
    "rzz": 1,
    "rxx": 1,
    "ryy": 1,
    "ecr": 0,
    "ccx": 0,
    "ccz": 0,
    "cswap": 0,
    "barrier": None,
}


@dataclass(frozen=True)
class Gate:
    """An immutable quantum gate instance.

    Parameters
    ----------
    name:
        Lower-case gate name, e.g. ``"cz"`` or ``"rz"``.
    qubits:
        Tuple of qubit indices the gate acts on, in operand order
        (control first for controlled gates).
    params:
        Tuple of real parameters (rotation angles in radians).
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.lower())
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"gate {self.name} has repeated qubits {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise CircuitError(f"gate {self.name} has negative qubit index {self.qubits}")
        expected = _PARAMETER_COUNTS.get(self.name)
        if expected is not None and expected != len(self.params):
            raise CircuitError(
                f"gate {self.name} expects {expected} parameter(s), got {len(self.params)}"
            )
        if self.name in ONE_QUBIT_GATES and len(self.qubits) != 1:
            raise CircuitError(f"gate {self.name} is single-qubit, got qubits {self.qubits}")
        if self.name in TWO_QUBIT_GATES and len(self.qubits) != 2:
            raise CircuitError(f"gate {self.name} is two-qubit, got qubits {self.qubits}")
        if self.name in THREE_QUBIT_GATES and len(self.qubits) != 3:
            raise CircuitError(f"gate {self.name} is three-qubit, got qubits {self.qubits}")

    # ------------------------------------------------------------------
    # classification helpers
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubit operands."""
        return len(self.qubits)

    @property
    def is_one_qubit(self) -> bool:
        """True for single-qubit gates (including measure/reset)."""
        return self.num_qubits == 1

    @property
    def is_two_qubit(self) -> bool:
        """True for two-qubit gates."""
        return self.num_qubits == 2

    @property
    def is_diagonal(self) -> bool:
        """True if the gate is diagonal in the computational basis."""
        return self.name in DIAGONAL_GATES

    @property
    def is_barrier(self) -> bool:
        """True for scheduling barriers."""
        return self.name == "barrier"

    @property
    def is_directive(self) -> bool:
        """True for non-unitary directives (measure, reset, barrier)."""
        return self.name in {"measure", "reset", "barrier"}

    def on(self, *qubits: int) -> "Gate":
        """Return a copy of this gate applied to different qubits."""
        return Gate(self.name, tuple(qubits), self.params)

    def remap(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy with qubits remapped through ``mapping``."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def inverse(self) -> "Gate":
        """Return the inverse gate (raises for non-unitary directives)."""
        if self.is_directive:
            raise CircuitError(f"{self.name} has no inverse")
        name_map = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t", "sx": "sxdg", "sxdg": "sx"}
        if self.name in name_map:
            return Gate(name_map[self.name], self.qubits)
        if self.name in {"rx", "ry", "rz", "p", "u1", "cp", "crx", "cry", "crz", "rzz", "rxx", "ryy"}:
            return Gate(self.name, self.qubits, tuple(-p for p in self.params))
        if self.name in {"u", "u3"}:
            theta, phi, lam = self.params
            return Gate(self.name, self.qubits, (-theta, -lam, -phi))
        if self.name == "u2":
            phi, lam = self.params
            return Gate("u3", self.qubits, (-math.pi / 2, -lam, -phi))
        # self-inverse gates
        return Gate(self.name, self.qubits, self.params)

    # ------------------------------------------------------------------
    # matrices (used only by the small statevector simulator)
    # ------------------------------------------------------------------
    def matrix(self) -> np.ndarray:
        """Return the unitary matrix of the gate as a dense numpy array.

        Qubit operand order follows the little-endian convention used by
        :mod:`repro.sim.statevector` (``qubits[0]`` is the least-significant
        operand of the returned matrix).
        """
        return gate_matrix(self.name, self.params)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            params = ", ".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({params}) {list(self.qubits)}"
        return f"{self.name} {list(self.qubits)}"


# ----------------------------------------------------------------------
# matrix library
# ----------------------------------------------------------------------
_I2 = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_H = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)
_S = np.diag([1, 1j]).astype(complex)
_T = np.diag([1, np.exp(1j * math.pi / 4)]).astype(complex)
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    return np.diag([np.exp(-1j * theta / 2), np.exp(1j * theta / 2)]).astype(complex)


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def _controlled(u: np.ndarray) -> np.ndarray:
    """Return the controlled version of a 1-qubit unitary.

    Convention: operand 0 (the control) is the *least significant* qubit of
    the 4x4 matrix, matching :mod:`repro.sim.statevector`.
    """
    out = np.eye(4, dtype=complex)
    # basis order |q1 q0>: control is bit 0, target is bit 1.
    # states with control=1 are indices 1 (target 0) and 3 (target 1)
    out[1, 1] = u[0, 0]
    out[1, 3] = u[0, 1]
    out[3, 1] = u[1, 0]
    out[3, 3] = u[1, 1]
    return out


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Return the unitary matrix for a named gate.

    The result is a fresh writable array; construction is cached per
    ``(name, params)`` so repeated lookups (the verification-heavy tests
    apply the same few gates thousands of times) only pay for a copy.

    Raises
    ------
    CircuitError
        If the gate has no defined unitary (``measure``, ``reset``,
        ``barrier``) or the name is unknown.
    """
    return gate_matrix_readonly(name, tuple(params)).copy()


@lru_cache(maxsize=4096)
def gate_matrix_readonly(name: str, params: tuple[float, ...] = ()) -> np.ndarray:
    """Cached, read-only unitary matrix for a named gate.

    Callers must not mutate the result (the array is marked non-writable);
    use :func:`gate_matrix` for a private copy.
    """
    matrix = _build_gate_matrix(name.lower(), tuple(params))
    matrix.flags.writeable = False
    return matrix


@lru_cache(maxsize=4096)
def gate_diagonal(name: str, params: tuple[float, ...] = ()) -> np.ndarray | None:
    """Cached diagonal of a Z-basis-diagonal gate, or None otherwise.

    Used by the statevector simulator's diagonal fast path.  The returned
    vector is read-only.
    """
    if name.lower() not in DIAGONAL_GATES:
        return None
    diag = np.ascontiguousarray(np.diag(gate_matrix_readonly(name, tuple(params))))
    diag.flags.writeable = False
    return diag


def _build_gate_matrix(name: str, p: tuple[float, ...]) -> np.ndarray:
    if name in {"measure", "reset", "barrier"}:
        raise CircuitError(f"gate {name} has no unitary matrix")
    one_qubit = {
        "id": _I2,
        "x": _X,
        "y": _Y,
        "z": _Z,
        "h": _H,
        "s": _S,
        "sdg": _S.conj().T,
        "t": _T,
        "tdg": _T.conj().T,
        "sx": _SX,
        "sxdg": _SX.conj().T,
    }
    if name in one_qubit:
        return one_qubit[name].copy()
    if name == "rx":
        return _rx(p[0])
    if name == "ry":
        return _ry(p[0])
    if name == "rz":
        return _rz(p[0])
    if name in {"p", "u1"}:
        return np.diag([1, np.exp(1j * p[0])]).astype(complex)
    if name == "u2":
        return _u3(math.pi / 2, p[0], p[1])
    if name in {"u", "u3"}:
        return _u3(*p)
    if name == "cx":
        return _controlled(_X)
    if name == "cy":
        return _controlled(_Y)
    if name == "cz":
        return _controlled(_Z)
    if name == "ch":
        return _controlled(_H)
    if name == "cp":
        return _controlled(np.diag([1, np.exp(1j * p[0])]).astype(complex))
    if name == "crx":
        return _controlled(_rx(p[0]))
    if name == "cry":
        return _controlled(_ry(p[0]))
    if name == "crz":
        return _controlled(_rz(p[0]))
    if name == "swap":
        m = np.eye(4, dtype=complex)
        m[[1, 2]] = m[[2, 1]]
        return m
    if name == "iswap":
        m = np.eye(4, dtype=complex)
        m[1, 1] = 0
        m[2, 2] = 0
        m[1, 2] = 1j
        m[2, 1] = 1j
        return m
    if name == "rzz":
        theta = p[0]
        return np.diag(
            [
                np.exp(-1j * theta / 2),
                np.exp(1j * theta / 2),
                np.exp(1j * theta / 2),
                np.exp(-1j * theta / 2),
            ]
        ).astype(complex)
    if name == "rxx":
        theta = p[0]
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        m = np.eye(4, dtype=complex) * c
        m[0, 3] = m[3, 0] = m[1, 2] = m[2, 1] = -1j * s
        return m
    if name == "ryy":
        theta = p[0]
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        m = np.eye(4, dtype=complex) * c
        m[0, 3] = m[3, 0] = 1j * s
        m[1, 2] = m[2, 1] = -1j * s
        return m
    if name == "ecr":
        # echoed cross resonance, up to local frame; included for completeness.
        return (1 / math.sqrt(2)) * np.array(
            [[0, 1, 0, 1j], [1, 0, -1j, 0], [0, 1j, 0, 1], [-1j, 0, 1, 0]],
            dtype=complex,
        )
    if name == "ccx":
        m = np.eye(8, dtype=complex)
        # controls are bits 0 and 1, target is bit 2 -> swap |011> and |111>
        m[[3, 7]] = m[[7, 3]]
        return m
    if name == "ccz":
        m = np.eye(8, dtype=complex)
        m[7, 7] = -1
        return m
    if name == "cswap":
        m = np.eye(8, dtype=complex)
        # control is bit 0; swap bits 1 and 2 when control set: |101><->|011|
        m[[5, 3]] = m[[3, 5]]
        return m
    raise CircuitError(f"unknown gate name: {name}")


# ----------------------------------------------------------------------
# convenience constructors
# ----------------------------------------------------------------------
def one_qubit_gate_names(parameterised: bool = True) -> tuple[str, ...]:
    """Return the catalogue of 1-qubit unitary gate names.

    Parameters
    ----------
    parameterised:
        If False, only return gates without parameters.
    """
    names = sorted(ONE_QUBIT_GATES - {"measure", "reset"})
    if not parameterised:
        names = [n for n in names if _PARAMETER_COUNTS.get(n, 0) == 0]
    return tuple(names)


def two_qubit_gate_names(parameterised: bool = True) -> tuple[str, ...]:
    """Return the catalogue of 2-qubit gate names."""
    names = sorted(TWO_QUBIT_GATES)
    if not parameterised:
        names = [n for n in names if _PARAMETER_COUNTS.get(n, 0) == 0]
    return tuple(names)


def parameter_count(name: str) -> int:
    """Number of real parameters for a gate name (0 if unknown)."""
    count = _PARAMETER_COUNTS.get(name.lower())
    return 0 if count is None else count


def validate_gates(gates: Iterable[Gate], num_qubits: int) -> None:
    """Check that every gate fits within ``num_qubits`` qubits.

    Raises
    ------
    CircuitError
        If a gate references a qubit outside ``range(num_qubits)``.
    """
    for gate in gates:
        for q in gate.qubits:
            if q >= num_qubits:
                raise CircuitError(
                    f"gate {gate} references qubit {q} but circuit has {num_qubits} qubits"
                )

"""Pauli strings and Trotterised quantum-simulation circuits.

A *Pauli string* is a tensor product of single-qubit Pauli operators
(I, X, Y, Z) over the register.  Quantum simulation benchmarks in the paper
are Trotter steps: for each Pauli string ``P`` the circuit applies
``exp(-i θ/2 P)`` using the standard basis-change + CNOT-parity-ladder
construction.  The Q-Pilot quantum-simulation router compiles the same
evolution with flying ancillas instead of the ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import WorkloadError
from repro.utils.rng import ensure_rng

_VALID_PAULIS = frozenset("IXYZ")


@dataclass(frozen=True)
class PauliString:
    """A Pauli string over ``num_qubits`` qubits.

    Parameters
    ----------
    label:
        A string over the alphabet ``IXYZ``; ``label[i]`` is the Pauli
        acting on qubit ``i``.
    coefficient:
        Rotation angle / Hamiltonian coefficient associated with the term.
    """

    label: str
    coefficient: float = 1.0

    def __post_init__(self) -> None:
        label = self.label.upper()
        if not label or any(ch not in _VALID_PAULIS for ch in label):
            raise WorkloadError(f"invalid Pauli label {self.label!r}")
        object.__setattr__(self, "label", label)

    @property
    def num_qubits(self) -> int:
        """Length of the string (register width)."""
        return len(self.label)

    @property
    def support(self) -> tuple[int, ...]:
        """Indices of qubits with a non-identity Pauli, ascending."""
        return tuple(i for i, ch in enumerate(self.label) if ch != "I")

    @property
    def weight(self) -> int:
        """Number of non-identity Paulis."""
        return len(self.support)

    def pauli_on(self, qubit: int) -> str:
        """The Pauli letter acting on a qubit."""
        return self.label[qubit]

    def is_identity(self) -> bool:
        """True when every factor is the identity."""
        return self.weight == 0

    def restricted(self, qubits: Sequence[int]) -> "PauliString":
        """Return the string restricted to a subset of qubits (new register)."""
        return PauliString("".join(self.label[q] for q in qubits), self.coefficient)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


def random_pauli_string(
    num_qubits: int,
    probability: float,
    *,
    seed: int | np.random.Generator | None = None,
    min_weight: int = 1,
) -> PauliString:
    """Sample a random Pauli string.

    Each qubit independently carries a non-identity Pauli with probability
    ``probability`` (then X/Y/Z uniformly), matching the paper's workload
    description.  Resampling guarantees at least ``min_weight`` non-identity
    factors so the evolution is non-trivial.
    """
    if not 0.0 <= probability <= 1.0:
        raise WorkloadError("probability must be within [0, 1]")
    if min_weight > num_qubits:
        raise WorkloadError("min_weight cannot exceed num_qubits")
    rng = ensure_rng(seed)
    paulis = "XYZ"
    while True:
        letters = [
            paulis[int(rng.integers(3))] if rng.random() < probability else "I"
            for _ in range(num_qubits)
        ]
        string = PauliString("".join(letters), coefficient=float(rng.uniform(0.1, 1.0)))
        if string.weight >= min_weight:
            return string


def random_pauli_strings(
    num_qubits: int,
    num_strings: int,
    probability: float,
    *,
    seed: int | np.random.Generator | None = None,
) -> list[PauliString]:
    """Sample ``num_strings`` independent random Pauli strings."""
    rng = ensure_rng(seed)
    return [
        random_pauli_string(num_qubits, probability, seed=rng) for _ in range(num_strings)
    ]


# ----------------------------------------------------------------------
# circuit construction (baseline CNOT-ladder form)
# ----------------------------------------------------------------------
def _basis_change(circuit: QuantumCircuit, string: PauliString, *, invert: bool) -> None:
    """Apply the local basis change mapping each X/Y factor to Z."""
    for qubit in string.support:
        pauli = string.pauli_on(qubit)
        if pauli == "X":
            circuit.h(qubit)
        elif pauli == "Y":
            if invert:
                circuit.h(qubit)
                circuit.s(qubit)
            else:
                circuit.sdg(qubit)
                circuit.h(qubit)


def pauli_evolution_circuit(
    string: PauliString,
    theta: float | None = None,
    *,
    ladder: str = "star",
) -> QuantumCircuit:
    """Build ``exp(-i θ/2 P)`` with the textbook CNOT construction.

    Parameters
    ----------
    string:
        The Pauli string ``P``.
    theta:
        Rotation angle; defaults to the string's coefficient.
    ladder:
        ``"star"`` accumulates parity onto the first support qubit with
        CNOTs from every other support qubit (the form the Q-Pilot router
        parallelises); ``"chain"`` uses the nearest-neighbour CNOT ladder.
    """
    if string.is_identity():
        raise WorkloadError("cannot build an evolution circuit for the identity string")
    if ladder not in {"star", "chain"}:
        raise WorkloadError("ladder must be 'star' or 'chain'")
    angle = float(string.coefficient if theta is None else theta)
    circuit = QuantumCircuit(string.num_qubits, name=f"pauli_{string.label}")
    support = list(string.support)
    root = support[0]
    _basis_change(circuit, string, invert=False)
    if ladder == "star":
        for qubit in support[1:]:
            circuit.cx(qubit, root)
        circuit.rz(angle, root)
        for qubit in reversed(support[1:]):
            circuit.cx(qubit, root)
    else:
        for a, b in zip(support[:-1], support[1:]):
            circuit.cx(a, b)
        circuit.rz(angle, support[-1])
        for a, b in reversed(list(zip(support[:-1], support[1:]))):
            circuit.cx(a, b)
    _basis_change(circuit, string, invert=True)
    return circuit


def trotter_circuit(
    strings: Iterable[PauliString],
    num_qubits: int | None = None,
    *,
    theta: float | None = None,
    ladder: str = "star",
) -> QuantumCircuit:
    """Concatenate the evolution circuits of several Pauli strings.

    This is one first-order Trotter step of ``H = Σ c_k P_k``; it is the
    baseline workload that gets transpiled onto the fixed-coupling devices.
    """
    strings = list(strings)
    if not strings:
        raise WorkloadError("need at least one Pauli string")
    width = num_qubits or strings[0].num_qubits
    circuit = QuantumCircuit(width, name=f"trotter_{len(strings)}terms")
    for string in strings:
        if string.num_qubits != width:
            raise WorkloadError(
                f"string {string.label} has {string.num_qubits} qubits, expected {width}"
            )
        if string.is_identity():
            continue
        circuit = circuit.compose(pauli_evolution_circuit(string, theta, ladder=ladder))
    circuit.name = f"trotter_{len(strings)}terms"
    return circuit


def pauli_weight_histogram(strings: Iterable[PauliString]) -> dict[int, int]:
    """Histogram of string weights — useful for workload characterisation."""
    hist: dict[int, int] = {}
    for string in strings:
        hist[string.weight] = hist.get(string.weight, 0) + 1
    return dict(sorted(hist.items()))


def iter_support_pairs(string: PauliString) -> Iterator[tuple[int, int]]:
    """Yield (root, other) CNOT pairs for the star-form parity circuit."""
    support = string.support
    if len(support) < 2:
        return
    root = support[0]
    for other in support[1:]:
        yield (root, other)

"""Quantum circuit intermediate representation.

Public surface: :class:`Gate`, :class:`QuantumCircuit`, the dependency DAG,
decomposition passes, and the workload circuit builders (random circuits,
Pauli-string evolution, QAOA).
"""

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import DependencyDAG
from repro.circuit.decompose import (
    basis_check,
    cancel_adjacent_inverses,
    count_basis_gates,
    decompose_to_cx,
    decompose_to_cz,
)
from repro.circuit.gate import Gate, gate_matrix
from repro.circuit.pauli import (
    PauliString,
    pauli_evolution_circuit,
    random_pauli_string,
    random_pauli_strings,
    trotter_circuit,
)
from repro.circuit.qaoa import (
    edges_from_circuit,
    maxcut_value,
    normalise_edges,
    qaoa_cost_layer,
    qaoa_maxcut_circuit,
)
from repro.circuit.qasm import DEFAULT_LIMITS, CircuitLimits, from_qasm, to_qasm
from repro.circuit.random_circuits import (
    bernstein_vazirani_circuit,
    ghz_circuit,
    qft_circuit,
    random_circuit,
    random_cx_circuit,
    standard_random_suite,
)

__all__ = [
    "Gate",
    "QuantumCircuit",
    "DependencyDAG",
    "gate_matrix",
    "decompose_to_cx",
    "decompose_to_cz",
    "cancel_adjacent_inverses",
    "basis_check",
    "count_basis_gates",
    "PauliString",
    "pauli_evolution_circuit",
    "trotter_circuit",
    "random_pauli_string",
    "random_pauli_strings",
    "qaoa_maxcut_circuit",
    "qaoa_cost_layer",
    "normalise_edges",
    "edges_from_circuit",
    "maxcut_value",
    "random_circuit",
    "random_cx_circuit",
    "standard_random_suite",
    "ghz_circuit",
    "qft_circuit",
    "bernstein_vazirani_circuit",
    "to_qasm",
    "from_qasm",
    "CircuitLimits",
    "DEFAULT_LIMITS",
]

"""Gate decomposition into native bases.

The Q-Pilot flow transpiles input circuits into the FPQA native set
``{CZ} ∪ 1Q`` (the global Rydberg laser implements CZ on every coupled
pair; the Raman laser implements arbitrary single-qubit rotations).  The
baseline superconducting / fixed-atom devices use ``{CX} ∪ 1Q``.

The decompositions here are textbook identities; they are exact (verified
by the statevector tests) and deliberately avoid any peephole optimisation
so that gate counting stays easy to reason about.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Callable

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.exceptions import DecompositionError

_PI = math.pi


# Gates are frozen dataclasses, so the parameterless helpers can hand out
# shared instances; this keeps the per-CX rewrite in decompose_to_cz from
# re-validating identical gates thousands of times.
@lru_cache(maxsize=65536)
def _h(q: int) -> Gate:
    return Gate("h", (q,))


@lru_cache(maxsize=65536)
def _cz(a: int, b: int) -> Gate:
    return Gate("cz", (a, b))


@lru_cache(maxsize=65536)
def _cx(c: int, t: int) -> Gate:
    return Gate("cx", (c, t))


def _rz(theta: float, q: int) -> Gate:
    return Gate("rz", (q,), (theta,))


def _rx(theta: float, q: int) -> Gate:
    return Gate("rx", (q,), (theta,))


def _ry(theta: float, q: int) -> Gate:
    return Gate("ry", (q,), (theta,))


# ----------------------------------------------------------------------
# two-qubit decompositions in terms of CX
# ----------------------------------------------------------------------
def _two_qubit_to_cx(gate: Gate) -> list[Gate]:
    """Rewrite any supported 2-qubit gate as CX + 1Q gates."""
    a, b = gate.qubits
    name = gate.name
    if name == "cx":
        return [gate]
    if name == "cz":
        return [_h(b), _cx(a, b), _h(b)]
    if name == "cy":
        return [Gate("sdg", (b,)), _cx(a, b), Gate("s", (b,))]
    if name == "ch":
        # controlled-H = (I ⊗ Ry(pi/4)) CX (I ⊗ Ry(-pi/4)) up to phase
        return [_ry(_PI / 4, b), _cx(a, b), _ry(-_PI / 4, b)]
    if name == "swap":
        return [_cx(a, b), _cx(b, a), _cx(a, b)]
    if name == "iswap":
        return [
            Gate("s", (a,)),
            Gate("s", (b,)),
            _h(a),
            _cx(a, b),
            _cx(b, a),
            _h(b),
        ]
    if name == "cp":
        (theta,) = gate.params
        return [
            _rz(theta / 2, a),
            _cx(a, b),
            _rz(-theta / 2, b),
            _cx(a, b),
            _rz(theta / 2, b),
        ]
    if name == "crz":
        (theta,) = gate.params
        return [_rz(theta / 2, b), _cx(a, b), _rz(-theta / 2, b), _cx(a, b)]
    if name == "crx":
        (theta,) = gate.params
        return [
            _h(b),
            _rz(theta / 2, b),
            _cx(a, b),
            _rz(-theta / 2, b),
            _cx(a, b),
            _h(b),
        ]
    if name == "cry":
        (theta,) = gate.params
        return [_ry(theta / 2, b), _cx(a, b), _ry(-theta / 2, b), _cx(a, b)]
    if name == "rzz":
        (theta,) = gate.params
        return [_cx(a, b), _rz(theta, b), _cx(a, b)]
    if name == "rxx":
        (theta,) = gate.params
        return [_h(a), _h(b), _cx(a, b), _rz(theta, b), _cx(a, b), _h(a), _h(b)]
    if name == "ryy":
        (theta,) = gate.params
        return [
            _rx(_PI / 2, a),
            _rx(_PI / 2, b),
            _cx(a, b),
            _rz(theta, b),
            _cx(a, b),
            _rx(-_PI / 2, a),
            _rx(-_PI / 2, b),
        ]
    if name == "ecr":
        # ECR is locally equivalent to CX; for compilation purposes we treat
        # it as one CX plus local rotations.
        return [_rz(-_PI / 2, a), _cx(a, b), _rx(_PI / 2, b)]
    raise DecompositionError(f"no CX decomposition known for 2-qubit gate {name}")


def _three_qubit_to_cx(gate: Gate) -> list[Gate]:
    """Standard 6-CX Toffoli-family decompositions."""
    name = gate.name
    if name == "ccx":
        c1, c2, t = gate.qubits
        return [
            _h(t),
            _cx(c2, t),
            Gate("tdg", (t,)),
            _cx(c1, t),
            Gate("t", (t,)),
            _cx(c2, t),
            Gate("tdg", (t,)),
            _cx(c1, t),
            Gate("t", (c2,)),
            Gate("t", (t,)),
            _h(t),
            _cx(c1, c2),
            Gate("t", (c1,)),
            Gate("tdg", (c2,)),
            _cx(c1, c2),
        ]
    if name == "ccz":
        c1, c2, t = gate.qubits
        return [_h(t)] + _three_qubit_to_cx(Gate("ccx", (c1, c2, t))) + [_h(t)]
    if name == "cswap":
        c, a, b = gate.qubits
        return [_cx(b, a)] + _three_qubit_to_cx(Gate("ccx", (c, a, b))) + [_cx(b, a)]
    raise DecompositionError(f"no CX decomposition known for 3-qubit gate {name}")


def decompose_to_cx(circuit: QuantumCircuit, *, keep_directives: bool = False) -> QuantumCircuit:
    """Decompose a circuit into the ``{CX} ∪ 1Q`` basis.

    Parameters
    ----------
    circuit:
        Input circuit (any supported gate set).
    keep_directives:
        If True, measure/reset/barrier are preserved; otherwise dropped.
    """
    out = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_cx")
    for gate in circuit.gates:
        if gate.is_directive:
            if keep_directives:
                out.append(gate)
            continue
        if gate.num_qubits == 1:
            out.append(gate)
        elif gate.num_qubits == 2:
            out.extend(_two_qubit_to_cx(gate))
        elif gate.num_qubits == 3:
            out.extend(
                g
                for raw in _three_qubit_to_cx(gate)
                for g in ([raw] if raw.num_qubits == 1 or raw.name == "cx" else _two_qubit_to_cx(raw))
            )
        else:
            raise DecompositionError(f"cannot decompose {gate.num_qubits}-qubit gate {gate.name}")
    return out


def decompose_to_cz(circuit: QuantumCircuit, *, keep_directives: bool = False) -> QuantumCircuit:
    """Decompose a circuit into the FPQA native ``{CZ} ∪ 1Q`` basis.

    Every 2-qubit gate is first rewritten over CX, then each CX is replaced
    by ``H(t) CZ H(t)``.  Adjacent Hadamard pairs produced by this rewrite
    are cancelled to avoid inflating the 1-qubit gate count artificially.
    """
    cx_circuit = decompose_to_cx(circuit, keep_directives=keep_directives)
    out = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_cz")
    for gate in cx_circuit.gates:
        if gate.name == "cx":
            control, target = gate.qubits
            out.extend([_h(target), _cz(control, target), _h(target)])
        else:
            out.append(gate)
    return cancel_adjacent_inverses(out)


def cancel_adjacent_inverses(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove adjacent self-cancelling 1-qubit gate pairs (H·H, X·X, ...).

    Only exact name-level cancellations between *immediately adjacent* gates
    on the same qubit (with no intervening gate touching that qubit) are
    applied.  This is a cheap clean-up pass, not an optimiser.
    """
    self_inverse = {"h", "x", "y", "z", "cz", "cx", "swap"}
    inverse_pairs = {("s", "sdg"), ("sdg", "s"), ("t", "tdg"), ("tdg", "t")}

    def cancels(first: Gate, second: Gate) -> bool:
        if first.qubits != second.qubits or first.params or second.params:
            return False
        if first.name == second.name and second.name in self_inverse:
            return True
        return (first.name, second.name) in inverse_pairs

    # Incremental bookkeeping instead of a backward list scan per gate:
    # ``result`` keeps tombstones (None) for cancelled gates, ``touching``
    # stacks the live gate indices per qubit (top = most recent gate on
    # that qubit), and ``prev_live`` chains each gate to the live gate that
    # preceded it so the "last gate overall" pointer can rewind in O(1)
    # amortised.  The output is identical to the original quadratic scan.
    result: list[Gate | None] = []
    prev_live: list[int] = []
    touching: dict[int, list[int]] = {}
    last_live = -1

    def rewind_live(index: int) -> int:
        walked = []
        while index >= 0 and result[index] is None:
            walked.append(index)
            index = prev_live[index]
        for i in walked:  # path compression keeps repeat rewinds O(1)
            prev_live[i] = index
        return index

    def append(gate: Gate) -> None:
        nonlocal last_live
        prev_live.append(last_live)
        last_live = len(result)
        for qubit in gate.qubits:
            touching.setdefault(qubit, []).append(last_live)
        result.append(gate)

    for gate in circuit.gates:
        if last_live >= 0:
            prev = result[last_live]
            if cancels(prev, gate):
                # the last gate overall is the top of every operand's stack
                for qubit in prev.qubits:
                    touching[qubit].pop()
                result[last_live] = None
                last_live = rewind_live(prev_live[last_live])
                continue
            # allow cancellation across gates acting on disjoint qubits
            if gate.is_one_qubit and not gate.params:
                stack = touching.get(gate.qubits[0])
                if stack:
                    other = result[stack[-1]]
                    if cancels(other, gate):
                        result[stack.pop()] = None
                        continue
                append(gate)
                continue
        append(gate)
    live_gates = [g for g in result if g is not None]
    return QuantumCircuit(circuit.num_qubits, live_gates, name=circuit.name)


def basis_check(circuit: QuantumCircuit, basis: str) -> bool:
    """Return True if every multi-qubit gate is in the requested basis.

    ``basis`` is ``"cz"`` or ``"cx"``.
    """
    if basis not in {"cz", "cx"}:
        raise DecompositionError(f"unknown basis {basis!r}")
    for gate in circuit.gates:
        if gate.is_directive or gate.num_qubits == 1:
            continue
        if gate.name != basis:
            return False
    return True


def count_basis_gates(circuit: QuantumCircuit) -> dict[str, int]:
    """Return counts of 1-qubit, 2-qubit, and other gates."""
    counts = {"1q": 0, "2q": 0, "other": 0}
    for gate in circuit.gates:
        if gate.is_directive:
            continue
        if gate.num_qubits == 1:
            counts["1q"] += 1
        elif gate.num_qubits == 2:
            counts["2q"] += 1
        else:
            counts["other"] += 1
    return counts

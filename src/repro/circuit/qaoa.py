"""QAOA circuit construction.

A (single-layer) Max-Cut QAOA circuit over a graph ``G = (V, E)`` applies
``RZZ(γ)`` on every edge (the cost layer) followed by ``RX(β)`` on every
qubit (the mixer).  The Q-Pilot QAOA router only needs the edge list — all
RZZ gates commute — but the full circuit form is needed for the baseline
devices, which must decompose and SWAP-route it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import WorkloadError


def normalise_edges(edges: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Canonicalise an edge list: (min, max) tuples, deduplicated, sorted."""
    seen: set[tuple[int, int]] = set()
    result: list[tuple[int, int]] = []
    for a, b in edges:
        a, b = int(a), int(b)
        if a == b:
            raise WorkloadError(f"self-loop ({a}, {b}) is not a valid QAOA edge")
        edge = (min(a, b), max(a, b))
        if edge in seen:
            continue
        seen.add(edge)
        result.append(edge)
    return sorted(result)


def qaoa_maxcut_circuit(
    num_qubits: int,
    edges: Iterable[tuple[int, int]],
    *,
    gamma: float | Sequence[float] = 0.7,
    beta: float | Sequence[float] = 0.3,
    layers: int = 1,
    initial_state: bool = True,
) -> QuantumCircuit:
    """Build a Max-Cut QAOA circuit.

    Parameters
    ----------
    num_qubits:
        Number of graph vertices / qubits.
    edges:
        Graph edges; each contributes one ``RZZ(γ)``.
    gamma, beta:
        Cost / mixer angles, either one value shared by all layers or one
        value per layer.
    layers:
        Number of QAOA layers ``p``.
    initial_state:
        If True, start from the usual ``|+>^n`` state (a layer of H gates).
    """
    if num_qubits < 1:
        raise WorkloadError("num_qubits must be >= 1")
    if layers < 1:
        raise WorkloadError("layers must be >= 1")
    edge_list = normalise_edges(edges)
    for a, b in edge_list:
        if b >= num_qubits:
            raise WorkloadError(f"edge ({a}, {b}) exceeds register of {num_qubits} qubits")
    gammas = [gamma] * layers if isinstance(gamma, (int, float)) else list(gamma)
    betas = [beta] * layers if isinstance(beta, (int, float)) else list(beta)
    if len(gammas) != layers or len(betas) != layers:
        raise WorkloadError("gamma/beta sequences must have one entry per layer")

    circuit = QuantumCircuit(num_qubits, name=f"qaoa_{num_qubits}q_{len(edge_list)}e_p{layers}")
    if initial_state:
        for q in range(num_qubits):
            circuit.h(q)
    for layer in range(layers):
        for a, b in edge_list:
            circuit.rzz(float(gammas[layer]), a, b)
        for q in range(num_qubits):
            circuit.rx(2.0 * float(betas[layer]), q)
    return circuit


def qaoa_cost_layer(num_qubits: int, edges: Iterable[tuple[int, int]], gamma: float = 0.7) -> QuantumCircuit:
    """Just the RZZ cost layer of a QAOA circuit (what the FPQA router schedules)."""
    if num_qubits < 1:
        raise WorkloadError("num_qubits must be >= 1")
    edge_list = normalise_edges(edges)
    for a, b in edge_list:
        if b >= num_qubits:
            raise WorkloadError(f"edge ({a}, {b}) exceeds register of {num_qubits} qubits")
    circuit = QuantumCircuit(num_qubits, name=f"qaoa_cost_{num_qubits}q_{len(edge_list)}e")
    for a, b in edge_list:
        circuit.rzz(float(gamma), a, b)
    return circuit


def edges_from_circuit(circuit: QuantumCircuit) -> list[tuple[int, int]]:
    """Extract the interaction graph (unique 2-qubit pairs) from a circuit."""
    return normalise_edges(circuit.two_qubit_pairs())


def maxcut_value(edges: Iterable[tuple[int, int]], assignment: Sequence[int]) -> int:
    """Number of cut edges for a ±1 / 0-1 vertex assignment (used in examples)."""
    cut = 0
    for a, b in normalise_edges(edges):
        if (assignment[a] and not assignment[b]) or (assignment[b] and not assignment[a]):
            cut += 1
    return cut

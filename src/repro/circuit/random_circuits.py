"""Random circuit generation.

The paper builds its "random circuit" benchmarks with Qiskit's
``random_circuit`` utility and then fixes the number of CNOT gates to a
multiple of the qubit count (2x, 5x, 10x, 20x, 50x).  Qiskit is not
available offline, so this module provides two generators with the same
knobs:

* :func:`random_circuit` — a faithful re-implementation of Qiskit's
  generator: it fills layers with randomly chosen 1-, 2- (and optionally
  3-) qubit gates over a random partition of the qubits.
* :func:`random_cx_circuit` — the workload actually used by the evaluation:
  a circuit with an exact number of 2-qubit gates (CX on uniformly random
  qubit pairs) interleaved with random 1-qubit rotations, matching the
  paper's "#2-Q gate = k × #qubit" construction.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.exceptions import WorkloadError
from repro.utils.rng import ensure_rng

_ONE_QUBIT_POOL: tuple[tuple[str, int], ...] = (
    ("x", 0),
    ("y", 0),
    ("z", 0),
    ("h", 0),
    ("s", 0),
    ("t", 0),
    ("sx", 0),
    ("rx", 1),
    ("ry", 1),
    ("rz", 1),
    ("u", 3),
)

_TWO_QUBIT_POOL: tuple[tuple[str, int], ...] = (
    ("cx", 0),
    ("cz", 0),
    ("swap", 0),
    ("cp", 1),
    ("rzz", 1),
)

_THREE_QUBIT_POOL: tuple[tuple[str, int], ...] = (("ccx", 0), ("ccz", 0))


def _random_params(count: int, rng: np.random.Generator) -> tuple[float, ...]:
    return tuple(float(x) for x in rng.uniform(0.0, 2.0 * math.pi, size=count))


def random_circuit(
    num_qubits: int,
    depth: int,
    *,
    max_operands: int = 2,
    seed: int | np.random.Generator | None = None,
    one_qubit_ratio: float = 0.5,
) -> QuantumCircuit:
    """Generate a random circuit layer by layer (Qiskit-style).

    Parameters
    ----------
    num_qubits:
        Width of the circuit.
    depth:
        Number of layers.  Each layer partitions the qubits into random
        groups of 1..max_operands qubits and applies a random gate to each.
    max_operands:
        Maximum gate arity (2 or 3).
    seed:
        Integer seed or numpy Generator.
    one_qubit_ratio:
        Probability that a group of size >= 2 is broken into 1-qubit gates
        instead (controls the 2Q-gate density).
    """
    if num_qubits < 1:
        raise WorkloadError("num_qubits must be >= 1")
    if depth < 0:
        raise WorkloadError("depth must be >= 0")
    if max_operands not in (1, 2, 3):
        raise WorkloadError("max_operands must be 1, 2 or 3")
    rng = ensure_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}q_d{depth}")
    for _ in range(depth):
        qubits = list(rng.permutation(num_qubits))
        while qubits:
            available = min(len(qubits), max_operands)
            arity = int(rng.integers(1, available + 1))
            if arity >= 2 and rng.random() < one_qubit_ratio:
                arity = 1
            operands = [int(qubits.pop()) for _ in range(arity)]
            if arity == 1:
                name, nparams = _ONE_QUBIT_POOL[int(rng.integers(len(_ONE_QUBIT_POOL)))]
            elif arity == 2:
                name, nparams = _TWO_QUBIT_POOL[int(rng.integers(len(_TWO_QUBIT_POOL)))]
            else:
                name, nparams = _THREE_QUBIT_POOL[int(rng.integers(len(_THREE_QUBIT_POOL)))]
            circuit.add(name, operands, _random_params(nparams, rng))
    return circuit


def random_cx_circuit(
    num_qubits: int,
    num_two_qubit_gates: int,
    *,
    seed: int | np.random.Generator | None = None,
    one_qubit_gates_per_two_qubit: float = 1.0,
    two_qubit_gate: str = "cx",
) -> QuantumCircuit:
    """Generate a random circuit with an exact number of 2-qubit gates.

    This matches the paper's evaluation workloads, where the number of CNOT
    gates is fixed at ``k × num_qubits`` for k in {2, 5, 10, 20, 50}.  Each
    2-qubit gate acts on a uniformly random (ordered) pair of distinct
    qubits; random 1-qubit rotations are interleaved at the requested
    density.

    Parameters
    ----------
    num_qubits:
        Width of the circuit (must be >= 2 for any 2-qubit gates).
    num_two_qubit_gates:
        Exact number of 2-qubit gates in the output.
    seed:
        Integer seed or numpy Generator.
    one_qubit_gates_per_two_qubit:
        Expected number of random 1-qubit gates inserted per 2-qubit gate.
    two_qubit_gate:
        Name of the 2-qubit gate to use ("cx" by default).
    """
    if num_qubits < 1:
        raise WorkloadError("num_qubits must be >= 1")
    if num_two_qubit_gates < 0:
        raise WorkloadError("num_two_qubit_gates must be >= 0")
    if num_two_qubit_gates > 0 and num_qubits < 2:
        raise WorkloadError("need at least 2 qubits for 2-qubit gates")
    rng = ensure_rng(seed)
    circuit = QuantumCircuit(
        num_qubits, name=f"random_{num_qubits}q_{num_two_qubit_gates}cx"
    )
    for _ in range(num_two_qubit_gates):
        n_one = rng.poisson(one_qubit_gates_per_two_qubit)
        for _ in range(int(n_one)):
            q = int(rng.integers(num_qubits))
            name, nparams = _ONE_QUBIT_POOL[int(rng.integers(len(_ONE_QUBIT_POOL)))]
            circuit.add(name, [q], _random_params(nparams, rng))
        a, b = rng.choice(num_qubits, size=2, replace=False)
        params = _random_params(1, rng) if two_qubit_gate in {"cp", "rzz"} else ()
        circuit.add(two_qubit_gate, [int(a), int(b)], params)
    return circuit


def bernstein_vazirani_circuit(num_qubits: int, secret: int | None = None, *, seed=None) -> QuantumCircuit:
    """Bernstein–Vazirani circuit on ``num_qubits`` data qubits + 1 ancilla.

    Used by the paper's execution-timeline figure (BV-70).  The last qubit
    is the phase ancilla.
    """
    if num_qubits < 1:
        raise WorkloadError("num_qubits must be >= 1")
    rng = ensure_rng(seed)
    if secret is None:
        # draw the secret bit by bit (2**num_qubits overflows int64 for wide registers)
        secret = 0
        while secret == 0:
            secret = sum(int(rng.integers(0, 2)) << bit for bit in range(num_qubits))
    total = num_qubits + 1
    circuit = QuantumCircuit(total, name=f"bv_{num_qubits}")
    ancilla = num_qubits
    circuit.x(ancilla)
    for q in range(total):
        circuit.h(q)
    for q in range(num_qubits):
        if (secret >> q) & 1:
            circuit.cx(q, ancilla)
    for q in range(num_qubits):
        circuit.h(q)
    for q in range(num_qubits):
        circuit.measure(q)
    return circuit


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """GHZ state preparation (H + CX chain), a common smoke-test workload."""
    if num_qubits < 1:
        raise WorkloadError("num_qubits must be >= 1")
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    return circuit


def qft_circuit(num_qubits: int) -> QuantumCircuit:
    """Quantum Fourier transform (no final swaps), dense long-range workload."""
    if num_qubits < 1:
        raise WorkloadError("num_qubits must be >= 1")
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for control in range(target + 1, num_qubits):
            angle = math.pi / (2 ** (control - target))
            circuit.cp(angle, control, target)
    return circuit


def standard_random_suite(
    sizes: Sequence[int] = (5, 10, 20, 50, 100),
    multiples: Sequence[int] = (2, 5, 10, 20, 50),
    *,
    seed: int = 2024,
) -> dict[tuple[int, int], QuantumCircuit]:
    """Build the full random-circuit benchmark grid used by Fig. 11.

    Returns a dict keyed by ``(num_qubits, multiple)`` where the circuit has
    ``multiple * num_qubits`` CX gates.
    """
    suite: dict[tuple[int, int], QuantumCircuit] = {}
    for i, n in enumerate(sizes):
        for j, multiple in enumerate(multiples):
            suite[(n, multiple)] = random_cx_circuit(
                n, multiple * n, seed=seed + 97 * i + j
            )
    return suite

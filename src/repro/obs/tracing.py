"""Tracing spans: where one compile spends its time, as a tree.

A :class:`Tracer` collects :class:`SpanRecord` values — name, parent,
monotonic start/end seconds, and a small attribute dict — forming one
span tree per traced request (``ingest → workload-build → route[stage…]
→ verify → store-write``).  Instrumentation sites call the module-level
:func:`span` helper, which is a shared no-op when no tracer is active:
disabled tracing costs one thread-local read per site, following the
same zero-overhead-when-off discipline as
:class:`~repro.utils.faults.FaultPlan` (pinned by the perf smoke).

Context propagation is explicit and picklable.  Within a process the
active tracer lives in a thread-local slot (:func:`activate`), so the
thread-pool farm backend can trace concurrent jobs without interleaving
their stacks.  Across the *process* boundary, a farm worker runs its
compile under its own throwaway tracer and ships the finished records
back on the result object (``FarmJobResult.spans`` /
``PointMetrics.spans`` — the same ride the ``job`` record takes); the
service side grafts them under its current span with :func:`adopt`,
re-assigning span ids so the merged tree stays consistent.

Determinism discipline: span *content* (names, topology, attributes) is
a pure function of the traced work, while start/end timestamps are
monotonic wall clock and therefore volatile.  Trace-equality assertions
must compare :meth:`Tracer.shape` (or names/attrs), never durations —
and span records never enter memo keys, digests, or canonical JSON.

:class:`Timer` is the single wall-clock timing primitive of the repo;
``repro.utils.profiling.Timer`` is a re-export of it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "SpanRecord",
    "Span",
    "Timer",
    "Tracer",
    "activate",
    "adopt",
    "current_tracer",
    "format_trace",
    "span",
    "tracing_enabled",
    "validate_spans",
]

#: Schema tag written by :meth:`Tracer.to_dict` (the ``--trace`` file).
TRACE_SCHEMA_VERSION = 1


class Timer:
    """Context manager measuring wall-clock seconds (``perf_counter``).

    >>> with Timer() as t:
    ...     do_work()
    >>> t.elapsed  # seconds

    The one timing implementation shared by spans, ``time_call`` and the
    benchmark harnesses; re-exported as ``repro.utils.profiling.Timer``.
    """

    __slots__ = ("elapsed", "_start")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@dataclass
class SpanRecord:
    """One finished span: plain data, picklable, JSON-able.

    ``start_s``/``end_s`` are monotonic (``perf_counter``) seconds —
    meaningful as durations and orderings within one tracer, volatile
    across runs.  Everything else is deterministic content.
    """

    name: str
    span_id: int
    parent_id: int | None
    start_s: float
    end_s: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpanRecord":
        return cls(
            name=str(data["name"]),
            span_id=int(data["span_id"]),
            parent_id=None if data.get("parent_id") is None else int(data["parent_id"]),
            start_s=float(data["start_s"]),
            end_s=float(data["end_s"]),
            attrs=dict(data.get("attrs") or {}),
        )


class Span:
    """A live, open span — context manager handed out by :func:`span`.

    ``set`` attaches an attribute (returns ``self`` for chaining); the
    no-op twin used when tracing is off has the same surface, so
    instrumentation sites never branch.
    """

    __slots__ = ("name", "span_id", "parent_id", "attrs", "_tracer", "_start")

    def __init__(
        self, tracer: "Tracer", name: str, span_id: int, parent_id: int | None, attrs: dict
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._tracer = tracer
        self._start = 0.0

    def set(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self, end)


class _NoopSpan:
    """Shared do-nothing span returned by :func:`span` when tracing is off."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()

# The active tracer is thread-local so the thread-executor farm can run
# one tracer per worker thread without interleaving span stacks.
_STATE = threading.local()


class Tracer:
    """Collects one process-local forest of spans.

    Span ids are sequential per tracer — deterministic given execution
    order — and parentage follows the tracer's open-span stack.  Use
    :func:`activate` to make a tracer the current thread's target of the
    module-level :func:`span` helper.
    """

    def __init__(self) -> None:
        self._records: list[SpanRecord] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # -- span lifecycle -------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        parent = self._stack[-1].span_id if self._stack else None
        span_id = self._next_id
        self._next_id += 1
        return Span(self, name, span_id, parent, dict(attrs))

    def _push(self, live: Span) -> None:
        # re-derive the parent at entry time: the span may have been
        # created before siblings opened/closed
        live.parent_id = self._stack[-1].span_id if self._stack else None
        self._stack.append(live)

    def _pop(self, live: Span, end: float) -> None:
        if self._stack and self._stack[-1] is live:
            self._stack.pop()
        else:  # tolerate mis-nested exits rather than corrupt the stack
            self._stack = [s for s in self._stack if s is not live]
        self._records.append(
            SpanRecord(
                name=live.name,
                span_id=live.span_id,
                parent_id=live.parent_id,
                start_s=live._start,
                end_s=end,
                attrs=live.attrs,
            )
        )

    # -- adoption (the pickle boundary) ---------------------------------
    def adopt(
        self,
        records: "Iterator[SpanRecord | dict] | list[SpanRecord | dict] | tuple",
        parent_id: int | None = None,
    ) -> list[SpanRecord]:
        """Graft foreign span records (e.g. from a farm worker) in.

        Ids are re-assigned from this tracer's sequence (topology
        preserved); records without a parent — the worker's roots — are
        re-parented under ``parent_id`` (default: the currently open
        span).  Timestamps are kept verbatim: they are only meaningful
        as durations, which re-parenting does not change.
        """
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        incoming = [
            r if isinstance(r, SpanRecord) else SpanRecord.from_dict(r) for r in records
        ]
        id_map: dict[int, int] = {}
        for record in incoming:
            id_map[record.span_id] = self._next_id
            self._next_id += 1
        adopted: list[SpanRecord] = []
        for record in incoming:
            new_parent = (
                id_map.get(record.parent_id, parent_id)
                if record.parent_id is not None
                else parent_id
            )
            adopted.append(
                SpanRecord(
                    name=record.name,
                    span_id=id_map[record.span_id],
                    parent_id=new_parent,
                    start_s=record.start_s,
                    end_s=record.end_s,
                    attrs=dict(record.attrs),
                )
            )
        self._records.extend(adopted)
        return adopted

    # -- views -----------------------------------------------------------
    def records(self) -> list[SpanRecord]:
        return list(self._records)

    def roots(self) -> list[SpanRecord]:
        return [r for r in self._records if r.parent_id is None]

    def children(self, span_id: int) -> list[SpanRecord]:
        kids = [r for r in self._records if r.parent_id == span_id]
        kids.sort(key=lambda r: (r.start_s, r.span_id))
        return kids

    def find(self, name: str) -> list[SpanRecord]:
        return [r for r in self._records if r.name == name]

    def shape(self, span_id: int | None = None) -> list:
        """Deterministic tree view — names only, no ids or timestamps.

        The trace-equality currency: two runs of the same work produce
        equal shapes even though every timestamp differs.
        """
        if span_id is None:
            return [[r.name, self.shape(r.span_id)] for r in self.roots()]
        return [[r.name, self.shape(r.span_id)] for r in self.children(span_id)]

    def clear(self) -> None:
        self._records.clear()
        self._stack.clear()
        self._next_id = 1

    def to_dict(self) -> dict[str, Any]:
        """JSON document for ``--trace FILE`` (read back by ``trace show``)."""
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "spans": [record.to_dict() for record in self._records],
        }


class _Activation:
    """Context manager binding a tracer to the current thread."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Tracer | None) -> None:
        self._tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer | None:
        self._previous = getattr(_STATE, "tracer", None)
        _STATE.tracer = self._tracer
        return self._tracer

    def __exit__(self, *exc_info: object) -> None:
        _STATE.tracer = self._previous


def activate(tracer: Tracer | None) -> _Activation:
    """``with activate(tracer):`` — route :func:`span` calls to ``tracer``.

    Pass ``None`` to suspend tracing within the block.  Bindings are
    per-thread and restore the previous tracer on exit.
    """
    return _Activation(tracer)


def current_tracer() -> Tracer | None:
    return getattr(_STATE, "tracer", None)


def tracing_enabled() -> bool:
    return getattr(_STATE, "tracer", None) is not None


def span(name: str, **attrs: Any) -> "Span | _NoopSpan":
    """Open a span on the current thread's tracer — shared no-op when off."""
    tracer = getattr(_STATE, "tracer", None)
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(name, **attrs)


def adopt(records, parent_id: int | None = None) -> list[SpanRecord]:
    """Adopt foreign span records into the current tracer (no-op when off)."""
    tracer = getattr(_STATE, "tracer", None)
    if tracer is None or not records:
        return []
    return tracer.adopt(records, parent_id=parent_id)


# ---------------------------------------------------------------------------
# Trace-document helpers (shared by tests, CI smoke, and ``trace show``).


def validate_spans(spans: "list[SpanRecord | dict]") -> list[str]:
    """Well-formedness problems of a span list (empty list = valid).

    Checks every span has ``start_s <= end_s`` and that every non-null
    parent id refers to a span in the list — the CI trace smoke's
    assertions.
    """
    records = [s if isinstance(s, SpanRecord) else SpanRecord.from_dict(s) for s in spans]
    ids = {record.span_id for record in records}
    problems: list[str] = []
    for record in records:
        if record.start_s > record.end_s:
            problems.append(f"span {record.span_id} ({record.name}) has start > end")
        if record.parent_id is not None and record.parent_id not in ids:
            problems.append(
                f"span {record.span_id} ({record.name}) has unknown parent {record.parent_id}"
            )
    return problems


def format_trace(document: dict[str, Any]) -> str:
    """Flame-style text rendering of a ``--trace`` document.

    One line per span, indented by depth, with duration, percentage of
    its root, and attributes::

        request                         41.2ms  100.0%
          ingest                         0.4ms    1.0%
          store-get                      0.1ms    0.2%  outcome=miss
          ...
    """
    records = [SpanRecord.from_dict(s) for s in document.get("spans", ())]
    problems = validate_spans(records)
    by_parent: dict[int | None, list[SpanRecord]] = {}
    for record in records:
        by_parent.setdefault(record.parent_id, []).append(record)
    for kids in by_parent.values():
        kids.sort(key=lambda r: (r.start_s, r.span_id))

    lines: list[str] = []

    def emit(record: SpanRecord, depth: int, root_duration: float) -> None:
        label = "  " * depth + record.name
        pct = (
            100.0 * record.duration_s / root_duration if root_duration > 0 else 100.0
        )
        attrs = " ".join(f"{k}={v}" for k, v in sorted(record.attrs.items()))
        lines.append(
            f"{label:<40} {record.duration_s * 1000.0:>9.2f}ms {pct:>6.1f}%"
            + (f"  {attrs}" if attrs else "")
        )
        for child in by_parent.get(record.span_id, ()):
            emit(child, depth + 1, root_duration)

    roots = by_parent.get(None, [])
    for root in roots:
        emit(root, 0, root.duration_s)
    summary = f"{len(records)} spans, {len(roots)} roots"
    if problems:
        summary += f", {len(problems)} problems: " + "; ".join(problems)
    lines.append(summary)
    return "\n".join(lines)

"""Structured JSON-lines event log on the ``repro.*`` logger hierarchy.

Discrete, rare happenings — a fault fired, a retry, a pool respawn, a
breaker transition, an eviction, a rejection, a dead-letter — are logged
as *events*: a short machine-readable name plus a flat field dict,
emitted through ordinary :mod:`logging` loggers
(``logging.getLogger(__name__)`` in each module, so the hierarchy is
``repro.core.farm``, ``repro.service.store``, …).

Nothing is configured at import time: with no handler attached an event
costs one ``isEnabledFor`` check, and the records render as normal log
lines under whatever configuration the host application has.  Call
:func:`configure_event_log` to attach the JSON-lines handler — one JSON
object per line, safe to ``tail -f`` and to parse — and
:func:`remove_event_log` to detach it.
"""

from __future__ import annotations

import json
import logging
import sys
from pathlib import Path
from typing import Any, IO

__all__ = [
    "JsonLinesFormatter",
    "configure_event_log",
    "log_event",
    "remove_event_log",
]

#: ``LogRecord`` attribute names used to carry structured payloads.
_EVENT_ATTR = "repro_event"
_FIELDS_ATTR = "repro_fields"


def log_event(logger: logging.Logger, event: str, /, **fields: Any) -> None:
    """Emit one structured event through ``logger`` (INFO level).

    ``fields`` must be JSON-serialisable scalars (or close to it); the
    formatter falls back to ``str`` for anything else.  Without the
    JSON-lines handler attached the record formats as
    ``event key=value ...`` under any standard formatter.
    """
    if not logger.isEnabledFor(logging.INFO):
        return
    tail = " ".join(f"{key}={value}" for key, value in fields.items())
    logger.info(
        "%s%s",
        event,
        f" {tail}" if tail else "",
        extra={_EVENT_ATTR: event, _FIELDS_ATTR: fields},
    )


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: ``{"ts", "level", "logger", "event", ...}``.

    Structured fields from :func:`log_event` are inlined; records from
    plain ``logger.warning(...)`` calls carry their rendered message
    under ``"message"`` so the whole ``repro.*`` hierarchy lands in one
    parseable stream.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
        }
        event = getattr(record, _EVENT_ATTR, None)
        if event is not None:
            payload["event"] = event
            payload.update(getattr(record, _FIELDS_ATTR, {}) or {})
        else:
            payload["event"] = "log"
            payload["message"] = record.getMessage()
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
        return json.dumps(payload, sort_keys=True, default=str)


def configure_event_log(
    target: "str | Path | IO[str] | None" = None,
    *,
    level: int = logging.INFO,
    logger_name: str = "repro",
) -> logging.Handler:
    """Attach a JSON-lines handler to the ``repro`` logger hierarchy.

    ``target`` is a path (appended to), an open text stream, or ``None``
    for stderr.  Returns the handler so callers can detach it with
    :func:`remove_event_log`.  The root logger is never touched, and the
    ``repro`` logger keeps propagating, so host applications stay in
    charge of their own logging.
    """
    if target is None:
        handler: logging.Handler = logging.StreamHandler(sys.stderr)
    elif isinstance(target, (str, Path)):
        handler = logging.FileHandler(target, encoding="utf-8")
    else:
        handler = logging.StreamHandler(target)
    handler.setFormatter(JsonLinesFormatter())
    handler.setLevel(level)
    logger = logging.getLogger(logger_name)
    logger.addHandler(handler)
    if logger.level == logging.NOTSET or logger.level > level:
        logger.setLevel(level)
    return handler


def remove_event_log(handler: logging.Handler, *, logger_name: str = "repro") -> None:
    """Detach a handler installed by :func:`configure_event_log`."""
    logging.getLogger(logger_name).removeHandler(handler)
    handler.close()

"""Counters, gauges and histograms behind one registry.

A :class:`MetricsRegistry` is the single source of truth for a
process's serving counters: :class:`~repro.service.service.ServiceStats`
and :class:`~repro.service.store.StoreStats` are *views* built from
registry instruments on access, never parallel hand-maintained fields,
and the farm folds its per-run ``last_stats`` counters into the same
registry.  Exposition is dependency-free: :meth:`MetricsRegistry.to_dict`
for JSON and :meth:`MetricsRegistry.to_prometheus` for the Prometheus
text format (``stats --metrics [json|prom]`` on the CLI).

:data:`REGISTRY` is the process-wide default for ad-hoc use.  Each
:class:`~repro.service.service.CompileService` creates (or is given) its
own registry so concurrent services — and tests — observe only their own
traffic; pass ``registry=REGISTRY`` to publish into the shared one.

:class:`TrajectoryRecorder` also lives here: the append-only JSON
trajectory files (``BENCH_compile.json`` …) are the repo's long-horizon
metrics surface, re-exported as ``repro.utils.profiling.TrajectoryRecorder``.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "TrajectoryRecorder",
    "get_registry",
]

#: Default histogram bucket upper bounds (seconds-flavoured, Prometheus style).
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class Counter:
    """Monotonically increasing value (int or float increments)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for decrements")
        with self._lock:
            self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Point-in-time value that can move both ways."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Cumulative-bucket histogram (count / sum / per-bucket counts)."""

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count", "sum", "_lock")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[index] += 1

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                str(bound): cumulative
                for bound, cumulative in zip(self.buckets, self.bucket_counts)
            },
        }


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _prom_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class MetricsRegistry:
    """Get-or-create home of every instrument, with two exposition formats.

    Instruments are keyed by ``(name, sorted labels)``; asking twice for
    the same key returns the same object, so call sites never cache
    handles unless they are hot.  Names should be Prometheus-safe
    (``[a-z_][a-z0-9_]*``) — the registry does not rewrite them.
    """

    def __init__(self) -> None:
        self._instruments: "dict[tuple[str, tuple], Counter | Gauge | Histogram]" = {}
        self._lock = threading.Lock()

    def _get(self, factory, name: str, labels: dict[str, Any], **kwargs):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = factory(name, key[1], **kwargs)
                    self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, *, buckets: Iterable[float] = DEFAULT_BUCKETS, **labels: Any
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def instruments(self) -> "list[Counter | Gauge | Histogram]":
        return [self._instruments[key] for key in sorted(self._instruments)]

    # -- exposition ------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON exposition: ``{name{label=value}: snapshot}`` sorted by key."""
        data: dict[str, Any] = {}
        for instrument in self.instruments():
            suffix = _prom_labels(instrument.labels)
            data[instrument.name + suffix] = instrument.snapshot()
        return data

    def to_prometheus(self) -> str:
        """Prometheus text exposition (one ``# TYPE`` line per metric name)."""
        lines: list[str] = []
        typed: set[str] = set()
        for instrument in self.instruments():
            if instrument.name not in typed:
                typed.add(instrument.name)
                lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                for bound, bucket_count in zip(
                    instrument.buckets, instrument.bucket_counts
                ):
                    le = 'le="%s"' % bound
                    labels = _prom_labels(instrument.labels, le)
                    lines.append(f"{instrument.name}_bucket{labels} {bucket_count}")
                labels = _prom_labels(instrument.labels, 'le="+Inf"')
                lines.append(f"{instrument.name}_bucket{labels} {instrument.count}")
                labels = _prom_labels(instrument.labels)
                lines.append(f"{instrument.name}_sum{labels} {instrument.sum}")
                lines.append(f"{instrument.name}_count{labels} {instrument.count}")
            else:
                value = instrument.value
                rendered = str(int(value)) if float(value).is_integer() else repr(value)
                lines.append(
                    f"{instrument.name}{_prom_labels(instrument.labels)} {rendered}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


#: Process-wide default registry (ad-hoc instrumentation; services make
#: their own unless handed this one explicitly).
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


class TrajectoryRecorder:
    """Append benchmark entries to a JSON trajectory file.

    The file holds ``{"benchmark": ..., "entries": [...]}``; every
    :meth:`record` call appends one entry with a timestamp, so the file
    grows by one entry per benchmark run and preserves the full history.
    """

    def __init__(self, path: str | Path, benchmark: str):
        self.path = Path(path)
        self.benchmark = benchmark

    def load(self) -> dict:
        if self.path.exists():
            try:
                document = json.loads(self.path.read_text())
            except (ValueError, OSError):
                document = None
            if isinstance(document, dict) and isinstance(document.get("entries"), list):
                return document
            # unreadable or malformed: move it aside so record() never
            # overwrites the accumulated trajectory history
            backup = self.path.with_name(self.path.name + ".corrupt")
            try:
                self.path.replace(backup)
            except OSError:
                pass
        return {"benchmark": self.benchmark, "entries": []}

    def record(self, entry: dict) -> dict:
        """Append ``entry`` (timestamped) and write the file back."""
        document = self.load()
        stamped = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), **entry}
        document["entries"].append(stamped)
        self.path.write_text(json.dumps(document, indent=1, sort_keys=False) + "\n")
        return stamped

"""Unified observability: tracing spans, metrics registry, event log.

``repro.obs`` is dependency-free (stdlib only) and threaded through the
compiler, farm and service layers:

* :mod:`repro.obs.tracing` — :class:`Span`/:class:`Tracer` with
  thread-local context propagation; one traced compile produces a span
  tree (``ingest → workload-build → route[stage…] → verify →
  store-write``), with worker-side spans crossing the pickle boundary
  as records on ``FarmJobResult``/``PointMetrics``.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges and histograms with JSON and Prometheus-text exposition;
  ``ServiceStats``/``StoreStats`` are views over it.
* :mod:`repro.obs.events` — JSON-lines structured events on the
  ``repro.*`` logger hierarchy.

Invariants (the :class:`~repro.utils.faults.FaultPlan` discipline):
observability state never enters memo keys, digests or canonical JSON;
everything is off by default with near-zero overhead; span timestamps
are volatile, span *content* deterministic.
"""

from repro.obs.events import (
    JsonLinesFormatter,
    configure_event_log,
    log_event,
    remove_event_log,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TrajectoryRecorder,
    get_registry,
)
from repro.obs.tracing import (
    Span,
    SpanRecord,
    Timer,
    Tracer,
    activate,
    adopt,
    current_tracer,
    format_trace,
    span,
    tracing_enabled,
    validate_spans,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesFormatter",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "SpanRecord",
    "Timer",
    "Tracer",
    "TrajectoryRecorder",
    "activate",
    "adopt",
    "configure_event_log",
    "current_tracer",
    "format_trace",
    "get_registry",
    "log_event",
    "remove_event_log",
    "span",
    "tracing_enabled",
    "validate_spans",
]

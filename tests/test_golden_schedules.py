"""Golden-schedule regression tests.

Each golden file under ``tests/golden/`` is the canonical serialisation of
one small known-good schedule (one per router).  The tests assert byte
stability in both directions:

* compiling the fixed input again must reproduce the golden bytes, so a
  refactor cannot silently reorder stages or change the emitted gates;
* deserialising the golden file and re-serialising it must also reproduce
  the bytes, so the JSON round-trip is lossless.

If a router change is *intentional*, refresh the files with
``PYTHONPATH=src python tests/golden/regenerate.py`` and review the diff
(the procedure is documented in ROADMAP.md).
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.sim import verify_schedule_equivalence
from repro.utils.serialization import schedule_from_json, schedule_to_json

_REGEN_PATH = Path(__file__).resolve().parent / "golden" / "regenerate.py"
_spec = importlib.util.spec_from_file_location("golden_regenerate", _REGEN_PATH)
golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden)

CASES = sorted(golden.GOLDEN_CASES)


@pytest.mark.parametrize("name", CASES)
def test_schedule_matches_golden_bytes(name):
    path = golden.golden_path(name)
    assert path.exists(), (
        f"golden file {path} missing — run PYTHONPATH=src python tests/golden/regenerate.py"
    )
    assert golden.render(name) == path.read_text(), (
        f"{name}: schedule drifted from tests/golden/{name}.json; if the change is "
        "intentional, regenerate the golden files and review the diff"
    )


@pytest.mark.parametrize("name", CASES)
def test_golden_round_trip_is_byte_stable(name):
    text = golden.golden_path(name).read_text()
    restored = schedule_from_json(text)
    assert schedule_to_json(restored, canonical=True) + "\n" == text


@pytest.mark.parametrize("name", CASES)
def test_canonical_serialisation_is_deterministic(name):
    schedule = golden.GOLDEN_CASES[name]()
    first = schedule_to_json(schedule, canonical=True)
    second = schedule_to_json(golden.GOLDEN_CASES[name](), canonical=True)
    assert first == second


def test_golden_qaoa_schedule_still_verifies():
    """The pinned QAOA schedule stays semantically equivalent to its circuit."""
    from repro.circuit import qaoa_cost_layer
    from repro.workloads import ring_graph_edges

    schedule = golden.build_qaoa_schedule()
    reference = qaoa_cost_layer(6, ring_graph_edges(6), gamma=0.7)
    assert verify_schedule_equivalence(reference, schedule, seed=17)

"""Unit tests for the FPQA architecture model (config, SLM array, AOD grid)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import HardwareError
from repro.hardware import AODGrid, FPQAConfig, SLMArray


class TestFPQAConfig:
    def test_defaults_fill_aod_shape(self):
        config = FPQAConfig(slm_rows=4, slm_cols=6)
        assert config.aod_rows == 4
        assert config.aod_cols == 6
        assert config.num_slm_sites == 24
        assert config.num_aod_sites == 24

    def test_spacing_constraint(self):
        with pytest.raises(HardwareError):
            FPQAConfig(slm_rows=2, slm_cols=2, rydberg_radius_um=4.0, site_spacing_um=5.0)

    def test_interaction_offset_constraint(self):
        with pytest.raises(HardwareError):
            FPQAConfig(slm_rows=2, slm_cols=2, interaction_offset_um=10.0)

    def test_fidelity_bounds(self):
        with pytest.raises(HardwareError):
            FPQAConfig(slm_rows=2, slm_cols=2, two_qubit_fidelity=1.5)

    def test_invalid_dimensions(self):
        with pytest.raises(HardwareError):
            FPQAConfig(slm_rows=0, slm_cols=3)

    def test_square_for(self):
        config = FPQAConfig.square_for(10)
        assert config.num_slm_sites >= 10
        assert abs(config.slm_rows - config.slm_cols) <= 1

    def test_with_width(self):
        config = FPQAConfig.with_width(100, 8)
        assert config.slm_cols == 8
        assert config.slm_rows == 13
        assert config.num_slm_sites >= 100

    def test_for_qubits_keeps_width(self):
        config = FPQAConfig(slm_rows=2, slm_cols=16)
        grown = config.for_qubits(100)
        assert grown.slm_cols == 16
        assert grown.num_slm_sites >= 100


class TestSLMArray:
    def test_reading_order_mapping(self, small_fpqa_config):
        array = SLMArray(small_fpqa_config, 12)
        assert array.position(0) == (0, 0)
        assert array.position(3) == (0, 3)
        assert array.position(4) == (1, 0)
        assert array.position(11) == (2, 3)

    def test_qubit_at_inverse(self, small_fpqa_config):
        array = SLMArray(small_fpqa_config, 10)
        for qubit in range(10):
            row, col = array.position(qubit)
            assert array.qubit_at(row, col) == qubit
        assert array.qubit_at(2, 3) is None  # site beyond qubit 9
        assert array.qubit_at(5, 0) is None  # outside the array

    def test_out_of_range_qubit(self, small_fpqa_config):
        array = SLMArray(small_fpqa_config, 12)
        with pytest.raises(HardwareError):
            array.position(12)

    def test_too_many_qubits(self, small_fpqa_config):
        with pytest.raises(HardwareError):
            SLMArray(small_fpqa_config, 13)

    def test_physical_coordinates_and_distance(self, small_fpqa_config):
        array = SLMArray(small_fpqa_config, 12)
        spacing = small_fpqa_config.site_spacing_um
        assert array.physical_xy(0) == (0.0, 0.0)
        assert array.physical_xy(5) == (1 * spacing, 1 * spacing)
        assert array.euclidean_distance(0, 5) == pytest.approx(math.hypot(spacing, spacing))
        assert array.grid_distance(0, 5) == 2

    def test_occupied_rows(self, small_fpqa_config):
        assert SLMArray(small_fpqa_config, 9).occupied_rows() == 3
        assert SLMArray(small_fpqa_config, 8).occupied_rows() == 2


class TestAODGrid:
    def test_load_unload(self):
        grid = AODGrid(rows=2, cols=3)
        grid.load(0, 1, ancilla_id=7)
        assert grid.num_live_atoms == 1
        assert grid.unload(0, 1) == 7
        assert grid.num_live_atoms == 0

    def test_double_load_rejected(self):
        grid = AODGrid(rows=2, cols=2)
        grid.load(0, 0, 1)
        with pytest.raises(HardwareError):
            grid.load(0, 0, 2)

    def test_unload_empty_rejected(self):
        grid = AODGrid(rows=1, cols=1)
        with pytest.raises(HardwareError):
            grid.unload(0, 0)

    def test_row_moves_cannot_cross(self):
        grid = AODGrid(rows=3, cols=2)
        displacement = grid.move_rows([0.0, 2.0, 4.0])
        assert displacement == pytest.approx(2.0)
        with pytest.raises(HardwareError):
            grid.move_rows([2.0, 1.0, 4.0])

    def test_col_moves_cannot_cross(self):
        grid = AODGrid(rows=2, cols=3)
        grid.move_cols([0.5, 1.5, 2.5])
        with pytest.raises(HardwareError):
            grid.move_cols([3.0, 1.5, 2.5])

    def test_atom_positions_follow_grid(self):
        grid = AODGrid(rows=2, cols=2)
        grid.load(1, 0, ancilla_id=3)
        grid.move_rows([0.0, 5.0])
        grid.move_cols([1.0, 2.0])
        assert grid.atom_positions()[3] == (5.0, 1.0)

    def test_invalid_shape(self):
        with pytest.raises(HardwareError):
            AODGrid(rows=0, cols=2)
        with pytest.raises(HardwareError):
            AODGrid(rows=2, cols=2, row_positions=[0.0])

"""Unit tests for the QAOA router (Alg. 3)."""

from __future__ import annotations

import pytest

from repro.circuit import qaoa_cost_layer, qaoa_maxcut_circuit
from repro.core import QAOARouter, QAOARouterOptions, route_qaoa
from repro.core.schedule import (
    AncillaCreationStage,
    AncillaRecycleStage,
    OneQubitStage,
    RydbergStage,
)
from repro.exceptions import WorkloadError
from repro.hardware import FPQAConfig
from repro.sim import verify_schedule_equivalence
from repro.workloads import random_graph_edges, regular_graph_edges, ring_graph_edges


class TestStructure:
    def test_schedule_validates(self, ring_edges):
        schedule = route_qaoa(6, ring_edges)
        schedule.validate()

    def test_every_edge_executed_exactly_once(self):
        edges = random_graph_edges(10, 0.4, seed=3)
        schedule = route_qaoa(10, edges)
        executed = []
        for stage in schedule.stages:
            if isinstance(stage, RydbergStage):
                for gate in stage.gates:
                    (slot,) = gate.ancilla_slots
                    (target,) = gate.data_qubits
                    executed.append((min(slot, target), max(slot, target)))
        assert sorted(executed) == sorted(edges)

    def test_gate_count_formula(self, ring_edges):
        num_qubits = 6
        schedule = route_qaoa(num_qubits, ring_edges)
        # one creation CNOT and one recycle CNOT per qubit, one RZZ per edge
        assert schedule.num_two_qubit_gates() == 2 * num_qubits + len(ring_edges)

    def test_depth_formula(self, ring_edges):
        schedule = route_qaoa(6, ring_edges)
        stages = schedule.metadata["stages_per_layer"][0]
        assert schedule.two_qubit_depth() == 2 + stages

    def test_one_ancilla_per_qubit(self, ring_edges):
        schedule = route_qaoa(6, ring_edges)
        assert schedule.max_concurrent_ancillas() == 6
        creations = [s for s in schedule.stages if isinstance(s, AncillaCreationStage)]
        assert len(creations) == 1
        assert len(creations[0].copies) == 6

    def test_each_atom_used_once_per_pulse(self):
        edges = random_graph_edges(12, 0.5, seed=7)
        schedule = route_qaoa(12, edges)
        for stage in schedule.stages:
            if isinstance(stage, RydbergStage):
                operands = [op for gate in stage.gates for op in gate.operands]
                assert len(operands) == len(set(operands))

    def test_full_circuit_includes_preparation_and_mixer(self, ring_edges):
        schedule = route_qaoa(6, ring_edges, full_circuit=True)
        one_qubit_stages = [s for s in schedule.stages if isinstance(s, OneQubitStage)]
        assert len(one_qubit_stages) == 2  # |+> preparation and the mixer
        assert one_qubit_stages[0].gates[0].name == "h"
        assert one_qubit_stages[-1].gates[0].name == "rx"

    def test_multiple_layers_repeat_creation(self, ring_edges):
        schedule = route_qaoa(6, ring_edges, layers=2)
        creations = [s for s in schedule.stages if isinstance(s, AncillaCreationStage)]
        recycles = [s for s in schedule.stages if isinstance(s, AncillaRecycleStage)]
        assert len(creations) == 2
        assert len(recycles) == 2

    def test_invalid_inputs(self):
        with pytest.raises(WorkloadError):
            route_qaoa(0, [])
        with pytest.raises(WorkloadError):
            route_qaoa(4, [(0, 9)])

    def test_gamma_propagates_to_gates(self, ring_edges):
        options = QAOARouterOptions(gamma=1.23)
        schedule = QAOARouter(options=options).compile(6, ring_edges)
        for stage in schedule.stages:
            if isinstance(stage, RydbergStage):
                for gate in stage.gates:
                    assert gate.params == (1.23,)


class TestParallelism:
    def test_parallelism_at_least_one(self):
        edges = regular_graph_edges(20, 3, seed=5)
        schedule = route_qaoa(20, edges)
        assert schedule.average_parallelism() >= 1.0

    def test_larger_problems_have_more_parallelism(self):
        small = route_qaoa(10, regular_graph_edges(10, 3, seed=2))
        large = route_qaoa(40, regular_graph_edges(40, 3, seed=2))
        assert large.average_parallelism() >= small.average_parallelism()

    def test_depth_far_below_edge_count_for_dense_graphs(self):
        edges = random_graph_edges(30, 0.4, seed=9)
        schedule = route_qaoa(30, edges)
        assert schedule.metadata["stages_per_layer"][0] < len(edges)

    def test_compile_time_recorded(self, ring_edges):
        schedule = route_qaoa(6, ring_edges)
        assert schedule.metadata["compile_time_s"] > 0


class TestEquivalence:
    def test_ring_cost_layer_matches_reference(self, ring_edges):
        schedule = route_qaoa(6, ring_edges)
        reference = qaoa_cost_layer(6, ring_edges, gamma=0.7)
        assert verify_schedule_equivalence(reference, schedule, seed=2)

    def test_random_graph_cost_layer_matches_reference(self):
        edges = random_graph_edges(5, 0.6, seed=13)
        schedule = route_qaoa(5, edges)
        reference = qaoa_cost_layer(5, edges, gamma=0.7)
        assert verify_schedule_equivalence(reference, schedule, seed=4)

    def test_full_circuit_matches_reference(self):
        edges = ring_graph_edges(4)
        options = QAOARouterOptions(gamma=0.9, beta=0.35)
        schedule = QAOARouter(options=options).compile(4, edges, full_circuit=True)
        reference = qaoa_maxcut_circuit(4, edges, gamma=0.9, beta=0.35)
        assert verify_schedule_equivalence(reference, schedule, seed=6)

    def test_two_layer_circuit_matches_reference(self):
        edges = ring_graph_edges(4)
        options = QAOARouterOptions(gamma=0.5, beta=0.2)
        schedule = QAOARouter(options=options).compile(4, edges, layers=2, full_circuit=True)
        reference = qaoa_maxcut_circuit(4, edges, gamma=0.5, beta=0.2, layers=2)
        assert verify_schedule_equivalence(reference, schedule, seed=8)

"""SweepResult semantics: metrics, deterministic tie-breaking, JSON archive."""

from __future__ import annotations

import json

import pytest

from repro.core import PointMetrics, SweepResult, WorkloadSpec, sweep_grid
from repro.core.dse import DesignPoint
from repro.exceptions import QPilotError
from repro.hardware.fpqa import FPQAConfig


def make_point(
    width: int,
    *,
    depth: int,
    error_rate: float = 0.1,
    compile_time_s: float | None = 0.5,
    axes: dict | None = None,
) -> DesignPoint:
    metrics = PointMetrics(
        depth=depth,
        error_rate=error_rate,
        success_probability=1.0 - error_rate,
        num_two_qubit_gates=depth * 2,
        num_one_qubit_gates=4,
        num_atoms=width,
        total_movement_distance=3.5,
        execution_time_us=12.0,
        average_parallelism=1.5,
        compile_time_s=compile_time_s,
    )
    return DesignPoint(
        width=width, config=FPQAConfig.with_width(width, width), metrics=metrics, axes=axes or {}
    )


class TestBestMetric:
    def test_best_depth_breaks_ties_on_smallest_width(self):
        sweep = SweepResult(
            "ties",
            points=[
                make_point(64, depth=10),
                make_point(8, depth=10),
                make_point(16, depth=10),
                make_point(32, depth=12),
            ],
        )
        assert sweep.best("depth").width == 8

    def test_best_depth_prefers_minimum_over_tiebreak(self):
        sweep = SweepResult("d", points=[make_point(8, depth=12), make_point(64, depth=9)])
        assert sweep.best("depth").width == 64

    def test_best_error_rate(self):
        sweep = SweepResult(
            "e",
            points=[
                make_point(8, depth=5, error_rate=0.3),
                make_point(16, depth=9, error_rate=0.1),
                make_point(32, depth=9, error_rate=0.1),
            ],
        )
        best = sweep.best("error_rate")
        assert best.width == 16  # tie on error_rate -> smallest width

    def test_best_compile_time(self):
        sweep = SweepResult(
            "c",
            points=[
                make_point(8, depth=5, compile_time_s=0.9),
                make_point(16, depth=9, compile_time_s=0.2),
            ],
        )
        assert sweep.best("compile_time").width == 16

    def test_best_compile_time_requires_timings(self):
        sweep = SweepResult("c", points=[make_point(8, depth=5, compile_time_s=None)])
        with pytest.raises(QPilotError):
            sweep.best("compile_time")

    def test_unknown_metric_raises(self):
        sweep = SweepResult("u", points=[make_point(8, depth=5)])
        with pytest.raises(QPilotError):
            sweep.best("latency")

    def test_empty_sweep_raises(self):
        with pytest.raises(QPilotError):
            SweepResult("empty").best()

    def test_design_point_requires_metrics_or_result(self):
        with pytest.raises(QPilotError):
            DesignPoint(width=8, config=FPQAConfig.with_width(8, 8))


class TestJsonRoundTrip:
    @pytest.fixture()
    def sweep(self) -> SweepResult:
        return SweepResult(
            "archive",
            points=[
                make_point(8, depth=7, axes={"workload": "a"}),
                make_point(16, depth=5, axes={"workload": "b", "two_qubit_fidelity": 0.99}),
            ],
            meta={
                "widths": [8, 16],
                "executor": "reference",
                "wall_s": 1.23,
                "max_workers": 4,
                "expired": 1,
            },
        )

    def test_round_trip_preserves_everything_durable(self, sweep):
        clone = SweepResult.from_json(sweep.to_json())
        assert clone.workload_name == sweep.workload_name
        assert clone.as_series() == sweep.as_series()
        assert [p.axes for p in clone.points] == [p.axes for p in sweep.points]
        assert [p.metrics for p in clone.points] == [p.metrics for p in sweep.points]
        assert [p.config for p in clone.points] == [p.config for p in sweep.points]
        assert clone.meta == sweep.meta

    def test_canonical_form_is_byte_stable_and_sorted(self, sweep):
        canonical = sweep.to_json(canonical=True)
        round_tripped = SweepResult.from_json(canonical).to_json(canonical=True)
        assert canonical == round_tripped
        # volatile wall-clock fields are stripped, keys are sorted
        data = json.loads(canonical)
        assert "wall_s" not in data["meta"]
        assert "max_workers" not in data["meta"]
        assert "executor" not in data["meta"]
        # farm deadline counters are load-dependent, not durable
        assert "expired" not in data["meta"]
        assert all(p["metrics"]["compile_time_s"] is None for p in data["points"])
        assert canonical == json.dumps(data, indent=2, sort_keys=True)

    def test_non_canonical_keeps_wall_clock_fields(self, sweep):
        data = json.loads(sweep.to_json())
        assert data["meta"]["wall_s"] == 1.23
        assert data["points"][0]["metrics"]["compile_time_s"] == 0.5

    def test_unsupported_schema_version_raises(self, sweep):
        data = json.loads(sweep.to_json())
        data["schema_version"] = 99
        with pytest.raises(QPilotError):
            SweepResult.from_dict(data)

    def test_compiled_sweep_round_trips(self):
        spec = WorkloadSpec.qaoa_random_graph(12, 0.3, seed=5)
        sweep = sweep_grid(spec, widths=(4, 12), executor="reference")
        clone = SweepResult.from_json(sweep.to_json())
        assert clone.as_series() == sweep.as_series()
        assert clone.to_json(canonical=True) == sweep.to_json(canonical=True)

    def test_canonical_json_identical_across_executors(self):
        """The executor oracle extends to archives: same grid, same bytes."""
        spec = WorkloadSpec.random_circuit(10, 3, seed=8)
        reference = sweep_grid(spec, widths=(4, 8), executor="reference")
        parallel = sweep_grid(spec, widths=(4, 8), executor="process")
        assert reference.to_json(canonical=True) == parallel.to_json(canonical=True)


class TestJobRecords:
    """sweep_grid points carry the archive → cache-warming hook."""

    def test_points_record_rebuildable_farm_jobs(self):
        from repro.core.farm import FarmJob, FarmOptions

        spec = WorkloadSpec.qsim(8, 0.3, num_strings=6, seed=4)
        sweep = sweep_grid(spec, widths=(4, 8), executor="reference")
        for point in sweep.points:
            record = point.job
            assert record is not None
            rebuilt = FarmJob(
                workload=WorkloadSpec.from_dict(record["workload"]),
                config=point.config,
                options=FarmOptions.from_dict(record["options"]),
            )
            # the digest survives serialisation: warmed entries land under
            # the exact keys live traffic will request
            assert rebuilt.digest() == record["digest"]

    def test_job_records_survive_the_archive_round_trip(self):
        spec = WorkloadSpec.random_circuit(8, 3, seed=9)
        sweep = sweep_grid(spec, widths=(4,), executor="reference")
        clone = SweepResult.from_json(sweep.to_json())
        assert [p.job for p in clone.points] == [p.job for p in sweep.points]
        canonical = SweepResult.from_json(sweep.to_json(canonical=True))
        assert [p.job for p in canonical.points] == [p.job for p in sweep.points]


class TestGrouping:
    def test_by_workload_splits_points(self):
        sweep = SweepResult(
            "grid",
            points=[
                make_point(8, depth=7, axes={"workload": "a"}),
                make_point(16, depth=5, axes={"workload": "b"}),
                make_point(16, depth=6, axes={"workload": "a"}),
            ],
        )
        groups = sweep.by_workload()
        assert sorted(groups) == ["a", "b"]
        assert groups["a"].as_series() == [(8, 7), (16, 6)]
        assert groups["b"].as_series() == [(16, 5)]

    def test_grid_meta_records_farm_stats(self):
        spec = WorkloadSpec.random_circuit(10, 3, seed=2)
        sweep = sweep_grid(spec, widths=(4, 4, 8), executor="reference")
        assert sweep.meta["executor"] == "reference"
        assert sweep.meta["num_jobs"] == 3
        assert sweep.meta["num_unique_jobs"] == 2  # duplicate width memoised
        assert sweep.meta["wall_s"] >= 0.0


class TestStreamedSweep:
    def test_stream_true_returns_lazy_design_points(self):
        spec = WorkloadSpec.random_circuit(10, 3, seed=5)
        stream = sweep_grid(spec, widths=(4, 8), executor="reference", stream=True)
        assert not isinstance(stream, SweepResult)
        points = list(stream)
        assert [type(p) for p in points] == [DesignPoint, DesignPoint]
        eager = sweep_grid(spec, widths=(4, 8), executor="reference")
        assert [(p.width, p.depth) for p in points] == eager.as_series()

    def test_streamed_points_rebuild_an_equivalent_sweep(self):
        """Collecting a stream reproduces the eager sweep's best point."""
        spec = WorkloadSpec.random_circuit(10, 3, seed=5)
        points = list(sweep_grid(spec, widths=(4, 8, 16), executor="reference", stream=True))
        rebuilt = SweepResult("streamed", points=points)
        eager = sweep_grid(spec, widths=(4, 8, 16), executor="reference")
        assert rebuilt.best("depth").width == eager.best("depth").width
        assert sorted(rebuilt.as_series()) == sorted(eager.as_series())

"""End-to-end integration tests: Q-Pilot vs the baseline flow on shared workloads.

These tests exercise the same pipelines the benchmark harness runs, at small
sizes, and assert the qualitative findings of the paper: the FPQA flying-
ancilla schedules achieve (much) lower 2-qubit depth than SWAP routing on
fixed-coupling devices, the application-specific routers beat the generic
router on their domains, and Q-Pilot's compile time stays tiny while the
exact solver's explodes.
"""

from __future__ import annotations

import time

import pytest

from repro import QPilotCompiler
from repro.baselines import (
    BaselineTranspiler,
    ExactStageSolver,
    IterativePeelingSolver,
    SabreOptions,
)
from repro.circuit import qaoa_cost_layer, random_cx_circuit, trotter_circuit
from repro.core import GenericRouter, QAOARouter, QSimRouter
from repro.hardware import FPQAConfig, ibm_washington_device, square_fixed_atom_array
from repro.workloads import qsim_workload, random_circuit_workload, regular_graph_edges


SABRE_FAST = SabreOptions(layout_trials=1)


class TestQPilotVsBaselines:
    def test_random_circuit_depth_advantage(self):
        """Fig. 11 in miniature: Q-Pilot beats the square fixed-atom array on depth."""
        circuit = random_circuit_workload(20, 5, seed=1)
        qpilot = QPilotCompiler().compile_circuit(circuit)
        baseline = BaselineTranspiler(square_fixed_atom_array(16), SABRE_FAST).compile(circuit)
        assert qpilot.depth < baseline.two_qubit_depth

    def test_qsim_depth_advantage_is_large(self):
        """Fig. 12 in miniature: large depth reduction for Pauli-string workloads."""
        strings = qsim_workload(20, 0.5, num_strings=10, seed=2)
        qpilot = QPilotCompiler().compile_pauli_strings(strings)
        reference = trotter_circuit(strings, 20)
        baseline = BaselineTranspiler(square_fixed_atom_array(16), SABRE_FAST).compile(reference)
        # the advantage grows with qubit count (Fig. 12 reports 27.7x at 100
        # qubits); at this miniature size we only require a clear win
        assert qpilot.depth * 1.3 < baseline.two_qubit_depth

    def test_qaoa_depth_advantage(self):
        """Fig. 13 in miniature: QAOA cost layers compile to far fewer 2Q layers."""
        edges = regular_graph_edges(20, 4, seed=3)
        qpilot = QPilotCompiler().compile_qaoa(20, edges)
        reference = qaoa_cost_layer(20, edges)
        baseline = BaselineTranspiler(square_fixed_atom_array(16), SABRE_FAST).compile(reference)
        assert qpilot.depth < baseline.two_qubit_depth

    def test_superconducting_baseline_is_worst_on_dense_workloads(self):
        """The heavy-hex device (sparsest coupling) pays the largest SWAP overhead."""
        circuit = random_circuit_workload(20, 2, seed=4)
        heavy_hex = BaselineTranspiler(ibm_washington_device(), SABRE_FAST).compile(circuit)
        square = BaselineTranspiler(square_fixed_atom_array(16), SABRE_FAST).compile(circuit)
        assert heavy_hex.num_two_qubit_gates >= square.num_two_qubit_gates


class TestApplicationSpecificAdvantage:
    def test_qsim_router_beats_generic_router(self):
        """Fig. 16 (left): the quantum-simulation router reduces depth and gates."""
        strings = qsim_workload(16, 0.4, num_strings=8, seed=5)
        config = FPQAConfig.square_for(16)
        specialised = QSimRouter(config).compile(strings)
        generic = GenericRouter(config).compile(trotter_circuit(strings, 16))
        assert specialised.two_qubit_depth() < generic.two_qubit_depth()
        assert specialised.num_two_qubit_gates() <= generic.num_two_qubit_gates()

    def test_qaoa_router_beats_generic_router(self):
        """Fig. 16 (right): the QAOA router reduces depth and gates."""
        edges = regular_graph_edges(16, 3, seed=6)
        config = FPQAConfig.square_for(16)
        specialised = QAOARouter(config).compile(16, edges)
        generic = GenericRouter(config).compile(qaoa_cost_layer(16, edges))
        assert specialised.two_qubit_depth() < generic.two_qubit_depth()
        assert specialised.num_two_qubit_gates() < generic.num_two_qubit_gates()


class TestSolverComparison:
    def test_qpilot_much_faster_than_exact_solver(self):
        """Table 2 in miniature: similar-quality schedules, orders of magnitude faster."""
        edges = regular_graph_edges(20, 3, seed=7)
        start = time.perf_counter()
        qpilot = QPilotCompiler().compile_qaoa(20, edges)
        qpilot_time = time.perf_counter() - start
        solver = ExactStageSolver(timeout_s=30).compile(20, edges)
        assert qpilot_time < 2.0
        assert not solver.timed_out
        # the solver is depth-optimal; Q-Pilot's greedy stays within a small
        # constant factor (the paper reports <= 4x, our greedy is ~7x here)
        qpilot_stages = qpilot.schedule.metadata["stages_per_layer"][0]
        assert qpilot_stages <= 8 * solver.depth

    def test_iterative_solver_depth_between_optimal_and_qpilot(self):
        edges = regular_graph_edges(16, 3, seed=8)
        exact = ExactStageSolver(timeout_s=30).compile(16, edges)
        iterative = IterativePeelingSolver().compile(16, edges)
        assert exact.depth <= iterative.depth <= exact.depth + 3


class TestScalabilitySmoke:
    @pytest.mark.parametrize("num_qubits", [100, 200])
    def test_qaoa_router_scales(self, num_qubits):
        """Sec. 4.3: compile time stays small as the problem grows."""
        edges = regular_graph_edges(num_qubits, 3, seed=9)
        start = time.perf_counter()
        schedule = QAOARouter().compile(num_qubits, edges)
        elapsed = time.perf_counter() - start
        schedule.validate()
        assert elapsed < 20.0
        assert schedule.metadata["stages_per_layer"][0] < len(edges)

    def test_qsim_router_scales(self):
        strings = qsim_workload(100, 0.1, num_strings=20, seed=10)
        start = time.perf_counter()
        schedule = QSimRouter().compile(strings)
        elapsed = time.perf_counter() - start
        schedule.validate()
        assert elapsed < 20.0

    def test_generic_router_scales(self):
        circuit = random_cx_circuit(100, 200, seed=11)
        start = time.perf_counter()
        schedule = GenericRouter().compile(circuit)
        elapsed = time.perf_counter() - start
        schedule.validate()
        assert elapsed < 30.0

"""Unit tests for the QPilotCompiler facade."""

from __future__ import annotations

import pytest

from repro import QPilotCompiler
from repro.circuit import PauliString, random_cx_circuit
from repro.core import CompilationResult
from repro.exceptions import RoutingError
from repro.hardware import FPQAConfig


class TestDispatch:
    def test_circuit_goes_to_generic_router(self, random_small_circuit):
        result = QPilotCompiler().compile(random_small_circuit)
        assert isinstance(result, CompilationResult)
        assert result.router == "generic"
        assert result.metadata["router"] == "generic"

    def test_pauli_strings_go_to_qsim_router(self, small_pauli_strings):
        result = QPilotCompiler().compile(small_pauli_strings)
        assert result.router == "qsim"

    def test_single_pauli_string(self):
        result = QPilotCompiler().compile(PauliString("ZZXI", 0.3))
        assert result.router == "qsim"

    def test_graph_tuple_goes_to_qaoa_router(self, ring_edges):
        result = QPilotCompiler().compile((6, ring_edges))
        assert result.router == "qaoa"

    def test_unknown_workload_rejected(self):
        with pytest.raises(RoutingError):
            QPilotCompiler().compile({"not": "a workload"})

    def test_explicit_methods(self, random_small_circuit, small_pauli_strings, ring_edges):
        compiler = QPilotCompiler()
        assert compiler.compile_circuit(random_small_circuit).router == "generic"
        assert compiler.compile_pauli_strings(small_pauli_strings).router == "qsim"
        assert compiler.compile_qaoa(6, ring_edges).router == "qaoa"


class TestResults:
    def test_result_exposes_key_metrics(self, random_small_circuit):
        result = QPilotCompiler().compile_circuit(random_small_circuit)
        assert result.depth == result.schedule.two_qubit_depth()
        assert result.num_two_qubit_gates == result.schedule.num_two_qubit_gates()
        assert result.compile_time_s is not None and result.compile_time_s > 0
        summary = result.summary()
        assert summary["router"] == "generic"
        assert summary["depth"] == result.depth

    def test_schedule_is_validated(self, random_small_circuit):
        # _package calls validate(); a successful compile implies a legal schedule
        result = QPilotCompiler().compile_circuit(random_small_circuit)
        result.schedule.validate()

    def test_custom_config_is_used(self, ring_edges):
        config = FPQAConfig(slm_rows=2, slm_cols=3)
        result = QPilotCompiler(config).compile_qaoa(6, ring_edges)
        assert result.schedule.config.slm_cols == 3

    def test_config_grows_for_large_circuits(self):
        config = FPQAConfig(slm_rows=2, slm_cols=2)
        circuit = random_cx_circuit(9, 9, seed=1)
        result = QPilotCompiler(config).compile_circuit(circuit)
        assert result.schedule.config.num_slm_sites >= 9

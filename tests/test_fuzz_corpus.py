"""Adversarial QASM corpus: every file compiles oracle-identically or rejects typed.

The corpus in ``tests/fuzz_corpus/`` encodes its expectation in the file
name: ``ok_*`` files must parse, flow through the service's untrusted
ingestion boundary and compile **byte-identically** between the serial
``reference`` oracle and a pooled executor; ``bad_*`` files must be
rejected with a typed :class:`CircuitError` /
:class:`InvalidCircuitError` — within a bounded time, with zero farm
dispatches and zero dead letters.  A Hypothesis-generated token-soup
sweep pins the same either/or guarantee on arbitrary text.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.qasm import from_qasm
from repro.core.farm import CompileFarm, FarmJob, FarmOptions, WorkloadSpec
from repro.exceptions import CircuitError, InvalidCircuitError
from repro.hardware.fpqa import FPQAConfig
from repro.service import CompileService
from repro.utils.serialization import canonical_json

CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.qasm"))
OK_FILES = [p for p in CORPUS if p.name.startswith("ok_")]
BAD_FILES = [p for p in CORPUS if p.name.startswith("bad_")]

#: Generous per-file parse bound — hostile inputs must fail fast, and
#: even the largest valid corpus file parses in well under this.
PARSE_TIME_BOUND_S = 1.0


def _read(path: Path) -> str:
    return path.read_text(encoding="utf-8")


def test_corpus_is_present_and_named():
    assert len(OK_FILES) >= 5, "corpus lost its valid files"
    assert len(BAD_FILES) >= 10, "corpus lost its adversarial files"
    assert set(OK_FILES) | set(BAD_FILES) == set(CORPUS), (
        "every corpus file must declare its expectation via ok_/bad_ prefix"
    )


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_parse_or_typed_rejection_within_bound(path):
    """The tentpole guarantee: parse success or typed CircuitError, bounded."""
    text = _read(path)
    start = time.perf_counter()
    try:
        circuit = from_qasm(text)
    except CircuitError as exc:
        elapsed = time.perf_counter() - start
        assert path.name.startswith("bad_"), f"{path.name} rejected: {exc}"
        assert elapsed < PARSE_TIME_BOUND_S, f"{path.name} took {elapsed:.3f}s to reject"
        assert exc.line is None or exc.line >= 1
    else:
        elapsed = time.perf_counter() - start
        assert path.name.startswith("ok_"), f"{path.name} unexpectedly parsed"
        assert elapsed < PARSE_TIME_BOUND_S
        assert circuit.num_qubits >= 1


@pytest.mark.parametrize("path", BAD_FILES, ids=lambda p: p.name)
def test_service_rejects_typed_without_dispatch(path, tmp_path):
    """Invalid input: typed InvalidCircuitError, no farm, no dead letter."""
    service = CompileService(tmp_path / "store", executor="reference")
    with pytest.raises(InvalidCircuitError) as excinfo:
        service.compile_qasm(_read(path), width=4)
    assert isinstance(excinfo.value.__cause__, CircuitError)
    assert service.stats.rejected_invalid == 1
    assert service.stats.farm_dispatches == 0
    assert service.queue.depth == 0
    assert not service.queue.dead_letters


@pytest.mark.parametrize("path", OK_FILES, ids=lambda p: p.name)
def test_ok_files_compile_oracle_identical(path):
    """Valid input: reference and thread executors emit identical bytes."""
    spec = WorkloadSpec.qasm(_read(path))
    config = FPQAConfig.with_width(spec.num_qubits, min(spec.num_qubits, 8))
    job = FarmJob(spec, config, FarmOptions())
    (ref,) = CompileFarm("reference").run([job], with_schedules=True)
    (thr,) = CompileFarm("thread", max_workers=2).run([job], with_schedules=True)
    assert canonical_json(ref.schedule) == canonical_json(thr.schedule), path.name


def test_warm_repeat_upload_is_store_hit_zero_routing(tmp_path):
    """Acceptance: a repeat QASM upload serves from the store, no router."""
    text = _read(OK_FILES[0])
    store = tmp_path / "store"
    cold_service = CompileService(store, executor="thread")
    cold = cold_service.compile_qasm(text, width=4)
    assert cold.source == "compiled"
    assert cold_service.stats.farm_dispatches == 1
    # a fresh service over the same store models a new serving process
    warm_service = CompileService(store, executor="thread")
    warm = warm_service.compile_qasm(text, width=4)
    assert warm.cached
    assert warm_service.stats.farm_dispatches == 0
    assert warm.schedule_json() == cold.schedule_json()


def test_uploads_content_address_by_text_sha1(tmp_path):
    """Same text → same digest (coalesces); different text → different."""
    text = _read(OK_FILES[0])
    spec_a = WorkloadSpec.qasm(text)
    spec_b = WorkloadSpec.qasm(text, name="renamed-upload")
    assert spec_a.fingerprint() == spec_b.fingerprint()
    assert spec_a.qasm_sha1() == spec_b.qasm_sha1()
    other = WorkloadSpec.qasm(_read(OK_FILES[1]))
    assert other.fingerprint() != spec_a.fingerprint()


# --- Hypothesis QASM generator: either/or on arbitrary token soup -------

_FRAGMENTS = st.sampled_from(
    [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        "qreg q[4];",
        "qreg q[0];",
        "qreg r[4];",
        "creg c[4];",
        "h q[0];",
        "cx q[0], q[1];",
        "cx q[1], q[1];",
        "cx q[3], q[9];",
        "rx(pi/2) q[2];",
        "rx(9**9**9) q[0];",
        "rz(__import__) q[1];",
        "rz() q[1];",
        "measure q[0] -> c[0];",
        "measure q[9] -> c[0];",
        "barrier q;",
        "frobnicate q[0];",
        "h q[0]",
        "cx q[0 q[1];",
        "u3(0.1, 0.2) q[0];",
        ";;;",
        "qreg q[999999];",
        "rx((((pi)))) q[3];",
        "// a comment",
        "",
    ]
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_FRAGMENTS, min_size=0, max_size=12))
def test_generated_qasm_parses_or_rejects_typed(fragments):
    """No input assembled from plausible fragments escapes the dichotomy."""
    text = "\n".join(fragments) + "\n"
    start = time.perf_counter()
    try:
        circuit = from_qasm(text)
    except CircuitError:
        pass
    else:
        assert circuit.num_qubits >= 1
    assert time.perf_counter() - start < PARSE_TIME_BOUND_S

"""Unit tests for the reporting utilities and the DSE sweep."""

from __future__ import annotations

import pytest

from repro.core import QPilotCompiler, sweep_array_width
from repro.core.dse import architecture_search
from repro.exceptions import QPilotError
from repro.utils.reporting import format_csv, format_series, format_table, geometric_mean, ratio
from repro.workloads import regular_graph_edges


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 223, "b": "z"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        assert "b" not in text.splitlines()[0]

    def test_format_csv(self):
        rows = [{"x": 1, "y": 2.5}, {"x": 3, "y": 4.0}]
        csv = format_csv(rows)
        assert csv.splitlines()[0] == "x,y"
        assert len(csv.splitlines()) == 3

    def test_format_series(self):
        text = format_series([(1, 10), (2, 20)], header=("width", "depth"))
        assert "width" in text and "depth" in text

    def test_ratio_and_geometric_mean(self):
        assert ratio(10, 2) == pytest.approx(5.0)
        assert ratio(10, 0) == float("inf")
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0


class TestDesignSpaceExploration:
    @pytest.fixture(scope="class")
    def sweep(self):
        edges = regular_graph_edges(16, 3, seed=1)

        def compile_fn(compiler: QPilotCompiler):
            return compiler.compile_qaoa(16, edges)

        return sweep_array_width(compile_fn, 16, widths=(4, 8, 16), workload_name="qaoa16")

    def test_sweep_has_one_point_per_width(self, sweep):
        assert [p.width for p in sweep.points] == [4, 8, 16]
        assert all(p.depth > 0 for p in sweep.points)
        assert all(p.config.slm_cols == p.width for p in sweep.points)

    def test_best_point_minimises_depth(self, sweep):
        best = sweep.best("depth")
        assert best.depth == min(p.depth for p in sweep.points)
        best_err = sweep.best("error_rate")
        assert best_err.error_rate == min(p.error_rate for p in sweep.points)

    def test_series_matches_points(self, sweep):
        series = sweep.as_series()
        assert series == [(p.width, p.depth) for p in sweep.points]

    def test_unknown_metric(self, sweep):
        with pytest.raises(QPilotError):
            sweep.best("latency")

    def test_architecture_search_returns_best(self):
        edges = regular_graph_edges(12, 3, seed=2)

        def compile_fn(compiler: QPilotCompiler):
            return compiler.compile_qaoa(12, edges)

        best = architecture_search(compile_fn, 12, widths=(4, 12), workload_name="qaoa12")
        assert best.width in (4, 12)

    def test_empty_sweep_best_raises(self):
        from repro.core.dse import SweepResult

        with pytest.raises(QPilotError):
            SweepResult("empty").best()

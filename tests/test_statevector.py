"""Unit tests for the dense statevector simulator."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuit import Gate, QuantumCircuit, qft_circuit
from repro.exceptions import QPilotError
from repro.sim import Statevector, circuit_unitary, circuits_equivalent, unitaries_equivalent


class TestConstruction:
    def test_default_is_all_zero(self):
        state = Statevector(3)
        assert state.data[0] == pytest.approx(1.0)
        assert np.allclose(state.probabilities().sum(), 1.0)

    def test_from_label(self):
        state = Statevector.from_label("10")  # qubit0=1, qubit1=0
        assert state.probability_of(0, 1) == pytest.approx(1.0)
        assert state.probability_of(1, 0) == pytest.approx(1.0)

    def test_invalid_label(self):
        with pytest.raises(QPilotError):
            Statevector.from_label("01x")

    def test_random_state_normalised(self):
        state = Statevector.random(4, seed=1)
        assert np.isclose(np.linalg.norm(state.data), 1.0)

    def test_too_many_qubits_rejected(self):
        with pytest.raises(QPilotError):
            Statevector(30)


class TestGateApplication:
    def test_x_flips_qubit(self):
        state = Statevector(2)
        state.apply_gate(Gate("x", (1,)))
        assert state.probability_of(1, 1) == pytest.approx(1.0)
        assert state.probability_of(0, 0) == pytest.approx(1.0)

    def test_h_creates_superposition(self):
        state = Statevector(1)
        state.apply_gate(Gate("h", (0,)))
        assert state.probability_of(0, 0) == pytest.approx(0.5)

    def test_cx_entangles(self):
        state = Statevector(2)
        state.apply_gates([Gate("h", (0,)), Gate("cx", (0, 1))])
        probs = state.probabilities()
        assert probs[0b00] == pytest.approx(0.5)
        assert probs[0b11] == pytest.approx(0.5)

    def test_cx_operand_order_matters(self):
        # control qubit 1, target qubit 0, input |q1 q0> = |10>
        state = Statevector.from_label("01")  # qubit1 = 1
        state.apply_gate(Gate("cx", (1, 0)))
        assert state.probability_of(0, 1) == pytest.approx(1.0)

    def test_three_qubit_gate(self):
        state = Statevector(3)
        state.apply_gates([Gate("x", (0,)), Gate("x", (1,)), Gate("ccx", (0, 1, 2))])
        assert state.probability_of(2, 1) == pytest.approx(1.0)

    def test_directives_ignored(self):
        state = Statevector(1)
        state.apply_gate(Gate("measure", (0,)))
        assert state.data[0] == pytest.approx(1.0)

    def test_gate_on_out_of_range_qubit(self):
        state = Statevector(1)
        with pytest.raises(QPilotError):
            state.apply_gate(Gate("x", (3,)))

    def test_apply_matrix_matches_kron_for_random_two_qubit(self, rng):
        matrix = np.linalg.qr(rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4)))[0]
        state = Statevector.random(3, seed=rng)
        manual = state.copy()
        # build full operator acting on qubits (0, 2): qubit0 least significant
        full = np.zeros((8, 8), dtype=complex)
        for i in range(8):
            for j in range(8):
                # bits: qubit0, qubit1, qubit2
                if ((i >> 1) & 1) != ((j >> 1) & 1):
                    continue
                row = ((i >> 2) & 1) * 2 + (i & 1)
                col = ((j >> 2) & 1) * 2 + (j & 1)
                full[i, j] = matrix[row, col]
        expected = full @ manual.data
        state.apply_matrix(matrix, [0, 2])
        assert np.allclose(state.data, expected)


class TestQueries:
    def test_expectation_z(self):
        state = Statevector(1)
        assert state.expectation_z(0) == pytest.approx(1.0)
        state.apply_gate(Gate("x", (0,)))
        assert state.expectation_z(0) == pytest.approx(-1.0)

    def test_fidelity_and_equiv(self):
        a = Statevector.random(3, seed=2)
        b = a.copy()
        assert a.fidelity(b) == pytest.approx(1.0)
        assert a.equiv(b)
        b.data *= np.exp(1j * 0.7)
        assert a.equiv(b)
        c = Statevector(3)
        assert not a.equiv(c)

    def test_reduced_density_matrix_pure_product(self):
        state = Statevector(2)
        state.apply_gate(Gate("h", (0,)))
        rho = state.reduced_density_matrix([0])
        assert np.allclose(rho, 0.5 * np.ones((2, 2)))
        assert state.partial_trace_is_pure([0])

    def test_entangled_state_not_pure_after_trace(self):
        state = Statevector(2)
        state.apply_gates([Gate("h", (0,)), Gate("cx", (0, 1))])
        assert not state.partial_trace_is_pure([0])

    def test_extended_appends_zero_ancillas(self):
        state = Statevector.random(2, seed=3)
        extended = state.extended(2)
        assert extended.num_qubits == 4
        assert extended.probability_of(2, 0) == pytest.approx(1.0)
        assert extended.probability_of(3, 0) == pytest.approx(1.0)
        assert np.allclose(extended.data[:4], state.data)


class TestUnitaries:
    def test_circuit_unitary_of_x(self):
        circuit = QuantumCircuit(1).x(0)
        unitary = circuit_unitary(circuit)
        assert np.allclose(unitary, [[0, 1], [1, 0]])

    def test_unitaries_equivalent_up_to_phase(self):
        circuit = QuantumCircuit(1).h(0)
        u = circuit_unitary(circuit)
        assert unitaries_equivalent(u, np.exp(1j * 0.3) * u)
        assert not unitaries_equivalent(u, np.eye(2))

    def test_qft_unitary_matches_dft(self):
        n = 3
        circuit = qft_circuit(n)
        u = circuit_unitary(circuit)
        dim = 2**n
        # every entry of a QFT matrix has magnitude 1/sqrt(dim)
        assert np.allclose(np.abs(u), 1.0 / math.sqrt(dim))
        # QFT without final swaps equals the DFT up to a bit-reversal
        # permutation on the input and/or output register
        dft = np.array(
            [[np.exp(2j * math.pi * i * j / dim) / math.sqrt(dim) for j in range(dim)] for i in range(dim)]
        )

        def reverse_bits(x: int) -> int:
            return int(format(x, f"0{n}b")[::-1], 2)

        perm = np.zeros((dim, dim))
        for i in range(dim):
            perm[i, reverse_bits(i)] = 1.0
        candidates = [dft, perm @ dft, dft @ perm, perm @ dft @ perm]
        assert any(unitaries_equivalent(u, candidate) for candidate in candidates)

    def test_circuits_equivalent_detects_difference(self):
        a = QuantumCircuit(2).cx(0, 1)
        b = QuantumCircuit(2).cx(1, 0)
        assert not circuits_equivalent(a, b)
        assert circuits_equivalent(a, a.copy())

"""``repro.utils.profiling`` tests: Timer, time_call, TrajectoryRecorder.

The profiling module is a compatibility facade since the observability
PR: :class:`Timer` and :class:`TrajectoryRecorder` are re-exports of the
``repro.obs`` primitives, so these tests pin both the historic API and
the re-export identity (one timing implementation, one recorder).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.utils.profiling import Timer, TrajectoryRecorder, time_call


class TestTimer:
    def test_measures_elapsed_seconds(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01

    def test_start_stop_api(self):
        timer = Timer().start()
        elapsed = timer.stop()
        assert elapsed == timer.elapsed >= 0.0

    def test_timers_nest_independently(self):
        with Timer() as outer:
            with Timer() as inner:
                time.sleep(0.005)
        assert outer.elapsed >= inner.elapsed >= 0.005

    def test_is_the_obs_timer(self):
        from repro.obs.tracing import Timer as ObsTimer

        assert Timer is ObsTimer


class TestTimeCall:
    def test_returns_result_and_best_seconds(self):
        calls = []

        def work(value):
            calls.append(value)
            return value * 2

        result, seconds = time_call(work, 21, repeats=3, warmup=1)
        assert result == 42
        assert seconds >= 0.0
        assert len(calls) == 4  # 1 warmup + 3 timed

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)


class TestTrajectoryRecorder:
    def test_appends_timestamped_entries(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        recorder = TrajectoryRecorder(path, "unit_test")
        recorder.record({"metric": 1})
        recorder.record({"metric": 2})
        document = json.loads(path.read_text())
        assert document["benchmark"] == "unit_test"
        assert [entry["metric"] for entry in document["entries"]] == [1, 2]
        assert all("timestamp" in entry for entry in document["entries"])

    def test_corrupt_file_is_moved_aside_not_overwritten(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        path.write_text("{not json")
        recorder = TrajectoryRecorder(path, "unit_test")
        recorder.record({"metric": 1})
        assert (tmp_path / "BENCH_test.json.corrupt").read_text() == "{not json"
        document = json.loads(path.read_text())
        assert len(document["entries"]) == 1

    def test_is_the_obs_recorder(self):
        from repro.obs.metrics import TrajectoryRecorder as ObsRecorder

        assert TrajectoryRecorder is ObsRecorder

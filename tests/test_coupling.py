"""Unit tests for coupling graphs."""

from __future__ import annotations

import pytest

from repro.exceptions import HardwareError
from repro.hardware import CouplingGraph, linear_device, ring_device


class TestConstruction:
    def test_basic(self):
        graph = CouplingGraph(3, [(0, 1), (1, 2)])
        assert graph.num_qubits == 3
        assert graph.num_edges == 2
        assert graph.are_adjacent(0, 1)
        assert not graph.are_adjacent(0, 2)

    def test_edges_are_canonical_and_deduplicated(self):
        graph = CouplingGraph(3, [(1, 0), (0, 1), (2, 1)])
        assert graph.edges == ((0, 1), (1, 2))

    def test_self_loop_rejected(self):
        with pytest.raises(HardwareError):
            CouplingGraph(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(HardwareError):
            CouplingGraph(2, [(0, 5)])

    def test_zero_qubits_rejected(self):
        with pytest.raises(HardwareError):
            CouplingGraph(0, [])

    def test_contains_and_iteration(self):
        graph = ring_device(4)
        assert (0, 1) in graph
        assert (1, 0) in graph
        assert (0, 2) not in graph
        assert len(list(graph)) == 4


class TestDistances:
    def test_line_distances(self):
        line = linear_device(5)
        assert line.distance(0, 4) == 4
        assert line.distance(2, 2) == 0
        assert line.distance(1, 3) == 2

    def test_ring_distances_wrap(self):
        ring = ring_device(6)
        assert ring.distance(0, 3) == 3
        assert ring.distance(0, 5) == 1

    def test_shortest_path_endpoints_and_adjacency(self):
        line = linear_device(6)
        path = line.shortest_path(1, 5)
        assert path[0] == 1 and path[-1] == 5
        assert len(path) == line.distance(1, 5) + 1
        for a, b in zip(path[:-1], path[1:]):
            assert line.are_adjacent(a, b)

    def test_disconnected_distance_is_large(self):
        graph = CouplingGraph(4, [(0, 1), (2, 3)])
        assert graph.distance(0, 2) > graph.num_qubits
        assert not graph.is_connected()
        with pytest.raises(HardwareError):
            graph.shortest_path(0, 3)

    def test_connected(self):
        assert linear_device(7).is_connected()


class TestQueries:
    def test_degrees(self):
        ring = ring_device(5)
        assert all(ring.degree(q) == 2 for q in range(5))
        assert ring.average_degree() == pytest.approx(2.0)

    def test_neighbors(self):
        line = linear_device(4)
        assert line.neighbors(0) == {1}
        assert line.neighbors(2) == {1, 3}

    def test_subgraph_relabels(self):
        line = linear_device(5)
        sub = line.subgraph([2, 3, 4])
        assert sub.num_qubits == 3
        assert sub.are_adjacent(0, 1)
        assert sub.are_adjacent(1, 2)
        assert sub.num_edges == 2

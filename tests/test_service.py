"""Compile-service tests: queue dedup, cache serving, streaming, CLI.

The acceptance suite for the service layer.  The central property
(``TestCacheServing``): a repeated :class:`CompileRequest` for an
identical (workload, config, options) key is answered from the disk
store with **zero** farm dispatches — no router runs — and the served
canonical schedule is byte-identical to the freshly compiled one.
"""

from __future__ import annotations

import json

import pytest

from repro.circuit import CircuitLimits
from repro.core import FarmOptions, QPilotCompiler, WorkloadSpec
from repro.exceptions import CircuitError, InvalidCircuitError, QPilotError
from repro.hardware.fpqa import FPQAConfig
from repro.service import (
    CompileRequest,
    CompileService,
    JobQueue,
    ScheduleStore,
)
from repro.service.cli import EXIT_INVALID_CIRCUIT
from repro.service.cli import main as cli_main
from repro.utils.serialization import schedule_to_json

#: One request per workload family, small enough for tier-1.
FAMILY_REQUESTS = [
    CompileRequest.for_width(WorkloadSpec.random_circuit(8, 3, seed=21), 4),
    CompileRequest.for_width(WorkloadSpec.qsim(8, 0.3, num_strings=6, seed=22), 4),
    CompileRequest.for_width(WorkloadSpec.qaoa_random_graph(8, 0.4, seed=23), 4),
]


def service_for(tmp_path, **kwargs) -> CompileService:
    kwargs.setdefault("executor", "reference")
    return CompileService(tmp_path / "store", **kwargs)


class TestCompileRequest:
    def test_digest_matches_farm_job(self):
        request = FAMILY_REQUESTS[0]
        assert request.digest() == request.job().digest()

    def test_for_width_builds_matching_config(self):
        spec = WorkloadSpec.random_circuit(16, 5)
        request = CompileRequest.for_width(spec, 8)
        assert request.config == FPQAConfig.with_width(16, 8)


class TestJobQueue:
    def test_fifo_order_and_depth(self):
        queue = JobQueue()
        tickets = queue.submit_all(FAMILY_REQUESTS)
        assert queue.depth == 3
        batch = queue.pop_batch()
        assert batch == tickets
        assert queue.depth == 0

    def test_identical_pending_requests_coalesce(self):
        queue = JobQueue()
        first = queue.submit(FAMILY_REQUESTS[0])
        second = queue.submit(FAMILY_REQUESTS[0])
        assert second is first
        assert first.submissions == 2
        assert queue.depth == 1
        assert queue.submitted == 2
        assert queue.coalesced == 1

    def test_pop_batch_limit(self):
        queue = JobQueue()
        queue.submit_all(FAMILY_REQUESTS)
        assert len(queue.pop_batch(2)) == 2
        assert queue.depth == 1
        with pytest.raises(QPilotError):
            queue.pop_batch(0)

    def test_resubmission_after_pop_is_a_new_ticket(self):
        queue = JobQueue()
        first = queue.submit(FAMILY_REQUESTS[0])
        queue.pop_batch()
        second = queue.submit(FAMILY_REQUESTS[0])
        assert second is not first


class TestCacheServing:
    """The PR's acceptance criterion, asserted mechanically."""

    @pytest.mark.parametrize("request_", FAMILY_REQUESTS, ids=lambda r: r.workload.kind)
    def test_repeat_request_hits_disk_with_zero_farm_dispatches(self, tmp_path, request_):
        service = service_for(tmp_path)
        cold = service.compile(request_)
        assert cold.source == "compiled"
        dispatches_after_cold = service.stats.farm_dispatches

        # make any farm dispatch on the warm path a hard failure
        def forbidden(jobs, **kwargs):  # pragma: no cover - fails the test if hit
            raise AssertionError("farm dispatched on a warm cache key")

        service.farm.run = forbidden
        service.farm.iter_results = forbidden
        warm = service.compile(request_)
        assert warm.source == "cache"
        assert service.stats.farm_dispatches == dispatches_after_cold
        # byte-identical canonical schedules: cache is semantically invisible
        assert warm.schedule_json() == cold.schedule_json()
        assert warm.metrics == cold.metrics
        assert warm.router == cold.router

    def test_warm_schedule_matches_direct_compiler_output(self, tmp_path):
        request = FAMILY_REQUESTS[0]
        service = service_for(tmp_path)
        service.compile(request)
        warm = service.compile(request)
        fresh = QPilotCompiler(request.config).compile_circuit(request.workload.build())
        assert warm.schedule_json() == schedule_to_json(fresh.schedule, canonical=True)

    def test_cache_survives_service_restart(self, tmp_path):
        request = FAMILY_REQUESTS[2]
        first = service_for(tmp_path)
        cold = first.compile(request)
        reborn = service_for(tmp_path)
        warm = reborn.compile(request)
        assert warm.source == "cache"
        assert reborn.stats.farm_dispatches == 0
        assert warm.schedule_json() == cold.schedule_json()

    def test_coalesced_tickets_resolve_together(self, tmp_path):
        service = service_for(tmp_path)
        first = service.submit(FAMILY_REQUESTS[0])
        second = service.submit(FAMILY_REQUESTS[0])
        assert second is first
        service.drain()
        assert first.done and first.response is not None
        assert service.stats.farm_dispatches == 1
        assert service.stats.coalesced == 1

    def test_mixed_batch_only_farms_cold_keys(self, tmp_path):
        service = service_for(tmp_path)
        service.compile(FAMILY_REQUESTS[0])  # warm one key
        service.submit_all(FAMILY_REQUESTS)  # one warm, two cold
        resolved = service.process_batch()
        assert [t.response.source for t in resolved] == ["cache", "compiled", "compiled"]
        assert service.stats.farm_dispatches == 3  # 1 cold + 2 cold, never the warm one

    def test_process_batch_rejects_zero_limit(self, tmp_path):
        """An explicit limit of 0 must error, not drain a default batch."""
        service = service_for(tmp_path)
        service.submit(FAMILY_REQUESTS[0])
        with pytest.raises(QPilotError):
            service.process_batch(limit=0)
        assert service.stats.queue_depth == 1  # nothing was drained

    def test_completed_counts_coalesced_submissions(self, tmp_path):
        """completed converges on requests whichever path served them."""
        service = service_for(tmp_path)
        service.submit(FAMILY_REQUESTS[0])
        service.submit(FAMILY_REQUESTS[0])  # coalesces
        service.drain()
        stats = service.stats
        assert stats.requests == 2
        assert stats.completed == 2

    def test_stats_shape(self, tmp_path):
        service = service_for(tmp_path)
        service.compile(FAMILY_REQUESTS[0])
        service.compile(FAMILY_REQUESTS[0])
        stats = service.stats
        assert stats.requests == 2
        assert stats.completed == 2
        assert stats.cache_hits == 1 and stats.cache_misses == 1
        assert stats.cache_hit_rate == 0.5
        assert stats.queue_depth == 0
        assert stats.throughput_rps > 0
        data = stats.to_dict()
        assert data["farm_dispatches"] == 1
        assert json.dumps(data)  # JSON-able for monitoring endpoints


class TestFailureHandling:
    def test_failed_cold_compile_fails_its_ticket(self, tmp_path):
        """A farm error must fail the popped tickets, not orphan them."""
        service = service_for(tmp_path)

        def explode(jobs, **kwargs):
            raise RuntimeError("router exploded")

        service.farm.run = explode
        ticket = service.submit(FAMILY_REQUESTS[0])
        with pytest.raises(RuntimeError):
            service.process_batch()
        assert ticket.status == "failed"
        assert "router exploded" in ticket.error
        assert service.queue.depth == 0

    def test_compile_raises_cleanly_on_failed_ticket(self, tmp_path):
        service = service_for(tmp_path)
        ticket = service.submit(FAMILY_REQUESTS[0])
        ticket.fail("simulated failure")
        with pytest.raises(QPilotError, match="simulated failure"):
            service.compile(FAMILY_REQUESTS[0])

    def test_every_coalesced_waiter_observes_a_typed_failure(self, tmp_path):
        """All duplicate submissions share the ticket, so all see the failure
        with its original exception type and traceback, and the ticket is
        dead-lettered exactly once."""
        from repro.exceptions import CompileError
        from repro.utils.faults import FaultPlan

        plan = FaultPlan.single("raise-in-compile", max_fires=None)
        request = CompileRequest(
            workload=FAMILY_REQUESTS[0].workload,
            config=FAMILY_REQUESTS[0].config,
            options=FarmOptions(faults=plan),
        )
        service = service_for(tmp_path)
        waiters = [service.submit(request) for _ in range(3)]
        assert waiters[0] is waiters[1] is waiters[2]  # coalesced
        service.process_batch()
        for ticket in waiters:
            assert ticket.failed
            assert ticket.error_type == "InjectedCompileError"
            assert "InjectedCompileError" in ticket.error_traceback
            assert ticket.attempts == 3  # 1 try + max_retries=2
        assert service.queue.dead_letters == [waiters[0]]
        assert service.stats.failed_jobs == 1
        with pytest.raises(CompileError) as exc_info:
            service.compile(request)
        assert exc_info.value.error_type == "InjectedCompileError"
        assert exc_info.value.digest == request.digest()


class TestStreaming:
    def test_stream_yields_one_response_per_request(self, tmp_path):
        service = service_for(tmp_path)
        responses = list(service.stream(FAMILY_REQUESTS))
        assert len(responses) == len(FAMILY_REQUESTS)
        assert all(r.source == "compiled" for r in responses)
        digests = {r.digest for r in responses}
        assert digests == {r.digest() for r in FAMILY_REQUESTS}

    def test_stream_serves_warm_keys_from_cache(self, tmp_path):
        service = service_for(tmp_path)
        list(service.stream(FAMILY_REQUESTS))
        warm = list(service.stream(FAMILY_REQUESTS))
        assert all(r.source == "cache" for r in warm)
        assert service.stats.farm_dispatches == len(FAMILY_REQUESTS)

    def test_stream_duplicates_share_one_compile(self, tmp_path):
        service = service_for(tmp_path)
        doubled = [FAMILY_REQUESTS[0], FAMILY_REQUESTS[1], FAMILY_REQUESTS[0]]
        responses = list(service.stream(doubled))
        assert len(responses) == 3
        assert service.stats.farm_dispatches == 2
        by_digest = {}
        for response in responses:
            by_digest.setdefault(response.digest, response)
            assert response.schedule_json() == by_digest[response.digest].schedule_json()

    def test_stream_is_incremental(self, tmp_path):
        """Responses arrive before the whole request set is processed."""
        service = service_for(tmp_path)
        iterator = service.stream(iter(FAMILY_REQUESTS))
        first = next(iterator)
        assert first is not None
        assert service.stats.completed >= 1
        rest = list(iterator)
        assert len(rest) == len(FAMILY_REQUESTS) - 1

    def test_stream_chunks_an_unbounded_generator(self, tmp_path):
        """stream() must not exhaust its input before yielding responses."""
        service = service_for(tmp_path)
        pulled = []

        def endless():
            for request in FAMILY_REQUESTS * 10:
                pulled.append(request)
                yield request

        iterator = service.stream(endless(), chunk_size=2)
        first = next(iterator)
        assert first is not None
        # only the first chunk was consumed from the generator, not all 30
        assert len(pulled) <= 2 + 1
        iterator.close()

    def test_stream_rejects_bad_chunk_size(self, tmp_path):
        service = service_for(tmp_path)
        with pytest.raises(QPilotError):
            list(service.stream(FAMILY_REQUESTS, chunk_size=0))

    def test_cross_chunk_duplicates_hit_the_store(self, tmp_path):
        """A duplicate in a later chunk is a cache hit, not a recompile."""
        service = service_for(tmp_path)
        doubled = [FAMILY_REQUESTS[0], FAMILY_REQUESTS[1], FAMILY_REQUESTS[0]]
        responses = list(service.stream(doubled, chunk_size=2))
        assert [r.source for r in responses] == ["compiled", "compiled", "cache"]
        assert service.stats.farm_dispatches == 2

    @pytest.mark.parametrize("executor", ("reference", "thread"))
    def test_stream_matches_batch_results(self, tmp_path, executor):
        batch_service = CompileService(tmp_path / "a", executor="reference")
        stream_service = CompileService(tmp_path / "b", executor=executor)
        batch_service.submit_all(FAMILY_REQUESTS)
        batch = {t.digest: t.response for t in batch_service.drain()}
        for response in stream_service.stream(FAMILY_REQUESTS):
            assert response.schedule_json() == batch[response.digest].schedule_json()
            assert response.metrics.deterministic() == batch[
                response.digest
            ].metrics.deterministic()


class TestStatsUnderFaults:
    """Regression: ``completed`` (and through it ``throughput_rps``) must
    count only *resolved* submissions — the batch path used to count a
    failed ticket's coalesced submissions while the stream path did not,
    so the two serving paths disagreed about identical traffic."""

    def _requests_with_one_failing_family(self) -> list[CompileRequest]:
        from repro.utils.faults import FaultPlan

        options = FarmOptions(
            faults=FaultPlan.single("raise-in-compile", match="qsim", max_fires=None)
        )

        def with_faults(request: CompileRequest) -> CompileRequest:
            return CompileRequest(
                workload=request.workload, config=request.config, options=options
            )

        # circuit ok, qsim fails (twice: a coalesced duplicate), qaoa ok
        return [
            with_faults(FAMILY_REQUESTS[0]),
            with_faults(FAMILY_REQUESTS[1]),
            with_faults(FAMILY_REQUESTS[1]),
            with_faults(FAMILY_REQUESTS[2]),
        ]

    def test_batch_and_stream_agree_on_completed(self, tmp_path):
        requests = self._requests_with_one_failing_family()

        batch_service = CompileService(tmp_path / "batch", executor="reference")
        batch_service.submit_all(requests)
        batch_service.drain()

        stream_service = CompileService(tmp_path / "stream", executor="reference")
        responses = list(stream_service.stream(requests))

        # 4 submissions, 2 of which share the failing qsim ticket: only
        # the 2 healthy ones were actually served on either path
        assert len(responses) == 2
        assert stream_service.stats.completed == 2
        assert batch_service.stats.completed == 2, (
            "process_batch counted a failed ticket's submissions as completed"
        )
        for service in (batch_service, stream_service):
            assert service.stats.requests == 4
            assert service.stats.failed_jobs == 1
            assert len(service.queue.dead_letters) == 1
            assert service.queue.dead_letters[0].submissions == 2

    def test_failed_batch_leaves_throughput_finite_and_honest(self, tmp_path):
        """With every request failing, completed stays 0 on both paths."""
        from repro.utils.faults import FaultPlan

        options = FarmOptions(
            faults=FaultPlan.single("raise-in-compile", max_fires=None)
        )
        request = CompileRequest(
            workload=FAMILY_REQUESTS[0].workload,
            config=FAMILY_REQUESTS[0].config,
            options=options,
        )
        service = service_for(tmp_path)
        service.submit(request)
        service.submit(request)  # coalesced waiter
        service.process_batch()
        assert service.stats.completed == 0
        assert service.stats.throughput_rps is None or service.stats.throughput_rps == 0


class TestMemoryTierServing:
    """A service built from a path fronts its store with the memory tier."""

    def test_path_built_service_defaults_memory_tier_on(self, tmp_path):
        from repro.service.service import DEFAULT_MEMORY_ENTRIES

        service = service_for(tmp_path)
        assert service.store.memory_entries == DEFAULT_MEMORY_ENTRIES
        assert service_for(tmp_path / "off", memory_entries=None).store.memory_entries is None

    def test_warm_repeat_is_served_without_any_disk_read(self, tmp_path, monkeypatch):
        from pathlib import Path

        request = FAMILY_REQUESTS[0]
        service = service_for(tmp_path)
        cold = service.compile(request)

        def boom(*args, **kwargs):  # pragma: no cover - fails the test if hit
            raise AssertionError("warm serving touched the disk")

        monkeypatch.setattr(Path, "read_text", boom)
        monkeypatch.setattr(Path, "read_bytes", boom)
        import os

        monkeypatch.setattr(os, "utime", boom)
        warm = service.compile(request)
        assert warm.source == "cache"
        assert service.store.stats.memory_hits == 1
        assert warm.schedule_json() == cold.schedule_json()

    def test_compressed_service_serves_identical_bytes(self, tmp_path):
        plain = service_for(tmp_path / "plain")
        gz = service_for(tmp_path / "gz", compress=True)
        request = FAMILY_REQUESTS[1]
        a = plain.compile(request)
        b = gz.compile(request)
        assert a.schedule_json() == b.schedule_json()
        # and the compressed store really serves across a restart
        reborn = service_for(tmp_path / "gz", compress=True)
        assert reborn.compile(request).source == "cache"


class TestUnboundedStreaming:
    """stream() fed by generators it must never exhaust up front."""

    def _endless(self, sequence, pulled):
        for request in sequence:
            pulled.append(request)
            yield request

    def test_cross_chunk_duplicate_from_generator_hits_store(self, tmp_path):
        service = service_for(tmp_path)
        pulled: list[CompileRequest] = []
        sequence = [FAMILY_REQUESTS[0], FAMILY_REQUESTS[1], FAMILY_REQUESTS[0]] * 5
        iterator = service.stream(self._endless(sequence, pulled), chunk_size=2)
        responses = [next(iterator) for _ in range(4)]
        # chunk 1 = [r0, r1] cold; chunk 2 = [r0(dup), r0] -> store hits
        assert [r.source for r in responses] == ["compiled", "compiled", "cache", "cache"]
        assert len(pulled) <= 5, "stream consumed far beyond the served chunks"
        assert service.stats.farm_dispatches == 2
        iterator.close()

    def test_in_chunk_duplicates_coalesce_from_generator(self, tmp_path):
        service = service_for(tmp_path)
        pulled: list[CompileRequest] = []
        sequence = [FAMILY_REQUESTS[0], FAMILY_REQUESTS[0], FAMILY_REQUESTS[1]]
        responses = list(
            service.stream(self._endless(sequence, pulled), chunk_size=3)
        )
        assert len(responses) == 3  # output count == input count
        assert service.stats.farm_dispatches == 2  # duplicate shared one compile
        assert service.stats.coalesced == 1
        assert responses[0].schedule_json() == responses[1].schedule_json()

    def test_failed_ticket_shrinks_output_by_its_submissions(self, tmp_path):
        from repro.utils.faults import FaultPlan

        options = FarmOptions(
            faults=FaultPlan.single("raise-in-compile", match="qsim", max_fires=None)
        )
        failing = CompileRequest(
            workload=FAMILY_REQUESTS[1].workload,
            config=FAMILY_REQUESTS[1].config,
            options=options,
        )
        ok = [
            CompileRequest(
                workload=r.workload, config=r.config, options=options
            )
            for r in (FAMILY_REQUESTS[0], FAMILY_REQUESTS[2])
        ]
        service = service_for(tmp_path)
        pulled: list[CompileRequest] = []
        sequence = [ok[0], failing, failing, ok[1]]
        responses = list(service.stream(self._endless(sequence, pulled), chunk_size=4))
        # 4 requests in, 2 responses out: the failing ticket absorbed 2
        assert len(responses) == 2
        assert {r.digest for r in responses} == {r.digest() for r in ok}
        assert len(service.queue.dead_letters) == 1
        assert service.queue.dead_letters[0].submissions == 2
        assert service.stats.completed == 2


class TestWarmFrom:
    """warm_from: archived DSE trajectories pre-populate the store."""

    def _sweep(self):
        from repro.core import sweep_grid

        specs = [r.workload for r in FAMILY_REQUESTS]
        return sweep_grid(specs, widths=(4,), executor="reference")

    def test_warm_from_archive_round_trip_serves_live_traffic(self, tmp_path):
        from repro.core.dse import SweepResult

        archived = SweepResult.from_json(self._sweep().to_json())
        service = service_for(tmp_path)
        counts = service.warm_from(archived)
        assert counts == {"points": 3, "warmed": 3, "already": 0, "skipped": 0}

        # live traffic for the same grid must now be pure cache hits
        def forbidden(jobs, **kwargs):  # pragma: no cover - fails the test if hit
            raise AssertionError("farm dispatched on a warmed key")

        service.farm.run = forbidden
        service.farm.iter_results = forbidden
        from repro.core.farm import compile_farm_job_with_schedule
        from repro.utils.serialization import canonical_json

        for request in FAMILY_REQUESTS:
            response = service.compile(request)
            assert response.source == "cache"
            fresh = compile_farm_job_with_schedule(request.job())
            assert response.schedule_json() == canonical_json(fresh.schedule)

    def test_warm_from_is_idempotent(self, tmp_path):
        sweep = self._sweep()
        service = service_for(tmp_path)
        first = service.warm_from(sweep)
        second = service.warm_from(sweep)
        assert first["warmed"] == 3
        assert second == {"points": 3, "warmed": 0, "already": 3, "skipped": 0}

    def test_warm_from_skips_failed_and_recordless_points(self, tmp_path):
        from repro.core.dse import SweepResult

        sweep = self._sweep()
        sweep.points[0].status = "failed"  # a dead grid cell
        sweep.points[1].job = None  # a pre-job-record archive
        archived = SweepResult.from_json(sweep.to_json())
        service = service_for(tmp_path)
        counts = service.warm_from(archived)
        assert counts == {"points": 3, "warmed": 1, "already": 0, "skipped": 2}


VALID_QASM = (
    "OPENQASM 2.0;\n"
    "qreg q[4];\n"
    "h q[0];\n"
    "cx q[0], q[1];\n"
    "cx q[1], q[2];\n"
    "cx q[2], q[3];\n"
)
BAD_QASM = "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[9];\n"


class TestQasmIngestion:
    """The untrusted ingestion boundary: submit_qasm / compile_qasm."""

    def test_valid_upload_compiles_then_serves_warm(self, tmp_path):
        service = service_for(tmp_path)
        cold = service.compile_qasm(VALID_QASM, width=4)
        assert cold.source == "compiled"
        assert service.stats.farm_dispatches == 1
        warm = service.compile_qasm(VALID_QASM, width=4)
        assert warm.cached
        assert service.stats.farm_dispatches == 1
        assert warm.schedule_json() == cold.schedule_json()

    def test_identical_uploads_coalesce_before_dispatch(self, tmp_path):
        service = service_for(tmp_path)
        first = service.submit_qasm(VALID_QASM, width=4)
        second = service.submit_qasm(VALID_QASM, width=4, name="renamed-upload")
        assert service.queue.depth == 1
        service.process_batch()
        assert first.done and second.done
        assert first.response.schedule_json() == second.response.schedule_json()
        assert service.stats.farm_dispatches == 1

    def test_invalid_upload_rejected_typed_without_dispatch(self, tmp_path):
        service = service_for(tmp_path)
        with pytest.raises(InvalidCircuitError) as excinfo:
            service.compile_qasm(BAD_QASM, width=4)
        assert isinstance(excinfo.value.__cause__, CircuitError)
        assert excinfo.value.line == 3
        assert service.stats.rejected_invalid == 1
        assert service.stats.farm_dispatches == 0
        assert service.queue.depth == 0
        assert not service.queue.dead_letters
        assert service.stats.to_dict()["rejected_invalid"] == 1

    def test_ingest_applies_caller_limits(self, tmp_path):
        service = service_for(tmp_path)
        with pytest.raises(InvalidCircuitError):
            service.compile_qasm(VALID_QASM, width=4, limits=CircuitLimits(max_qubits=2))
        assert service.stats.rejected_invalid == 1

    def test_submit_qasm_requires_exactly_one_sizing(self, tmp_path):
        service = service_for(tmp_path)
        with pytest.raises(QPilotError):
            service.submit_qasm(VALID_QASM)
        with pytest.raises(QPilotError):
            service.submit_qasm(
                VALID_QASM, width=4, config=FPQAConfig.with_width(4, 4)
            )


class TestServiceCli:
    def _compile_args(self, store) -> list[str]:
        return [
            "compile", "--store", str(store), "--executor", "reference",
            "--kind", "circuit", "--qubits", "8", "--gate-multiple", "3", "--width", "4",
        ]

    def test_compile_then_cache_hit(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert cli_main(self._compile_args(store)) == 0
        first = capsys.readouterr().out
        assert "compiled:" in first
        assert cli_main(self._compile_args(store)) == 0
        second = capsys.readouterr().out
        assert "cache:" in second
        assert "1 cache hits / 0 misses" in second

    def test_sweep_stream_and_stats_and_clear(self, tmp_path, capsys):
        store = tmp_path / "store"
        sweep = [
            "sweep", "--store", str(store), "--executor", "reference",
            "--kind", "qaoa", "--qubits", "8", "--widths", "4,8",
        ]
        assert cli_main(sweep) == 0
        out = capsys.readouterr().out
        assert out.count("compiled:") == 2
        assert cli_main(["stats", "--store", str(store), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 2
        assert cli_main(["clear", "--store", str(store)]) == 0
        assert "removed 2 entries" in capsys.readouterr().out
        assert len(ScheduleStore(store)) == 0

    def test_stats_reports_disk_bytes(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert cli_main(self._compile_args(store)) == 0
        capsys.readouterr()
        assert cli_main(["stats", "--store", str(store), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["disk_bytes"] > 0

    def test_compile_qasm_file_then_cache_hit(self, tmp_path, capsys):
        qasm_file = tmp_path / "upload.oq"
        qasm_file.write_text(VALID_QASM)
        store = tmp_path / "store"
        args = [
            "compile", "--store", str(store), "--executor", "reference",
            "--qasm", str(qasm_file), "--width", "4",
        ]
        assert cli_main(args) == 0
        assert "compiled:" in capsys.readouterr().out
        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "cache:" in out
        assert "1 cache hits / 0 misses" in out

    def test_invalid_qasm_exits_typed(self, tmp_path, capsys):
        qasm_file = tmp_path / "hostile.oq"
        qasm_file.write_text("OPENQASM 2.0;\nqreg q[1];\nrx(9**9**9) q[0];\n")
        store = tmp_path / "store"
        args = [
            "compile", "--store", str(store), "--executor", "reference",
            "--qasm", str(qasm_file), "--width", "4",
        ]
        assert cli_main(args) == EXIT_INVALID_CIRCUIT
        captured = capsys.readouterr()
        assert "rejected: InvalidCircuitError" in captured.err
        assert "Traceback" not in captured.err
        assert cli_main(args + ["--json"]) == EXIT_INVALID_CIRCUIT
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]["type"] == "InvalidCircuitError"
        assert payload["error"]["line"] == 3
        assert len(ScheduleStore(store)) == 0

    def test_warm_subcommand_replays_an_archive(self, tmp_path, capsys):
        from repro.core import sweep_grid

        sweep = sweep_grid(
            [r.workload for r in FAMILY_REQUESTS], widths=(4,), executor="reference"
        )
        archive = tmp_path / "sweep.json"
        archive.write_text(sweep.to_json())
        store = tmp_path / "store"
        warm_args = [
            "warm", "--store", str(store), "--sweep", str(archive),
            "--executor", "reference",
        ]
        assert cli_main(warm_args + ["--json"]) == 0
        counts = json.loads(capsys.readouterr().out)
        assert counts["points"] == 3 and counts["warmed"] == 3
        assert len(ScheduleStore(store)) == 3
        # a second replay is pure already-cached
        assert cli_main(warm_args) == 0
        out = capsys.readouterr().out
        assert "0 warmed" in out and "3 already cached" in out
        # and the warmed store serves the same grid as cache hits
        assert cli_main(self._compile_args(store) + ["--seed", "21"]) == 0
        assert "cache:" in capsys.readouterr().out

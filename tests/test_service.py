"""Compile-service tests: queue dedup, cache serving, streaming, CLI.

The acceptance suite for the service layer.  The central property
(``TestCacheServing``): a repeated :class:`CompileRequest` for an
identical (workload, config, options) key is answered from the disk
store with **zero** farm dispatches — no router runs — and the served
canonical schedule is byte-identical to the freshly compiled one.
"""

from __future__ import annotations

import json

import pytest

from repro.core import FarmOptions, QPilotCompiler, WorkloadSpec
from repro.exceptions import QPilotError
from repro.hardware.fpqa import FPQAConfig
from repro.service import (
    CompileRequest,
    CompileService,
    JobQueue,
    ScheduleStore,
)
from repro.service.cli import main as cli_main
from repro.utils.serialization import schedule_to_json

#: One request per workload family, small enough for tier-1.
FAMILY_REQUESTS = [
    CompileRequest.for_width(WorkloadSpec.random_circuit(8, 3, seed=21), 4),
    CompileRequest.for_width(WorkloadSpec.qsim(8, 0.3, num_strings=6, seed=22), 4),
    CompileRequest.for_width(WorkloadSpec.qaoa_random_graph(8, 0.4, seed=23), 4),
]


def service_for(tmp_path, **kwargs) -> CompileService:
    kwargs.setdefault("executor", "reference")
    return CompileService(tmp_path / "store", **kwargs)


class TestCompileRequest:
    def test_digest_matches_farm_job(self):
        request = FAMILY_REQUESTS[0]
        assert request.digest() == request.job().digest()

    def test_for_width_builds_matching_config(self):
        spec = WorkloadSpec.random_circuit(16, 5)
        request = CompileRequest.for_width(spec, 8)
        assert request.config == FPQAConfig.with_width(16, 8)


class TestJobQueue:
    def test_fifo_order_and_depth(self):
        queue = JobQueue()
        tickets = queue.submit_all(FAMILY_REQUESTS)
        assert queue.depth == 3
        batch = queue.pop_batch()
        assert batch == tickets
        assert queue.depth == 0

    def test_identical_pending_requests_coalesce(self):
        queue = JobQueue()
        first = queue.submit(FAMILY_REQUESTS[0])
        second = queue.submit(FAMILY_REQUESTS[0])
        assert second is first
        assert first.submissions == 2
        assert queue.depth == 1
        assert queue.submitted == 2
        assert queue.coalesced == 1

    def test_pop_batch_limit(self):
        queue = JobQueue()
        queue.submit_all(FAMILY_REQUESTS)
        assert len(queue.pop_batch(2)) == 2
        assert queue.depth == 1
        with pytest.raises(QPilotError):
            queue.pop_batch(0)

    def test_resubmission_after_pop_is_a_new_ticket(self):
        queue = JobQueue()
        first = queue.submit(FAMILY_REQUESTS[0])
        queue.pop_batch()
        second = queue.submit(FAMILY_REQUESTS[0])
        assert second is not first


class TestCacheServing:
    """The PR's acceptance criterion, asserted mechanically."""

    @pytest.mark.parametrize("request_", FAMILY_REQUESTS, ids=lambda r: r.workload.kind)
    def test_repeat_request_hits_disk_with_zero_farm_dispatches(self, tmp_path, request_):
        service = service_for(tmp_path)
        cold = service.compile(request_)
        assert cold.source == "compiled"
        dispatches_after_cold = service.stats.farm_dispatches

        # make any farm dispatch on the warm path a hard failure
        def forbidden(jobs, **kwargs):  # pragma: no cover - fails the test if hit
            raise AssertionError("farm dispatched on a warm cache key")

        service.farm.run = forbidden
        service.farm.iter_results = forbidden
        warm = service.compile(request_)
        assert warm.source == "cache"
        assert service.stats.farm_dispatches == dispatches_after_cold
        # byte-identical canonical schedules: cache is semantically invisible
        assert warm.schedule_json() == cold.schedule_json()
        assert warm.metrics == cold.metrics
        assert warm.router == cold.router

    def test_warm_schedule_matches_direct_compiler_output(self, tmp_path):
        request = FAMILY_REQUESTS[0]
        service = service_for(tmp_path)
        service.compile(request)
        warm = service.compile(request)
        fresh = QPilotCompiler(request.config).compile_circuit(request.workload.build())
        assert warm.schedule_json() == schedule_to_json(fresh.schedule, canonical=True)

    def test_cache_survives_service_restart(self, tmp_path):
        request = FAMILY_REQUESTS[2]
        first = service_for(tmp_path)
        cold = first.compile(request)
        reborn = service_for(tmp_path)
        warm = reborn.compile(request)
        assert warm.source == "cache"
        assert reborn.stats.farm_dispatches == 0
        assert warm.schedule_json() == cold.schedule_json()

    def test_coalesced_tickets_resolve_together(self, tmp_path):
        service = service_for(tmp_path)
        first = service.submit(FAMILY_REQUESTS[0])
        second = service.submit(FAMILY_REQUESTS[0])
        assert second is first
        service.drain()
        assert first.done and first.response is not None
        assert service.stats.farm_dispatches == 1
        assert service.stats.coalesced == 1

    def test_mixed_batch_only_farms_cold_keys(self, tmp_path):
        service = service_for(tmp_path)
        service.compile(FAMILY_REQUESTS[0])  # warm one key
        service.submit_all(FAMILY_REQUESTS)  # one warm, two cold
        resolved = service.process_batch()
        assert [t.response.source for t in resolved] == ["cache", "compiled", "compiled"]
        assert service.stats.farm_dispatches == 3  # 1 cold + 2 cold, never the warm one

    def test_process_batch_rejects_zero_limit(self, tmp_path):
        """An explicit limit of 0 must error, not drain a default batch."""
        service = service_for(tmp_path)
        service.submit(FAMILY_REQUESTS[0])
        with pytest.raises(QPilotError):
            service.process_batch(limit=0)
        assert service.stats.queue_depth == 1  # nothing was drained

    def test_completed_counts_coalesced_submissions(self, tmp_path):
        """completed converges on requests whichever path served them."""
        service = service_for(tmp_path)
        service.submit(FAMILY_REQUESTS[0])
        service.submit(FAMILY_REQUESTS[0])  # coalesces
        service.drain()
        stats = service.stats
        assert stats.requests == 2
        assert stats.completed == 2

    def test_stats_shape(self, tmp_path):
        service = service_for(tmp_path)
        service.compile(FAMILY_REQUESTS[0])
        service.compile(FAMILY_REQUESTS[0])
        stats = service.stats
        assert stats.requests == 2
        assert stats.completed == 2
        assert stats.cache_hits == 1 and stats.cache_misses == 1
        assert stats.cache_hit_rate == 0.5
        assert stats.queue_depth == 0
        assert stats.throughput_rps > 0
        data = stats.to_dict()
        assert data["farm_dispatches"] == 1
        assert json.dumps(data)  # JSON-able for monitoring endpoints


class TestFailureHandling:
    def test_failed_cold_compile_fails_its_ticket(self, tmp_path):
        """A farm error must fail the popped tickets, not orphan them."""
        service = service_for(tmp_path)

        def explode(jobs, **kwargs):
            raise RuntimeError("router exploded")

        service.farm.run = explode
        ticket = service.submit(FAMILY_REQUESTS[0])
        with pytest.raises(RuntimeError):
            service.process_batch()
        assert ticket.status == "failed"
        assert "router exploded" in ticket.error
        assert service.queue.depth == 0

    def test_compile_raises_cleanly_on_failed_ticket(self, tmp_path):
        service = service_for(tmp_path)
        ticket = service.submit(FAMILY_REQUESTS[0])
        ticket.fail("simulated failure")
        with pytest.raises(QPilotError, match="simulated failure"):
            service.compile(FAMILY_REQUESTS[0])

    def test_every_coalesced_waiter_observes_a_typed_failure(self, tmp_path):
        """All duplicate submissions share the ticket, so all see the failure
        with its original exception type and traceback, and the ticket is
        dead-lettered exactly once."""
        from repro.exceptions import CompileError
        from repro.utils.faults import FaultPlan

        plan = FaultPlan.single("raise-in-compile", max_fires=None)
        request = CompileRequest(
            workload=FAMILY_REQUESTS[0].workload,
            config=FAMILY_REQUESTS[0].config,
            options=FarmOptions(faults=plan),
        )
        service = service_for(tmp_path)
        waiters = [service.submit(request) for _ in range(3)]
        assert waiters[0] is waiters[1] is waiters[2]  # coalesced
        service.process_batch()
        for ticket in waiters:
            assert ticket.failed
            assert ticket.error_type == "InjectedCompileError"
            assert "InjectedCompileError" in ticket.error_traceback
            assert ticket.attempts == 3  # 1 try + max_retries=2
        assert service.queue.dead_letters == [waiters[0]]
        assert service.stats.failed_jobs == 1
        with pytest.raises(CompileError) as exc_info:
            service.compile(request)
        assert exc_info.value.error_type == "InjectedCompileError"
        assert exc_info.value.digest == request.digest()


class TestStreaming:
    def test_stream_yields_one_response_per_request(self, tmp_path):
        service = service_for(tmp_path)
        responses = list(service.stream(FAMILY_REQUESTS))
        assert len(responses) == len(FAMILY_REQUESTS)
        assert all(r.source == "compiled" for r in responses)
        digests = {r.digest for r in responses}
        assert digests == {r.digest() for r in FAMILY_REQUESTS}

    def test_stream_serves_warm_keys_from_cache(self, tmp_path):
        service = service_for(tmp_path)
        list(service.stream(FAMILY_REQUESTS))
        warm = list(service.stream(FAMILY_REQUESTS))
        assert all(r.source == "cache" for r in warm)
        assert service.stats.farm_dispatches == len(FAMILY_REQUESTS)

    def test_stream_duplicates_share_one_compile(self, tmp_path):
        service = service_for(tmp_path)
        doubled = [FAMILY_REQUESTS[0], FAMILY_REQUESTS[1], FAMILY_REQUESTS[0]]
        responses = list(service.stream(doubled))
        assert len(responses) == 3
        assert service.stats.farm_dispatches == 2
        by_digest = {}
        for response in responses:
            by_digest.setdefault(response.digest, response)
            assert response.schedule_json() == by_digest[response.digest].schedule_json()

    def test_stream_is_incremental(self, tmp_path):
        """Responses arrive before the whole request set is processed."""
        service = service_for(tmp_path)
        iterator = service.stream(iter(FAMILY_REQUESTS))
        first = next(iterator)
        assert first is not None
        assert service.stats.completed >= 1
        rest = list(iterator)
        assert len(rest) == len(FAMILY_REQUESTS) - 1

    def test_stream_chunks_an_unbounded_generator(self, tmp_path):
        """stream() must not exhaust its input before yielding responses."""
        service = service_for(tmp_path)
        pulled = []

        def endless():
            for request in FAMILY_REQUESTS * 10:
                pulled.append(request)
                yield request

        iterator = service.stream(endless(), chunk_size=2)
        first = next(iterator)
        assert first is not None
        # only the first chunk was consumed from the generator, not all 30
        assert len(pulled) <= 2 + 1
        iterator.close()

    def test_stream_rejects_bad_chunk_size(self, tmp_path):
        service = service_for(tmp_path)
        with pytest.raises(QPilotError):
            list(service.stream(FAMILY_REQUESTS, chunk_size=0))

    def test_cross_chunk_duplicates_hit_the_store(self, tmp_path):
        """A duplicate in a later chunk is a cache hit, not a recompile."""
        service = service_for(tmp_path)
        doubled = [FAMILY_REQUESTS[0], FAMILY_REQUESTS[1], FAMILY_REQUESTS[0]]
        responses = list(service.stream(doubled, chunk_size=2))
        assert [r.source for r in responses] == ["compiled", "compiled", "cache"]
        assert service.stats.farm_dispatches == 2

    @pytest.mark.parametrize("executor", ("reference", "thread"))
    def test_stream_matches_batch_results(self, tmp_path, executor):
        batch_service = CompileService(tmp_path / "a", executor="reference")
        stream_service = CompileService(tmp_path / "b", executor=executor)
        batch_service.submit_all(FAMILY_REQUESTS)
        batch = {t.digest: t.response for t in batch_service.drain()}
        for response in stream_service.stream(FAMILY_REQUESTS):
            assert response.schedule_json() == batch[response.digest].schedule_json()
            assert response.metrics.deterministic() == batch[
                response.digest
            ].metrics.deterministic()


class TestServiceCli:
    def _compile_args(self, store) -> list[str]:
        return [
            "compile", "--store", str(store), "--executor", "reference",
            "--kind", "circuit", "--qubits", "8", "--gate-multiple", "3", "--width", "4",
        ]

    def test_compile_then_cache_hit(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert cli_main(self._compile_args(store)) == 0
        first = capsys.readouterr().out
        assert "compiled:" in first
        assert cli_main(self._compile_args(store)) == 0
        second = capsys.readouterr().out
        assert "cache:" in second
        assert "1 cache hits / 0 misses" in second

    def test_sweep_stream_and_stats_and_clear(self, tmp_path, capsys):
        store = tmp_path / "store"
        sweep = [
            "sweep", "--store", str(store), "--executor", "reference",
            "--kind", "qaoa", "--qubits", "8", "--widths", "4,8",
        ]
        assert cli_main(sweep) == 0
        out = capsys.readouterr().out
        assert out.count("compiled:") == 2
        assert cli_main(["stats", "--store", str(store), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 2
        assert cli_main(["clear", "--store", str(store)]) == 0
        assert "removed 2 entries" in capsys.readouterr().out
        assert len(ScheduleStore(store)) == 0

"""Unit tests for the generic flying-ancilla router (Alg. 1)."""

from __future__ import annotations

import pytest

from repro.circuit import QuantumCircuit, decompose_to_cz, ghz_circuit, qft_circuit, random_cx_circuit
from repro.core import GenericRouter, GenericRouterOptions, route_circuit
from repro.core.schedule import (
    AncillaCreationStage,
    AncillaRecycleStage,
    MeasurementStage,
    MovementStage,
    OneQubitStage,
    RydbergStage,
)
from repro.hardware import FPQAConfig, SLMArray, subset_is_legal
from repro.hardware.constraints import GatePlacement
from repro.sim import verify_schedule_equivalence


class TestStructure:
    def test_schedule_validates(self, random_small_circuit):
        schedule = route_circuit(random_small_circuit)
        schedule.validate()

    def test_gate_and_depth_accounting(self, random_small_circuit):
        schedule = route_circuit(random_small_circuit)
        native = decompose_to_cz(random_small_circuit)
        routed_cz = native.num_two_qubit_gates()
        # every routed CZ costs 3 2-qubit gates (create, execute, recycle)
        assert schedule.num_two_qubit_gates() == 3 * routed_cz
        # every macro stage contributes exactly 3 2-qubit layers
        macros = schedule.metadata["num_macro_stages"]
        assert schedule.two_qubit_depth() == 3 * macros
        assert macros <= routed_cz

    def test_all_one_qubit_gates_scheduled(self, random_small_circuit):
        schedule = route_circuit(random_small_circuit)
        native = decompose_to_cz(random_small_circuit)
        assert schedule.num_one_qubit_gates() == native.num_one_qubit_gates()

    def test_macro_stage_layout(self):
        circuit = QuantumCircuit(4).cz(0, 1).cz(2, 3)
        schedule = route_circuit(circuit)
        kinds = [type(stage).__name__ for stage in schedule.stages]
        assert kinds == [
            "AncillaCreationStage",
            "MovementStage",
            "RydbergStage",
            "MovementStage",
            "AncillaRecycleStage",
        ]

    def test_parallel_gates_share_one_macro(self):
        circuit = QuantumCircuit(4).cz(0, 1).cz(2, 3)
        schedule = route_circuit(circuit)
        assert schedule.metadata["num_macro_stages"] == 1
        rydberg = [s for s in schedule.stages if isinstance(s, RydbergStage)]
        assert len(rydberg) == 1
        assert len(rydberg[0].gates) == 2

    def test_dependent_gates_need_two_macros(self):
        circuit = QuantumCircuit(3).cz(0, 1).cz(1, 2)
        schedule = route_circuit(circuit)
        assert schedule.metadata["num_macro_stages"] == 2

    def test_measurement_stage_emitted(self):
        circuit = QuantumCircuit(2).cz(0, 1).measure(0).measure(1)
        schedule = route_circuit(circuit)
        assert isinstance(schedule.stages[-1], MeasurementStage)

    def test_measurement_stage_optional(self):
        circuit = QuantumCircuit(2).cz(0, 1).measure(0)
        options = GenericRouterOptions(include_measurement=False)
        schedule = route_circuit(circuit, options=options)
        assert not any(isinstance(s, MeasurementStage) for s in schedule.stages)

    def test_pure_one_qubit_circuit(self):
        circuit = QuantumCircuit(3).h(0).rz(0.3, 1).x(2)
        schedule = route_circuit(circuit)
        assert schedule.num_two_qubit_gates() == 0
        assert schedule.two_qubit_depth() == 0
        assert schedule.num_one_qubit_gates() == 3

    def test_max_gates_per_stage_option(self):
        circuit = QuantumCircuit(8)
        for i in range(0, 8, 2):
            circuit.cz(i, i + 1)
        limited = route_circuit(circuit, options=GenericRouterOptions(max_gates_per_stage=1))
        unlimited = route_circuit(circuit)
        assert limited.metadata["num_macro_stages"] > unlimited.metadata["num_macro_stages"]


class TestLegality:
    def test_every_rydberg_stage_is_a_legal_subset(self):
        circuit = random_cx_circuit(12, 40, seed=21)
        config = FPQAConfig.square_for(12)
        schedule = GenericRouter(config).compile(circuit)
        array = SLMArray(config, 12)
        for stage in schedule.stages:
            if not isinstance(stage, RydbergStage) or not stage.gates:
                continue
            placements = []
            for index, gate in enumerate(stage.gates):
                # find the ancilla's source qubit from the creation stage label
                (slot,) = gate.ancilla_slots
                (target,) = gate.data_qubits
                placements.append((index, slot, target))
            # reconstruct the placement from the paired creation stage
            creation = _creation_before(schedule, stage)
            source_of = {slot: source[1] for source, slot in creation.copies}
            gate_placements = [
                GatePlacement(i, array.position(source_of[slot]), array.position(target))
                for i, slot, target in placements
            ]
            assert subset_is_legal(gate_placements)

    def test_each_atom_used_once_per_pulse(self):
        circuit = random_cx_circuit(10, 30, seed=13)
        schedule = route_circuit(circuit)
        for stage in schedule.stages:
            if isinstance(stage, RydbergStage):
                operands = [op for gate in stage.gates for op in gate.operands]
                assert len(operands) == len(set(operands))

    def test_creation_and_recycle_match(self):
        circuit = random_cx_circuit(8, 20, seed=17)
        schedule = route_circuit(circuit)
        creations = [s for s in schedule.stages if isinstance(s, AncillaCreationStage)]
        recycles = [s for s in schedule.stages if isinstance(s, AncillaRecycleStage)]
        assert len(creations) == len(recycles)
        for create, recycle in zip(creations, recycles):
            assert create.copies == recycle.copies

    def test_movement_stages_bracket_every_rydberg_stage(self):
        circuit = random_cx_circuit(6, 10, seed=19)
        schedule = route_circuit(circuit)
        stages = schedule.stages
        for position, stage in enumerate(stages):
            if isinstance(stage, RydbergStage):
                assert isinstance(stages[position - 1], MovementStage)
                assert isinstance(stages[position + 1], MovementStage)


class TestEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_circuits_verified(self, seed):
        circuit = random_cx_circuit(4, 7, seed=seed)
        schedule = route_circuit(circuit)
        assert verify_schedule_equivalence(circuit, schedule, seed=seed)

    def test_ghz_circuit_verified(self):
        circuit = ghz_circuit(4)
        schedule = route_circuit(circuit)
        assert verify_schedule_equivalence(circuit, schedule, seed=31)

    def test_qft_circuit_verified(self):
        circuit = qft_circuit(3)
        schedule = route_circuit(circuit)
        assert verify_schedule_equivalence(circuit, schedule, seed=37)

    def test_explicit_config_respected(self):
        circuit = random_cx_circuit(6, 10, seed=5)
        config = FPQAConfig(slm_rows=2, slm_cols=3)
        schedule = GenericRouter(config).compile(circuit)
        assert schedule.config.slm_cols == 3
        assert verify_schedule_equivalence(circuit, schedule, seed=41)


def _creation_before(schedule, rydberg_stage):
    """The creation stage belonging to the same macro as a Rydberg stage."""
    index = schedule.stages.index(rydberg_stage)
    for stage in reversed(schedule.stages[:index]):
        if isinstance(stage, AncillaCreationStage):
            return stage
    raise AssertionError("no creation stage before a Rydberg stage")

"""Unit tests for gate decomposition passes (verified against statevectors)."""

from __future__ import annotations

import math

import pytest

from repro.circuit import QuantumCircuit, basis_check, count_basis_gates, decompose_to_cx, decompose_to_cz
from repro.circuit.decompose import cancel_adjacent_inverses
from repro.circuit.gate import Gate
from repro.sim import circuits_equivalent


def _single_gate_circuit(name: str, qubits: tuple[int, ...], params=()) -> QuantumCircuit:
    width = max(qubits) + 1
    return QuantumCircuit(width, [Gate(name, qubits, params)], name=f"single_{name}")


TWO_QUBIT_CASES = [
    ("cx", ()),
    ("cz", ()),
    ("cy", ()),
    ("ch", ()),
    ("swap", ()),
    ("iswap", ()),
    ("cp", (0.37,)),
    ("crz", (1.2,)),
    ("crx", (0.6,)),
    ("cry", (-0.8,)),
    ("rzz", (0.9,)),
    ("rxx", (0.5,)),
    ("ryy", (1.3,)),
]


class TestCxDecomposition:
    @pytest.mark.parametrize("name,params", TWO_QUBIT_CASES)
    def test_two_qubit_gates_equivalent(self, name, params):
        circuit = _single_gate_circuit(name, (0, 1), params)
        decomposed = decompose_to_cx(circuit)
        assert basis_check(decomposed, "cx")
        assert circuits_equivalent(circuit, decomposed)

    @pytest.mark.parametrize("name,params", TWO_QUBIT_CASES)
    def test_reversed_operands_equivalent(self, name, params):
        circuit = _single_gate_circuit(name, (1, 0), params)
        decomposed = decompose_to_cx(circuit)
        assert circuits_equivalent(circuit, decomposed)

    @pytest.mark.parametrize("name", ["ccx", "ccz", "cswap"])
    def test_three_qubit_gates_equivalent(self, name):
        circuit = _single_gate_circuit(name, (0, 1, 2))
        decomposed = decompose_to_cx(circuit)
        assert basis_check(decomposed, "cx")
        assert circuits_equivalent(circuit, decomposed)

    def test_one_qubit_gates_pass_through(self):
        circuit = QuantumCircuit(1).h(0).rz(0.3, 0)
        decomposed = decompose_to_cx(circuit)
        assert decomposed.gates == circuit.gates

    def test_directives_dropped_by_default(self):
        circuit = QuantumCircuit(2).cx(0, 1).measure(0)
        assert all(not g.is_directive for g in decompose_to_cx(circuit).gates)
        kept = decompose_to_cx(circuit, keep_directives=True)
        assert any(g.name == "measure" for g in kept.gates)


class TestCzDecomposition:
    def test_mixed_circuit_equivalent(self, small_circuit):
        decomposed = decompose_to_cz(small_circuit)
        assert basis_check(decomposed, "cz")
        assert circuits_equivalent(small_circuit, decomposed)

    @pytest.mark.parametrize("name,params", TWO_QUBIT_CASES)
    def test_each_gate_to_cz(self, name, params):
        circuit = _single_gate_circuit(name, (0, 1), params)
        decomposed = decompose_to_cz(circuit)
        assert basis_check(decomposed, "cz")
        assert circuits_equivalent(circuit, decomposed)

    def test_cx_becomes_one_cz(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        decomposed = decompose_to_cz(circuit)
        assert decomposed.gate_counts()["cz"] == 1

    def test_counts(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).ccx(0, 1, 2)
        counts = count_basis_gates(decompose_to_cz(circuit))
        assert counts["other"] == 0
        assert counts["2q"] >= 7  # 1 + 6 from the Toffoli


class TestCancellation:
    def test_adjacent_h_pairs_cancel(self):
        circuit = QuantumCircuit(1).h(0).h(0)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_s_sdg_cancel(self):
        circuit = QuantumCircuit(1).s(0).sdg(0)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_non_adjacent_on_other_qubits_still_cancel(self):
        circuit = QuantumCircuit(2).h(0).x(1).h(0)
        cleaned = cancel_adjacent_inverses(circuit)
        assert cleaned.gate_counts().get("h", 0) == 0
        assert cleaned.gate_counts()["x"] == 1

    def test_blocked_by_intervening_gate_on_same_qubit(self):
        circuit = QuantumCircuit(1).h(0).t(0).h(0)
        cleaned = cancel_adjacent_inverses(circuit)
        assert cleaned.gate_counts()["h"] == 2

    def test_cancellation_preserves_semantics(self, small_circuit):
        noisy = small_circuit.copy()
        noisy.h(2)
        noisy.h(2)
        cleaned = cancel_adjacent_inverses(noisy)
        assert circuits_equivalent(cleaned, small_circuit)

    def test_rz_pairs_not_cancelled(self):
        circuit = QuantumCircuit(1).rz(0.5, 0).rz(-0.5, 0)
        assert len(cancel_adjacent_inverses(circuit)) == 2

"""Unit tests for the performance evaluator and the Eq. 5 fidelity model."""

from __future__ import annotations

import pytest

from repro.core import FidelityModel, PerformanceEvaluator, route_circuit, route_qaoa
from repro.circuit import random_cx_circuit
from repro.hardware import FPQAConfig
from repro.workloads import ring_graph_edges


class TestFidelityModel:
    def test_perfect_gates_no_movement(self):
        model = FidelityModel(one_qubit_fidelity=1.0, two_qubit_fidelity=1.0)
        assert model.success_probability(
            num_atoms=10, depth=50, num_one_qubit_gates=100, movement_distances=[]
        ) == pytest.approx(1.0)

    def test_monotone_in_two_qubit_fidelity(self):
        low = FidelityModel(two_qubit_fidelity=0.99)
        high = FidelityModel(two_qubit_fidelity=0.999)
        kwargs = dict(num_atoms=8, depth=20, num_one_qubit_gates=30, movement_distances=[1.0] * 10)
        assert high.success_probability(**kwargs) > low.success_probability(**kwargs)

    def test_monotone_in_depth_and_atoms(self):
        model = FidelityModel()
        shallow = model.success_probability(
            num_atoms=8, depth=5, num_one_qubit_gates=0, movement_distances=[]
        )
        deep = model.success_probability(
            num_atoms=8, depth=50, num_one_qubit_gates=0, movement_distances=[]
        )
        assert shallow > deep
        small = model.success_probability(
            num_atoms=4, depth=20, num_one_qubit_gates=0, movement_distances=[]
        )
        big = model.success_probability(
            num_atoms=40, depth=20, num_one_qubit_gates=0, movement_distances=[]
        )
        assert small > big

    def test_movement_reduces_fidelity(self):
        model = FidelityModel()
        still = model.success_probability(
            num_atoms=10, depth=10, num_one_qubit_gates=0, movement_distances=[]
        )
        moving = model.success_probability(
            num_atoms=10, depth=10, num_one_qubit_gates=0, movement_distances=[4.0] * 100
        )
        assert moving < still

    def test_error_rate_complement(self):
        model = FidelityModel()
        kwargs = dict(num_atoms=6, depth=10, num_one_qubit_gates=5, movement_distances=[1.0])
        assert model.error_rate(**kwargs) == pytest.approx(1 - model.success_probability(**kwargs))

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            FidelityModel().success_probability(
                num_atoms=-1, depth=1, num_one_qubit_gates=0, movement_distances=[]
            )

    def test_batch_matches_scalar_pointwise(self):
        """The vectorised sweep equals per-point scalar models (seed semantics)."""
        import numpy as np

        model = FidelityModel()
        kwargs = dict(num_atoms=9, depth=14, num_one_qubit_gates=21, movement_distances=[0.5, 2.0, 9.0])
        fidelities = np.linspace(0.9, 0.999, 25)
        batch = model.success_probability_batch(two_qubit_fidelities=fidelities, **kwargs)
        for fidelity, batched in zip(fidelities, batch):
            scalar_model = FidelityModel(two_qubit_fidelity=float(fidelity))
            # SIMD vs scalar libm pow may differ in the last ulp
            assert batched == pytest.approx(scalar_model.success_probability(**kwargs), rel=1e-14)

    def test_batch_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            FidelityModel().success_probability_batch(
                num_atoms=1,
                depth=-1,
                num_one_qubit_gates=0,
                movement_distances=[],
                two_qubit_fidelities=[0.99],
            )

    def test_success_probability_accepts_arrays(self):
        import numpy as np

        model = FidelityModel()
        from_list = model.success_probability(
            num_atoms=5, depth=4, num_one_qubit_gates=3, movement_distances=[1.0, 4.0]
        )
        from_array = model.success_probability(
            num_atoms=5, depth=4, num_one_qubit_gates=3, movement_distances=np.array([1.0, 4.0])
        )
        assert from_list == from_array
        from_generator = model.success_probability(
            num_atoms=5, depth=4, num_one_qubit_gates=3, movement_distances=iter([1.0, 4.0])
        )
        assert from_generator == from_list
        assert model.movement_time_s([]) == 0.0
        assert model.movement_time_s(d for d in ()) == 0.0
        assert model.movement_time_s([4.0]) == pytest.approx(2 * model.t0_s)

    def test_from_config(self):
        config = FPQAConfig(slm_rows=2, slm_cols=2, two_qubit_fidelity=0.98, t2_s=2.0)
        model = FidelityModel.from_config(config)
        assert model.two_qubit_fidelity == pytest.approx(0.98)
        assert model.t2_s == pytest.approx(2.0)
        override = FidelityModel.from_config(config, two_qubit_fidelity=0.5)
        assert override.two_qubit_fidelity == pytest.approx(0.5)


class TestPerformanceEvaluator:
    def test_evaluation_matches_schedule_metrics(self, random_small_circuit):
        schedule = route_circuit(random_small_circuit)
        result = PerformanceEvaluator().evaluate(schedule)
        assert result.depth == schedule.two_qubit_depth()
        assert result.num_two_qubit_gates == schedule.num_two_qubit_gates()
        assert result.num_atoms == schedule.total_qubits_used()
        assert 0.0 <= result.success_probability <= 1.0
        assert result.error_rate == pytest.approx(1 - result.success_probability)
        assert result.compile_time_s is not None

    def test_summary_round_trip(self, random_small_circuit):
        schedule = route_circuit(random_small_circuit)
        summary = PerformanceEvaluator().evaluate(schedule).summary()
        assert summary["depth"] == schedule.two_qubit_depth()
        assert summary["qubits"] == random_small_circuit.num_qubits

    def test_error_rate_sweep_is_monotone(self):
        schedule = route_qaoa(6, ring_graph_edges(6))
        sweep = [1e-6, 1e-4, 1e-2, 1e-1]
        points = PerformanceEvaluator().error_rate_vs_two_qubit_error(schedule, sweep)
        errors = [overall for _, overall in points]
        assert errors == sorted(errors)
        assert errors[0] < errors[-1]

    def test_bigger_circuit_has_higher_error(self):
        small = route_circuit(random_cx_circuit(4, 6, seed=1))
        large = route_circuit(random_cx_circuit(8, 40, seed=1))
        evaluator = PerformanceEvaluator()
        assert evaluator.evaluate(large).error_rate >= evaluator.evaluate(small).error_rate

"""Unit tests for the quantum-simulation router (Alg. 2)."""

from __future__ import annotations

import math

import pytest

from repro.circuit import PauliString, random_pauli_strings, trotter_circuit
from repro.core import (
    QSimRouter,
    QSimRouterOptions,
    fanout_depth,
    fanout_layer_sizes,
    longest_path_stages,
    route_pauli_strings,
)
from repro.core.schedule import AncillaCreationStage, AncillaRecycleStage, RydbergStage
from repro.exceptions import WorkloadError
from repro.hardware import FPQAConfig, SLMArray
from repro.sim import verify_schedule_equivalence


class TestFanout:
    def test_layer_sizes_follow_progression(self):
        assert fanout_layer_sizes(1) == [1]
        assert fanout_layer_sizes(3) == [1, 2]
        assert fanout_layer_sizes(7) == [1, 2, 4]
        assert fanout_layer_sizes(13) == [1, 2, 4, 6]
        assert fanout_layer_sizes(21) == [1, 2, 4, 6, 8]

    def test_partial_last_layer(self):
        assert fanout_layer_sizes(5) == [1, 2, 2]
        assert sum(fanout_layer_sizes(17)) == 17

    def test_zero_copies(self):
        assert fanout_layer_sizes(0) == []
        assert fanout_depth(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            fanout_layer_sizes(-1)

    def test_depth_scales_as_sqrt(self):
        # cumulative copies after d layers grow quadratically, so the depth
        # for N copies grows like sqrt(N)
        for copies in (10, 40, 90, 160):
            assert fanout_depth(copies) <= 2 * math.isqrt(copies) + 2

    def test_progression_beyond_table(self):
        sizes = fanout_layer_sizes(60)
        assert sizes[:5] == [1, 2, 4, 6, 8]
        assert sizes[5] == 10  # continues with +2 increments


class TestLongestPathStages:
    @pytest.fixture
    def array(self) -> SLMArray:
        return SLMArray(FPQAConfig(slm_rows=3, slm_cols=4), 12)

    def test_monotone_chain_is_one_stage(self, array):
        # qubits 0 (0,0), 5 (1,1), 10 (2,2) form a monotone chain
        stages = longest_path_stages(array, [0, 5, 10])
        assert stages == [[0, 5, 10]]

    def test_anti_chain_needs_one_stage_each(self, array):
        # qubits 3 (0,3) and 4 (1,0): neither is lower-right of the other
        stages = longest_path_stages(array, [3, 4])
        assert len(stages) == 2

    def test_every_qubit_appears_exactly_once(self, array):
        qubits = [1, 2, 4, 6, 7, 9, 11]
        stages = longest_path_stages(array, qubits)
        flat = [q for stage in stages for q in stage]
        assert sorted(flat) == sorted(qubits)

    def test_stages_are_monotone_paths(self, array):
        qubits = [1, 2, 4, 6, 7, 9, 10, 11]
        for stage in longest_path_stages(array, qubits):
            positions = [array.position(q) for q in stage]
            for (r1, c1), (r2, c2) in zip(positions[:-1], positions[1:]):
                assert r2 >= r1 and c2 >= c1

    def test_greedy_extracts_longest_first(self, array):
        qubits = [1, 2, 4, 5, 10]
        stages = longest_path_stages(array, qubits)
        lengths = [len(stage) for stage in stages]
        assert lengths == sorted(lengths, reverse=True)

    def test_empty_input(self, array):
        assert longest_path_stages(array, []) == []


class TestQSimSchedules:
    def test_schedule_validates(self, small_pauli_strings):
        schedule = route_pauli_strings(small_pauli_strings)
        schedule.validate()

    def test_weight_one_string_needs_no_two_qubit_gates(self):
        schedule = route_pauli_strings([PauliString("IZI", 0.4)])
        assert schedule.num_two_qubit_gates() == 0
        assert schedule.two_qubit_depth() == 0

    def test_gate_count_per_string(self):
        string = PauliString("ZZZZZ", 0.3)
        schedule = route_pauli_strings([string])
        targets = string.weight - 1
        # two parity blocks, each: fan-out (targets) + CZs (targets) + recycle (targets)
        assert schedule.num_two_qubit_gates() == 2 * 3 * targets

    def test_weight_two_string_uses_direct_rzz(self):
        """A weight-2 term is one diagonal ZZ rotation: 3 gates, 3 layers."""
        schedule = route_pauli_strings([PauliString("ZIZ", 0.4)])
        assert schedule.num_two_qubit_gates() == 3
        assert schedule.two_qubit_depth() == 3
        rydberg = [s for s in schedule.stages if isinstance(s, RydbergStage)]
        assert len(rydberg) == 1
        assert rydberg[0].gates[0].name == "rzz"
        assert rydberg[0].gates[0].params == (0.4,)

    def test_weight_two_string_with_basis_change_verified(self):
        string = PauliString("XY", coefficient=0.62)
        schedule = route_pauli_strings([string])
        reference = trotter_circuit([string])
        assert verify_schedule_equivalence(reference, schedule, seed=19)

    def test_forward_only_option_halves_blocks(self):
        string = PauliString("ZZZZ", 0.3)
        full = route_pauli_strings([string])
        forward = QSimRouter(options=QSimRouterOptions(full_evolution=False)).compile([string])
        assert forward.num_two_qubit_gates() == full.num_two_qubit_gates() // 2

    def test_depth_better_than_serial_for_wide_strings(self):
        """For a full row of qubits the CZs parallelise into few stages."""
        num_qubits = 16
        label = "Z" * num_qubits
        config = FPQAConfig(slm_rows=4, slm_cols=4)
        schedule = QSimRouter(config).compile([PauliString(label, 0.2)])
        serial_depth = 2 * (num_qubits - 1)  # CNOT ladder up and down
        assert schedule.two_qubit_depth() < serial_depth

    def test_identity_strings_rejected(self):
        with pytest.raises(WorkloadError):
            route_pauli_strings([PauliString("III")])

    def test_mixed_widths_rejected(self):
        with pytest.raises(WorkloadError):
            route_pauli_strings([PauliString("ZZ"), PauliString("ZZZ")])

    def test_num_strings_metadata(self, small_pauli_strings):
        schedule = route_pauli_strings(small_pauli_strings)
        assert schedule.metadata["num_strings"] == len(small_pauli_strings)
        assert schedule.metadata["router"] == "qsim"

    def test_fanout_layers_recorded_in_schedule(self):
        string = PauliString("Z" * 9, 0.1)
        schedule = route_pauli_strings([string])
        creations = [s for s in schedule.stages if isinstance(s, AncillaCreationStage)]
        recycles = [s for s in schedule.stages if isinstance(s, AncillaRecycleStage)]
        expected_layers = fanout_depth(8)
        # two parity blocks per string
        assert len(creations) == 2 * expected_layers
        assert len(recycles) == 2 * expected_layers

    def test_ancillas_reused_across_stages_within_block(self):
        """The CZ stages of one block reuse the same live ancillas (no re-creation)."""
        string = PauliString("ZIZIZIZ", 0.2)
        config = FPQAConfig(slm_rows=7, slm_cols=1)  # a column: every CZ is its own stage
        schedule = QSimRouter(config).compile([string])
        rydberg_stages = [s for s in schedule.stages if isinstance(s, RydbergStage) and s.gates]
        assert len(rydberg_stages) >= 2


class TestQSimEquivalence:
    @pytest.mark.parametrize("label", ["ZZ", "XZX", "ZYZI", "XXXX", "ZIIZ"])
    def test_single_string_matches_reference(self, label):
        string = PauliString(label, coefficient=0.437)
        schedule = route_pauli_strings([string])
        reference = trotter_circuit([string])
        assert verify_schedule_equivalence(reference, schedule, seed=3)

    def test_multiple_strings_match_reference(self):
        strings = random_pauli_strings(4, 3, 0.6, seed=11)
        schedule = route_pauli_strings(strings)
        reference = trotter_circuit(strings, 4)
        assert verify_schedule_equivalence(reference, schedule, seed=5)

    def test_wide_string_matches_reference(self):
        string = PauliString("ZZZZZZ", coefficient=0.81)
        schedule = route_pauli_strings([string])
        reference = trotter_circuit([string])
        assert verify_schedule_equivalence(reference, schedule, seed=7)

"""Unit tests for atom movement records and statistics."""

from __future__ import annotations

import math

import pytest

from repro.core import AtomMove, MovementStep, movement_statistics
from repro.core.movement import total_movement_distance


class TestAtomMove:
    def test_distance(self):
        move = AtomMove(0, (0.0, 0.0), (3.0, 4.0))
        assert move.distance == pytest.approx(5.0)
        assert move.distance_um(2.0) == pytest.approx(10.0)

    def test_zero_move(self):
        move = AtomMove(1, (2.0, 2.0), (2.0, 2.0))
        assert move.distance == pytest.approx(0.0)


class TestMovementStep:
    def test_max_and_total_distance(self):
        step = MovementStep()
        step.add(AtomMove(0, (0, 0), (0, 1)))
        step.add(AtomMove(1, (0, 0), (0, 3)))
        assert step.max_distance == pytest.approx(3.0)
        assert step.total_distance == pytest.approx(4.0)
        assert step.num_moving_atoms == 2

    def test_empty_step(self):
        step = MovementStep()
        assert step.max_distance == 0.0
        assert step.duration_us(5.0, 1e5) == 0.0

    def test_duration_includes_settling_time(self):
        step = MovementStep(moves=[AtomMove(0, (0, 0), (0, 2))])
        duration = step.duration_us(site_spacing_um=10.0, speed_um_per_s=1e6, t0_us=100.0)
        travel = 2 * 10.0 / 1e6 * 1e6
        assert duration == pytest.approx(100.0 + travel)

    def test_stationary_atoms_not_counted_as_moving(self):
        step = MovementStep(moves=[AtomMove(0, (1, 1), (1, 1)), AtomMove(1, (0, 0), (1, 0))])
        assert step.num_moving_atoms == 1


class TestStatistics:
    def _steps(self):
        return [
            MovementStep(moves=[AtomMove(0, (0, 0), (0, 2))]),
            MovementStep(moves=[AtomMove(0, (0, 2), (1, 2)), AtomMove(1, (0, 0), (2, 0))]),
        ]

    def test_total_movement_distance(self):
        assert total_movement_distance(self._steps()) == pytest.approx(2.0 + 2.0)

    def test_statistics_keys_and_values(self):
        stats = movement_statistics(self._steps())
        assert stats["num_steps"] == 2
        assert stats["total_max_distance"] == pytest.approx(4.0)
        assert stats["max_step_distance"] == pytest.approx(2.0)
        assert stats["mean_moving_atoms"] == pytest.approx(1.5)

    def test_statistics_empty(self):
        stats = movement_statistics([])
        assert stats["num_steps"] == 0
        assert stats["mean_step_distance"] == 0.0

    def test_statistics_accept_a_generator(self):
        """A one-shot iterable must produce the same statistics as a list.

        Regression guard: an implementation that iterates its argument more
        than once sees an exhausted generator and silently reports zeros.
        """
        from_list = movement_statistics(self._steps())
        from_generator = movement_statistics(step for step in self._steps())
        assert from_generator == from_list
        assert from_generator["num_steps"] == 2
        assert from_generator["total_max_distance"] > 0

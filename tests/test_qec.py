"""Unit tests for the QEC syndrome-extraction workloads (future-work extension)."""

from __future__ import annotations

import pytest

from repro.core import route_circuit
from repro.exceptions import WorkloadError
from repro.sim import verify_schedule_equivalence
from repro.workloads import (
    Stabilizer,
    qec_workload_summary,
    repetition_code_stabilizers,
    stabilizers_commute,
    surface_code_stabilizers,
    surface_code_syndrome_circuit,
    syndrome_extraction_circuit,
)


class TestStabilizer:
    def test_valid_stabilizer(self):
        stabilizer = Stabilizer("z", (0, 3, 5))
        assert stabilizer.pauli == "Z"
        assert stabilizer.weight == 3

    def test_invalid_type(self):
        with pytest.raises(WorkloadError):
            Stabilizer("Y", (0, 1))

    def test_invalid_support(self):
        with pytest.raises(WorkloadError):
            Stabilizer("X", (1, 1))
        with pytest.raises(WorkloadError):
            Stabilizer("X", ())


class TestCodes:
    def test_repetition_code(self):
        stabilizers = repetition_code_stabilizers(5)
        assert len(stabilizers) == 4
        assert all(s.pauli == "Z" and s.weight == 2 for s in stabilizers)
        with pytest.raises(WorkloadError):
            repetition_code_stabilizers(1)

    @pytest.mark.parametrize("distance", [2, 3, 5])
    def test_surface_code_counts(self, distance):
        stabilizers = surface_code_stabilizers(distance)
        assert len(stabilizers) == distance * distance - 1
        assert all(s.weight in (2, 4) for s in stabilizers)
        # every data qubit participates in at least one stabilizer
        covered = {q for s in stabilizers for q in s.data_qubits}
        assert covered == set(range(distance * distance))

    @pytest.mark.parametrize("distance", [2, 3, 5])
    def test_surface_code_stabilizers_commute(self, distance):
        assert stabilizers_commute(surface_code_stabilizers(distance))

    def test_surface_code_has_both_types(self):
        stabilizers = surface_code_stabilizers(3)
        types = {s.pauli for s in stabilizers}
        assert types == {"X", "Z"}

    def test_invalid_distance(self):
        with pytest.raises(WorkloadError):
            surface_code_stabilizers(1)

    def test_commutation_check_detects_anticommutation(self):
        bad = [Stabilizer("X", (0, 1)), Stabilizer("Z", (1, 2))]
        assert not stabilizers_commute(bad)


class TestSyndromeCircuit:
    def test_repetition_code_circuit_structure(self):
        stabilizers = repetition_code_stabilizers(4)
        circuit = syndrome_extraction_circuit(stabilizers, 4)
        assert circuit.num_qubits == 4 + 3
        assert circuit.num_two_qubit_gates() == sum(s.weight for s in stabilizers)
        assert sum(1 for g in circuit.gates if g.name == "measure") == 3

    def test_x_stabilizers_use_hadamards(self):
        circuit = syndrome_extraction_circuit([Stabilizer("X", (0, 1))], 2)
        names = [g.name for g in circuit.gates]
        assert names.count("h") == 2
        assert names.count("cx") == 2

    def test_multiple_rounds(self):
        stabilizers = repetition_code_stabilizers(3)
        single = syndrome_extraction_circuit(stabilizers, 3, rounds=1)
        double = syndrome_extraction_circuit(stabilizers, 3, rounds=2)
        assert double.num_two_qubit_gates() == 2 * single.num_two_qubit_gates()
        assert any(g.name == "reset" for g in double.gates)

    def test_invalid_inputs(self):
        with pytest.raises(WorkloadError):
            syndrome_extraction_circuit([], 3)
        with pytest.raises(WorkloadError):
            syndrome_extraction_circuit([Stabilizer("Z", (0, 9))], 3)
        with pytest.raises(WorkloadError):
            syndrome_extraction_circuit(repetition_code_stabilizers(3), 3, rounds=0)

    def test_surface_code_circuit_summary(self):
        summary = qec_workload_summary(3)
        assert summary["data_qubits"] == 9
        assert summary["stabilizers"] == 8
        assert summary["2q_gates"] == sum(s.weight for s in surface_code_stabilizers(3))


class TestCompilation:
    def test_surface_code_round_compiles_on_fpqa(self):
        circuit = surface_code_syndrome_circuit(3)
        schedule = route_circuit(circuit)
        schedule.validate()
        assert schedule.num_two_qubit_gates() == 3 * circuit.num_two_qubit_gates()
        assert schedule.two_qubit_depth() < 3 * circuit.num_two_qubit_gates()

    def test_repetition_code_round_verified(self):
        """The compiled schedule acts exactly like the syndrome circuit."""
        stabilizers = repetition_code_stabilizers(3)
        circuit = syndrome_extraction_circuit(stabilizers, 3, measure=False)
        schedule = route_circuit(circuit)
        assert verify_schedule_equivalence(circuit, schedule, seed=23)

"""Differential verification of the shared stage-planning kernel.

The incremental :class:`QAOAStagePlanner` must reproduce the seed
full-rescan planner (:func:`reference_plan_stage` /
:func:`reference_plan_best_stage`) stage for stage: same number of stages
and the same executed-edge set in each stage.  These tests drive both
planners over seeded random graphs and structured graphs and compare the
trajectories, then check the routers wired to the kernel still compile
schedules that are statevector-equivalent to the uncompiled circuits.
"""

from __future__ import annotations

import pytest

from repro.circuit import qaoa_cost_layer, random_pauli_strings, trotter_circuit
from repro.circuit.qaoa import normalise_edges
from repro.core import QAOARouter, QAOARouterOptions, route_pauli_strings, route_qaoa
from repro.core.qsim_router import longest_path_stages as qsim_longest_path_stages
from repro.core.stage_planner import (
    ArrayGeometry,
    CompatibilityGraph,
    QAOAStagePlanner,
    longest_path_stages,
    reference_longest_path_stages,
    reference_plan_best_stage,
    reference_plan_stage,
)
from repro.exceptions import RoutingError, WorkloadError
from repro.hardware import FPQAConfig, MonotonePinMap, SLMArray
from repro.sim import verify_schedule_equivalence
from repro.workloads import random_graph_edges, regular_graph_edges, ring_graph_edges


def _square_array(num_qubits: int) -> SLMArray:
    return SLMArray(FPQAConfig.square_for(num_qubits), num_qubits)


def reference_stage_sets(num_qubits, edges, *, seed_trials=4):
    """Drive the reference planner to completion, returning per-stage edge sets."""
    array = _square_array(num_qubits)
    remaining = set(normalise_edges(edges))
    stage_sets = []
    while remaining:
        plan = reference_plan_best_stage(remaining, array, seed_trials=seed_trials)
        executed = plan.edge_set()
        assert executed, "reference planner must always execute at least the seed edge"
        stage_sets.append(executed)
        remaining -= executed
    return stage_sets


def incremental_stage_sets(num_qubits, edges, *, seed_trials=4):
    planner = QAOAStagePlanner(_square_array(num_qubits), edges, seed_trials=seed_trials)
    return [plan.edge_set() for plan in planner.plan_stages()]


# ----------------------------------------------------------------------
# differential conformance: incremental planner == reference oracle
# ----------------------------------------------------------------------
class TestDifferentialConformance:
    @pytest.mark.parametrize("num_qubits", range(4, 11))
    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 23])
    @pytest.mark.parametrize("probability", [0.25, 0.5, 0.9])
    def test_random_graphs_match_reference(self, num_qubits, seed, probability):
        edges = random_graph_edges(num_qubits, probability, seed=seed)
        if not edges:
            pytest.skip("empty graph")
        assert incremental_stage_sets(num_qubits, edges) == reference_stage_sets(
            num_qubits, edges
        )

    @pytest.mark.parametrize("seed_trials", [1, 2, 4, 8])
    def test_seed_trial_counts_match_reference(self, seed_trials):
        edges = random_graph_edges(9, 0.5, seed=41)
        assert incremental_stage_sets(9, edges, seed_trials=seed_trials) == (
            reference_stage_sets(9, edges, seed_trials=seed_trials)
        )

    @pytest.mark.parametrize(
        "num_qubits,edges_factory",
        [
            (6, lambda: ring_graph_edges(6)),
            (24, lambda: regular_graph_edges(24, 3, seed=9)),
            (30, lambda: regular_graph_edges(30, 4, seed=5)),
            (25, lambda: random_graph_edges(25, 0.15, seed=13)),
        ],
    )
    def test_structured_graphs_match_reference(self, num_qubits, edges_factory):
        edges = edges_factory()
        assert incremental_stage_sets(num_qubits, edges) == reference_stage_sets(
            num_qubits, edges
        )

    def test_single_stage_plan_matches_reference(self):
        """Beyond edge sets, a single plan pins the same rows and columns."""
        edges = normalise_edges(random_graph_edges(8, 0.6, seed=3))
        array = _square_array(8)
        reference = reference_plan_stage(set(edges), array)
        planner = QAOAStagePlanner(array, edges, seed_trials=1)
        incremental = planner.plan_best_stage()
        assert incremental.edge_set() == reference.edge_set()
        assert incremental.column_map == reference.column_map
        assert incremental.row_map == reference.row_map

    def test_planner_executes_every_edge_exactly_once(self):
        edges = normalise_edges(random_graph_edges(10, 0.7, seed=11))
        executed = [e for s in incremental_stage_sets(10, edges) for e in s]
        assert sorted(executed) == edges


# ----------------------------------------------------------------------
# routers wired to the kernel stay semantically correct
# ----------------------------------------------------------------------
class TestRouterEquivalence:
    @pytest.mark.parametrize("seed", [5, 19, 57])
    def test_qaoa_router_schedule_equivalent_to_circuit(self, seed):
        edges = random_graph_edges(6, 0.5, seed=seed)
        if not edges:
            pytest.skip("empty graph")
        schedule = route_qaoa(6, edges)
        reference = qaoa_cost_layer(6, edges, gamma=0.7)
        assert verify_schedule_equivalence(reference, schedule, seed=seed)

    def test_qaoa_router_single_seed_trial_equivalent(self):
        edges = random_graph_edges(5, 0.8, seed=3)
        options = QAOARouterOptions(seed_trials=1)
        schedule = QAOARouter(options=options).compile(5, edges)
        reference = qaoa_cost_layer(5, edges, gamma=0.7)
        assert verify_schedule_equivalence(reference, schedule, seed=29)

    @pytest.mark.parametrize("seed", [2, 31])
    def test_qsim_router_schedule_equivalent_to_circuit(self, seed):
        strings = random_pauli_strings(4, 3, 0.6, seed=seed)
        schedule = route_pauli_strings(strings)
        reference = trotter_circuit(strings, 4)
        assert verify_schedule_equivalence(reference, schedule, seed=seed)


# ----------------------------------------------------------------------
# kernel building blocks
# ----------------------------------------------------------------------
class TestMonotonePinMap:
    def test_accepts_strictly_increasing_pins(self):
        pins = MonotonePinMap()
        for src, dst in [(2, 3), (0, 1), (5, 8)]:
            assert pins.can_pin(src, dst)
            pins.pin(src, dst)
        assert len(pins) == 3
        assert list(pins.items()) == [(0, 1), (2, 3), (5, 8)]
        assert pins.as_dict() == {0: 1, 2: 3, 5: 8}

    def test_rejects_crossing_and_duplicate_pins(self):
        pins = MonotonePinMap()
        pins.pin(2, 4)
        assert not pins.can_pin(2, 6)  # source already pinned
        assert not pins.can_pin(1, 4)  # target already used
        assert not pins.can_pin(1, 5)  # would cross: 1 < 2 but 5 >= 4
        assert not pins.can_pin(3, 3)  # would cross: 3 > 2 but 3 <= 4
        assert pins.can_pin(3, 5)
        with pytest.raises(RoutingError):
            pins.pin(1, 9)

    def test_contains_and_target_of(self):
        pins = MonotonePinMap()
        pins.pin(4, 7)
        assert 4 in pins
        assert 5 not in pins
        assert pins.target_of(4) == 7


class TestArrayGeometry:
    def test_matches_slm_array_lookups(self):
        array = SLMArray(FPQAConfig(slm_rows=3, slm_cols=4), 10)
        geometry = ArrayGeometry(array)
        for q in range(10):
            assert geometry.row[q] == array.row_of(q)
            assert geometry.col[q] == array.col_of(q)
        for r in range(3):
            for c in range(4):
                assert geometry.qubit_at[r][c] == array.qubit_at(r, c)


class TestPlannerValidation:
    def test_rejects_out_of_range_edge(self):
        with pytest.raises(WorkloadError):
            QAOAStagePlanner(_square_array(4), [(0, 7)])

    def test_rejects_negative_qubit_edge(self):
        """Negative indices must not silently wrap around the geometry tables."""
        with pytest.raises(WorkloadError):
            QAOAStagePlanner(_square_array(16), [(-1, 2)])

    def test_plan_on_exhausted_planner_raises(self):
        planner = QAOAStagePlanner(_square_array(4), [(0, 1)])
        list(planner.plan_stages())
        assert not planner
        with pytest.raises(RoutingError):
            planner.plan_best_stage()

    def test_commit_rejects_foreign_edges(self):
        planner = QAOAStagePlanner(_square_array(4), [(0, 1), (2, 3)])
        plan = planner.plan_best_stage()
        planner.commit(plan)
        with pytest.raises(RoutingError):
            planner.commit(plan)  # already executed

    def test_rejected_commit_leaves_state_untouched(self):
        """A commit mixing live and foreign edges must not drop the live ones."""
        from repro.core import StagePlan

        planner = QAOAStagePlanner(_square_array(4), [(0, 1), (2, 3)])
        stale = StagePlan(pairs=[(0, 1), (1, 2)], column_map={}, row_map={})
        before = planner.remaining_edges
        with pytest.raises(RoutingError):
            planner.commit(stale)  # (1, 2) is not an edge of this planner
        assert planner.remaining_edges == before

    def test_remaining_bookkeeping(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        planner = QAOAStagePlanner(_square_array(4), edges)
        assert planner.num_remaining == 3
        assert planner.remaining_edges == set(edges)
        for plan in planner.plan_stages():
            pass
        assert planner.num_remaining == 0


class TestChainExtractionRelocation:
    def test_qsim_router_reexports_shared_kernel(self):
        assert qsim_longest_path_stages is longest_path_stages

    def test_longest_path_stage_partition(self):
        array = SLMArray(FPQAConfig(slm_rows=3, slm_cols=3), 9)
        stages = longest_path_stages(array, [0, 4, 8, 2, 6])
        flat = sorted(q for stage in stages for q in stage)
        assert flat == [0, 2, 4, 6, 8]
        # a length-3 monotone chain through 0 and 8 exists and is extracted first
        assert len(stages[0]) == 3
        for stage in stages:
            coordinates = [array.position(q) for q in stage]
            for (r1, c1), (r2, c2) in zip(coordinates, coordinates[1:]):
                assert r1 <= r2 and c1 <= c2  # monotone chain


class TestLongestPathDifferential:
    """The O(V+E) topological DP must reproduce the seed O(V²) DP exactly."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_target_sets_match_reference(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        rows = int(rng.integers(2, 10))
        cols = int(rng.integers(2, 10))
        num_qubits = rows * cols
        array = SLMArray(FPQAConfig(slm_rows=rows, slm_cols=cols), num_qubits)
        size = int(rng.integers(1, num_qubits + 1))
        qubits = [int(q) for q in rng.choice(num_qubits, size=size, replace=False)]
        assert longest_path_stages(array, qubits) == reference_longest_path_stages(array, qubits)

    def test_stagewise_paths_match_reference(self):
        """Both DPs agree stage by stage, not just on the final partition."""
        array = SLMArray(FPQAConfig(slm_rows=5, slm_cols=5), 25)
        qubits = [0, 3, 6, 7, 11, 12, 16, 18, 21, 24]
        fast = CompatibilityGraph(array, qubits)
        reference = CompatibilityGraph(array, qubits)
        while fast:
            fast_path = fast.longest_path()
            assert fast_path == reference.reference_longest_path()
            fast.remove(fast_path)
            reference.remove(fast_path)
        assert not reference

    def test_single_and_empty_sets(self):
        array = SLMArray(FPQAConfig(slm_rows=3, slm_cols=3), 9)
        assert CompatibilityGraph(array, []).longest_path() == []
        assert longest_path_stages(array, [5]) == [[5]]
        assert reference_longest_path_stages(array, [5]) == [[5]]

"""Unit tests for the gate model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuit.gate import (
    DIAGONAL_GATES,
    Gate,
    gate_matrix,
    one_qubit_gate_names,
    parameter_count,
    two_qubit_gate_names,
    validate_gates,
)
from repro.exceptions import CircuitError


class TestGateConstruction:
    def test_basic_two_qubit_gate(self):
        gate = Gate("cz", (0, 1))
        assert gate.num_qubits == 2
        assert gate.is_two_qubit
        assert not gate.is_one_qubit
        assert gate.params == ()

    def test_name_is_lowercased(self):
        assert Gate("CX", (0, 1)).name == "cx"

    def test_parameterised_gate(self):
        gate = Gate("rz", (2,), (0.5,))
        assert gate.params == (0.5,)
        assert gate.is_one_qubit

    def test_repeated_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Gate("cx", (1, 1))

    def test_negative_qubit_rejected(self):
        with pytest.raises(CircuitError):
            Gate("x", (-1,))

    def test_wrong_parameter_count_rejected(self):
        with pytest.raises(CircuitError):
            Gate("rz", (0,))
        with pytest.raises(CircuitError):
            Gate("h", (0,), (1.0,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(CircuitError):
            Gate("cx", (0,))
        with pytest.raises(CircuitError):
            Gate("h", (0, 1))

    def test_on_and_remap(self):
        gate = Gate("cx", (0, 1))
        assert gate.on(3, 4).qubits == (3, 4)
        assert gate.remap({0: 5, 1: 2}).qubits == (5, 2)

    def test_validate_gates_range(self):
        validate_gates([Gate("cx", (0, 1))], 2)
        with pytest.raises(CircuitError):
            validate_gates([Gate("cx", (0, 5))], 2)


class TestGateClassification:
    def test_diagonal_gates(self):
        assert Gate("cz", (0, 1)).is_diagonal
        assert Gate("rzz", (0, 1), (0.3,)).is_diagonal
        assert Gate("rz", (0,), (0.3,)).is_diagonal
        assert not Gate("cx", (0, 1)).is_diagonal
        assert not Gate("h", (0,)).is_diagonal

    def test_directives(self):
        assert Gate("measure", (0,)).is_directive
        assert Gate("barrier", (0, 1, 2)).is_barrier
        assert not Gate("x", (0,)).is_directive

    def test_diagonal_set_is_actually_diagonal(self):
        for name in DIAGONAL_GATES:
            if name in {"ccz"}:
                params = ()
            elif parameter_count(name):
                params = tuple([0.37] * parameter_count(name))
            else:
                params = ()
            matrix = gate_matrix(name, params)
            off_diagonal = matrix - np.diag(np.diag(matrix))
            assert np.allclose(off_diagonal, 0), name


class TestGateMatrices:
    @pytest.mark.parametrize("name", [n for n in one_qubit_gate_names() if n not in {"measure", "reset"}])
    def test_one_qubit_matrices_unitary(self, name):
        params = tuple([0.41] * parameter_count(name))
        matrix = gate_matrix(name, params)
        assert matrix.shape == (2, 2)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(2), atol=1e-12)

    @pytest.mark.parametrize("name", list(two_qubit_gate_names()))
    def test_two_qubit_matrices_unitary(self, name):
        params = tuple([0.41] * parameter_count(name))
        matrix = gate_matrix(name, params)
        assert matrix.shape == (4, 4)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(4), atol=1e-12)

    def test_cx_matrix_action(self):
        cx = gate_matrix("cx")
        # control = qubit 0 (least significant). |01> (q0=1,q1=0) -> |11>
        state = np.zeros(4)
        state[0b01] = 1.0
        out = cx @ state
        assert out[0b11] == pytest.approx(1.0)

    def test_cz_matrix(self):
        cz = gate_matrix("cz")
        assert np.allclose(np.diag(cz), [1, 1, 1, -1])

    def test_rzz_matrix_phases(self):
        theta = 0.8
        rzz = gate_matrix("rzz", (theta,))
        expected = np.diag(
            [
                np.exp(-1j * theta / 2),
                np.exp(1j * theta / 2),
                np.exp(1j * theta / 2),
                np.exp(-1j * theta / 2),
            ]
        )
        assert np.allclose(rzz, expected)

    def test_measure_has_no_matrix(self):
        with pytest.raises(CircuitError):
            gate_matrix("measure")

    def test_unknown_gate_rejected(self):
        with pytest.raises(CircuitError):
            gate_matrix("frobnicate")

    def test_ccx_flips_target_when_controls_set(self):
        ccx = gate_matrix("ccx")
        state = np.zeros(8)
        state[0b011] = 1.0  # controls q0,q1 set; target q2 = 0
        out = ccx @ state
        assert out[0b111] == pytest.approx(1.0)


class TestGateInverse:
    @pytest.mark.parametrize(
        "name,params",
        [
            ("h", ()),
            ("x", ()),
            ("s", ()),
            ("t", ()),
            ("sx", ()),
            ("rz", (0.7,)),
            ("rx", (1.1,)),
            ("ry", (-0.4,)),
            ("u", (0.3, 0.5, 0.7)),
            ("cx", ()),
            ("cz", ()),
            ("swap", ()),
            ("cp", (0.9,)),
            ("rzz", (0.33,)),
        ],
    )
    def test_inverse_matrix(self, name, params):
        qubits = (0,) if parameter_count(name) == len(params) and name in one_qubit_gate_names() else (0, 1)
        if name in one_qubit_gate_names():
            qubits = (0,)
        gate = Gate(name, qubits, params)
        inverse = gate.inverse()
        product = gate.matrix() @ inverse.matrix()
        dim = product.shape[0]
        assert np.allclose(product, np.eye(dim), atol=1e-12)

    def test_measure_has_no_inverse(self):
        with pytest.raises(CircuitError):
            Gate("measure", (0,)).inverse()

    def test_u2_inverse(self):
        gate = Gate("u2", (0,), (0.2, 0.9))
        product = gate.matrix() @ gate.inverse().matrix()
        assert np.allclose(product, np.eye(2) * product[0, 0], atol=1e-12)
        assert abs(abs(product[0, 0]) - 1) < 1e-12

    def test_str_contains_name(self):
        assert "cz" in str(Gate("cz", (0, 1)))
        assert "rz" in str(Gate("rz", (0,), (math.pi,)))

"""Unit tests for ASAP scheduling of baseline circuits."""

from __future__ import annotations

import pytest

from repro.baselines import asap_schedule
from repro.circuit import QuantumCircuit, random_cx_circuit


class TestAsapSchedule:
    def test_layer_count_matches_depth(self, random_small_circuit):
        schedule = asap_schedule(random_small_circuit)
        assert schedule.depth == random_small_circuit.depth()
        assert schedule.two_qubit_depth == random_small_circuit.two_qubit_depth()

    def test_gate_counts_preserved(self, random_small_circuit):
        schedule = asap_schedule(random_small_circuit)
        assert schedule.num_two_qubit_gates == random_small_circuit.num_two_qubit_gates()
        assert schedule.num_one_qubit_gates == random_small_circuit.num_one_qubit_gates()

    def test_layers_have_disjoint_qubits(self):
        circuit = random_cx_circuit(8, 30, seed=6)
        schedule = asap_schedule(circuit)
        for layer in schedule.layers:
            used = set()
            for gate in layer.gates:
                assert not (set(gate.qubits) & used)
                used.update(gate.qubits)

    def test_serial_chain(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(0, 1).cx(0, 1)
        schedule = asap_schedule(circuit)
        assert schedule.two_qubit_depth == 3
        assert all(layer.num_two_qubit == 1 for layer in schedule.layers)

    def test_parallel_gates_share_layer(self):
        circuit = QuantumCircuit(4).cx(0, 1).cx(2, 3)
        schedule = asap_schedule(circuit)
        assert schedule.two_qubit_depth == 1
        assert schedule.layers[0].num_two_qubit == 2

    def test_one_qubit_layers_not_counted_in_2q_depth(self):
        circuit = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        schedule = asap_schedule(circuit)
        assert schedule.two_qubit_depth == 1
        assert schedule.depth == 2

    def test_directives_ignored(self):
        circuit = QuantumCircuit(2).cx(0, 1).measure(0).measure(1)
        schedule = asap_schedule(circuit)
        assert schedule.num_two_qubit_gates == 1

    def test_parallelism_histogram(self):
        circuit = QuantumCircuit(4).cx(0, 1).cx(2, 3).cx(1, 2)
        histogram = asap_schedule(circuit).parallelism_histogram()
        assert histogram == {1: 1, 2: 1}

    def test_execution_time_monotone_in_depth(self):
        shallow = asap_schedule(QuantumCircuit(4).cx(0, 1).cx(2, 3))
        deep = asap_schedule(QuantumCircuit(4).cx(0, 1).cx(1, 2).cx(2, 3))
        assert deep.execution_time_us() > shallow.execution_time_us()

    def test_empty_circuit(self):
        schedule = asap_schedule(QuantumCircuit(3))
        assert schedule.depth == 0
        assert schedule.two_qubit_depth == 0

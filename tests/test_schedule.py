"""Unit tests for the FPQA schedule data model."""

from __future__ import annotations

import pytest

from repro.core.movement import AtomMove, MovementStep
from repro.core.schedule import (
    AncillaCreationStage,
    AncillaRecycleStage,
    FPQASchedule,
    MeasurementStage,
    MovementStage,
    OneQubitStage,
    RydbergStage,
    ScheduledGate,
    aod,
    slm,
)
from repro.exceptions import ScheduleError
from repro.hardware import FPQAConfig


@pytest.fixture
def config() -> FPQAConfig:
    return FPQAConfig(slm_rows=2, slm_cols=3)


def _simple_schedule(config: FPQAConfig) -> FPQASchedule:
    """create ancilla 0 from qubit 0, CZ with qubit 2, recycle."""
    schedule = FPQASchedule(config=config, num_data_qubits=4, name="simple")
    schedule.append(OneQubitStage(gates=[ScheduledGate("h", (slm(0),))]))
    schedule.append(AncillaCreationStage(copies=[(slm(0), 0)]))
    schedule.append(
        MovementStage(step=MovementStep(moves=[AtomMove(0, (0.0, 0.0), (0.0, 2.0))]))
    )
    schedule.append(RydbergStage(gates=[ScheduledGate("cz", (aod(0), slm(2)))]))
    schedule.append(
        MovementStage(step=MovementStep(moves=[AtomMove(0, (0.0, 2.0), (0.0, 0.0))]))
    )
    schedule.append(AncillaRecycleStage(copies=[(slm(0), 0)]))
    schedule.append(MeasurementStage(qubits=[0, 1, 2, 3]))
    return schedule


class TestOperands:
    def test_scheduled_gate_resolution(self):
        gate = ScheduledGate("cz", (aod(1), slm(3)))
        concrete = gate.to_gate(num_data=5)
        assert concrete.qubits == (6, 3)
        assert gate.data_qubits == (3,)
        assert gate.ancilla_slots == (1,)

    def test_slm_aod_helpers(self):
        assert slm(2) == ("slm", 2)
        assert aod(0) == ("aod", 0)


class TestMetrics:
    def test_depth_counts_2q_layers(self, config):
        schedule = _simple_schedule(config)
        # creation + CZ + recycle
        assert schedule.two_qubit_depth() == 3
        assert schedule.num_two_qubit_gates() == 3
        assert schedule.num_one_qubit_gates() == 1
        assert schedule.num_rydberg_stages() == 1

    def test_movement_metrics(self, config):
        schedule = _simple_schedule(config)
        assert schedule.total_movement_distance() == pytest.approx(4.0)
        assert schedule.movement_distances() == [2.0, 2.0]

    def test_ancilla_tracking(self, config):
        schedule = _simple_schedule(config)
        assert schedule.max_ancillas_used() == 1
        assert schedule.max_concurrent_ancillas() == 1
        assert schedule.total_qubits_used() == 5

    def test_execution_time_positive(self, config):
        schedule = _simple_schedule(config)
        assert schedule.execution_time_us() > 0
        breakdown = schedule.time_breakdown_us()
        assert breakdown["movement"] > 0
        assert breakdown["2q_gate"] > 0
        assert breakdown["atom_transfer"] > 0

    def test_parallelism_histogram(self, config):
        schedule = _simple_schedule(config)
        assert schedule.parallelism_histogram() == {1: 1}
        assert schedule.average_parallelism() == pytest.approx(1.0)

    def test_summary_keys(self, config):
        summary = _simple_schedule(config).summary()
        for key in ("depth", "2q_gates", "1q_gates", "movement_distance", "max_ancillas"):
            assert key in summary

    def test_empty_schedule(self, config):
        schedule = FPQASchedule(config=config, num_data_qubits=3)
        assert schedule.two_qubit_depth() == 0
        assert schedule.average_parallelism() == 0.0
        assert schedule.max_ancillas_used() == 0


class TestValidation:
    def test_valid_schedule_passes(self, config):
        _simple_schedule(config).validate()

    def test_double_creation_rejected(self, config):
        schedule = FPQASchedule(config=config, num_data_qubits=3)
        schedule.append(AncillaCreationStage(copies=[(slm(0), 0)]))
        schedule.append(AncillaCreationStage(copies=[(slm(1), 0)]))
        with pytest.raises(ScheduleError):
            schedule.validate()

    def test_recycle_of_dead_ancilla_rejected(self, config):
        schedule = FPQASchedule(config=config, num_data_qubits=3)
        schedule.append(AncillaRecycleStage(copies=[(slm(0), 0)]))
        with pytest.raises(ScheduleError):
            schedule.validate()

    def test_gate_on_dead_ancilla_rejected(self, config):
        schedule = FPQASchedule(config=config, num_data_qubits=3)
        schedule.append(RydbergStage(gates=[ScheduledGate("cz", (aod(0), slm(1)))]))
        with pytest.raises(ScheduleError):
            schedule.validate()

    def test_operand_reuse_in_one_pulse_rejected(self, config):
        schedule = FPQASchedule(config=config, num_data_qubits=4)
        schedule.append(AncillaCreationStage(copies=[(slm(0), 0), (slm(1), 1)]))
        schedule.append(
            RydbergStage(
                gates=[
                    ScheduledGate("cz", (aod(0), slm(2))),
                    ScheduledGate("cz", (aod(1), slm(2))),
                ]
            )
        )
        with pytest.raises(ScheduleError):
            schedule.validate()

    def test_data_qubit_out_of_range_rejected(self, config):
        schedule = FPQASchedule(config=config, num_data_qubits=2)
        schedule.append(AncillaCreationStage(copies=[(slm(0), 0)]))
        schedule.append(RydbergStage(gates=[ScheduledGate("cz", (aod(0), slm(5)))]))
        with pytest.raises(ScheduleError):
            schedule.validate()

    def test_copy_from_dead_ancilla_rejected(self, config):
        schedule = FPQASchedule(config=config, num_data_qubits=3)
        schedule.append(AncillaCreationStage(copies=[(aod(4), 0)]))
        with pytest.raises(ScheduleError):
            schedule.validate()

"""Unit tests for the flying-ancilla theory helpers."""

from __future__ import annotations

import pytest

from repro.circuit import Gate, QuantumCircuit
from repro.core import (
    ancilla_depth_overhead,
    ancilla_routed_cz_cost,
    breakeven_distance,
    is_ancilla_compatible,
    routed_cz_sequence,
    substitute_with_copy,
    swap_depth_overhead,
    swap_routed_cz_cost,
)
from repro.exceptions import RoutingError
from repro.sim import circuits_equivalent


class TestCompatibility:
    def test_diagonal_two_qubit_gates_are_compatible(self):
        assert is_ancilla_compatible(Gate("cz", (0, 1)))
        assert is_ancilla_compatible(Gate("rzz", (0, 1), (0.4,)))
        assert is_ancilla_compatible(Gate("cp", (0, 1), (0.2,)))

    def test_non_diagonal_gates_are_not(self):
        assert not is_ancilla_compatible(Gate("cx", (0, 1)))
        assert not is_ancilla_compatible(Gate("swap", (0, 1)))
        assert not is_ancilla_compatible(Gate("h", (0,)))

    def test_substitute_with_copy(self):
        gate = Gate("cz", (2, 5))
        redirected = substitute_with_copy(gate, 2, 9)
        assert redirected.qubits == (9, 5)
        redirected = substitute_with_copy(gate, 5, 9)
        assert redirected.qubits == (2, 9)

    def test_substitute_rejects_incompatible_gate(self):
        with pytest.raises(RoutingError):
            substitute_with_copy(Gate("cx", (0, 1)), 0, 5)

    def test_substitute_rejects_wrong_qubit(self):
        with pytest.raises(RoutingError):
            substitute_with_copy(Gate("cz", (0, 1)), 7, 5)

    def test_substitution_preserves_semantics(self):
        """CZ on a Z-basis copy equals CZ on the original qubit (ancilla starts in |0>)."""
        from repro.sim import Statevector
        import numpy as np

        copied = QuantumCircuit(3)
        copied.cx(0, 2)  # qubit 2 becomes a copy of qubit 0
        copied.append(substitute_with_copy(Gate("cz", (0, 1)), 0, 2))
        copied.cx(0, 2)  # recycle

        data = Statevector.random(2, seed=21)
        expected = data.copy()
        expected.apply_gate(Gate("cz", (0, 1)))
        full = data.extended(1)
        full.apply_circuit(copied)
        assert full.probability_of(2, 1) < 1e-9
        overlap = abs(np.vdot(expected.data, full.data[:4]))
        assert abs(overlap - 1.0) < 1e-9


class TestRoutedSequence:
    def test_sequence_equivalence(self):
        """With ancillas starting in |0>, the routed sequence equals the direct CZs."""
        from repro.sim import Statevector
        import numpy as np

        pairs = [(0, 1), (1, 2)]
        data = Statevector.random(3, seed=17)
        expected = data.copy()
        for a, b in pairs:
            expected.apply_gate(Gate("cz", (a, b)))
        full = data.extended(3)
        full.apply_gates(routed_cz_sequence(3, pairs))
        for ancilla in (3, 4, 5):
            assert full.probability_of(ancilla, 1) < 1e-9
        overlap = abs(np.vdot(expected.data, full.data[:8]))
        assert abs(overlap - 1.0) < 1e-9

    def test_invalid_pairs_rejected(self):
        with pytest.raises(RoutingError):
            routed_cz_sequence(3, [(0, 3)])
        with pytest.raises(RoutingError):
            routed_cz_sequence(3, [(1, 1)])


class TestCostModel:
    def test_ancilla_cost_is_distance_independent(self):
        assert ancilla_routed_cz_cost() == (3, 3)
        assert ancilla_depth_overhead() == 2

    def test_swap_cost_grows_with_distance(self):
        assert swap_routed_cz_cost(1) == (1, 1)
        assert swap_routed_cz_cost(2) == (4, 4)
        assert swap_routed_cz_cost(5) == (13, 13)
        assert swap_depth_overhead(2) == 3

    def test_invalid_distance(self):
        with pytest.raises(RoutingError):
            swap_routed_cz_cost(0)

    def test_breakeven_at_distance_two(self):
        """Beyond nearest neighbours the flying ancilla already wins on depth."""
        assert breakeven_distance() == 2
        assert swap_routed_cz_cost(3)[1] > ancilla_routed_cz_cost()[1]

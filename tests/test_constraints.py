"""Unit tests for the AOD order-preservation constraints.

Includes the worked example of Fig. 5 in the paper: on a 3x4 SLM array with
front-layer gates g0=(q0,q2), g1=(q5,q10), g2=(q6,q8), g3=(q9,q11), the
legal subset is {g0, g1, g3} and g2 is excluded because its column order
reverses.
"""

from __future__ import annotations

import pytest

from repro.exceptions import RoutingError
from repro.hardware import (
    FPQAConfig,
    GatePlacement,
    SLMArray,
    assign_aod_crosses,
    check_no_unintended_interactions,
    greedy_legal_subset,
    pair_is_compatible,
    placement_for_gate,
    subset_is_legal,
    violating_pairs,
)


@pytest.fixture
def fig5_array() -> SLMArray:
    return SLMArray(FPQAConfig(slm_rows=3, slm_cols=4), 12)


@pytest.fixture
def fig5_placements(fig5_array) -> dict[str, GatePlacement]:
    return {
        "g0": placement_for_gate(fig5_array, 0, 0, 2),
        "g1": placement_for_gate(fig5_array, 1, 5, 10),
        "g2": placement_for_gate(fig5_array, 2, 6, 8),
        "g3": placement_for_gate(fig5_array, 3, 9, 11),
    }


class TestPairCompatibility:
    def test_paper_example_pairs(self, fig5_placements):
        g0, g1, g2, g3 = (fig5_placements[k] for k in ("g0", "g1", "g2", "g3"))
        assert pair_is_compatible(g0, g1)
        assert pair_is_compatible(g0, g3)
        assert pair_is_compatible(g1, g3)
        # g2 conflicts with g0 and g1 in the column dimension
        assert not pair_is_compatible(g0, g2)
        assert not pair_is_compatible(g1, g2)

    def test_symmetry(self, fig5_placements):
        g0, g2 = fig5_placements["g0"], fig5_placements["g2"]
        assert pair_is_compatible(g0, g2) == pair_is_compatible(g2, g0)

    def test_equal_coordinates_are_compatible(self):
        a = GatePlacement(0, (0, 0), (0, 2))
        b = GatePlacement(1, (0, 1), (0, 3))
        assert pair_is_compatible(a, b)

    def test_row_reversal_detected(self):
        a = GatePlacement(0, (0, 0), (2, 0))
        b = GatePlacement(1, (1, 0), (2, 1))
        c = GatePlacement(2, (2, 0), (0, 0))
        assert pair_is_compatible(a, b)  # rows 0<1 then 2<=2: no reversal
        assert not pair_is_compatible(a, c)  # rows 0<2 then 2>0: reversal
        # b starts below a but would need to finish above it
        assert not pair_is_compatible(GatePlacement(3, (0, 0), (2, 0)), GatePlacement(4, (1, 0), (1, 1)))


class TestSubsets:
    def test_paper_example_greedy_subset(self, fig5_placements):
        ordered = [fig5_placements[k] for k in ("g0", "g1", "g2", "g3")]
        accepted = greedy_legal_subset(ordered)
        assert [p.gate_index for p in accepted] == [0, 1, 3]

    def test_subset_is_legal(self, fig5_placements):
        good = [fig5_placements[k] for k in ("g0", "g1", "g3")]
        bad = [fig5_placements[k] for k in ("g0", "g1", "g2")]
        assert subset_is_legal(good)
        assert not subset_is_legal(bad)

    def test_violating_pairs_reported(self, fig5_placements):
        bad = [fig5_placements[k] for k in ("g0", "g2")]
        assert violating_pairs(bad) == [(0, 2)]

    def test_single_gate_always_legal(self, fig5_placements):
        assert subset_is_legal([fig5_placements["g2"]])

    def test_greedy_respects_candidate_order(self, fig5_placements):
        # if g2 comes first, g0 and g1 are the ones excluded
        ordered = [fig5_placements[k] for k in ("g2", "g0", "g1", "g3")]
        accepted = greedy_legal_subset(ordered)
        assert accepted[0].gate_index == 2
        assert 0 not in {p.gate_index for p in accepted}


class TestCrossAssignment:
    def test_paper_example_crosses(self, fig5_placements):
        subset = [fig5_placements[k] for k in ("g0", "g1", "g3")]
        crosses = assign_aod_crosses(subset)
        assert crosses[0] == (0, 0)
        assert crosses[1] == (1, 1)
        assert crosses[3] == (2, 2)

    def test_crosses_preserve_order(self, fig5_array):
        placements = [
            placement_for_gate(fig5_array, 0, 0, 1),
            placement_for_gate(fig5_array, 1, 6, 7),
        ]
        crosses = assign_aod_crosses(placements)
        assert crosses[0][0] <= crosses[1][0]
        assert crosses[0][1] <= crosses[1][1]

    def test_illegal_subset_rejected(self, fig5_placements):
        with pytest.raises(RoutingError):
            assign_aod_crosses([fig5_placements["g0"], fig5_placements["g2"]])


class TestInteractionAudit:
    def test_intended_sites_pass(self, fig5_array):
        crosses = [(0.0, 2.0), (1.95, 2.02)]
        intended = {(0, 2), (2, 2)}
        assert check_no_unintended_interactions(crosses, intended, fig5_array)

    def test_unintended_interaction_detected(self, fig5_array):
        crosses = [(1.0, 1.0)]
        assert not check_no_unintended_interactions(crosses, set(), fig5_array)

    def test_parked_atoms_do_not_interact(self, fig5_array):
        crosses = [(0.5, 1.5), (2.5, 0.5)]
        assert check_no_unintended_interactions(crosses, set(), fig5_array)

    def test_empty_sites_do_not_interact(self):
        array = SLMArray(FPQAConfig(slm_rows=3, slm_cols=4), 10)
        # site (2, 3) exists in the grid but holds no qubit (only 10 qubits)
        assert check_no_unintended_interactions([(2.0, 3.0)], set(), array)


# ----------------------------------------------------------------------
# property tests: the O(k log k) greedy scan must match the O(k^2)
# pairwise reference (subset_is_legal / pair_is_compatible are the oracle)
# ----------------------------------------------------------------------
def _reference_greedy(placements):
    """The seed implementation: candidate vs every accepted gate."""
    accepted = []
    for candidate in placements:
        if all(pair_is_compatible(candidate, existing) for existing in accepted):
            accepted.append(candidate)
    return accepted


class TestFastGreedyMatchesReference:
    @pytest.mark.parametrize("seed", range(20))
    def test_randomized_equivalence(self, seed):
        import numpy as np

        rng = np.random.default_rng(2000 + seed)
        num = int(rng.integers(1, 40))
        rows = int(rng.integers(1, 6))
        cols = int(rng.integers(1, 6))
        placements = [
            GatePlacement(
                index,
                (int(rng.integers(rows)), int(rng.integers(cols))),
                (int(rng.integers(rows)), int(rng.integers(cols))),
            )
            for index in range(num)
        ]
        fast = greedy_legal_subset(placements)
        reference = _reference_greedy(placements)
        assert [p.gate_index for p in fast] == [p.gate_index for p in reference]
        assert subset_is_legal(fast)
        assert not violating_pairs(fast)

    @pytest.mark.parametrize("seed", range(5))
    def test_many_coordinate_ties(self, seed):
        """Tied source/target coordinates exercise the equal-key bypass."""
        import numpy as np

        rng = np.random.default_rng(3000 + seed)
        placements = [
            GatePlacement(
                index,
                (int(rng.integers(2)), int(rng.integers(2))),
                (int(rng.integers(2)), int(rng.integers(2))),
            )
            for index in range(30)
        ]
        fast = greedy_legal_subset(placements)
        assert [p.gate_index for p in fast] == [
            p.gate_index for p in _reference_greedy(placements)
        ]
        assert subset_is_legal(fast)

    def test_accepts_everything_when_all_compatible(self):
        # one shared source row/col: order can never reverse
        placements = [GatePlacement(i, (0, i), (0, i)) for i in range(10)]
        assert len(greedy_legal_subset(placements)) == 10

    def test_assign_aod_crosses_validate_flag(self, fig5_placements):
        legal = [fig5_placements["g0"], fig5_placements["g1"], fig5_placements["g3"]]
        assert assign_aod_crosses(legal, validate=False) == assign_aod_crosses(legal)
        with pytest.raises(RoutingError):
            assign_aod_crosses([fig5_placements["g0"], fig5_placements["g2"]], validate=True)

"""Unit tests for the QuantumCircuit container."""

from __future__ import annotations

import pytest

from repro.circuit import Gate, QuantumCircuit
from repro.exceptions import CircuitError
from repro.sim import circuits_equivalent


class TestConstruction:
    def test_empty_circuit(self):
        circuit = QuantumCircuit(3)
        assert circuit.num_qubits == 3
        assert len(circuit) == 0
        assert circuit.depth() == 0

    def test_invalid_width(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_append_validates_range(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.cx(0, 5)

    def test_builder_methods_chain(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).rz(0.1, 2).cz(1, 2)
        assert len(circuit) == 4
        assert circuit.gates[0].name == "h"
        assert circuit.gates[-1].name == "cz"

    def test_initial_gates_are_copied(self):
        gates = [Gate("h", (0,)), Gate("cx", (0, 1))]
        circuit = QuantumCircuit(2, gates)
        assert len(circuit) == 2
        gates.append(Gate("x", (0,)))
        assert len(circuit) == 2

    def test_equality(self):
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).h(0).cx(0, 1)
        c = QuantumCircuit(2).h(0)
        assert a == b
        assert a != c


class TestCounting:
    def test_gate_counts(self, small_circuit):
        counts = small_circuit.gate_counts()
        assert counts["cx"] == 2
        assert counts["cz"] == 2
        assert small_circuit.num_two_qubit_gates() == 4
        assert small_circuit.num_one_qubit_gates() == 3

    def test_two_qubit_pairs(self, small_circuit):
        pairs = small_circuit.two_qubit_pairs()
        assert pairs == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_active_qubits(self):
        circuit = QuantumCircuit(5).h(0).cx(0, 3)
        assert circuit.active_qubits() == {0, 3}

    def test_measure_not_counted_as_1q_gate(self):
        circuit = QuantumCircuit(2).h(0).measure(0).measure(1)
        assert circuit.num_one_qubit_gates() == 1


class TestDepth:
    def test_depth_serial_chain(self):
        circuit = QuantumCircuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
        assert circuit.depth() == 3
        assert circuit.two_qubit_depth() == 3

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(4).cx(0, 1).cx(2, 3)
        assert circuit.two_qubit_depth() == 1

    def test_two_qubit_depth_ignores_1q_layers(self):
        circuit = QuantumCircuit(2).h(0).h(1).cx(0, 1).rz(0.1, 0).rz(0.2, 1).cx(0, 1)
        assert circuit.two_qubit_depth() == 2
        assert circuit.depth() > 2

    def test_barrier_does_not_add_depth(self):
        circuit = QuantumCircuit(2).cx(0, 1).barrier().cx(0, 1)
        assert circuit.two_qubit_depth() == 2

    def test_layers_partition_all_two_qubit_gates(self, random_small_circuit):
        layers = random_small_circuit.layers(two_qubit_only=True)
        total = sum(len(layer) for layer in layers)
        assert total == random_small_circuit.num_two_qubit_gates()
        assert len(layers) == random_small_circuit.two_qubit_depth()

    def test_layers_have_disjoint_qubits(self, random_small_circuit):
        for layer in random_small_circuit.layers():
            seen = set()
            for gate in layer:
                assert not (set(gate.qubits) & seen)
                seen.update(gate.qubits)


class TestTransformations:
    def test_copy_is_independent(self, small_circuit):
        copy = small_circuit.copy()
        copy.x(0)
        assert len(copy) == len(small_circuit) + 1

    def test_compose(self):
        a = QuantumCircuit(3).h(0)
        b = QuantumCircuit(2).cx(0, 1)
        combined = a.compose(b)
        assert len(combined) == 2
        assert combined.num_qubits == 3

    def test_compose_too_wide_rejected(self):
        a = QuantumCircuit(2)
        b = QuantumCircuit(3).h(2)
        with pytest.raises(CircuitError):
            a.compose(b)

    def test_inverse_is_unitary_inverse(self, small_circuit):
        identity = small_circuit.compose(small_circuit.inverse())
        blank = QuantumCircuit(small_circuit.num_qubits)
        assert circuits_equivalent(identity, blank)

    def test_remap_qubits(self):
        circuit = QuantumCircuit(3).cx(0, 1).h(2)
        remapped = circuit.remap_qubits({0: 2, 1: 0, 2: 1})
        assert remapped.gates[0].qubits == (2, 0)
        assert remapped.gates[1].qubits == (1,)

    def test_without_directives(self):
        circuit = QuantumCircuit(2).h(0).measure(0).barrier().cx(0, 1)
        cleaned = circuit.without_directives()
        assert all(not g.is_directive for g in cleaned.gates)
        assert len(cleaned) == 2

    def test_text_diagram_mentions_counts(self, small_circuit):
        text = small_circuit.to_text_diagram()
        assert "4 qubits" in text
        assert "7 gates" in text

"""Unit tests for initial layout strategies."""

from __future__ import annotations

import pytest

from repro.baselines import Layout, degree_aware_layout, random_layout, trivial_layout
from repro.circuit import QuantumCircuit, random_cx_circuit
from repro.exceptions import RoutingError
from repro.hardware import grid_device, linear_device


class TestLayout:
    def test_trivial(self):
        layout = Layout.trivial(3)
        assert layout.physical(0) == 0
        assert layout.logical(2) == 2
        assert layout.num_logical == 3

    def test_from_permutation(self):
        layout = Layout.from_permutation([5, 2, 9])
        assert layout.physical(1) == 2
        assert layout.logical(9) == 2
        assert layout.logical(0) is None

    def test_duplicate_targets_rejected(self):
        with pytest.raises(RoutingError):
            Layout({0: 1, 1: 1})

    def test_swap_physical(self):
        layout = Layout({0: 0, 1: 1})
        layout.swap_physical(0, 1)
        assert layout.physical(0) == 1
        assert layout.physical(1) == 0

    def test_swap_with_empty_site(self):
        layout = Layout({0: 0})
        layout.swap_physical(0, 3)
        assert layout.physical(0) == 3
        assert layout.logical(0) is None
        assert layout.logical(3) == 0

    def test_copy_is_independent(self):
        layout = Layout({0: 0, 1: 1})
        copy = layout.copy()
        copy.swap_physical(0, 1)
        assert layout.physical(0) == 0

    def test_equality(self):
        assert Layout({0: 1}) == Layout({0: 1})
        assert Layout({0: 1}) != Layout({0: 2})


class TestLayoutStrategies:
    def test_trivial_layout_requires_fit(self):
        circuit = QuantumCircuit(10)
        with pytest.raises(RoutingError):
            trivial_layout(circuit, linear_device(5))

    def test_random_layout_is_valid(self):
        circuit = random_cx_circuit(6, 10, seed=1)
        device = grid_device(3, 3)
        layout = random_layout(circuit, device, seed=4)
        physicals = {layout.physical(q) for q in range(6)}
        assert len(physicals) == 6
        assert all(0 <= p < device.num_qubits for p in physicals)

    def test_degree_aware_layout_places_busy_qubits_centrally(self):
        device = grid_device(3, 3)
        circuit = QuantumCircuit(5)
        # qubit 0 interacts with everyone -> should land on a high-degree site
        for other in range(1, 5):
            circuit.cx(0, other)
        layout = degree_aware_layout(circuit, device)
        assert device.degree(layout.physical(0)) == max(
            device.degree(q) for q in range(device.num_qubits)
        )

    def test_degree_aware_layout_is_injective(self):
        circuit = random_cx_circuit(8, 20, seed=3)
        device = grid_device(3, 3)
        layout = degree_aware_layout(circuit, device)
        assert len({layout.physical(q) for q in range(8)}) == 8

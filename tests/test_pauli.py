"""Unit tests for Pauli strings and evolution circuits."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import expm

from repro.circuit import PauliString, pauli_evolution_circuit, random_pauli_strings, trotter_circuit
from repro.circuit.pauli import iter_support_pairs, pauli_weight_histogram, random_pauli_string
from repro.exceptions import WorkloadError
from repro.sim import circuit_unitary, unitaries_equivalent

_PAULI_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def pauli_operator(label: str) -> np.ndarray:
    """Dense operator of a Pauli string (little-endian: qubit 0 least significant)."""
    op = np.array([[1.0]], dtype=complex)
    for char in label:  # qubit 0 first => kron from the left accumulates to MSB-last
        op = np.kron(_PAULI_MATRICES[char], op)
    return op


class TestPauliString:
    def test_basic_properties(self):
        string = PauliString("XIZY")
        assert string.num_qubits == 4
        assert string.support == (0, 2, 3)
        assert string.weight == 3
        assert string.pauli_on(1) == "I"
        assert not string.is_identity()

    def test_lowercase_accepted(self):
        assert PauliString("xyzi").label == "XYZI"

    def test_invalid_label(self):
        with pytest.raises(WorkloadError):
            PauliString("XQ")
        with pytest.raises(WorkloadError):
            PauliString("")

    def test_identity_detection(self):
        assert PauliString("III").is_identity()

    def test_restricted(self):
        string = PauliString("XIZY")
        assert string.restricted([0, 3]).label == "XY"

    def test_support_pairs(self):
        string = PauliString("ZIXZ")
        assert list(iter_support_pairs(string)) == [(0, 2), (0, 3)]

    def test_weight_histogram(self):
        strings = [PauliString("XX"), PauliString("XI"), PauliString("ZZ")]
        assert pauli_weight_histogram(strings) == {1: 1, 2: 2}


class TestRandomStrings:
    def test_probability_bounds(self):
        with pytest.raises(WorkloadError):
            random_pauli_string(4, 1.5)

    def test_minimum_weight_respected(self):
        for seed in range(10):
            string = random_pauli_string(6, 0.1, seed=seed, min_weight=2)
            assert string.weight >= 2

    def test_deterministic_with_seed(self):
        a = random_pauli_strings(8, 5, 0.4, seed=9)
        b = random_pauli_strings(8, 5, 0.4, seed=9)
        assert [s.label for s in a] == [s.label for s in b]

    def test_probability_controls_weight(self):
        low = random_pauli_strings(30, 40, 0.1, seed=3)
        high = random_pauli_strings(30, 40, 0.5, seed=3)
        mean_low = np.mean([s.weight for s in low])
        mean_high = np.mean([s.weight for s in high])
        assert mean_high > mean_low


class TestEvolutionCircuits:
    @pytest.mark.parametrize("label", ["ZZ", "XX", "XY", "ZIZ", "XYZ", "IZX", "YIIY"])
    @pytest.mark.parametrize("ladder", ["star", "chain"])
    def test_matches_matrix_exponential(self, label, ladder):
        theta = 0.713
        string = PauliString(label, coefficient=theta)
        circuit = pauli_evolution_circuit(string, ladder=ladder)
        expected = expm(-1j * theta / 2 * pauli_operator(label))
        assert unitaries_equivalent(circuit_unitary(circuit), expected)

    def test_single_qubit_string(self):
        string = PauliString("IZ", coefficient=0.4)
        circuit = pauli_evolution_circuit(string)
        expected = expm(-1j * 0.2 * pauli_operator("IZ"))
        assert unitaries_equivalent(circuit_unitary(circuit), expected)

    def test_identity_string_rejected(self):
        with pytest.raises(WorkloadError):
            pauli_evolution_circuit(PauliString("II"))

    def test_explicit_theta_overrides_coefficient(self):
        string = PauliString("ZZ", coefficient=0.1)
        circuit = pauli_evolution_circuit(string, theta=0.9)
        expected = expm(-1j * 0.45 * pauli_operator("ZZ"))
        assert unitaries_equivalent(circuit_unitary(circuit), expected)

    def test_invalid_ladder(self):
        with pytest.raises(WorkloadError):
            pauli_evolution_circuit(PauliString("ZZ"), ladder="tree")


class TestTrotterCircuit:
    def test_concatenates_terms(self):
        strings = [PauliString("ZZI", 0.3), PauliString("IXX", 0.2)]
        circuit = trotter_circuit(strings)
        assert circuit.num_qubits == 3
        assert circuit.num_two_qubit_gates() == 4

    def test_matches_sequential_exponentials(self):
        strings = [PauliString("ZZ", 0.3), PauliString("XI", 0.5), PauliString("YZ", 0.25)]
        circuit = trotter_circuit(strings)
        expected = np.eye(4, dtype=complex)
        for string in strings:
            term = expm(-1j * string.coefficient / 2 * pauli_operator(string.label))
            expected = term @ expected
        assert unitaries_equivalent(circuit_unitary(circuit), expected)

    def test_width_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            trotter_circuit([PauliString("ZZ"), PauliString("ZZZ")])

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            trotter_circuit([])

    def test_identity_terms_skipped(self):
        circuit = trotter_circuit([PauliString("II"), PauliString("ZZ", 0.4)], 2)
        assert circuit.num_two_qubit_gates() == 2

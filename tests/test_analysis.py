"""Unit tests for the analysis modules (fidelity curves, parallelism, movement, timeline)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    compare_parallelism,
    compare_timelines,
    default_error_sweep,
    error_curve,
    error_threshold,
    execution_timeline,
    fidelity_report,
    movement_report,
    parallelism_profile,
    stage_sizes,
)
from repro.core import route_circuit, route_pauli_strings, route_qaoa
from repro.circuit import random_cx_circuit, random_pauli_strings
from repro.workloads import regular_graph_edges, ring_graph_edges


@pytest.fixture(scope="module")
def qaoa_schedule():
    return route_qaoa(12, regular_graph_edges(12, 3, seed=3))


@pytest.fixture(scope="module")
def generic_schedule():
    return route_circuit(random_cx_circuit(8, 16, seed=3))


class TestErrorCurves:
    def test_curve_is_monotone(self, qaoa_schedule):
        curve = error_curve(qaoa_schedule, "qaoa12")
        assert curve.circuit_error_rates == sorted(curve.circuit_error_rates)
        assert len(curve.as_pairs()) == len(default_error_sweep())

    def test_error_threshold(self, qaoa_schedule):
        curve = error_curve(qaoa_schedule, "qaoa12")
        threshold = error_threshold(curve, target_error=0.99)
        assert threshold is None or threshold > 0

    def test_interpolation(self, qaoa_schedule):
        curve = error_curve(qaoa_schedule, "qaoa12", two_qubit_error_rates=[1e-4, 1e-2])
        mid = curve.error_at(1e-3)
        assert curve.circuit_error_rates[0] <= mid <= curve.circuit_error_rates[-1]

    def test_fidelity_report_keys(self, generic_schedule):
        report = fidelity_report(generic_schedule)
        assert 0 <= report["error_rate"] <= 1
        assert report["depth"] == generic_schedule.two_qubit_depth()


class TestParallelism:
    def test_profile_consistency(self, qaoa_schedule):
        profile = parallelism_profile(qaoa_schedule)
        assert profile.num_stages == len(stage_sizes(qaoa_schedule))
        assert profile.total_gates == sum(stage_sizes(qaoa_schedule))
        assert profile.average_parallelism == pytest.approx(qaoa_schedule.average_parallelism())
        assert abs(sum(profile.ratios().values()) - 1.0) < 1e-9

    def test_stage_ratio(self, qaoa_schedule):
        profile = parallelism_profile(qaoa_schedule)
        top = max(profile.histogram, key=profile.histogram.get)
        assert profile.stage_ratio(top) > 0
        assert profile.stage_ratio(10**6) == 0.0

    def test_compare_rows(self, qaoa_schedule, generic_schedule):
        rows = compare_parallelism([parallelism_profile(qaoa_schedule), parallelism_profile(generic_schedule)])
        assert len(rows) == 2
        assert all("avg_parallelism" in row for row in rows)


class TestMovementReport:
    def test_report_tracks_all_moves(self, qaoa_schedule):
        report = movement_report(qaoa_schedule)
        assert report.summary()["movement_steps"] == len(qaoa_schedule.movement_steps())
        assert report.trajectories
        histogram = report.movements_histogram()
        assert sum(histogram.values()) == len(report.trajectories)

    def test_trajectory_distances_positive(self, qaoa_schedule):
        report = movement_report(qaoa_schedule)
        assert any(t.total_distance > 0 for t in report.trajectories.values())
        for trajectory in report.trajectories.values():
            assert trajectory.num_movements <= len(trajectory.segments)

    def test_speed_histogram_reasonable(self, qaoa_schedule):
        report = movement_report(qaoa_schedule)
        speeds = report.speed_histogram()
        assert all(speed >= 0 for speed in speeds)
        assert report.mean_speed_m_per_s() >= 0

    def test_generic_schedule_movement(self, generic_schedule):
        report = movement_report(generic_schedule)
        assert len(report.step_max_distances) == len(generic_schedule.movement_steps())

    def test_array_aggregates_match_trajectories(self, qaoa_schedule):
        """The bincount-reduced per-atom arrays agree with each trajectory."""
        report = movement_report(qaoa_schedule)
        assert list(report.atom_ids) == sorted(report.trajectories)
        for atom, moves, distance in zip(
            report.atom_ids, report.atom_movement_counts, report.atom_total_distances
        ):
            trajectory = report.trajectories[int(atom)]
            assert int(moves) == trajectory.num_movements
            assert float(distance) == pytest.approx(trajectory.total_distance)

    def test_reports_compare_equal(self, qaoa_schedule):
        """Regression: ndarray fields must not break MovementReport equality."""
        assert movement_report(qaoa_schedule) == movement_report(qaoa_schedule)
        from repro.analysis.movement_stats import MovementReport

        empty = MovementReport("s", [], {}, 1.0, 1.0)
        assert empty == MovementReport("s", [], {}, 1.0, 1.0)
        assert empty != movement_report(qaoa_schedule)

    def test_histograms_count_every_atom(self, qaoa_schedule):
        report = movement_report(qaoa_schedule)
        num_atoms = len(report.trajectories)
        assert sum(report.movements_histogram().values()) == num_atoms
        assert sum(report.distance_histogram().values()) == num_atoms
        moving = int((report.atom_movement_counts > 0).sum())
        assert sum(report.speed_histogram().values()) == moving


class TestTimeline:
    def test_timeline_covers_execution_time(self, qaoa_schedule):
        timeline = execution_timeline(qaoa_schedule)
        assert timeline.total_time_us == pytest.approx(qaoa_schedule.execution_time_us(), rel=1e-6)
        totals = timeline.category_totals()
        assert set(totals) <= {"movement", "2q_gate", "1q_gate", "atom_transfer"}

    def test_segments_are_contiguous(self, qaoa_schedule):
        timeline = execution_timeline(qaoa_schedule)
        clock = 0.0
        for segment in timeline.segments:
            assert segment.start_us == pytest.approx(clock)
            clock = segment.end_us

    def test_fractions_sum_to_one(self, qaoa_schedule):
        fractions = execution_timeline(qaoa_schedule).category_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_movement_dominates_qaoa(self, qaoa_schedule):
        """Fig. 10's headline: movement is the largest part of execution time."""
        timeline = execution_timeline(qaoa_schedule)
        assert timeline.dominant_category() in {"movement", "atom_transfer"}

    def test_compare_timelines_rows(self, qaoa_schedule, generic_schedule):
        strings = random_pauli_strings(6, 5, 0.4, seed=2)
        qsim_schedule = route_pauli_strings(strings)
        rows = compare_timelines(
            [execution_timeline(s) for s in (qaoa_schedule, generic_schedule, qsim_schedule)]
        )
        assert len(rows) == 3
        assert all(row["total_us"] > 0 for row in rows)

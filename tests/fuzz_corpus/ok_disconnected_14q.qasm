OPENQASM 2.0;
include "qelib1.inc";
qreg q[14];
// qubits 12-13 stay idle
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
cx q[3], q[4];
cx q[4], q[5];
rzz(pi/2) q[0], q[5];
h q[6];
cx q[6], q[7];
cx q[7], q[8];
cx q[8], q[9];
cx q[9], q[10];
cx q[10], q[11];
rzz(pi/2) q[6], q[11];

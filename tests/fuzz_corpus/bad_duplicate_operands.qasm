OPENQASM 2.0;
qreg q[2];
cx q[1], q[1];

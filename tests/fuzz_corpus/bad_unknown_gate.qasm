OPENQASM 2.0;
qreg q[2];
frobnicate q[0];

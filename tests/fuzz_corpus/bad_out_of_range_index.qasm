OPENQASM 2.0;
qreg q[2];
cx q[0], q[9];

OPENQASM 2.0;
qreg q[2];
qreg r[3];
cx q[0], r[0];

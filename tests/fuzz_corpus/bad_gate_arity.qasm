OPENQASM 2.0;
qreg q[3];
cx q[0];

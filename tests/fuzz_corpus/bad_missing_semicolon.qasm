OPENQASM 2.0;
qreg q[2];
h q[0]
cx q[0], q[1];

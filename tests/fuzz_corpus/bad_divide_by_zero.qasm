OPENQASM 2.0;
qreg q[1];
rz(pi/(1-1)) q[0];

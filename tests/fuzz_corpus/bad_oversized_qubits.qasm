OPENQASM 2.0;
qreg q[100000];
h q[0];

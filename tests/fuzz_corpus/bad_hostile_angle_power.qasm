OPENQASM 2.0;
qreg q[1];
rx(9**9**9) q[0];

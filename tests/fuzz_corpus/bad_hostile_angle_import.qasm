OPENQASM 2.0;
qreg q[1];
rx(__import__('os').system('true')) q[0];

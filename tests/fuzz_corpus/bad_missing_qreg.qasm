OPENQASM 2.0;
h q[0];
qreg q[2];

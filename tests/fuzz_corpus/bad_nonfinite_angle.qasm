OPENQASM 2.0;
qreg q[1];
rx(1e99999) q[0];

"""Unit tests for FPQA schedule JSON serialisation."""

from __future__ import annotations

import json

import pytest

from repro.core import QPilotCompiler, route_circuit, route_qaoa
from repro.exceptions import ScheduleError
from repro.sim import verify_schedule_equivalence
from repro.utils.serialization import (
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
    stage_from_dict,
)
from repro.workloads import ring_graph_edges


class TestRoundTrip:
    def test_generic_schedule_round_trip(self, random_small_circuit):
        schedule = route_circuit(random_small_circuit)
        restored = schedule_from_json(schedule_to_json(schedule))
        assert restored.name == schedule.name
        assert restored.num_data_qubits == schedule.num_data_qubits
        assert restored.num_stages == schedule.num_stages
        assert restored.two_qubit_depth() == schedule.two_qubit_depth()
        assert restored.num_two_qubit_gates() == schedule.num_two_qubit_gates()
        assert restored.total_movement_distance() == pytest.approx(schedule.total_movement_distance())
        restored.validate()

    def test_restored_schedule_still_verifies(self, random_small_circuit):
        schedule = route_circuit(random_small_circuit)
        restored = schedule_from_json(schedule_to_json(schedule))
        assert verify_schedule_equivalence(random_small_circuit, restored, seed=3)

    def test_qaoa_schedule_round_trip(self):
        schedule = route_qaoa(6, ring_graph_edges(6))
        restored = schedule_from_dict(schedule_to_dict(schedule))
        assert restored.num_two_qubit_gates() == schedule.num_two_qubit_gates()
        assert restored.parallelism_histogram() == schedule.parallelism_histogram()
        assert restored.config.slm_cols == schedule.config.slm_cols

    def test_qsim_schedule_round_trip(self, small_pauli_strings):
        schedule = QPilotCompiler().compile_pauli_strings(small_pauli_strings).schedule
        restored = schedule_from_json(schedule_to_json(schedule))
        assert restored.two_qubit_depth() == schedule.two_qubit_depth()
        assert restored.max_concurrent_ancillas() == schedule.max_concurrent_ancillas()

    def test_json_is_valid_and_versioned(self, random_small_circuit):
        text = schedule_to_json(route_circuit(random_small_circuit))
        payload = json.loads(text)
        assert payload["schema_version"] == 1
        assert "metrics" in payload and "stages" in payload


class TestErrors:
    def test_unknown_schema_version(self, random_small_circuit):
        data = schedule_to_dict(route_circuit(random_small_circuit))
        data["schema_version"] = 99
        with pytest.raises(ScheduleError):
            schedule_from_dict(data)

    def test_unknown_stage_kind(self):
        with pytest.raises(ScheduleError):
            stage_from_dict({"kind": "WarpDriveStage", "label": "x"})

    def test_non_jsonable_metadata_dropped(self, random_small_circuit):
        schedule = route_circuit(random_small_circuit)
        schedule.metadata["weird"] = object()
        data = schedule_to_dict(schedule)
        assert "weird" not in data["metadata"]
        assert "router" in data["metadata"]

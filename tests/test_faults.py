"""Chaos differential suite: seeded fault injection across the fabric.

The robustness contract (PR 6) is differential, like every other fast
path in this repo: a fault-injected run that ultimately *succeeds* must
be byte-identical — canonical sweep JSON, canonical schedules — to the
fault-free ``reference`` run.  Recovery may change how bumpy the road
is (retries, pool respawns, degradation), never what is computed.

Fault plans are data (:class:`~repro.utils.faults.FaultPlan`), seeded
and deterministic, so every failure mode here is reproducible: worker
crashes (real ``BrokenProcessPool``), timeouts, raised compiles,
failing store writes, corrupted store entries, and multi-daemon store
races.  The CI chaos job reruns this file with a high-rate plan in
``QPILOT_FAULTS``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys

import pytest

from repro.core import FarmJob, FarmOptions, FarmPolicy, WorkloadSpec, sweep_grid
from repro.core.farm import CompileFarm, FarmJobError, compile_farm_job_with_schedule
from repro.exceptions import CompileError, QPilotError
from repro.hardware.fpqa import FPQAConfig
from repro.service import CompileRequest, CompileService, ScheduleStore
from repro.utils.faults import (
    FaultPlan,
    FaultRule,
    InjectedStoreWriteError,
    deterministic_draw,
)

#: The three example workload families at a chaos-friendly size.
FAMILY_SPECS = [
    WorkloadSpec.random_circuit(12, 3, seed=61),
    WorkloadSpec.qsim(12, 0.3, num_strings=8, seed=62),
    WorkloadSpec.qaoa_random_graph(12, 0.3, seed=63),
]
WIDTHS = (4, 8)

#: Fast backoff so retry-heavy tests stay tier-1 sized.
FAST_POLICY = FarmPolicy(backoff_base_s=0.001, backoff_max_s=0.01)


def clean_reference_sweep():
    """The oracle: the same grid, no faults, serial in-process."""
    return sweep_grid(FAMILY_SPECS, widths=WIDTHS, executor="reference")


def canonical_point(point):
    """Per-point canonical dict with the wall-clock field nulled, matching
    what :meth:`SweepResult.to_dict(canonical=True)` does sweep-wide."""
    data = point.to_dict(canonical=True)
    if data.get("metrics") is not None:
        data["metrics"]["compile_time_s"] = None
    return data


def faulted_sweep(plan, *, executor, policy=FAST_POLICY, max_workers=None):
    return sweep_grid(
        FAMILY_SPECS,
        widths=WIDTHS,
        option_sets=[FarmOptions(faults=plan)],
        executor=executor,
        policy=policy,
        max_workers=max_workers,
    )


class TestFaultPlanRegistry:
    def test_draw_is_a_pure_function(self):
        a = deterministic_draw(7, "raise-in-compile", "circuit:x@w8", 1)
        b = deterministic_draw(7, "raise-in-compile", "circuit:x@w8", 1)
        assert a == b
        assert 0.0 <= a < 1.0
        assert a != deterministic_draw(7, "raise-in-compile", "circuit:x@w8", 2)
        assert a != deterministic_draw(8, "raise-in-compile", "circuit:x@w8", 1)

    def test_rule_match_and_max_fires(self):
        rule = FaultRule(kind="raise-in-compile", match="qsim", max_fires=2)
        assert rule.fires(0, "qsim:foo@w8", 0)
        assert rule.fires(0, "qsim:foo@w8", 1)
        assert not rule.fires(0, "qsim:foo@w8", 2)  # bounded
        assert not rule.fires(0, "circuit:foo@w8", 0)  # no match

    def test_unbounded_rule_never_stops(self):
        rule = FaultRule(kind="crash-worker", max_fires=None)
        assert all(rule.fires(0, "any", attempt) for attempt in range(10))

    def test_validation(self):
        with pytest.raises(QPilotError):
            FaultRule(kind="set-fire-to-the-rack")
        with pytest.raises(QPilotError):
            FaultRule(kind="crash-worker", rate=1.5)
        with pytest.raises(QPilotError):
            FaultRule(kind="crash-worker", max_fires=0)
        with pytest.raises(QPilotError):
            FaultPlan.from_dict({"seed": 1, "rules": [], "surprise": True})

    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=3,
            rules=(
                FaultRule(kind="crash-worker", match="circuit"),
                FaultRule(kind="sleep-in-compile", duration_s=0.5, max_fires=None),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("QPILOT_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        plan = FaultPlan.single("raise-in-compile", seed=5, match="qaoa")
        monkeypatch.setenv("QPILOT_FAULTS", plan.to_json())
        assert FaultPlan.from_env() == plan

    def test_rate_thins_deterministically(self):
        rule = FaultRule(kind="raise-in-compile", rate=0.5, max_fires=None)
        fired = [rule.fires(11, f"job-{i}", 0) for i in range(64)]
        assert fired == [rule.fires(11, f"job-{i}", 0) for i in range(64)]
        assert 0 < sum(fired) < 64  # thinned, not all-or-nothing

    def test_plans_do_not_change_digests_or_memo_keys(self):
        spec = FAMILY_SPECS[0]
        config = FPQAConfig.with_width(spec.num_qubits, 8)
        clean = FarmJob(spec, config, FarmOptions())
        chaotic = FarmJob(
            spec, config, FarmOptions(faults=FaultPlan.single("crash-worker"))
        )
        assert clean.key() == chaotic.key()
        assert clean.digest() == chaotic.digest()


class TestRetryRecovery:
    @pytest.mark.parametrize("executor", ("reference", "thread"))
    def test_recovered_run_is_byte_identical_to_oracle(self, executor):
        """raise-in-compile fails every job once; retries recover all of
        them and the canonical sweep JSON matches the fault-free oracle."""
        plan = FaultPlan.single("raise-in-compile", max_fires=1)
        chaotic = faulted_sweep(plan, executor=executor)
        assert not chaotic.partial
        assert {p.status for p in chaotic.points} == {"retried"}
        assert chaotic.to_json(canonical=True) == clean_reference_sweep().to_json(
            canonical=True
        )

    def test_statuses_are_per_point_accurate(self):
        plan = FaultPlan.single("raise-in-compile", match="qsim", max_fires=1)
        sweep = faulted_sweep(plan, executor="reference")
        for point in sweep.points:
            expected = "retried" if "qsim" in point.axes["workload"] else "ok"
            assert point.status == expected
        assert sweep.meta["retries"] == len(WIDTHS)  # one retry per qsim width

    def test_exhausted_retries_yield_a_partial_sweep(self):
        plan = FaultPlan.single("raise-in-compile", match="qaoa", max_fires=None)
        sweep = faulted_sweep(plan, executor="reference")
        assert sweep.partial
        failed = sweep.failed_points()
        assert len(failed) == len(WIDTHS)
        for point in failed:
            assert point.metrics is None
            assert point.error["error_type"] == "InjectedCompileError"
            assert point.error["attempts"] == 1 + FAST_POLICY.max_retries
        # the survivors still match their oracle counterparts exactly
        oracle = {
            (p.axes["workload"], p.width): canonical_point(p)
            for p in clean_reference_sweep().points
        }
        for point in sweep.points:
            if not point.failed:
                key = (point.axes["workload"], point.width)
                assert canonical_point(point) == oracle[key]

    def test_best_excludes_failed_points(self):
        plan = FaultPlan.single("raise-in-compile", match="circuit", max_fires=None)
        sweep = faulted_sweep(plan, executor="reference")
        best = sweep.best("depth")
        assert not best.failed
        all_failed_plan = FaultPlan.single("raise-in-compile", max_fires=None)
        broken = faulted_sweep(all_failed_plan, executor="reference")
        with pytest.raises(QPilotError, match="every design point"):
            broken.best("depth")

    def test_farm_yields_error_records_not_exceptions(self):
        plan = FaultPlan.single("raise-in-compile", max_fires=None)
        spec = FAMILY_SPECS[0]
        job = FarmJob(spec, FPQAConfig.with_width(spec.num_qubits, 4), FarmOptions(faults=plan))
        farm = CompileFarm("reference", policy=FAST_POLICY)
        (result,) = farm.run([job])
        assert isinstance(result, FarmJobError)
        assert result.failed
        assert result.error_type == "InjectedCompileError"
        assert "InjectedCompileError" in result.traceback
        assert farm.last_stats["failed_jobs"] == 1
        assert farm.job_reports[0]["status"] == "failed"


class TestTimeoutRecovery:
    def test_overdue_job_times_out_and_retry_succeeds(self):
        plan = FaultPlan.single(
            "sleep-in-compile", match="circuit", duration_s=1.5, max_fires=1
        )
        policy = FarmPolicy(
            timeout_s=0.25, backoff_base_s=0.001, backoff_max_s=0.01, max_retries=2
        )
        # deadlines start at submit time, so give every unique job its own
        # worker — only the injected sleepers should go overdue
        sweep = faulted_sweep(
            plan, executor="thread", policy=policy, max_workers=len(FAMILY_SPECS) * len(WIDTHS)
        )
        assert not sweep.partial
        assert sweep.meta["timeouts"] >= 1
        statuses = {p.axes["workload"]: p.status for p in sweep.points}
        assert statuses[FAMILY_SPECS[0].name] == "retried"
        assert sweep.to_json(canonical=True) == clean_reference_sweep().to_json(
            canonical=True
        )


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX process semantics")
class TestPoolRecovery:
    def test_crashed_worker_respawns_pool_and_recovers(self):
        """A real worker death (os._exit) breaks the ProcessPoolExecutor;
        the farm respawns it once, resubmits the unfinished jobs, and the
        recovered sweep is byte-identical to the oracle."""
        plan = FaultPlan.single("crash-worker", match="circuit", max_fires=1)
        policy = FarmPolicy(backoff_base_s=0.001, backoff_max_s=0.01, max_retries=3)
        sweep = faulted_sweep(plan, executor="process", policy=policy, max_workers=2)
        assert not sweep.partial
        assert sweep.meta["pool_respawns"] >= 1
        assert sweep.to_json(canonical=True) == clean_reference_sweep().to_json(
            canonical=True
        )

    def test_exhausted_respawn_budget_degrades_but_completes(self):
        """crash-worker always fires in pool workers, so the respawn budget
        runs out; the run degrades to the in-process reference path (where
        the crash fault is a no-op by design) and still completes."""
        plan = FaultPlan.single("crash-worker", max_fires=None)
        policy = FarmPolicy(
            backoff_base_s=0.001, backoff_max_s=0.01, max_retries=6, max_pool_respawns=0
        )
        sweep = faulted_sweep(plan, executor="process", policy=policy, max_workers=2)
        assert not sweep.partial
        assert sweep.meta["degraded"] is True
        assert sweep.to_json(canonical=True) == clean_reference_sweep().to_json(
            canonical=True
        )


class TestServiceFaults:
    def _request(self, *, faults=None, spec=None, width=4):
        spec = spec or FAMILY_SPECS[0]
        return CompileRequest.for_width(spec, width, options=FarmOptions(faults=faults))

    def test_store_write_failure_is_log_and_continue(self, tmp_path):
        store = ScheduleStore(
            tmp_path / "store", faults=FaultPlan.single("fail-store-write", max_fires=1)
        )
        service = CompileService(store, executor="reference")
        request = self._request()
        response = service.compile(request)  # served despite the failed persist
        assert response.source == "compiled"
        assert service.stats.store_write_errors == 1
        assert request.digest() not in store
        # the write fault was bounded: the next compile persists, then hits
        recompiled = service.compile(request)
        assert recompiled.source == "compiled"
        assert service.compile(request).source == "cache"
        assert service.stats.store_write_errors == 1

    def test_store_put_raises_injected_error_without_service(self, tmp_path):
        store = ScheduleStore(
            tmp_path / "store", faults=FaultPlan.single("fail-store-write", max_fires=1)
        )
        spec = FAMILY_SPECS[0]
        job = FarmJob(spec, FPQAConfig.with_width(spec.num_qubits, 4))
        result = compile_farm_job_with_schedule(job)
        with pytest.raises(InjectedStoreWriteError):
            store.put(job.digest(), result)
        store.put(job.digest(), result)  # attempt 1: past max_fires
        assert store.get(job.digest()) is not None

    def test_corrupted_entry_is_repaired_on_next_read(self, tmp_path):
        store = ScheduleStore(
            tmp_path / "store",
            faults=FaultPlan.single("corrupt-store-entry", max_fires=1),
        )
        service = CompileService(store, executor="reference")
        request = self._request()
        first = service.compile(request)
        assert request.digest() in store  # written, then garbled in place
        second = service.compile(request)  # corrupt read -> miss -> recompile
        assert second.source == "compiled"
        assert store.stats.corrupt == 1
        third = service.compile(request)  # repaired entry now serves
        assert third.source == "cache"
        assert third.schedule_json() == first.schedule_json()

    def test_compile_error_carries_the_cause(self, tmp_path):
        service = CompileService(tmp_path / "store", executor="reference")
        request = self._request(
            faults=FaultPlan.single("raise-in-compile", max_fires=None)
        )
        with pytest.raises(CompileError) as exc_info:
            service.compile(request)
        err = exc_info.value
        assert err.error_type == "InjectedCompileError"
        assert err.digest == request.digest()
        assert err.attempts == 3
        assert "InjectedCompileError" in err.traceback
        assert service.queue.dead_letters[0].digest == request.digest()

    def test_stream_keeps_flowing_around_a_failed_request(self, tmp_path):
        service = CompileService(tmp_path / "store", executor="reference")
        poisoned = self._request(
            faults=FaultPlan.single("raise-in-compile", match="qsim", max_fires=None),
            spec=FAMILY_SPECS[1],
        )
        healthy = [self._request(spec=FAMILY_SPECS[0]), self._request(spec=FAMILY_SPECS[2])]
        responses = list(service.stream([healthy[0], poisoned, healthy[1]]))
        assert len(responses) == 2  # the healthy pair
        assert [r.source for r in responses] == ["compiled", "compiled"]
        assert len(service.queue.dead_letters) == 1
        assert service.queue.dead_letters[0].error_type == "InjectedCompileError"
        assert service.stats.failed_jobs == 1


class TestChaosDifferential:
    """The acceptance-criteria scenario: one seeded plan combining a worker
    crash, a timeout-inducing sleep, and a raised compile — the sweep
    completes with accurate statuses and its successful points match the
    uninjected reference run byte-for-byte.

    The CI chaos job overrides the plan via ``QPILOT_FAULTS`` to turn the
    fault rate up without code changes.
    """

    DEFAULT_PLAN = FaultPlan(
        seed=2024,
        rules=(
            FaultRule(kind="crash-worker", match="circuit", max_fires=1),
            FaultRule(kind="sleep-in-compile", match="qsim", duration_s=1.5, max_fires=1),
            FaultRule(kind="raise-in-compile", match="qaoa", max_fires=1),
        ),
    )

    def test_combined_plan_recovers_to_oracle_bytes(self):
        plan = FaultPlan.from_env() or self.DEFAULT_PLAN
        policy = FarmPolicy(
            timeout_s=0.5, backoff_base_s=0.001, backoff_max_s=0.01, max_retries=4
        )
        chaotic = faulted_sweep(plan, executor="process", policy=policy, max_workers=2)
        oracle = clean_reference_sweep()
        # per-point statuses are accurate: anything that survived is ok or
        # retried, and every successful point carries real metrics
        for point in chaotic.points:
            assert point.status in ("ok", "retried", "failed")
            if not point.failed:
                assert point.metrics is not None
        oracle_points = {
            (p.axes["workload"], p.width): canonical_point(p)
            for p in oracle.points
        }
        for point in chaotic.points:
            if point.failed:
                continue
            key = (point.axes["workload"], point.width)
            assert json.dumps(canonical_point(point), sort_keys=True) == json.dumps(
                oracle_points[key], sort_keys=True
            )
        # with the default bounded plan every fault recovers completely
        if plan == self.DEFAULT_PLAN:
            assert not chaotic.partial
            assert chaotic.to_json(canonical=True) == oracle.to_json(canonical=True)


# ---------------------------------------------------------------------------
# Multiprocess store hammer.  Module-level worker so the fork context can
# run it; each child shares the same store root and the same digest set,
# writing, reading, and corrupting concurrently.

_HAMMER_DIGESTS = [f"{i:040x}" for i in range(24)]
_HAMMER_MAX_ENTRIES = 8


def _hammer_worker(root: str, worker: int, barrier) -> None:
    spec = WorkloadSpec.random_circuit(6, 2, seed=91)
    job = FarmJob(spec, FPQAConfig.with_width(6, 4))
    result = compile_farm_job_with_schedule(job)
    store = ScheduleStore(root, max_entries=_HAMMER_MAX_ENTRIES)
    barrier.wait(timeout=60)
    for round_ in range(3):
        for offset, digest in enumerate(_HAMMER_DIGESTS):
            store.put(digest, result)
            probe = _HAMMER_DIGESTS[(offset + worker) % len(_HAMMER_DIGESTS)]
            entry = store.get(probe)  # hit, miss or corrupt — never a crash
            if entry is not None:
                assert entry.digest == probe
            if (offset + round_) % 5 == worker % 5:
                # garble a shared entry so concurrent readers race the
                # corruption-unlink repair against each other
                path = store.path_for(probe)
                if path.exists():
                    try:
                        path.write_text("{torn")
                    except OSError:
                        pass
    os._exit(0)  # skip interpreter teardown races in the fork child


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork start method required"
)
class TestMultiprocessStoreHammer:
    def test_shared_root_survives_concurrent_daemons(self, tmp_path):
        """Several daemons hammer one store root — concurrent writes,
        corrupt-entry repairs and lockfile-guarded evictions — and nobody
        crashes; the store ends bounded and every surviving entry loads."""
        ctx = multiprocessing.get_context("fork")
        root = tmp_path / "shared-store"
        barrier = ctx.Barrier(4)
        children = [
            ctx.Process(target=_hammer_worker, args=(str(root), worker, barrier))
            for worker in range(4)
        ]
        for child in children:
            child.start()
        for child in children:
            child.join(timeout=120)
        assert [child.exitcode for child in children] == [0, 0, 0, 0]
        assert not (root / ".evict.lock").exists()  # every lock released
        survivor = ScheduleStore(root, max_entries=_HAMMER_MAX_ENTRIES)
        # a daemon that loses the eviction-lock race skips its pass, so
        # concurrent writers may transiently overshoot the cap; the next
        # uncontended write re-bounds the store
        spec = WorkloadSpec.random_circuit(6, 2, seed=91)
        job = FarmJob(spec, FPQAConfig.with_width(6, 4))
        survivor.put(job.digest(), compile_farm_job_with_schedule(job))
        assert len(survivor) <= _HAMMER_MAX_ENTRIES
        for digest in survivor.digests():
            entry = survivor.get(digest)
            assert entry is None or entry.digest == digest

"""Compile-farm tests: WorkloadSpec, memoisation, and the executor oracle.

The load-bearing suite here is the differential one: the parallel
``process`` executor must produce design points identical (depth,
error_rate, swap counts — everything except wall-clock fields) to the
deterministic in-process ``reference`` executor, over all three example
workload families and seeded random grids.  This is the ROADMAP oracle
pattern applied to batching: the serial backend is the oracle, the
process pool is the fast path.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import (
    CompileFarm,
    FarmJob,
    FarmOptions,
    QPilotCompiler,
    WorkloadSpec,
    sweep_array_width,
    sweep_grid,
)
from repro.core.qaoa_router import QAOARouterOptions
from repro.exceptions import QPilotError
from repro.hardware.fpqa import FPQAConfig

#: The three example workload families at a differential-friendly size.
FAMILY_SPECS = [
    WorkloadSpec.random_circuit(16, 5, seed=31),
    WorkloadSpec.qsim(16, 0.3, num_strings=10, seed=32),
    WorkloadSpec.qaoa_random_graph(16, 0.3, seed=33),
]
WIDTHS = (4, 8, 16)


def deterministic_metrics(sweep):
    """Per-point metrics with the volatile wall-clock field cleared."""
    return [point.metrics.deterministic() for point in sweep.points]


class TestWorkloadSpec:
    def test_specs_pickle_round_trip(self):
        for spec in FAMILY_SPECS:
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec
            assert clone.fingerprint() == spec.fingerprint()

    def test_farm_job_pickles(self):
        job = FarmJob(
            workload=FAMILY_SPECS[0],
            config=FPQAConfig.with_width(16, 8),
            options=FarmOptions(include_sabre=True),
        )
        clone = pickle.loads(pickle.dumps(job))
        assert clone.key() == job.key()

    def test_fingerprint_distinguishes_params(self):
        a = WorkloadSpec.random_circuit(16, 5, seed=1)
        b = WorkloadSpec.random_circuit(16, 5, seed=2)
        c = WorkloadSpec.random_circuit(16, 6, seed=1)
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3
        assert a.fingerprint() == WorkloadSpec.random_circuit(16, 5, seed=1).fingerprint()

    def test_fingerprint_ignores_display_name(self):
        a = WorkloadSpec.qsim(12, 0.2, seed=9, name="alpha")
        b = WorkloadSpec.qsim(12, 0.2, seed=9, name="beta")
        assert a.fingerprint() == b.fingerprint()

    def test_build_is_deterministic(self):
        circuit_a = FAMILY_SPECS[0].build()
        circuit_b = FAMILY_SPECS[0].build()
        assert [str(g) for g in circuit_a.gates] == [str(g) for g in circuit_b.gates]
        strings_a = FAMILY_SPECS[1].build()
        strings_b = FAMILY_SPECS[1].build()
        assert [s.label for s in strings_a] == [s.label for s in strings_b]
        assert FAMILY_SPECS[2].build() == FAMILY_SPECS[2].build()

    def test_qaoa_edges_spec_builds_exact_edges(self):
        edges = [(0, 1), (2, 1), (3, 0)]
        spec = WorkloadSpec.qaoa_edges(4, edges)
        assert spec.build() == [(0, 1), (0, 3), (1, 2)]

    def test_qaoa_regular_graph_spec(self):
        spec = WorkloadSpec.qaoa_regular_graph(10, 3, seed=4)
        edges = spec.build()
        degree = {v: 0 for v in range(10)}
        for a, b in edges:
            degree[a] += 1
            degree[b] += 1
        assert set(degree.values()) == {3}

    def test_unknown_kind_rejected(self):
        with pytest.raises(QPilotError):
            WorkloadSpec(kind="molecule", name="x", num_qubits=4)

    def test_compile_with_matches_direct_compiler_call(self):
        config = FPQAConfig.with_width(16, 8)
        spec = FAMILY_SPECS[0]
        farm_result = spec.compile_with(QPilotCompiler(config))
        direct_result = QPilotCompiler(config).compile_circuit(spec.build())
        assert farm_result.depth == direct_result.depth
        assert farm_result.evaluation.error_rate == direct_result.evaluation.error_rate


class TestCompileFarm:
    def test_unknown_executor_rejected(self):
        with pytest.raises(QPilotError):
            CompileFarm("threads")

    def test_duplicate_jobs_are_memoised(self):
        config = FPQAConfig.with_width(16, 8)
        job = FarmJob(workload=FAMILY_SPECS[0], config=config)
        farm = CompileFarm("reference")
        results = farm.run([job, job, job])
        assert farm.last_stats["num_jobs"] == 3
        assert farm.last_stats["num_unique_jobs"] == 1
        assert results[0] is results[1] is results[2]

    def test_memo_key_separates_configs_and_options(self):
        spec = FAMILY_SPECS[2]
        narrow = FarmJob(workload=spec, config=FPQAConfig.with_width(16, 4))
        wide = FarmJob(workload=spec, config=FPQAConfig.with_width(16, 16))
        tuned = FarmJob(
            workload=spec,
            config=FPQAConfig.with_width(16, 4),
            options=FarmOptions(label="seed1", qaoa=QAOARouterOptions(seed_trials=1)),
        )
        farm = CompileFarm("reference")
        farm.run([narrow, wide, tuned, narrow])
        assert farm.last_stats["num_unique_jobs"] == 3

    def test_single_job_process_farm_reports_serial_backend(self):
        """A pool is pointless for one unique job; stats must say what ran."""
        job = FarmJob(workload=FAMILY_SPECS[0], config=FPQAConfig.with_width(16, 8))
        farm = CompileFarm("process", max_workers=8)
        farm.run([job, job])
        assert farm.last_stats["executor"] == "reference"
        assert farm.last_stats["requested_executor"] == "process"
        assert farm.last_stats["max_workers"] == 1

    def test_run_preserves_submission_order(self):
        spec = FAMILY_SPECS[0]
        jobs = [
            FarmJob(workload=spec, config=FPQAConfig.with_width(16, width))
            for width in (16, 4, 8)
        ]
        farm = CompileFarm("reference")
        results = farm.run(jobs)
        expected = [CompileFarm("reference").run([job])[0].depth for job in jobs]
        assert [m.depth for m in results] == expected


class TestExecutorOracle:
    """Parallel farm vs the serial reference oracle: identical design points."""

    def test_three_families_identical_series_and_metrics(self):
        options = [FarmOptions(include_sabre=True)]
        reference = sweep_grid(
            FAMILY_SPECS, widths=WIDTHS, option_sets=options, executor="reference"
        )
        parallel = sweep_grid(
            FAMILY_SPECS, widths=WIDTHS, option_sets=options, executor="process"
        )
        assert reference.as_series() == parallel.as_series()
        assert deterministic_metrics(reference) == deterministic_metrics(parallel)
        # the SABRE baseline fingerprint crossed the process boundary intact
        circuit_points = [
            p for p in parallel.points if p.axes["workload"] == FAMILY_SPECS[0].name
        ]
        assert all(p.sabre_num_swaps > 0 for p in circuit_points)

    def test_per_family_sweeps_match(self):
        for spec in FAMILY_SPECS:
            reference = sweep_array_width(spec, widths=WIDTHS, executor="reference")
            parallel = sweep_array_width(spec, widths=WIDTHS, executor="process")
            assert reference.as_series() == parallel.as_series(), spec.name
            assert deterministic_metrics(reference) == deterministic_metrics(parallel)

    @pytest.mark.parametrize("seed", [3, 17])
    def test_seeded_random_grids_match(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        specs = [
            WorkloadSpec.random_circuit(
                int(rng.integers(8, 20)), int(rng.integers(2, 6)), seed=seed
            ),
            WorkloadSpec.qsim(
                int(rng.integers(8, 20)),
                float(rng.uniform(0.1, 0.5)),
                num_strings=int(rng.integers(5, 12)),
                seed=seed + 1,
            ),
            WorkloadSpec.qaoa_random_graph(
                int(rng.integers(8, 20)), float(rng.uniform(0.1, 0.4)), seed=seed + 2
            ),
        ]
        widths = (4, 9, 25)
        axes = {"two_qubit_fidelity": (0.99, 0.995)}
        reference = sweep_grid(specs, widths=widths, config_axes=axes, executor="reference")
        parallel = sweep_grid(specs, widths=widths, config_axes=axes, executor="process")
        assert reference.as_series() == parallel.as_series()
        assert deterministic_metrics(reference) == deterministic_metrics(parallel)
        assert [p.axes for p in reference.points] == [p.axes for p in parallel.points]

    def test_spec_path_rejects_contradictory_num_qubits(self):
        with pytest.raises(QPilotError):
            sweep_array_width(FAMILY_SPECS[0], 100, widths=WIDTHS)
        # matching or omitted num_qubits is fine
        sweep = sweep_array_width(FAMILY_SPECS[0], FAMILY_SPECS[0].num_qubits, widths=(4,))
        assert sweep.points[0].width == 4

    def test_closure_shim_matches_spec_path(self):
        """The legacy closure API and the farm compile identically."""
        spec = FAMILY_SPECS[2]
        edges = spec.build()

        def compile_fn(compiler: QPilotCompiler):
            return compiler.compile_qaoa(spec.num_qubits, edges)

        legacy = sweep_array_width(
            compile_fn, spec.num_qubits, widths=WIDTHS, workload_name=spec.name
        )
        farmed = sweep_array_width(spec, widths=WIDTHS, executor="process")
        assert legacy.as_series() == farmed.as_series()
        assert [p.error_rate for p in legacy.points] == [p.error_rate for p in farmed.points]
        # closure path keeps full results for backwards compatibility
        assert all(p.result is not None for p in legacy.points)

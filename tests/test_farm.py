"""Compile-farm tests: WorkloadSpec, memoisation, and the executor oracle.

The load-bearing suite here is the differential one: the parallel
``process`` executor must produce design points identical (depth,
error_rate, swap counts — everything except wall-clock fields) to the
deterministic in-process ``reference`` executor, over all three example
workload families and seeded random grids.  This is the ROADMAP oracle
pattern applied to batching: the serial backend is the oracle, the
process pool is the fast path.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import (
    CompileFarm,
    FarmJob,
    FarmOptions,
    QPilotCompiler,
    WorkloadSpec,
    sweep_array_width,
    sweep_grid,
)
from repro.core.qaoa_router import QAOARouterOptions
from repro.exceptions import QPilotError
from repro.hardware.fpqa import FPQAConfig

#: The three example workload families at a differential-friendly size.
FAMILY_SPECS = [
    WorkloadSpec.random_circuit(16, 5, seed=31),
    WorkloadSpec.qsim(16, 0.3, num_strings=10, seed=32),
    WorkloadSpec.qaoa_random_graph(16, 0.3, seed=33),
]
WIDTHS = (4, 8, 16)


def deterministic_metrics(sweep):
    """Per-point metrics with the volatile wall-clock field cleared."""
    return [point.metrics.deterministic() for point in sweep.points]


class TestWorkloadSpec:
    def test_specs_pickle_round_trip(self):
        for spec in FAMILY_SPECS:
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec
            assert clone.fingerprint() == spec.fingerprint()

    def test_farm_job_pickles(self):
        job = FarmJob(
            workload=FAMILY_SPECS[0],
            config=FPQAConfig.with_width(16, 8),
            options=FarmOptions(include_sabre=True),
        )
        clone = pickle.loads(pickle.dumps(job))
        assert clone.key() == job.key()

    def test_fingerprint_distinguishes_params(self):
        a = WorkloadSpec.random_circuit(16, 5, seed=1)
        b = WorkloadSpec.random_circuit(16, 5, seed=2)
        c = WorkloadSpec.random_circuit(16, 6, seed=1)
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3
        assert a.fingerprint() == WorkloadSpec.random_circuit(16, 5, seed=1).fingerprint()

    def test_fingerprint_ignores_display_name(self):
        a = WorkloadSpec.qsim(12, 0.2, seed=9, name="alpha")
        b = WorkloadSpec.qsim(12, 0.2, seed=9, name="beta")
        assert a.fingerprint() == b.fingerprint()

    def test_build_is_deterministic(self):
        circuit_a = FAMILY_SPECS[0].build()
        circuit_b = FAMILY_SPECS[0].build()
        assert [str(g) for g in circuit_a.gates] == [str(g) for g in circuit_b.gates]
        strings_a = FAMILY_SPECS[1].build()
        strings_b = FAMILY_SPECS[1].build()
        assert [s.label for s in strings_a] == [s.label for s in strings_b]
        assert FAMILY_SPECS[2].build() == FAMILY_SPECS[2].build()

    def test_qaoa_edges_spec_builds_exact_edges(self):
        edges = [(0, 1), (2, 1), (3, 0)]
        spec = WorkloadSpec.qaoa_edges(4, edges)
        assert spec.build() == [(0, 1), (0, 3), (1, 2)]

    def test_qaoa_regular_graph_spec(self):
        spec = WorkloadSpec.qaoa_regular_graph(10, 3, seed=4)
        edges = spec.build()
        degree = {v: 0 for v in range(10)}
        for a, b in edges:
            degree[a] += 1
            degree[b] += 1
        assert set(degree.values()) == {3}

    def test_unknown_kind_rejected(self):
        with pytest.raises(QPilotError):
            WorkloadSpec(kind="tensor-network", name="x", num_qubits=4)

    def test_qasm_spec_content_addressed_by_text(self):
        from repro.circuit import ghz_circuit, to_qasm

        text = to_qasm(ghz_circuit(5))
        a = WorkloadSpec.qasm(text)
        b = WorkloadSpec.qasm(text, name="renamed")
        assert a.fingerprint() == b.fingerprint()
        assert a.qasm_sha1() == b.qasm_sha1()
        assert a.num_qubits == 5
        other = WorkloadSpec.qasm(to_qasm(ghz_circuit(6)))
        assert other.fingerprint() != a.fingerprint()

    def test_qasm_spec_round_trips_through_dict(self):
        from repro.circuit import ghz_circuit, to_qasm

        spec = WorkloadSpec.qasm(to_qasm(ghz_circuit(4)))
        clone = WorkloadSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_qasm_spec_rejects_inconsistent_construction(self):
        from repro.circuit import ghz_circuit, to_qasm

        text = to_qasm(ghz_circuit(5))
        with pytest.raises(QPilotError):
            WorkloadSpec(kind="qasm", name="x", num_qubits=9, params=(("qasm", text),))
        with pytest.raises(QPilotError):
            WorkloadSpec(kind="qasm", name="x", num_qubits=1, params=())

    def test_qec_spec_sizes_and_validation(self):
        spec = WorkloadSpec.qec_surface_code(2, rounds=2)
        assert spec.num_qubits == 7  # d^2 data + d^2-1 ancilla
        circuit = spec.build()
        assert circuit.num_qubits == 7
        assert any(g.name == "measure" for g in circuit.gates)
        with pytest.raises(QPilotError):
            WorkloadSpec.qec_surface_code(1)
        with pytest.raises(QPilotError):
            WorkloadSpec(
                kind="qec",
                name="x",
                num_qubits=6,
                params=(("code", "surface"), ("distance", 2), ("rounds", 1)),
            )

    def test_molecule_spec_sizes_and_validation(self):
        spec = WorkloadSpec.molecule("H2")
        assert spec.num_qubits == 4
        strings = spec.build()
        assert strings and all(len(s.label) == 4 for s in strings)
        assert [s.label for s in strings] == [s.label for s in spec.build()]
        with pytest.raises(QPilotError):
            WorkloadSpec.molecule("Unobtainium")
        with pytest.raises(QPilotError):
            WorkloadSpec(kind="molecule", name="x", num_qubits=5, params=(("molecule", "H2"),))

    def test_compile_with_matches_direct_compiler_call(self):
        config = FPQAConfig.with_width(16, 8)
        spec = FAMILY_SPECS[0]
        farm_result = spec.compile_with(QPilotCompiler(config))
        direct_result = QPilotCompiler(config).compile_circuit(spec.build())
        assert farm_result.depth == direct_result.depth
        assert farm_result.evaluation.error_rate == direct_result.evaluation.error_rate


class TestCompileFarm:
    def test_unknown_executor_rejected(self):
        with pytest.raises(QPilotError):
            CompileFarm("gpu")

    def test_executor_aliases_resolve(self):
        assert CompileFarm("serial").executor == "reference"
        assert CompileFarm("parallel").executor == "process"
        assert CompileFarm("threads").executor == "thread"

    def test_duplicate_jobs_are_memoised(self):
        config = FPQAConfig.with_width(16, 8)
        job = FarmJob(workload=FAMILY_SPECS[0], config=config)
        farm = CompileFarm("reference")
        results = farm.run([job, job, job])
        assert farm.last_stats["num_jobs"] == 3
        assert farm.last_stats["num_unique_jobs"] == 1
        assert results[0] is results[1] is results[2]

    def test_memo_key_separates_configs_and_options(self):
        spec = FAMILY_SPECS[2]
        narrow = FarmJob(workload=spec, config=FPQAConfig.with_width(16, 4))
        wide = FarmJob(workload=spec, config=FPQAConfig.with_width(16, 16))
        tuned = FarmJob(
            workload=spec,
            config=FPQAConfig.with_width(16, 4),
            options=FarmOptions(label="seed1", qaoa=QAOARouterOptions(seed_trials=1)),
        )
        farm = CompileFarm("reference")
        farm.run([narrow, wide, tuned, narrow])
        assert farm.last_stats["num_unique_jobs"] == 3

    def test_single_job_process_farm_reports_serial_backend(self):
        """A pool is pointless for one unique job; stats must say what ran."""
        job = FarmJob(workload=FAMILY_SPECS[0], config=FPQAConfig.with_width(16, 8))
        farm = CompileFarm("process", max_workers=8)
        farm.run([job, job])
        assert farm.last_stats["executor"] == "reference"
        assert farm.last_stats["requested_executor"] == "process"
        assert farm.last_stats["max_workers"] == 1

    def test_run_preserves_submission_order(self):
        spec = FAMILY_SPECS[0]
        jobs = [
            FarmJob(workload=spec, config=FPQAConfig.with_width(16, width))
            for width in (16, 4, 8)
        ]
        farm = CompileFarm("reference")
        results = farm.run(jobs)
        expected = [CompileFarm("reference").run([job])[0].depth for job in jobs]
        assert [m.depth for m in results] == expected


#: Pooled backends that must match the serial reference oracle.
POOLED_EXECUTORS = ("process", "thread")


class TestExecutorOracle:
    """Pooled farm backends vs the serial reference oracle: identical points."""

    @pytest.mark.parametrize("executor", POOLED_EXECUTORS)
    def test_three_families_identical_series_and_metrics(self, executor):
        options = [FarmOptions(include_sabre=True)]
        reference = sweep_grid(
            FAMILY_SPECS, widths=WIDTHS, option_sets=options, executor="reference"
        )
        pooled = sweep_grid(
            FAMILY_SPECS, widths=WIDTHS, option_sets=options, executor=executor
        )
        assert reference.as_series() == pooled.as_series()
        assert deterministic_metrics(reference) == deterministic_metrics(pooled)
        # the SABRE baseline fingerprint crossed the worker boundary intact
        circuit_points = [
            p for p in pooled.points if p.axes["workload"] == FAMILY_SPECS[0].name
        ]
        assert all(p.sabre_num_swaps > 0 for p in circuit_points)

    @pytest.mark.parametrize("executor", POOLED_EXECUTORS)
    def test_per_family_sweeps_match(self, executor):
        for spec in FAMILY_SPECS:
            reference = sweep_array_width(spec, widths=WIDTHS, executor="reference")
            pooled = sweep_array_width(spec, widths=WIDTHS, executor=executor)
            assert reference.as_series() == pooled.as_series(), spec.name
            assert deterministic_metrics(reference) == deterministic_metrics(pooled)

    @pytest.mark.parametrize("executor", POOLED_EXECUTORS)
    def test_three_families_byte_identical_canonical_schedules(self, executor):
        """Schedules (not just metrics) are byte-identical across backends."""
        from repro.utils.serialization import canonical_json

        jobs = [
            FarmJob(workload=spec, config=FPQAConfig.with_width(spec.num_qubits, 8))
            for spec in FAMILY_SPECS
        ]
        reference = CompileFarm("reference").run(jobs, with_schedules=True)
        pooled = CompileFarm(executor).run(jobs, with_schedules=True)
        for spec, ref, pool in zip(FAMILY_SPECS, reference, pooled):
            assert canonical_json(ref.schedule) == canonical_json(pool.schedule), spec.name
            assert ref.router == pool.router
            assert ref.metrics.deterministic() == pool.metrics.deterministic()

    @pytest.mark.parametrize("executor", POOLED_EXECUTORS)
    def test_untrusted_kinds_byte_identical_canonical_schedules(self, executor):
        """The PR 9 kinds (qasm, qec, molecule) honour the same oracle contract."""
        from repro.circuit import ghz_circuit, to_qasm
        from repro.utils.serialization import canonical_json

        specs = [
            WorkloadSpec.qasm(to_qasm(ghz_circuit(6))),
            WorkloadSpec.qec_surface_code(2),
            WorkloadSpec.molecule("H2"),
        ]
        jobs = [
            FarmJob(workload=spec, config=FPQAConfig.with_width(spec.num_qubits, 4))
            for spec in specs
        ]
        reference = CompileFarm("reference").run(jobs, with_schedules=True)
        pooled = CompileFarm(executor).run(jobs, with_schedules=True)
        for spec, ref, pool in zip(specs, reference, pooled):
            assert canonical_json(ref.schedule) == canonical_json(pool.schedule), spec.name
            assert ref.router == pool.router
            assert ref.metrics.deterministic() == pool.metrics.deterministic()

    @pytest.mark.parametrize("executor", POOLED_EXECUTORS)
    @pytest.mark.parametrize("seed", [3, 17])
    def test_seeded_random_grids_match(self, seed, executor):
        import numpy as np

        rng = np.random.default_rng(seed)
        specs = [
            WorkloadSpec.random_circuit(
                int(rng.integers(8, 20)), int(rng.integers(2, 6)), seed=seed
            ),
            WorkloadSpec.qsim(
                int(rng.integers(8, 20)),
                float(rng.uniform(0.1, 0.5)),
                num_strings=int(rng.integers(5, 12)),
                seed=seed + 1,
            ),
            WorkloadSpec.qaoa_random_graph(
                int(rng.integers(8, 20)), float(rng.uniform(0.1, 0.4)), seed=seed + 2
            ),
        ]
        widths = (4, 9, 25)
        axes = {"two_qubit_fidelity": (0.99, 0.995)}
        reference = sweep_grid(specs, widths=widths, config_axes=axes, executor="reference")
        pooled = sweep_grid(specs, widths=widths, config_axes=axes, executor=executor)
        assert reference.as_series() == pooled.as_series()
        assert deterministic_metrics(reference) == deterministic_metrics(pooled)
        assert [p.axes for p in reference.points] == [p.axes for p in pooled.points]

    def test_spec_path_rejects_contradictory_num_qubits(self):
        with pytest.raises(QPilotError):
            sweep_array_width(FAMILY_SPECS[0], 100, widths=WIDTHS)
        # matching or omitted num_qubits is fine
        sweep = sweep_array_width(FAMILY_SPECS[0], FAMILY_SPECS[0].num_qubits, widths=(4,))
        assert sweep.points[0].width == 4

    def test_closure_shim_matches_spec_path(self):
        """The legacy closure API and the farm compile identically."""
        spec = FAMILY_SPECS[2]
        edges = spec.build()

        def compile_fn(compiler: QPilotCompiler):
            return compiler.compile_qaoa(spec.num_qubits, edges)

        legacy = sweep_array_width(
            compile_fn, spec.num_qubits, widths=WIDTHS, workload_name=spec.name
        )
        farmed = sweep_array_width(spec, widths=WIDTHS, executor="process")
        assert legacy.as_series() == farmed.as_series()
        assert [p.error_rate for p in legacy.points] == [p.error_rate for p in farmed.points]
        # closure path keeps full results for backwards compatibility
        assert all(p.result is not None for p in legacy.points)


class TestJobDigest:
    """FarmJob.digest — the content-addressed schedule-store key."""

    def test_digest_is_stable_and_sha1_shaped(self):
        job = FarmJob(workload=FAMILY_SPECS[0], config=FPQAConfig.with_width(16, 8))
        digest = job.digest()
        assert len(digest) == 40 and set(digest) <= set("0123456789abcdef")
        assert digest == job.digest()
        clone = pickle.loads(pickle.dumps(job))
        assert clone.digest() == digest

    def test_digest_tracks_memo_key(self):
        """Equal memo keys <=> equal digests across every job axis."""
        base = FarmJob(workload=FAMILY_SPECS[0], config=FPQAConfig.with_width(16, 8))
        same = FarmJob(workload=FAMILY_SPECS[0], config=FPQAConfig.with_width(16, 8))
        other_workload = FarmJob(
            workload=FAMILY_SPECS[1], config=FPQAConfig.with_width(16, 8)
        )
        other_config = FarmJob(workload=FAMILY_SPECS[0], config=FPQAConfig.with_width(16, 4))
        other_options = FarmJob(
            workload=FAMILY_SPECS[0],
            config=FPQAConfig.with_width(16, 8),
            options=FarmOptions(include_sabre=True),
        )
        assert base.digest() == same.digest()
        assert len({base.digest(), other_workload.digest(), other_config.digest(),
                    other_options.digest()}) == 4

    def test_digest_ignores_display_label(self):
        """FarmOptions.label is display-only, like WorkloadSpec.name."""
        a = FarmJob(
            workload=FAMILY_SPECS[0],
            config=FPQAConfig.with_width(16, 8),
            options=FarmOptions(label="alpha"),
        )
        b = FarmJob(
            workload=FAMILY_SPECS[0],
            config=FPQAConfig.with_width(16, 8),
            options=FarmOptions(label="beta"),
        )
        assert a.digest() == b.digest()


class TestStreamingResults:
    """CompileFarm.iter_results / sweep_grid(stream=True)."""

    def _jobs(self):
        spec = FAMILY_SPECS[0]
        return [
            FarmJob(workload=spec, config=FPQAConfig.with_width(16, width))
            for width in (16, 4, 8)
        ]

    @pytest.mark.parametrize("executor", ("reference",) + POOLED_EXECUTORS)
    def test_iter_results_matches_run(self, executor):
        jobs = self._jobs()
        expected = CompileFarm("reference").run(jobs)
        farm = CompileFarm(executor)
        streamed: dict[int, object] = {}
        for index, metrics in farm.iter_results(jobs):
            streamed[index] = metrics
        assert sorted(streamed) == list(range(len(jobs)))
        assert [streamed[i].deterministic() for i in range(len(jobs))] == [
            m.deterministic() for m in expected
        ]
        assert farm.last_stats["num_jobs"] == len(jobs)

    def test_iter_results_streams_memoised_duplicates(self):
        jobs = self._jobs()
        duplicated = [jobs[0], jobs[1], jobs[0], jobs[0]]
        farm = CompileFarm("reference")
        pairs = list(farm.iter_results(duplicated))
        assert sorted(index for index, _ in pairs) == [0, 1, 2, 3]
        by_index = dict(pairs)
        assert by_index[0] is by_index[2] is by_index[3]
        assert farm.last_stats["num_unique_jobs"] == 2

    def test_iter_results_is_lazy(self):
        """The reference backend compiles nothing until the iterator is pulled."""
        farm = CompileFarm("reference")
        iterator = farm.iter_results(self._jobs())
        assert farm.last_stats == {}
        next(iterator)
        assert farm.last_stats == {}  # stats appear only at exhaustion

    def test_abandoned_pooled_stream_cancels_queued_jobs(self, monkeypatch):
        """Closing a streamed sweep early must not compile the whole grid."""
        import threading

        from repro.core import farm as farm_module

        specs = [WorkloadSpec.random_circuit(8, 2, seed=9000 + i) for i in range(6)]
        jobs = [FarmJob(workload=spec, config=FPQAConfig.with_width(8, 4)) for spec in specs]

        started = []
        gate = threading.Event()
        real_job = farm_module.compile_farm_job

        def gated_job(job, attempt=0):
            started.append(job)
            if len(started) > 1:
                # park the single worker so close() runs cancel_futures
                # while every remaining job is still queued
                assert gate.wait(timeout=10)
            return real_job(job, attempt)

        monkeypatch.setattr(farm_module, "compile_farm_job", gated_job)
        farm = CompileFarm("thread", max_workers=1)
        iterator = farm.iter_results(jobs)
        next(iterator)  # job 0 done; the worker picks up job 1 and parks
        # unblock the in-flight job only once close() is waiting in shutdown
        releaser = threading.Timer(0.05, gate.set)
        releaser.start()
        iterator.close()  # cancels the queued jobs, then waits for job 1
        releaser.join()
        # the only jobs that ever started are job 0 and the in-flight job 1;
        # jobs 2..5 were cancelled while queued and never ran
        assert len(started) <= 2

    @pytest.mark.parametrize("executor", ("reference", "thread"))
    def test_sweep_grid_stream_matches_eager(self, executor):
        eager = sweep_grid(FAMILY_SPECS, widths=WIDTHS, executor="reference")
        streamed = list(
            sweep_grid(FAMILY_SPECS, widths=WIDTHS, executor=executor, stream=True)
        )
        assert len(streamed) == len(eager.points)
        key = lambda p: (p.axes.get("workload", ""), p.width)
        eager_points = sorted(eager.points, key=key)
        stream_points = sorted(streamed, key=key)
        assert [p.width for p in eager_points] == [p.width for p in stream_points]
        assert [p.metrics.deterministic() for p in eager_points] == [
            p.metrics.deterministic() for p in stream_points
        ]
        assert [p.axes for p in eager_points] == [p.axes for p in stream_points]

"""Unit tests for the hardened OpenQASM 2 import/export round-trip."""

from __future__ import annotations

import math
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import CircuitLimits, Gate, QuantumCircuit, from_qasm, random_cx_circuit, to_qasm
from repro.circuit.qasm import _parse_angle
from repro.exceptions import CircuitError
from repro.sim import circuits_equivalent


class TestExport:
    def test_header_and_register(self):
        text = to_qasm(QuantumCircuit(3).h(0))
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text
        assert "h q[0];" in text

    def test_measure_creates_creg(self):
        text = to_qasm(QuantumCircuit(2).h(0).measure(0))
        assert "creg c[2];" in text
        assert "measure q[0] -> c[0];" in text

    def test_parameter_formatting(self):
        text = to_qasm(QuantumCircuit(1).rz(math.pi / 2, 0).rz(0.123, 0))
        assert "rz(pi/2)" in text
        assert "0.123" in text

    def test_two_qubit_operands(self):
        text = to_qasm(QuantumCircuit(3).cx(2, 0).rzz(0.5, 0, 1))
        assert "cx q[2], q[0];" in text
        assert "rzz(0.5) q[0], q[1];" in text


class TestRoundTrip:
    def test_simple_circuit(self, small_circuit):
        restored = from_qasm(to_qasm(small_circuit))
        assert restored.num_qubits == small_circuit.num_qubits
        assert circuits_equivalent(restored, small_circuit)

    def test_random_circuit(self):
        circuit = random_cx_circuit(5, 10, seed=12)
        restored = from_qasm(to_qasm(circuit))
        assert restored.num_two_qubit_gates() == circuit.num_two_qubit_gates()
        assert circuits_equivalent(restored, circuit)

    def test_measurements_preserved(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).measure(0).measure(1)
        restored = from_qasm(to_qasm(circuit))
        assert sum(1 for g in restored.gates if g.name == "measure") == 2


class TestImportErrors:
    def test_missing_qreg(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nh q[0];")

    def test_unknown_gate(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];")

    def test_bad_parameter_count(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nrz q[0];")

    def test_comments_and_blank_lines_ignored(self):
        text = """
        OPENQASM 2.0;
        include "qelib1.inc";
        // a comment
        qreg q[2];

        h q[0]; // trailing comment
        cx q[0], q[1];
        """
        circuit = from_qasm(text)
        assert len(circuit) == 2

    def test_pi_expressions_parsed(self):
        circuit = from_qasm("OPENQASM 2.0;\nqreg q[1];\nrz(-pi/4) q[0];\nrx(2*pi) q[0];\n")
        assert circuit.gates[0].params[0] == pytest.approx(-math.pi / 4)
        assert circuit.gates[1].params[0] == pytest.approx(2 * math.pi)


def _qasm(*body: str) -> str:
    return "OPENQASM 2.0;\nqreg q[4];\n" + "\n".join(body) + "\n"


class TestEvalDoSRegression:
    """The _parse_angle eval CVE: hostile expressions must fail fast, typed."""

    @pytest.mark.parametrize(
        "expression",
        ["9**9**9", "__import__('os').system('true')", "().__class__", "1e99999", "pi/0"],
    )
    def test_hostile_angle_rejected_under_100ms(self, expression):
        text = _qasm(f"rx({expression}) q[0];")
        start = time.perf_counter()
        with pytest.raises(CircuitError) as excinfo:
            from_qasm(text)
        assert time.perf_counter() - start < 0.1
        assert excinfo.value.line == 3
        assert excinfo.value.column is not None

    def test_angle_grammar(self):
        assert _parse_angle("pi") == math.pi
        assert _parse_angle("-pi/4") == -math.pi / 4
        assert _parse_angle("3*pi/4 - pi/8") == 3 * math.pi / 4 - math.pi / 8
        assert _parse_angle("((1.5e-3))") == 1.5e-3
        assert _parse_angle("+.5") == 0.5
        assert _parse_angle("--2") == 2.0
        for bad in ("", "pi pi", "1 + ", "(pi", "pi)", "2**3", "tau", "0x10", "1,2"):
            with pytest.raises(CircuitError):
                _parse_angle(bad)


class TestOperandValidation:
    """Out-of-range / duplicate operands are rejected naming the line."""

    def test_out_of_range_index(self):
        with pytest.raises(CircuitError) as excinfo:
            from_qasm("OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[9];\n")
        assert excinfo.value.line == 3
        assert "out of range" in str(excinfo.value)
        assert "line 3" in str(excinfo.value)

    def test_duplicate_operand(self):
        with pytest.raises(CircuitError) as excinfo:
            from_qasm("OPENQASM 2.0;\nqreg q[2];\ncx q[1], q[1];\n")
        assert excinfo.value.line == 3
        assert "duplicate operand" in str(excinfo.value)

    def test_undeclared_register_operand(self):
        with pytest.raises(CircuitError, match="undeclared register"):
            from_qasm("OPENQASM 2.0;\nqreg q[2];\ncx q[0], r[1];\n")

    def test_conflicting_qreg(self):
        with pytest.raises(CircuitError, match="conflicting qreg"):
            from_qasm("OPENQASM 2.0;\nqreg q[2];\nqreg r[2];\n")

    def test_statement_before_qreg(self):
        with pytest.raises(CircuitError) as excinfo:
            from_qasm("OPENQASM 2.0;\nh q[0];\nqreg q[2];\n")
        assert excinfo.value.line == 2

    def test_measure_out_of_range(self):
        with pytest.raises(CircuitError, match="out of range"):
            from_qasm("OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nmeasure q[5] -> c[0];\n")

    def test_missing_semicolon(self):
        with pytest.raises(CircuitError, match="missing ';'"):
            from_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[0]\n")

    def test_gate_arity_error_carries_line(self):
        with pytest.raises(CircuitError) as excinfo:
            from_qasm("OPENQASM 2.0;\nqreg q[3];\nccx q[0], q[1];\n")
        assert excinfo.value.line == 3

    def test_barrier_bare_register_expands(self):
        circuit = from_qasm("OPENQASM 2.0;\nqreg q[3];\nbarrier q;\n")
        assert circuit.gates[0].name == "barrier"
        assert circuit.gates[0].qubits == (0, 1, 2)

    def test_multiple_statements_per_line(self):
        circuit = from_qasm("OPENQASM 2.0;\nqreg q[3];\nh q[0]; cx q[0], q[1]; h q[2];\n")
        assert [g.name for g in circuit.gates] == ["h", "cx", "h"]


class TestCircuitLimits:
    def test_defaults_are_positive(self):
        limits = CircuitLimits()
        assert limits.max_qubits >= 64
        assert limits.max_gates >= 10_000

    def test_invalid_limit_rejected(self):
        with pytest.raises(CircuitError):
            CircuitLimits(max_qubits=0)

    def test_max_qubits_enforced_at_qreg(self):
        with pytest.raises(CircuitError, match="qubit limit"):
            from_qasm("OPENQASM 2.0;\nqreg q[9];\n", limits=CircuitLimits(max_qubits=8))

    def test_max_gates_enforced_before_gate_objects(self):
        text = "OPENQASM 2.0;\nqreg q[1];\n" + "x q[0];\n" * 10
        with pytest.raises(CircuitError, match="gate limit"):
            from_qasm(text, limits=CircuitLimits(max_gates=5))

    def test_max_text_bytes_enforced_first(self):
        with pytest.raises(CircuitError, match="byte limit"):
            from_qasm("x" * 2000, limits=CircuitLimits(max_text_bytes=1000))

    def test_max_parse_depth_enforced(self):
        text = _qasm("rx(" + "(" * 40 + "pi" + ")" * 40 + ") q[0];")
        with pytest.raises(CircuitError, match="nested deeper"):
            from_qasm(text)

    def test_unbounded_parses_over_default_limits(self):
        text = "OPENQASM 2.0;\nqreg q[300];\nh q[0];\n"
        with pytest.raises(CircuitError):
            from_qasm(text)
        assert from_qasm(text, limits=CircuitLimits.unbounded()).num_qubits == 300


class TestCircuitConvenienceMethods:
    def test_method_round_trip(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).rz(0.25, 2)
        restored = QuantumCircuit.from_qasm(circuit.to_qasm())
        assert restored.gates == circuit.gates

    def test_from_qasm_accepts_limits(self):
        with pytest.raises(CircuitError):
            QuantumCircuit.from_qasm(
                "OPENQASM 2.0;\nqreg q[9];\n", limits=CircuitLimits(max_qubits=4)
            )


_GATE_STRATEGY = st.one_of(
    st.tuples(
        st.sampled_from(["h", "x", "y", "z", "s", "t", "sx"]),
        st.integers(0, 4),
    ).map(lambda t: ("1q", *t)),
    st.tuples(
        st.sampled_from(["rx", "ry", "rz", "p"]),
        st.integers(0, 4),
        st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False),
    ).map(lambda t: ("rot", *t)),
    st.tuples(
        st.sampled_from(["cx", "cz", "swap"]),
        st.integers(0, 4),
        st.integers(0, 4),
    ).filter(lambda t: t[1] != t[2]).map(lambda t: ("2q", *t)),
    st.tuples(
        st.sampled_from(["rzz", "rxx"]),
        st.integers(0, 4),
        st.integers(0, 4),
        st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False),
    ).filter(lambda t: t[1] != t[2]).map(lambda t: ("2q_rot", *t)),
)


def _build_circuit(gate_specs) -> QuantumCircuit:
    circuit = QuantumCircuit(5, name="hypothesis")
    for spec in gate_specs:
        tag = spec[0]
        if tag == "1q":
            circuit.append(Gate(spec[1], (spec[2],)))
        elif tag == "rot":
            circuit.append(Gate(spec[1], (spec[2],), (spec[3],)))
        elif tag == "2q":
            circuit.append(Gate(spec[1], (spec[2], spec[3])))
        else:
            circuit.append(Gate(spec[1], (spec[2], spec[3]), (spec[4],)))
    return circuit


class TestHypothesisRoundTrip:
    """Property: export → import preserves structure over random circuits."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_GATE_STRATEGY, min_size=0, max_size=25))
    def test_export_import_round_trip(self, gate_specs):
        circuit = _build_circuit(gate_specs)
        restored = from_qasm(to_qasm(circuit))
        assert restored.num_qubits == circuit.num_qubits
        assert len(restored) == len(circuit)
        for original, back in zip(circuit.gates, restored.gates):
            assert back.name == original.name
            assert back.qubits == original.qubits
            assert back.params == pytest.approx(original.params, abs=1e-9)

"""Unit tests for the OpenQASM 2 import/export round-trip."""

from __future__ import annotations

import math

import pytest

from repro.circuit import QuantumCircuit, from_qasm, random_cx_circuit, to_qasm
from repro.exceptions import CircuitError
from repro.sim import circuits_equivalent


class TestExport:
    def test_header_and_register(self):
        text = to_qasm(QuantumCircuit(3).h(0))
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text
        assert "h q[0];" in text

    def test_measure_creates_creg(self):
        text = to_qasm(QuantumCircuit(2).h(0).measure(0))
        assert "creg c[2];" in text
        assert "measure q[0] -> c[0];" in text

    def test_parameter_formatting(self):
        text = to_qasm(QuantumCircuit(1).rz(math.pi / 2, 0).rz(0.123, 0))
        assert "rz(pi/2)" in text
        assert "0.123" in text

    def test_two_qubit_operands(self):
        text = to_qasm(QuantumCircuit(3).cx(2, 0).rzz(0.5, 0, 1))
        assert "cx q[2], q[0];" in text
        assert "rzz(0.5) q[0], q[1];" in text


class TestRoundTrip:
    def test_simple_circuit(self, small_circuit):
        restored = from_qasm(to_qasm(small_circuit))
        assert restored.num_qubits == small_circuit.num_qubits
        assert circuits_equivalent(restored, small_circuit)

    def test_random_circuit(self):
        circuit = random_cx_circuit(5, 10, seed=12)
        restored = from_qasm(to_qasm(circuit))
        assert restored.num_two_qubit_gates() == circuit.num_two_qubit_gates()
        assert circuits_equivalent(restored, circuit)

    def test_measurements_preserved(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).measure(0).measure(1)
        restored = from_qasm(to_qasm(circuit))
        assert sum(1 for g in restored.gates if g.name == "measure") == 2


class TestImportErrors:
    def test_missing_qreg(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nh q[0];")

    def test_unknown_gate(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];")

    def test_bad_parameter_count(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nrz q[0];")

    def test_comments_and_blank_lines_ignored(self):
        text = """
        OPENQASM 2.0;
        include "qelib1.inc";
        // a comment
        qreg q[2];

        h q[0]; // trailing comment
        cx q[0], q[1];
        """
        circuit = from_qasm(text)
        assert len(circuit) == 2

    def test_pi_expressions_parsed(self):
        circuit = from_qasm("OPENQASM 2.0;\nqreg q[1];\nrz(-pi/4) q[0];\nrx(2*pi) q[0];\n")
        assert circuit.gates[0].params[0] == pytest.approx(-math.pi / 4)
        assert circuit.gates[1].params[0] == pytest.approx(2 * math.pi)

"""Unit tests for QAOA circuit construction helpers."""

from __future__ import annotations

import pytest

from repro.circuit import (
    edges_from_circuit,
    maxcut_value,
    normalise_edges,
    qaoa_cost_layer,
    qaoa_maxcut_circuit,
)
from repro.exceptions import WorkloadError


class TestNormaliseEdges:
    def test_orders_and_deduplicates(self):
        assert normalise_edges([(3, 1), (1, 3), (0, 2)]) == [(0, 2), (1, 3)]

    def test_self_loops_rejected(self):
        with pytest.raises(WorkloadError):
            normalise_edges([(2, 2)])


class TestQaoaCircuit:
    def test_single_layer_structure(self, ring_edges):
        circuit = qaoa_maxcut_circuit(6, ring_edges, gamma=0.4, beta=0.2)
        counts = circuit.gate_counts()
        assert counts["h"] == 6
        assert counts["rzz"] == len(ring_edges)
        assert counts["rx"] == 6

    def test_multi_layer(self, ring_edges):
        circuit = qaoa_maxcut_circuit(6, ring_edges, layers=3)
        assert circuit.gate_counts()["rzz"] == 3 * len(ring_edges)
        assert circuit.gate_counts()["rx"] == 18

    def test_per_layer_angles(self, ring_edges):
        circuit = qaoa_maxcut_circuit(6, ring_edges, gamma=[0.1, 0.2], beta=[0.3, 0.4], layers=2)
        rzz_params = [g.params[0] for g in circuit.gates if g.name == "rzz"]
        assert set(rzz_params) == {0.1, 0.2}

    def test_angle_count_mismatch(self, ring_edges):
        with pytest.raises(WorkloadError):
            qaoa_maxcut_circuit(6, ring_edges, gamma=[0.1], layers=2)

    def test_cost_layer_has_no_mixer(self, ring_edges):
        circuit = qaoa_cost_layer(6, ring_edges)
        counts = circuit.gate_counts()
        assert "rx" not in counts
        assert "h" not in counts
        assert counts["rzz"] == len(ring_edges)

    def test_edge_out_of_range(self):
        with pytest.raises(WorkloadError):
            qaoa_maxcut_circuit(3, [(0, 5)])

    def test_edges_from_circuit_roundtrip(self, ring_edges):
        circuit = qaoa_cost_layer(6, ring_edges)
        assert edges_from_circuit(circuit) == sorted(ring_edges)


class TestMaxcut:
    def test_maxcut_value(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        assert maxcut_value(edges, [0, 1, 0]) == 2
        assert maxcut_value(edges, [0, 0, 0]) == 0
        assert maxcut_value(edges, [1, 0, 1]) == 2

"""Unit tests for the solver-based compiler stand-ins (Table 2 baselines)."""

from __future__ import annotations

import pytest

from repro.baselines import ExactStageSolver, IterativePeelingSolver, lower_bound_depth
from repro.exceptions import WorkloadError
from repro.workloads import complete_graph_edges, regular_graph_edges, ring_graph_edges


def _stages_cover_all_edges(stages, edges):
    scheduled = sorted(edge for stage in stages for edge in stage)
    return scheduled == sorted(edges)


def _stages_are_matchings(stages):
    for stage in stages:
        seen = set()
        for a, b in stage:
            if a in seen or b in seen:
                return False
            seen.update((a, b))
    return True


class TestExactSolver:
    def test_ring_graph_needs_two_or_three_stages(self):
        edges = ring_graph_edges(6)
        result = ExactStageSolver(timeout_s=10).compile(6, edges)
        assert result.depth == 2  # even cycle is 2-edge-colourable
        assert _stages_cover_all_edges(result.stages, edges)
        assert _stages_are_matchings(result.stages)

    def test_odd_ring_needs_three(self):
        edges = ring_graph_edges(5)
        result = ExactStageSolver(timeout_s=10).compile(5, edges)
        assert result.depth == 3

    def test_three_regular_graph_depth_three_or_four(self):
        edges = regular_graph_edges(10, 3, seed=1)
        result = ExactStageSolver(timeout_s=20).compile(10, edges)
        assert result.depth in (3, 4)
        assert result.depth >= lower_bound_depth(10, edges)
        assert _stages_cover_all_edges(result.stages, edges)

    def test_meets_lower_bound_star(self):
        edges = [(0, i) for i in range(1, 6)]
        result = ExactStageSolver(timeout_s=10).compile(6, edges)
        assert result.depth == 5  # all edges share vertex 0

    def test_empty_graph(self):
        result = ExactStageSolver().compile(4, [])
        assert result.depth == 0
        assert result.stages == []

    def test_timeout_reported(self):
        edges = complete_graph_edges(14)
        result = ExactStageSolver(timeout_s=0.0).compile(14, edges)
        assert result.timed_out
        assert result.depth is None
        assert result.summary()["depth"] == "timeout"

    def test_invalid_edges_rejected(self):
        with pytest.raises(WorkloadError):
            ExactStageSolver().compile(3, [(0, 5)])


class TestIterativePeelingSolver:
    def test_covers_all_edges_with_matchings(self):
        edges = regular_graph_edges(12, 3, seed=2)
        result = IterativePeelingSolver().compile(12, edges)
        assert not result.timed_out
        assert _stages_cover_all_edges(result.stages, edges)
        assert _stages_are_matchings(result.stages)

    def test_depth_at_least_lower_bound(self):
        edges = regular_graph_edges(10, 4, seed=3)
        result = IterativePeelingSolver().compile(10, edges)
        assert result.depth >= lower_bound_depth(10, edges)

    def test_near_optimal_on_ring(self):
        edges = ring_graph_edges(8)
        result = IterativePeelingSolver().compile(8, edges)
        assert result.depth <= 3

    def test_runtime_recorded(self):
        edges = regular_graph_edges(20, 3, seed=4)
        result = IterativePeelingSolver().compile(20, edges)
        assert result.runtime_s >= 0.0
        assert result.summary()["method"] == "iter-p"

    def test_empty_graph(self):
        result = IterativePeelingSolver().compile(5, [])
        assert result.depth == 0


class TestLowerBound:
    def test_max_degree(self):
        edges = [(0, 1), (0, 2), (0, 3), (1, 2)]
        assert lower_bound_depth(4, edges) == 3

    def test_empty(self):
        assert lower_bound_depth(4, []) == 0

    def test_exact_solver_never_beats_bound(self):
        for seed in range(3):
            edges = regular_graph_edges(8, 3, seed=seed)
            result = ExactStageSolver(timeout_s=10).compile(8, edges)
            assert result.depth >= lower_bound_depth(8, edges)

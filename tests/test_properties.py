"""Property-based tests (hypothesis) of the library's core invariants.

These cover the invariants the rest of the system relies on:

* decompositions never change the number of logical 2-qubit interactions'
  semantics (verified exactly on small registers);
* the flying-ancilla routers never drop or duplicate gates and always emit
  schedules that satisfy the AOD ordering constraints;
* SABRE-routed circuits only ever use coupling-graph edges;
* depth / gate-count metrics are internally consistent;
* the fidelity model behaves monotonically.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import SabreOptions, SabreRouter
from repro.circuit import QuantumCircuit, decompose_to_cx, decompose_to_cz, random_cx_circuit
from repro.circuit.pauli import PauliString
from repro.core import FidelityModel, fanout_layer_sizes, route_circuit, route_pauli_strings, route_qaoa
from repro.core.schedule import RydbergStage
from repro.hardware import GatePlacement, grid_device, pair_is_compatible, subset_is_legal
from repro.hardware.constraints import greedy_legal_subset
from repro.sim import circuits_equivalent
from repro.workloads import random_graph_edges

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ----------------------------------------------------------------------
# circuit / decomposition properties
# ----------------------------------------------------------------------
@_SETTINGS
@given(seed=st.integers(0, 10_000), num_gates=st.integers(1, 12))
def test_cz_decomposition_preserves_semantics(seed, num_gates):
    circuit = random_cx_circuit(3, num_gates, seed=seed)
    assert circuits_equivalent(circuit, decompose_to_cz(circuit))


@_SETTINGS
@given(seed=st.integers(0, 10_000), num_qubits=st.integers(2, 12), gates=st.integers(0, 60))
def test_two_qubit_depth_bounds(seed, num_qubits, gates):
    circuit = random_cx_circuit(num_qubits, gates, seed=seed)
    depth = circuit.two_qubit_depth()
    assert depth <= gates
    if gates:
        # at most floor(n/2) two-qubit gates fit in one layer
        assert depth >= math.ceil(gates / max(1, num_qubits // 2))
    else:
        assert depth == 0


@_SETTINGS
@given(seed=st.integers(0, 10_000))
def test_inverse_composition_is_identity(seed):
    circuit = random_cx_circuit(3, 6, seed=seed)
    assert circuits_equivalent(circuit.compose(circuit.inverse()), QuantumCircuit(3))


# ----------------------------------------------------------------------
# AOD constraint properties
# ----------------------------------------------------------------------
placements = st.builds(
    GatePlacement,
    gate_index=st.integers(0, 50),
    source=st.tuples(st.integers(0, 6), st.integers(0, 6)),
    target=st.tuples(st.integers(0, 6), st.integers(0, 6)),
)


@_SETTINGS
@given(a=placements, b=placements)
def test_pair_compatibility_is_symmetric(a, b):
    assert pair_is_compatible(a, b) == pair_is_compatible(b, a)


@_SETTINGS
@given(candidates=st.lists(placements, min_size=1, max_size=12))
def test_greedy_subset_is_always_legal_and_nonempty(candidates):
    accepted = greedy_legal_subset(candidates)
    assert accepted
    assert subset_is_legal(accepted)
    # greedy always keeps the first candidate
    assert accepted[0] == candidates[0]


# ----------------------------------------------------------------------
# router properties
# ----------------------------------------------------------------------
@_SETTINGS
@given(seed=st.integers(0, 5_000), num_qubits=st.integers(2, 10), multiple=st.integers(1, 4))
def test_generic_router_never_drops_gates(seed, num_qubits, multiple):
    circuit = random_cx_circuit(num_qubits, multiple * num_qubits, seed=seed)
    schedule = route_circuit(circuit)
    schedule.validate()
    native_cz = decompose_to_cz(circuit).num_two_qubit_gates()
    routed = sum(
        len(stage.gates) for stage in schedule.stages if isinstance(stage, RydbergStage)
    )
    assert routed == native_cz
    assert schedule.num_two_qubit_gates() == 3 * native_cz
    assert schedule.two_qubit_depth() % 3 == 0


@_SETTINGS
@given(
    seed=st.integers(0, 5_000),
    num_qubits=st.integers(2, 12),
    probability=st.floats(0.2, 0.9),
    num_strings=st.integers(1, 4),
)
def test_qsim_router_gate_accounting(seed, num_qubits, probability, num_strings):
    from repro.circuit import random_pauli_strings

    strings = random_pauli_strings(num_qubits, num_strings, probability, seed=seed)
    schedule = route_pauli_strings(strings)
    schedule.validate()

    def per_string_cost(weight: int) -> int:
        if weight <= 1:
            return 0
        if weight == 2:
            return 3  # direct RZZ through one flying ancilla
        return 6 * (weight - 1)  # two fan-out parity blocks

    expected = sum(per_string_cost(s.weight) for s in strings)
    assert schedule.num_two_qubit_gates() == expected


@_SETTINGS
@given(seed=st.integers(0, 5_000), num_qubits=st.integers(4, 16), probability=st.floats(0.1, 0.7))
def test_qaoa_router_schedules_every_edge_once(seed, num_qubits, probability):
    edges = random_graph_edges(num_qubits, probability, seed=seed)
    schedule = route_qaoa(num_qubits, edges)
    schedule.validate()
    assert schedule.num_two_qubit_gates() == 2 * num_qubits + len(edges)
    executed = []
    for stage in schedule.stages:
        if isinstance(stage, RydbergStage):
            for gate in stage.gates:
                (slot,) = gate.ancilla_slots
                (target,) = gate.data_qubits
                executed.append((min(slot, target), max(slot, target)))
    assert sorted(executed) == sorted(edges)


# arbitrary (possibly dense, possibly disconnected) edge sets over <= 12 qubits
_edge_sets = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=30,
)


@_SETTINGS
@given(edges=_edge_sets, seed_trials=st.integers(1, 4))
def test_qaoa_planner_never_crosses_aod_lines(edges, seed_trials):
    """No stage plan maps two ancilla columns (or rows) across each other.

    The AOD hardware moves rows and columns as rigid lines, so the planner
    may never emit a stage whose column pins (or row placements) reverse
    order — the no-crossing invariant every schedule relies on.
    """
    from repro.circuit.qaoa import normalise_edges
    from repro.core import QAOAStagePlanner
    from repro.hardware import FPQAConfig, SLMArray

    num_qubits = 12
    array = SLMArray(FPQAConfig.square_for(num_qubits), num_qubits)
    planner = QAOAStagePlanner(array, edges, seed_trials=seed_trials)
    executed: list[tuple[int, int]] = []
    for plan in planner.plan_stages():
        columns = sorted(plan.column_map.items())
        for (src_a, dst_a), (src_b, dst_b) in zip(columns, columns[1:]):
            assert src_a < src_b and dst_a < dst_b, "ancilla columns would cross"
        rows = sorted(plan.row_map.items())
        for (row_a, target_a), (row_b, target_b) in zip(rows, rows[1:]):
            assert row_a < row_b and target_a < target_b, "AOD rows would cross"
        # every executed pair is realised by a pinned row and column
        for ancilla, site in plan.pairs:
            assert plan.column_map[array.col_of(ancilla)] == array.col_of(site)
            assert plan.row_map[array.row_of(ancilla)] == array.row_of(site)
        executed.extend(plan.edge_set())
    assert sorted(executed) == normalise_edges(edges)


@_SETTINGS
@given(copies=st.integers(0, 400))
def test_fanout_layer_sizes_sum(copies):
    sizes = fanout_layer_sizes(copies)
    assert sum(sizes) == copies
    assert all(size > 0 for size in sizes)
    # O(sqrt(N)) depth
    assert len(sizes) <= 2 * math.isqrt(copies) + 2


# ----------------------------------------------------------------------
# SABRE properties
# ----------------------------------------------------------------------
@_SETTINGS
@given(seed=st.integers(0, 2_000), num_qubits=st.integers(2, 9), gates=st.integers(1, 25))
def test_sabre_output_uses_only_coupled_pairs(seed, num_qubits, gates):
    device = grid_device(3, 3)
    circuit = random_cx_circuit(num_qubits, gates, seed=seed)
    routed = SabreRouter(device, SabreOptions(layout_trials=1)).run(decompose_to_cx(circuit))
    for gate in routed.circuit.gates:
        if gate.is_two_qubit:
            assert device.are_adjacent(*gate.qubits)
    assert routed.num_two_qubit_gates == circuit.num_two_qubit_gates() + 3 * routed.num_swaps


# ----------------------------------------------------------------------
# fidelity model properties
# ----------------------------------------------------------------------
@_SETTINGS
@given(
    atoms=st.integers(1, 200),
    depth=st.integers(0, 500),
    one_q=st.integers(0, 500),
    distances=st.lists(st.floats(0, 50), max_size=20),
)
def test_fidelity_model_bounded(atoms, depth, one_q, distances):
    model = FidelityModel()
    p = model.success_probability(
        num_atoms=atoms, depth=depth, num_one_qubit_gates=one_q, movement_distances=distances
    )
    assert 0.0 <= p <= 1.0


@_SETTINGS
@given(atoms=st.integers(1, 100), depth=st.integers(1, 200))
def test_fidelity_model_monotone_in_error(atoms, depth):
    good = FidelityModel(two_qubit_fidelity=0.9999)
    bad = FidelityModel(two_qubit_fidelity=0.99)
    kwargs = dict(num_atoms=atoms, depth=depth, num_one_qubit_gates=0, movement_distances=[])
    assert good.success_probability(**kwargs) >= bad.success_probability(**kwargs)

"""Golden-schedule builders and regeneration entry point.

The three golden files pin the exact stage structure the routers emit for
small, fully deterministic inputs; the byte-level comparison in
``tests/test_golden_schedules.py`` makes silent stage reordering (or any
other schedule-shape drift) a visible test failure.

To refresh after an *intentional* router change, re-run:

    PYTHONPATH=src python tests/golden/regenerate.py

then review the diff of ``tests/golden/*.json`` like any other code change.
"""

from __future__ import annotations

from pathlib import Path

from repro.circuit import random_cx_circuit, random_pauli_strings
from repro.core import GenericRouter, route_pauli_strings, route_qaoa
from repro.utils.serialization import schedule_to_json
from repro.workloads import ring_graph_edges
from repro.workloads.molecules import molecule_pauli_strings
from repro.workloads.qec import surface_code_syndrome_circuit

GOLDEN_DIR = Path(__file__).resolve().parent


def build_generic_schedule():
    """Generic router on a small random CX circuit (fixed seed)."""
    return GenericRouter().compile(random_cx_circuit(4, 6, seed=3))


def build_qsim_schedule():
    """Quantum-simulation router on three random Pauli strings (fixed seed)."""
    return route_pauli_strings(random_pauli_strings(5, 3, 0.6, seed=11))


def build_qaoa_schedule():
    """QAOA router on the 6-qubit ring graph."""
    return route_qaoa(6, ring_graph_edges(6))


def build_qec_schedule():
    """Generic router on a distance-2 surface-code syndrome round."""
    return GenericRouter().compile(surface_code_syndrome_circuit(2))


def build_molecule_schedule():
    """Quantum-simulation router on the H2 Hamiltonian (Table 1)."""
    return route_pauli_strings(molecule_pauli_strings("H2"))


GOLDEN_CASES = {
    "generic_4q_6g": build_generic_schedule,
    "qsim_5q_3strings": build_qsim_schedule,
    "qaoa_6q_ring": build_qaoa_schedule,
    "qec_surface_d2": build_qec_schedule,
    "molecule_h2": build_molecule_schedule,
}


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def render(name: str) -> str:
    """Canonical byte-stable JSON for one golden case."""
    return schedule_to_json(GOLDEN_CASES[name](), canonical=True) + "\n"


def regenerate() -> None:
    for name in GOLDEN_CASES:
        path = golden_path(name)
        path.write_text(render(name))
        print(f"wrote {path}")


if __name__ == "__main__":
    regenerate()

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "perf: wall-clock guarded performance smoke tests (kept fast enough for tier-1)",
    )

from repro.circuit import QuantumCircuit, random_cx_circuit, random_pauli_strings
from repro.hardware import FPQAConfig, grid_device, ibm_washington_device, linear_device


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_circuit() -> QuantumCircuit:
    """A deterministic 4-qubit circuit touching several gate kinds."""
    circuit = QuantumCircuit(4, name="small")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.rz(0.3, 1)
    circuit.cz(1, 2)
    circuit.cx(2, 3)
    circuit.rx(0.7, 3)
    circuit.cz(3, 0)
    return circuit


@pytest.fixture
def random_small_circuit() -> QuantumCircuit:
    return random_cx_circuit(5, 8, seed=77)


@pytest.fixture
def small_pauli_strings():
    return random_pauli_strings(5, 4, 0.5, seed=5)


@pytest.fixture
def ring_edges() -> list[tuple[int, int]]:
    return [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]


@pytest.fixture
def line_device_5():
    return linear_device(5)


@pytest.fixture
def grid_4x4():
    return grid_device(4, 4)


@pytest.fixture(scope="session")
def washington():
    return ibm_washington_device()


@pytest.fixture
def small_fpqa_config() -> FPQAConfig:
    return FPQAConfig(slm_rows=3, slm_cols=4)

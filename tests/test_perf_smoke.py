"""Compile-time regression guard (tier-1).

A single mid-size compile under a generous wall-clock ceiling.  The point
is not precision benchmarking (that lives in
``benchmarks/bench_compile_speed.py``) but catching accidental complexity
regressions: with the incremental front-layer DAG and the O(k log k)
legality scan this compile takes ~0.1 s, while the original full-scan
implementation needs ~4 s — so the ceiling has ~20x headroom for slow CI
machines yet still fails loudly if a quadratic hot path sneaks back in.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.layout import trivial_layout
from repro.baselines.sabre import SabreOptions, SabreRouter
from repro.circuit import random_cx_circuit
from repro.core import sweep_grid
from repro.core.generic_router import GenericRouter
from repro.core.qaoa_router import QAOARouter
from repro.hardware import grid_device
from repro.workloads import fig14_workload_specs, regular_graph_edges

#: Generous wall-clock budget (seconds) for the smoke compile.
_CEILING_S = 2.0

#: Ceiling for the 100-qubit QAOA cost-layer compile.  The incremental
#: stage planner needs ~0.015 s; the seed O(front²) planner needed ~0.06 s
#: on the same input and ~0.35 s on denser graphs, so 1 s fails loudly if a
#: full-rescan planning loop sneaks back in while still tolerating slow CI.
_QAOA_CEILING_S = 1.0

#: Ceiling for the SABRE baseline's 100-qubit / 500-gate route.  The
#: vectorised scorer needs ~0.3 s; the scalar per-candidate scorer needed
#: ~2.4 s, so 1.5 s fails loudly if a quadratic (per-candidate layout copy
#: or Python pair sum) scoring loop sneaks back in.
_SABRE_CEILING_S = 1.5

#: Ceiling for the Fig. 14 DSE grid (3 workload families × 5 widths at
#: 50 qubits) through the compile farm's serial reference executor.  The
#: whole batch needs ~0.3 s; 5 s fails loudly if per-job overhead (workload
#: rebuilds per cell, lost memoisation) or a router regression sneaks in,
#: while still tolerating slow single-core CI runners.
_DSE_CEILING_S = 5.0


@pytest.mark.perf
def test_midsize_compile_stays_fast():
    circuit = random_cx_circuit(150, 1500, seed=11)
    router = GenericRouter()
    start = time.perf_counter()
    schedule = router.compile(circuit)
    elapsed = time.perf_counter() - start
    assert schedule.metadata["num_macro_stages"] > 0
    assert elapsed < _CEILING_S, (
        f"mid-size compile took {elapsed:.2f}s (ceiling {_CEILING_S}s); "
        "a quadratic hot path may have regressed — see "
        "benchmarks/bench_compile_speed.py and BENCH_compile.json"
    )


@pytest.mark.perf
def test_qaoa_100q_cost_layer_stays_fast():
    """100-qubit / 3-regular QAOA cost layer under a generous 1 s ceiling."""
    edges = regular_graph_edges(100, 3, seed=7)
    router = QAOARouter()
    start = time.perf_counter()
    schedule = router.compile(100, edges)
    elapsed = time.perf_counter() - start
    assert schedule.metadata["stages_per_layer"][0] > 0
    assert schedule.num_two_qubit_gates() == 2 * 100 + len(edges)
    assert elapsed < _QAOA_CEILING_S, (
        f"100q QAOA cost-layer compile took {elapsed:.2f}s (ceiling "
        f"{_QAOA_CEILING_S}s); an O(front²) stage-planning loop may have "
        "regressed — see repro/core/stage_planner.py and BENCH_compile.json"
    )


@pytest.mark.perf
def test_sabre_100q_route_stays_fast():
    """SABRE baseline 100q/500g route under a generous 1.5 s ceiling."""
    circuit = random_cx_circuit(100, 500, seed=42)
    device = grid_device(10, 10)
    router = SabreRouter(device, SabreOptions(layout_trials=1))
    layout = trivial_layout(circuit, device)
    start = time.perf_counter()
    routed = router.run(circuit, layout)
    elapsed = time.perf_counter() - start
    assert routed.num_swaps > 0
    assert elapsed < _SABRE_CEILING_S, (
        f"SABRE 100q/500g route took {elapsed:.2f}s (ceiling {_SABRE_CEILING_S}s); "
        "the vectorized swap scorer may have regressed to a per-candidate "
        "Python loop — see repro/baselines/sabre.py and BENCH_compile.json"
    )


@pytest.mark.perf
def test_dse_fig14_sweep_stays_fast():
    """50-qubit, 3-workload Fig. 14 farm sweep under a generous 5 s ceiling."""
    specs = fig14_workload_specs(50)
    start = time.perf_counter()
    sweep = sweep_grid(specs, widths=(8, 16, 32, 64, 128), executor="reference")
    elapsed = time.perf_counter() - start
    assert len(sweep.points) == 15
    assert all(point.depth > 0 for point in sweep.points)
    assert elapsed < _DSE_CEILING_S, (
        f"Fig. 14 DSE sweep took {elapsed:.2f}s (ceiling {_DSE_CEILING_S}s); "
        "the compile farm's batching (workload memoisation, per-worker "
        "caches) may have regressed — see repro/core/farm.py and the "
        "dse_fig14 field in BENCH_compile.json"
    )

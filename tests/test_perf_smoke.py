"""Compile-time regression guard (tier-1).

A single mid-size compile under a generous wall-clock ceiling.  The point
is not precision benchmarking (that lives in
``benchmarks/bench_compile_speed.py``) but catching accidental complexity
regressions: with the incremental front-layer DAG and the O(k log k)
legality scan this compile takes ~0.1 s, while the original full-scan
implementation needs ~4 s — so the ceiling has ~20x headroom for slow CI
machines yet still fails loudly if a quadratic hot path sneaks back in.
"""

from __future__ import annotations

import time

import pytest

from repro.circuit import random_cx_circuit
from repro.core.generic_router import GenericRouter
from repro.core.qaoa_router import QAOARouter
from repro.workloads import regular_graph_edges

#: Generous wall-clock budget (seconds) for the smoke compile.
_CEILING_S = 2.0

#: Ceiling for the 100-qubit QAOA cost-layer compile.  The incremental
#: stage planner needs ~0.015 s; the seed O(front²) planner needed ~0.06 s
#: on the same input and ~0.35 s on denser graphs, so 1 s fails loudly if a
#: full-rescan planning loop sneaks back in while still tolerating slow CI.
_QAOA_CEILING_S = 1.0


@pytest.mark.perf
def test_midsize_compile_stays_fast():
    circuit = random_cx_circuit(150, 1500, seed=11)
    router = GenericRouter()
    start = time.perf_counter()
    schedule = router.compile(circuit)
    elapsed = time.perf_counter() - start
    assert schedule.metadata["num_macro_stages"] > 0
    assert elapsed < _CEILING_S, (
        f"mid-size compile took {elapsed:.2f}s (ceiling {_CEILING_S}s); "
        "a quadratic hot path may have regressed — see "
        "benchmarks/bench_compile_speed.py and BENCH_compile.json"
    )


@pytest.mark.perf
def test_qaoa_100q_cost_layer_stays_fast():
    """100-qubit / 3-regular QAOA cost layer under a generous 1 s ceiling."""
    edges = regular_graph_edges(100, 3, seed=7)
    router = QAOARouter()
    start = time.perf_counter()
    schedule = router.compile(100, edges)
    elapsed = time.perf_counter() - start
    assert schedule.metadata["stages_per_layer"][0] > 0
    assert schedule.num_two_qubit_gates() == 2 * 100 + len(edges)
    assert elapsed < _QAOA_CEILING_S, (
        f"100q QAOA cost-layer compile took {elapsed:.2f}s (ceiling "
        f"{_QAOA_CEILING_S}s); an O(front²) stage-planning loop may have "
        "regressed — see repro/core/stage_planner.py and BENCH_compile.json"
    )

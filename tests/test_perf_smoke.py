"""Compile-time regression guard (tier-1).

A single mid-size compile under a generous wall-clock ceiling.  The point
is not precision benchmarking (that lives in
``benchmarks/bench_compile_speed.py``) but catching accidental complexity
regressions: with the incremental front-layer DAG and the O(k log k)
legality scan this compile takes ~0.1 s, while the original full-scan
implementation needs ~4 s — so the ceiling has ~20x headroom for slow CI
machines yet still fails loudly if a quadratic hot path sneaks back in.
"""

from __future__ import annotations

import time

import pytest

from repro.circuit import random_cx_circuit
from repro.core.generic_router import GenericRouter

#: Generous wall-clock budget (seconds) for the smoke compile.
_CEILING_S = 2.0


@pytest.mark.perf
def test_midsize_compile_stays_fast():
    circuit = random_cx_circuit(150, 1500, seed=11)
    router = GenericRouter()
    start = time.perf_counter()
    schedule = router.compile(circuit)
    elapsed = time.perf_counter() - start
    assert schedule.metadata["num_macro_stages"] > 0
    assert elapsed < _CEILING_S, (
        f"mid-size compile took {elapsed:.2f}s (ceiling {_CEILING_S}s); "
        "a quadratic hot path may have regressed — see "
        "benchmarks/bench_compile_speed.py and BENCH_compile.json"
    )

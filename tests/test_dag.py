"""Unit tests for the dependency DAG and front-layer extraction."""

from __future__ import annotations

import pytest

from repro.circuit import DependencyDAG, QuantumCircuit
from repro.exceptions import CircuitError


def chain_circuit() -> QuantumCircuit:
    return QuantumCircuit(3).cx(0, 1).cx(1, 2).cx(0, 1)


class TestFrontLayer:
    def test_initial_front_layer(self):
        circuit = QuantumCircuit(4).cx(0, 1).cx(2, 3).cx(1, 2)
        dag = DependencyDAG(circuit)
        assert dag.front_layer() == [0, 1]

    def test_front_layer_advances_after_execute(self):
        dag = DependencyDAG(chain_circuit())
        assert dag.front_layer() == [0]
        dag.execute(0)
        assert dag.front_layer() == [1]
        dag.execute(1)
        assert dag.front_layer() == [2]
        dag.execute(2)
        assert dag.is_done()

    def test_one_qubit_gates_create_dependencies(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        dag = DependencyDAG(circuit)
        assert dag.front_layer() == [0]

    def test_exclude_one_qubit_gates(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        dag = DependencyDAG(circuit, include_one_qubit=False)
        assert dag.num_gates == 1
        assert dag.front_layer() == [1]

    def test_barriers_are_skipped(self):
        circuit = QuantumCircuit(2).cx(0, 1).barrier().cx(0, 1)
        dag = DependencyDAG(circuit)
        assert dag.num_gates == 2


class TestExecution:
    def test_cannot_execute_blocked_gate(self):
        dag = DependencyDAG(chain_circuit())
        with pytest.raises(CircuitError):
            dag.execute(1)

    def test_cannot_execute_twice(self):
        dag = DependencyDAG(chain_circuit())
        dag.execute(0)
        with pytest.raises(CircuitError):
            dag.execute(0)

    def test_unknown_index_rejected(self):
        dag = DependencyDAG(chain_circuit())
        with pytest.raises(CircuitError):
            dag.execute(99)

    def test_execute_many_in_any_order(self):
        circuit = QuantumCircuit(4).cx(0, 1).cx(2, 3)
        dag = DependencyDAG(circuit)
        dag.execute_many([1, 0])
        assert dag.is_done()

    def test_reset(self):
        dag = DependencyDAG(chain_circuit())
        dag.execute(0)
        dag.reset()
        assert dag.num_remaining == 3
        assert dag.front_layer() == [0]


class TestStructure:
    def test_predecessors_and_successors(self):
        dag = DependencyDAG(chain_circuit())
        assert dag.predecessors(0) == frozenset()
        assert dag.predecessors(1) == {0}
        # gate 2 reuses qubit 0 (last touched by gate 0) and qubit 1 (gate 1)
        assert dag.successors(0) == {1, 2}
        assert 2 in dag.successors(1)

    def test_longest_path_length(self):
        dag = DependencyDAG(chain_circuit())
        assert dag.longest_path_length() == 3
        wide = QuantumCircuit(6).cx(0, 1).cx(2, 3).cx(4, 5)
        assert DependencyDAG(wide).longest_path_length() == 1

    def test_lookahead_returns_future_gates(self):
        circuit = QuantumCircuit(3).cx(0, 1).cx(1, 2).cx(0, 2).cx(0, 1)
        dag = DependencyDAG(circuit)
        future = dag.lookahead(10)
        assert 0 not in future  # front layer not included
        assert set(future) <= {1, 2, 3}

    def test_executed_order_validation(self):
        dag = DependencyDAG(chain_circuit())
        assert dag.executed_order_is_valid([0, 1, 2])
        assert not dag.executed_order_is_valid([1, 0, 2])
        assert not dag.executed_order_is_valid([0, 1])

    def test_full_execution_by_front_layers(self, random_small_circuit):
        dag = DependencyDAG(random_small_circuit)
        order = []
        while not dag.is_done():
            front = dag.front_layer()
            assert front, "front layer must be non-empty while gates remain"
            for index in front:
                dag.execute(index)
                order.append(index)
        dag_check = DependencyDAG(random_small_circuit)
        assert dag_check.executed_order_is_valid(order)

"""Unit tests for the dependency DAG and front-layer extraction."""

from __future__ import annotations

import pytest

from repro.circuit import DependencyDAG, QuantumCircuit
from repro.exceptions import CircuitError


def chain_circuit() -> QuantumCircuit:
    return QuantumCircuit(3).cx(0, 1).cx(1, 2).cx(0, 1)


class TestFrontLayer:
    def test_initial_front_layer(self):
        circuit = QuantumCircuit(4).cx(0, 1).cx(2, 3).cx(1, 2)
        dag = DependencyDAG(circuit)
        assert dag.front_layer() == [0, 1]

    def test_front_layer_advances_after_execute(self):
        dag = DependencyDAG(chain_circuit())
        assert dag.front_layer() == [0]
        dag.execute(0)
        assert dag.front_layer() == [1]
        dag.execute(1)
        assert dag.front_layer() == [2]
        dag.execute(2)
        assert dag.is_done()

    def test_one_qubit_gates_create_dependencies(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        dag = DependencyDAG(circuit)
        assert dag.front_layer() == [0]

    def test_exclude_one_qubit_gates(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        dag = DependencyDAG(circuit, include_one_qubit=False)
        assert dag.num_gates == 1
        assert dag.front_layer() == [1]

    def test_barriers_are_skipped(self):
        circuit = QuantumCircuit(2).cx(0, 1).barrier().cx(0, 1)
        dag = DependencyDAG(circuit)
        assert dag.num_gates == 2


class TestExecution:
    def test_cannot_execute_blocked_gate(self):
        dag = DependencyDAG(chain_circuit())
        with pytest.raises(CircuitError):
            dag.execute(1)

    def test_cannot_execute_twice(self):
        dag = DependencyDAG(chain_circuit())
        dag.execute(0)
        with pytest.raises(CircuitError):
            dag.execute(0)

    def test_unknown_index_rejected(self):
        dag = DependencyDAG(chain_circuit())
        with pytest.raises(CircuitError):
            dag.execute(99)

    def test_execute_many_in_any_order(self):
        circuit = QuantumCircuit(4).cx(0, 1).cx(2, 3)
        dag = DependencyDAG(circuit)
        dag.execute_many([1, 0])
        assert dag.is_done()

    def test_reset(self):
        dag = DependencyDAG(chain_circuit())
        dag.execute(0)
        dag.reset()
        assert dag.num_remaining == 3
        assert dag.front_layer() == [0]


class TestStructure:
    def test_predecessors_and_successors(self):
        dag = DependencyDAG(chain_circuit())
        assert dag.predecessors(0) == frozenset()
        assert dag.predecessors(1) == {0}
        # gate 2 reuses qubit 0 (last touched by gate 0) and qubit 1 (gate 1)
        assert dag.successors(0) == {1, 2}
        assert 2 in dag.successors(1)

    def test_longest_path_length(self):
        dag = DependencyDAG(chain_circuit())
        assert dag.longest_path_length() == 3
        wide = QuantumCircuit(6).cx(0, 1).cx(2, 3).cx(4, 5)
        assert DependencyDAG(wide).longest_path_length() == 1

    def test_lookahead_returns_future_gates(self):
        circuit = QuantumCircuit(3).cx(0, 1).cx(1, 2).cx(0, 2).cx(0, 1)
        dag = DependencyDAG(circuit)
        future = dag.lookahead(10)
        assert 0 not in future  # front layer not included
        assert set(future) <= {1, 2, 3}

    def test_executed_order_validation(self):
        dag = DependencyDAG(chain_circuit())
        assert dag.executed_order_is_valid([0, 1, 2])
        assert not dag.executed_order_is_valid([1, 0, 2])
        assert not dag.executed_order_is_valid([0, 1])

    def test_full_execution_by_front_layers(self, random_small_circuit):
        dag = DependencyDAG(random_small_circuit)
        order = []
        while not dag.is_done():
            front = dag.front_layer()
            assert front, "front layer must be non-empty while gates remain"
            for index in front:
                dag.execute(index)
                order.append(index)
        dag_check = DependencyDAG(random_small_circuit)
        assert dag_check.executed_order_is_valid(order)


# ----------------------------------------------------------------------
# property tests: the incremental ready-set DAG must match the reference
# full-scan implementation (the seed version of this module) exactly
# ----------------------------------------------------------------------
class _ReferenceDAG:
    """The seed implementation: full O(remaining x predecessors) scans."""

    def __init__(self, circuit: QuantumCircuit, *, include_one_qubit: bool = True):
        self._gates = {}
        self._predecessors = {}
        self._successors = {}
        last_on_qubit = {}
        for index, gate in enumerate(circuit.gates):
            if gate.is_barrier:
                continue
            if not include_one_qubit and gate.num_qubits < 2:
                continue
            self._gates[index] = gate
            for qubit in gate.qubits:
                if qubit in last_on_qubit and last_on_qubit[qubit] != index:
                    self._predecessors.setdefault(index, set()).add(last_on_qubit[qubit])
                    self._successors.setdefault(last_on_qubit[qubit], set()).add(index)
                last_on_qubit[qubit] = index
        self._remaining = set(self._gates)
        self._executed = set()

    def front_layer(self):
        return sorted(
            i
            for i in self._remaining
            if all(p in self._executed for p in self._predecessors.get(i, ()))
        )

    def lookahead(self, depth):
        upcoming = []
        frontier = set(self.front_layer())
        visited = set(frontier)
        queue = sorted(frontier)
        while queue and len(upcoming) < depth:
            current = queue.pop(0)
            for succ in sorted(self._successors.get(current, ())):
                if succ in visited or succ in self._executed:
                    continue
                visited.add(succ)
                upcoming.append(succ)
                queue.append(succ)
                if len(upcoming) >= depth:
                    break
        return upcoming

    def execute(self, index):
        self._remaining.discard(index)
        self._executed.add(index)


class TestIncrementalMatchesReference:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("include_one_qubit", [True, False])
    def test_randomized_equivalence(self, seed, include_one_qubit):
        """Drive both DAGs through a full random execution trace in lockstep."""
        import numpy as np

        from repro.circuit import random_circuit

        rng = np.random.default_rng(1000 + seed)
        circuit = random_circuit(
            int(rng.integers(3, 9)), int(rng.integers(2, 12)), seed=int(rng.integers(1 << 30))
        )
        dag = DependencyDAG(circuit, include_one_qubit=include_one_qubit)
        ref = _ReferenceDAG(circuit, include_one_qubit=include_one_qubit)
        while not dag.is_done():
            front = dag.front_layer()
            assert front == ref.front_layer()
            for depth in (1, 3, 20):
                assert dag.lookahead(depth) == ref.lookahead(depth)
            # execute a random non-empty subset of the front layer
            chosen = [i for i in front if rng.random() < 0.6] or [front[0]]
            for index in chosen:
                dag.execute(index)
                ref.execute(index)
        assert ref.front_layer() == []

    def test_reset_restores_initial_front(self):
        from repro.circuit import random_cx_circuit

        circuit = random_cx_circuit(6, 12, seed=3)
        dag = DependencyDAG(circuit)
        initial_front = dag.front_layer()
        initial_lookahead = dag.lookahead(6)
        for index in list(initial_front):
            dag.execute(index)
        assert dag.front_layer() != initial_front or dag.is_done()
        dag.reset()
        assert dag.front_layer() == initial_front
        assert dag.lookahead(6) == initial_lookahead
        assert dag.num_remaining == dag.num_gates

    def test_front_layer_unsorted_matches_front_layer(self):
        from repro.circuit import random_cx_circuit

        circuit = random_cx_circuit(5, 10, seed=9)
        dag = DependencyDAG(circuit)
        while not dag.is_done():
            assert sorted(dag.front_layer_unsorted()) == dag.front_layer()
            dag.execute(dag.front_layer()[0])

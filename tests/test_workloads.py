"""Unit tests for the workload generators (graphs, molecules, paper suites)."""

from __future__ import annotations

import pytest

from repro.exceptions import WorkloadError
from repro.workloads import (
    MOLECULES,
    complete_graph_edges,
    graph_degree_histogram,
    molecule_catalogue,
    molecule_pauli_strings,
    molecule_summary,
    qaoa_benchmark_suite,
    qsim_workload,
    random_circuit_workload,
    random_graph_edges,
    regular_graph_edges,
    ring_graph_edges,
    scaled_qsim_suite,
    scaled_random_circuit_suite,
)


class TestGraphs:
    def test_random_graph_edges_are_canonical(self):
        edges = random_graph_edges(12, 0.3, seed=1)
        assert all(a < b for a, b in edges)
        assert len(edges) == len(set(edges))
        assert all(b < 12 for _, b in edges)

    def test_random_graph_density_scales_with_p(self):
        sparse = random_graph_edges(30, 0.1, seed=2)
        dense = random_graph_edges(30, 0.5, seed=2)
        assert len(dense) > len(sparse)

    def test_random_graph_nonempty_guarantee(self):
        edges = random_graph_edges(5, 0.0, seed=3)
        assert len(edges) == 1

    def test_random_graph_deterministic(self):
        assert random_graph_edges(10, 0.4, seed=5) == random_graph_edges(10, 0.4, seed=5)

    def test_invalid_probability(self):
        with pytest.raises(WorkloadError):
            random_graph_edges(5, 1.5)

    def test_regular_graph_degrees(self):
        edges = regular_graph_edges(10, 3, seed=4)
        histogram = graph_degree_histogram(10, edges)
        assert histogram == {3: 10}
        assert len(edges) == 15

    def test_regular_graph_parity_check(self):
        with pytest.raises(WorkloadError):
            regular_graph_edges(5, 3)

    def test_regular_graph_invalid_degree(self):
        with pytest.raises(WorkloadError):
            regular_graph_edges(4, 4)

    def test_ring_and_complete_graphs(self):
        assert len(ring_graph_edges(6)) == 6
        assert len(complete_graph_edges(5)) == 10
        with pytest.raises(WorkloadError):
            ring_graph_edges(2)

    def test_qaoa_benchmark_suite_keys(self):
        suite = qaoa_benchmark_suite(sizes=(6, 10), edge_probability=0.3)
        assert "er_p0.3_6q" in suite
        assert "3reg_6q" in suite
        assert "4reg_10q" in suite
        for edges in suite.values():
            assert edges


class TestMolecules:
    def test_catalogue_has_four_molecules(self):
        catalogue = molecule_catalogue()
        assert set(catalogue) == {"H2", "LiH_UCCSD", "H2O", "BeH2"}

    def test_h2_is_smallest(self):
        h2 = molecule_pauli_strings("H2")
        lih = molecule_pauli_strings("LiH_UCCSD")
        assert MOLECULES["H2"].num_qubits == 4
        assert len(h2) < len(lih)

    def test_strings_have_correct_width(self):
        for name, spec in MOLECULES.items():
            strings = molecule_pauli_strings(name)
            assert all(s.num_qubits == spec.num_qubits for s in strings)
            assert all(s.weight >= 2 for s in strings)

    def test_deterministic(self):
        a = [s.label for s in molecule_pauli_strings("H2O")]
        b = [s.label for s in molecule_pauli_strings("H2O")]
        assert a == b

    def test_unknown_molecule(self):
        with pytest.raises(WorkloadError):
            molecule_pauli_strings("caffeine")

    def test_summary(self):
        summary = molecule_summary("BeH2")
        assert summary["qubits"] == 14
        assert summary["terms"] > 100
        assert summary["max_weight"] <= 14

    def test_molecule_sizes_ordered_like_paper(self):
        """Table 1 orders molecules by difficulty: H2 < LiH < H2O < BeH2."""
        terms = [len(molecule_pauli_strings(n)) for n in ("H2", "LiH_UCCSD", "H2O", "BeH2")]
        assert terms == sorted(terms)


class TestPaperSuites:
    def test_random_circuit_workload(self):
        circuit = random_circuit_workload(10, 2, seed=1)
        assert circuit.num_qubits == 10
        assert circuit.num_two_qubit_gates() == 20

    def test_qsim_workload(self):
        strings = qsim_workload(10, 0.3, num_strings=25, seed=1)
        assert len(strings) == 25
        assert all(s.num_qubits == 10 for s in strings)

    def test_scaled_suites_cover_grid(self):
        circuits = scaled_random_circuit_suite(sizes=(5, 10), multiples=(2, 10))
        assert set(circuits) == {(5, 2), (5, 10), (10, 2), (10, 10)}
        qsim = scaled_qsim_suite(sizes=(5,), probabilities=(0.1, 0.5), num_strings=10)
        assert set(qsim) == {(5, 0.1), (5, 0.5)}
        assert len(qsim[(5, 0.1)]) == 10

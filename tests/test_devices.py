"""Unit tests for the baseline device generators."""

from __future__ import annotations

import pytest

from repro.exceptions import HardwareError
from repro.hardware import (
    device_catalogue,
    grid_device,
    heavy_hex_device,
    ibm_washington_device,
    smallest_device_for,
    square_fixed_atom_array,
    triangular_device,
    triangular_fixed_atom_array,
)


class TestLattices:
    def test_square_lattice_size_and_degree(self):
        device = square_fixed_atom_array(16)
        assert device.num_qubits == 256
        # interior atoms have 4 neighbours, corners 2
        degrees = [device.degree(q) for q in range(device.num_qubits)]
        assert max(degrees) == 4
        assert min(degrees) == 2
        assert device.is_connected()

    def test_square_lattice_edge_count(self):
        device = grid_device(4, 5)
        # horizontal: 4*4, vertical: 3*5
        assert device.num_edges == 4 * 4 + 3 * 5

    def test_triangular_lattice_degree(self):
        device = triangular_fixed_atom_array(16)
        assert device.num_qubits == 256
        degrees = [device.degree(q) for q in range(device.num_qubits)]
        assert max(degrees) == 6
        assert device.is_connected()

    def test_triangular_has_more_edges_than_square(self):
        square = grid_device(8, 8)
        triangular = triangular_device(8, 8)
        assert triangular.num_edges > square.num_edges

    def test_invalid_dimensions(self):
        with pytest.raises(HardwareError):
            grid_device(0, 4)
        with pytest.raises(HardwareError):
            triangular_device(3, 0)

    def test_grid_adjacency_structure(self):
        device = grid_device(3, 3)
        assert device.are_adjacent(0, 1)
        assert device.are_adjacent(0, 3)
        assert not device.are_adjacent(0, 4)
        triangular = triangular_device(3, 3)
        assert triangular.are_adjacent(0, 4)  # diagonal


class TestHeavyHex:
    def test_washington_has_127_qubits(self, washington):
        assert washington.num_qubits == 127

    def test_max_degree_three(self, washington):
        degrees = [washington.degree(q) for q in range(washington.num_qubits)]
        assert max(degrees) == 3
        assert min(degrees) >= 1

    def test_connected(self, washington):
        assert washington.is_connected()

    def test_sparser_than_square_lattice(self, washington):
        assert washington.average_degree() < grid_device(12, 11).average_degree()

    def test_smaller_distance_parameter(self):
        small = heavy_hex_device(3)
        assert small.num_qubits < 127
        assert small.is_connected()
        assert max(small.degree(q) for q in range(small.num_qubits)) <= 3

    def test_invalid_distance(self):
        with pytest.raises(HardwareError):
            heavy_hex_device(1)


class TestCatalogue:
    def test_catalogue_contents(self):
        catalogue = device_catalogue()
        assert set(catalogue) == {"superconducting", "faa_square", "faa_triangular"}
        assert catalogue["superconducting"].num_qubits == 127
        assert catalogue["faa_square"].num_qubits == 256

    def test_smallest_device_for_grows_lattices(self):
        device = smallest_device_for(300, "faa_square")
        assert device.num_qubits >= 300

    def test_smallest_device_for_superconducting_limit(self):
        with pytest.raises(HardwareError):
            smallest_device_for(200, "superconducting")
        assert smallest_device_for(100, "superconducting").num_qubits == 127

    def test_unknown_kind(self):
        with pytest.raises(HardwareError):
            smallest_device_for(10, "trapped_ion")
